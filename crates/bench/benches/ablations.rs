//! Criterion: cost side of the DESIGN.md ablations — Atlas table size
//! and SC capacity sweeps (quality side: `repro ablations`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nvcache_core::PolicyKind;
use nvcache_trace::Line;

fn drive(kind: &PolicyKind, stream: &[Line]) -> u64 {
    let mut p = kind.build();
    let mut out = Vec::with_capacity(64);
    let mut flushes = 0u64;
    for (i, &l) in stream.iter().enumerate() {
        p.on_store(l, &mut out);
        flushes += out.len() as u64;
        out.clear();
        if i % 500 == 499 {
            p.on_fase_end(&mut out);
            flushes += out.len() as u64;
            out.clear();
        }
    }
    flushes
}

fn bench_ablations(c: &mut Criterion) {
    let stream: Vec<Line> = (0..50_000u64)
        .map(|i| Line((i * 7 + i / 11) % 40))
        .collect();
    let mut g = c.benchmark_group("ablation");
    g.throughput(Throughput::Elements(stream.len() as u64));
    for size in [4usize, 8, 16, 32, 64] {
        g.bench_with_input(BenchmarkId::new("atlas_table", size), &size, |b, &size| {
            b.iter(|| black_box(drive(&PolicyKind::Atlas { size }, &stream)))
        });
    }
    for cap in [10usize, 25, 50, 100] {
        g.bench_with_input(BenchmarkId::new("sc_capacity", cap), &cap, |b, &cap| {
            b.iter(|| black_box(drive(&PolicyKind::ScFixed { capacity: cap }, &stream)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
