//! Criterion: the full online-adaptation pipeline — burst sampling →
//! linear-time MRC → knee selection → resize (the cost Figure 8
//! budgets at 1–10% of execution).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nvcache_core::adaptive::{AdaptiveConfig, AdaptiveScPolicy};
use nvcache_core::PersistPolicy;
use nvcache_locality::{reuse_all_k, select_cache_size, KneeConfig, Mrc};
use nvcache_trace::Line;

fn bench_adaptive(c: &mut Criterion) {
    let mut g = c.benchmark_group("adaptive");
    g.sample_size(20);

    // analysis only: MRC + knee from a 64k-write burst
    let burst: Vec<u64> = (0..65_536u64).map(|i| i % 23).collect();
    g.throughput(Throughput::Elements(burst.len() as u64));
    g.bench_function("mrc_plus_knee_64k", |b| {
        b.iter(|| {
            let mrc = Mrc::from_reuse(&reuse_all_k(&burst), 50);
            black_box(select_cache_size(&mrc, &KneeConfig::default()))
        })
    });

    // end-to-end: adaptive policy over a 256k-write stream
    let stream: Vec<Line> = (0..262_144u64).map(|i| Line(i % 23)).collect();
    g.throughput(Throughput::Elements(stream.len() as u64));
    g.bench_function("adaptive_policy_256k", |b| {
        b.iter_batched(
            || {
                AdaptiveScPolicy::new(AdaptiveConfig {
                    burst_len: 65_536,
                    ..Default::default()
                })
            },
            |mut p| {
                let mut out = Vec::with_capacity(64);
                for (i, &l) in stream.iter().enumerate() {
                    p.on_store(l, &mut out);
                    out.clear();
                    if i % 1000 == 999 {
                        p.on_fase_end(&mut out);
                        out.clear();
                    }
                }
                black_box(p.capacity())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_adaptive);
criterion_main!(benches);
