//! Criterion: the linear-time all-k reuse computation (paper Section
//! III-B). Throughput mode shows ~constant ns/element across trace
//! lengths — the linearity claim.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nvcache_locality::{footprint_all_k, lru_mrc, reuse_all_k};

fn trace(n: usize) -> Vec<u64> {
    (0..n).map(|i| ((i * 31 + i / 7) % 997) as u64).collect()
}

fn bench_locality(c: &mut Criterion) {
    let mut g = c.benchmark_group("locality");
    g.sample_size(20);
    for n in [10_000usize, 100_000, 1_000_000] {
        let t = trace(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("reuse_all_k", n), &t, |b, t| {
            b.iter(|| black_box(reuse_all_k(t)))
        });
        g.bench_with_input(BenchmarkId::new("footprint_all_k", n), &t, |b, t| {
            b.iter(|| black_box(footprint_all_k(t)))
        });
    }
    // exact Mattson oracle for comparison (O(n log n))
    let t = trace(100_000);
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("mattson_lru_mrc_100k", |b| {
        b.iter(|| black_box(lru_mrc(&t, 50)))
    });
    g.finish();
}

criterion_group!(benches, bench_locality);
criterion_main!(benches);
