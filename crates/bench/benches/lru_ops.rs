//! Criterion: O(1) software-cache operations (paper Section III-C "The
//! Cache": hash map + doubly linked list, all ops constant time).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nvcache_core::LruCache;
use nvcache_trace::Line;

fn bench_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru");
    for cap in [8usize, 50, 1024] {
        g.bench_with_input(BenchmarkId::new("hit", cap), &cap, |b, &cap| {
            let mut cache = LruCache::new(cap);
            for i in 0..cap as u64 {
                cache.touch(Line(i));
            }
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % cap as u64;
                black_box(cache.touch(Line(i)))
            });
        });
        g.bench_with_input(BenchmarkId::new("miss_evict", cap), &cap, |b, &cap| {
            let mut cache = LruCache::new(cap);
            let mut i = 0u64;
            b.iter(|| {
                i += 1; // always a fresh line → always evicts once full
                black_box(cache.touch(Line(i)))
            });
        });
    }
    // churn: steady-state mix of touches, removes and drains — the
    // pattern the preallocated node pool (`LruCache::free`) and Fx-hashed
    // index are sized for; regressions in either show up here first
    g.bench_function("churn_50", |b| {
        let mut cache = LruCache::new(50);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let line = Line(i % 80); // 80-line set over 50 slots → evictions
            black_box(cache.touch(line));
            if i.is_multiple_of(7) {
                black_box(cache.remove(Line((i / 7) % 80)));
            }
            if i.is_multiple_of(1024) {
                black_box(cache.drain_lru_first());
            }
        });
    });
    g.bench_function("drain_50", |b| {
        b.iter_batched(
            || {
                let mut cache = LruCache::new(50);
                for i in 0..50u64 {
                    cache.touch(Line(i));
                }
                cache
            },
            |mut cache| black_box(cache.drain_lru_first()),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_lru);
criterion_main!(benches);
