//! Criterion: per-store cost of each persistence policy (the
//! instruction-overhead dimension of paper Table IV).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nvcache_core::PolicyKind;
use nvcache_trace::Line;

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_store");
    let kinds = [
        ("ER", PolicyKind::Eager),
        ("LA", PolicyKind::Lazy),
        ("AT8", PolicyKind::Atlas { size: 8 }),
        ("SC23", PolicyKind::ScFixed { capacity: 23 }),
        ("SC-adaptive", PolicyKind::ScAdaptive(Default::default())),
        ("BEST", PolicyKind::Best),
    ];
    // water-spatial-like stream: 23-line working set with FASE breaks
    let stream: Vec<Line> = (0..100_000u64).map(|i| Line(i % 23)).collect();
    g.throughput(Throughput::Elements(stream.len() as u64));
    for (name, kind) in kinds {
        g.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, kind| {
            b.iter_batched(
                || kind.build(),
                |mut p| {
                    let mut out = Vec::with_capacity(64);
                    for (i, &l) in stream.iter().enumerate() {
                        p.on_store(l, &mut out);
                        out.clear();
                        if i % 500 == 499 {
                            p.on_fase_end(&mut out);
                            out.clear();
                        }
                    }
                    black_box(p.store_overhead_instrs())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
