//! Criterion: trace-replay engine throughput, sequential vs parallel,
//! recorder off vs on.
//!
//! The unit of work is one full `run_policy_with` replay of an 8-thread
//! trace; throughput is reported in persistent stores (elements) per
//! second. Parallel replays are bit-identical to sequential (see
//! `tests/parallel_replay.rs`), so any wall-clock difference here is
//! pure engine speedup. The `*_telemetry` variants replay through
//! `run_policy_traced`; comparing them against the plain rows is the
//! telemetry layer's overhead budget (the recorder-off path must be
//! indistinguishable from the pre-telemetry engine — the `NullRecorder`
//! blocks compile away).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nvcache_core::{run_policy_traced, run_policy_with, PolicyKind, ReplayOptions, RunConfig};
use nvcache_telemetry::TelemetryConfig;
use nvcache_trace::synth::{cyclic, replicate, SynthOpts};
use nvcache_trace::Trace;

fn eight_thread_trace() -> Trace {
    let single = cyclic(23, 4_000, &SynthOpts::default());
    replicate(&single, 8)
}

fn bench_replay(c: &mut Criterion) {
    let tr = eight_thread_trace();
    let stores = tr.stats().total_writes as u64;
    let cfg = RunConfig::default();
    let mut g = c.benchmark_group("replay");
    g.throughput(Throughput::Elements(stores));
    for kind in [PolicyKind::Eager, PolicyKind::Atlas { size: 8 }] {
        for par in [1usize, 2, 4, 8] {
            let opts = ReplayOptions::with_parallelism(par);
            let id = BenchmarkId::new(format!("{}_p", kind.label()), par);
            g.bench_with_input(id, &par, |b, _| {
                b.iter(|| black_box(run_policy_with(&tr, &kind, &cfg, &opts)))
            });
        }
    }
    g.finish();

    let tcfg = TelemetryConfig::default();
    let mut g = c.benchmark_group("replay_telemetry");
    g.throughput(Throughput::Elements(stores));
    for kind in [PolicyKind::Eager, PolicyKind::Atlas { size: 8 }] {
        for par in [1usize, 8] {
            let opts = ReplayOptions::with_parallelism(par);
            let id = BenchmarkId::new(format!("{}_p", kind.label()), par);
            g.bench_with_input(id, &par, |b, _| {
                b.iter(|| black_box(run_policy_traced(&tr, &kind, &cfg, &opts, &tcfg)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
