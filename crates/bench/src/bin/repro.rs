//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale S] [--threads a,b,c] [--json]
//!                    [--telemetry FILE]
//!
//! experiments: table1 table2 table3 table4
//!              fig2 fig4 fig5 fig6 fig7 fig8
//!              ablation-knee ablation-atlas ablation-bound ablation-burst
//!              ablation-clwb ablation-phased ablation-groups
//!              bench-replay (replay-engine throughput → BENCH_replay.json)
//!              kv-bench     (YCSB grid over the sharded KV store
//!                            → BENCH_kv.json; --smoke for CI sizes)
//!              tree-bench   (YCSB C/E/F over the CoW B+-tree engine;
//!                            appends engine:"tree" rows — scan
//!                            throughput + scan p99 — to BENCH_kv.json)
//!              tree-crash   (crash-point sweep over tree transactions:
//!                            committed-prefix oracle on both flush
//!                            paths × crash modes; nonzero on failure)
//!              crash-matrix (crash-point fuzz: all policies × crash
//!                            modes × seeds; exits nonzero on failure)
//!              all          (tables + figures)
//!              ablations    (all seven ablations)
//! ```
//!
//! `crash-matrix` takes `--seeds N` (default 3): programs per cell. It
//! is the CI smoke form of `tests/crash_fuzz.rs` — every micro-step of
//! each program is crashed, recovered and checked against the oracle.
//!
//! `repro telemetry-diff BASE NEW [--threshold T] [--schema-only]`
//! compares two harness JSON artifacts (BENCH_kv.json, or any file the
//! harness writes). Schema drift (keys, types, array lengths, identity
//! labels) always exits 2; a thresholded wall-clock metric moving the
//! wrong way by more than `T` (default 0.2 = 20%) exits 1 unless
//! `--schema-only`. CI runs the schema-only form on two smoke passes.
//!
//! `repro net-smoke` runs the network serving path end to end over the
//! in-process transport — pipelined multi-connection loadgen, crash,
//! recover, ack-after-commit audit — and exits nonzero if any acked
//! write did not survive. `repro kv-serve` / `repro kv-load` are the
//! real-TCP forms: a server that runs until killed and an open-loop
//! loadgen printing one JSON summary line.
//!
//! `--scale` is the fraction of the paper's problem sizes (default
//! 0.05); absolute numbers shrink with it but orderings and ratios are
//! scale-stable (EXPERIMENTS.md). Use `--scale 1.0` for paper sizes
//! (minutes, not seconds).
//!
//! `--telemetry FILE` additionally instruments every timed replay the
//! experiment performs (counters, histograms, FASE/flush timeline),
//! prints a summary table and writes the full per-run snapshots to
//! FILE as JSON. Simulated results are identical with or without it.

use nvcache_bench::experiments::{ablations, figs, kv, tables, tree, DEFAULT_SCALE, THREAD_SWEEP};
use nvcache_bench::report::{json_str, telemetry_envelope, telemetry_table};
use nvcache_bench::{diff, jsonv, telemetry, Table};
use nvcache_cachesim::MachineConfig;
use nvcache_core::{
    run_policy_dyn, run_policy_traced, run_policy_traced_dyn, run_policy_with, AdaptiveConfig,
    FlushPath, PolicyKind, ReplayOptions, RunConfig,
};
use nvcache_fase::{crash_fuzz, CrashFuzzConfig};
use nvcache_pmem::CrashMode;
use nvcache_telemetry::TelemetryConfig;
use nvcache_trace::synth::{cyclic, replicate, SynthOpts};

struct Args {
    experiment: String,
    scale: f64,
    threads: Vec<usize>,
    json: bool,
    telemetry: Option<String>,
    seeds: u64,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: String::new(),
        scale: DEFAULT_SCALE,
        threads: THREAD_SWEEP.to_vec(),
        json: false,
        telemetry: None,
        seeds: 3,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing value for --scale"));
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| usage("missing --threads"));
                args.threads = v
                    .split(',')
                    .map(|x| x.parse().unwrap_or_else(|_| usage("bad thread count")))
                    .collect();
            }
            "--json" => args.json = true,
            "--smoke" => args.smoke = true,
            "--seeds" => {
                args.seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("missing or bad value for --seeds"));
            }
            "--telemetry" => {
                args.telemetry = Some(it.next().unwrap_or_else(|| usage("missing --telemetry")));
            }
            "--help" | "-h" => usage(""),
            other if args.experiment.is_empty() => args.experiment = other.to_string(),
            other => usage(&format!("unexpected argument {other}")),
        }
    }
    if args.experiment.is_empty() {
        usage("missing experiment name");
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro <experiment> [--scale S] [--threads a,b,c] [--json] [--telemetry FILE]\n\
         \x20      repro crash-matrix [--seeds N] [--json]\n\
         \x20      repro telemetry-diff BASE NEW [--threshold T] [--schema-only] [--json]\n\
         experiments: table1 table2 table3 table4 fig2 fig4 fig5 fig6 fig7 fig8\n\
         \x20            ablation-knee ablation-atlas ablation-bound ablation-burst\n\
         \x20            ablation-clwb ablation-phased ablation-groups\n\
         \x20            bench-replay (writes BENCH_replay.json)\n\
         \x20            kv-bench [--smoke] (YCSB grid; writes BENCH_kv.json)\n\
         \x20            tree-bench [--smoke] (YCSB C/E/F over the B+-tree\n\
         \x20                       engine; appends tree rows to BENCH_kv.json)\n\
         \x20            tree-crash [--seeds N] (tree txn crash-point sweep;\n\
         \x20                       nonzero exit on a torn transaction)\n\
         \x20            crash-matrix (crash-point fuzz; nonzero exit on failure)\n\
         \x20            telemetry-diff (compare two harness JSON artifacts;\n\
         \x20                            exits 2 on schema drift, 1 on regression)\n\
         \x20            net-smoke [--connections N] [--depth D] [--ops N]\n\
         \x20                      (in-process wire-protocol sweep + crash audit)\n\
         \x20            kv-serve [--addr HOST:PORT] (TCP server, runs until killed)\n\
         \x20            kv-load  [--addr HOST:PORT] [--connections N] [--depth D]\n\
         \x20                     [--ops N] [--rate R] (open-loop TCP loadgen)\n\
         \x20            all | ablations"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn run_one(name: &str, scale: f64, threads: &[usize], smoke: bool) -> Vec<Table> {
    match name {
        "table1" => vec![tables::table1(scale)],
        "table2" => vec![tables::table2(scale)],
        "table3" => vec![tables::table3(scale)],
        "table4" => vec![tables::table4(scale, threads)],
        "fig2" => vec![figs::fig2(scale)],
        "fig4" => vec![figs::fig4(scale)],
        "fig5" => vec![figs::fig5(scale, threads)],
        "fig6" => vec![figs::fig6(scale, threads)],
        "fig7" => vec![figs::fig7(scale)],
        "fig8" => vec![figs::fig8(scale)],
        "ablation-knee" => vec![ablations::ablation_knee(scale)],
        "ablation-clwb" => vec![ablations::ablation_clwb(scale)],
        "ablation-phased" => vec![ablations::ablation_phased(scale)],
        "ablation-groups" => vec![ablations::ablation_groups(scale, 8)],
        "ablation-atlas" => vec![ablations::ablation_atlas(scale)],
        "ablation-bound" => vec![ablations::ablation_bound(scale)],
        "ablation-burst" => vec![ablations::ablation_burst(scale)],
        "all" => {
            let mut v = Vec::new();
            for e in [
                "table1", "table2", "table3", "table4", "fig2", "fig4", "fig5", "fig6", "fig7",
                "fig8",
            ] {
                v.extend(run_one(e, scale, threads, smoke));
            }
            v
        }
        "ablations" => {
            let mut v = Vec::new();
            for e in [
                "ablation-knee",
                "ablation-atlas",
                "ablation-bound",
                "ablation-burst",
                "ablation-clwb",
                "ablation-phased",
                "ablation-groups",
            ] {
                v.extend(run_one(e, scale, threads, smoke));
            }
            v
        }
        "bench-replay" => bench_replay(scale),
        "kv-bench" => vec![kv::kv_bench(scale, smoke)],
        "tree-bench" => vec![tree::tree_bench(scale, smoke)],
        other => usage(&format!("unknown experiment {other}")),
    }
}

/// Wall-clock replay-engine throughput, sequential vs parallel, with
/// the recorder off and on, through both dispatch engines (boxed `dyn`
/// reference vs monomorphized), on an 8-thread trace. Verifies
/// bit-identical reports at every parallelism, in both recorder modes
/// and across dispatch engines, prints a table, and records the
/// measurements in `BENCH_replay.json`. The recorder-off rows quantify
/// the telemetry layer's no-op cost (the generic driver must compile to
/// the pre-telemetry loop); recorder-on rows show the price of full
/// instrumentation; the dyn-vs-enum delta is the devirtualization win.
///
/// A second table compares the two FASE-boundary flush paths in
/// *simulated* cycles: per-line synchronous flushing vs coalesced
/// ranged sweeps ([`FlushPath::Pipelined`]), under both cache modes
/// (`clflush` invalidates, `clwb` keeps lines resident). Flush counts
/// are asserted bit-identical between the paths; `speedup_vs_sync` is
/// the cycles ratio. Both result sets land in `BENCH_replay.json`.
fn bench_replay(scale: f64) -> Vec<Table> {
    let rounds = ((100_000.0 * scale) as usize).max(2_000);
    let tr = replicate(&cyclic(23, rounds, &SynthOpts::default()), 8);
    let stores = tr.stats().total_writes as u64;
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut pars = vec![1usize, 2, 4, 8];
    if !pars.contains(&host) {
        pars.push(host);
        pars.sort_unstable();
    }
    let cfg = RunConfig::default();
    let tcfg = TelemetryConfig::default();
    let mut t = Table::new(
        &format!("Replay throughput: 8-thread trace, {stores} stores (host parallelism {host})"),
        &[
            "policy",
            "dispatch",
            "recorder",
            "parallelism",
            "secs",
            "Mwrites/s",
            "speedup",
            "vs dyn",
        ],
    );
    let mut records = Vec::new();
    for kind in [PolicyKind::Eager, PolicyKind::Atlas { size: 8 }] {
        let baseline = run_policy_with(&tr, &kind, &cfg, &ReplayOptions::sequential());
        for recorder_on in [false, true] {
            // dyn first so its time is available as the enum rows' base
            let mut dyn_secs = vec![0.0f64; pars.len()];
            for enum_dispatch in [false, true] {
                let mut seq_secs = 0.0f64;
                for (pi, &par) in pars.iter().enumerate() {
                    let opts = ReplayOptions::with_parallelism(par);
                    let mut best = f64::INFINITY;
                    for _ in 0..3 {
                        let start = std::time::Instant::now();
                        let r = match (enum_dispatch, recorder_on) {
                            (true, true) => run_policy_traced(&tr, &kind, &cfg, &opts, &tcfg).0,
                            (true, false) => run_policy_with(&tr, &kind, &cfg, &opts),
                            (false, true) => {
                                run_policy_traced_dyn(&tr, &kind, &cfg, &opts, &tcfg).0
                            }
                            (false, false) => run_policy_dyn(&tr, &kind, &cfg, &opts),
                        };
                        best = best.min(start.elapsed().as_secs_f64());
                        assert_eq!(r, baseline, "replay must be bit-identical");
                    }
                    if par == 1 {
                        seq_secs = best;
                    }
                    let vs_dyn = if enum_dispatch {
                        dyn_secs[pi] / best
                    } else {
                        dyn_secs[pi] = best;
                        1.0
                    };
                    let wps = stores as f64 / best;
                    let speedup = seq_secs / best;
                    let rec = if recorder_on { "on" } else { "off" };
                    let disp = if enum_dispatch { "enum" } else { "dyn" };
                    t.row(vec![
                        kind.label().to_string(),
                        disp.to_string(),
                        rec.to_string(),
                        par.to_string(),
                        format!("{best:.4}"),
                        format!("{:.2}", wps / 1e6),
                        format!("{speedup:.2}x"),
                        format!("{vs_dyn:.2}x"),
                    ]);
                    records.push(format!(
                        "    {{\"policy\": {}, \"dispatch\": \"{disp}\", \
                         \"telemetry\": {recorder_on}, \"parallelism\": {par}, \
                         \"secs\": {best:.6}, \"writes_per_sec\": {wps:.0}, \
                         \"speedup_vs_seq\": {speedup:.3}, \"speedup_vs_dyn\": {vs_dyn:.3}}}",
                        json_str(kind.label())
                    ));
                }
            }
        }
    }
    // --- flush-path comparison (simulated cycles) ---------------------
    // FASE-dense variant of the trace: the throughput trace above runs
    // one FASE per thread (writes_per_fase: 0), which never exercises
    // the commit drain. Here each FASE writes the 23-line working set
    // twice, so LA/SC hand a contiguous 23-line batch to every commit.
    let ftr = replicate(
        &cyclic(
            23,
            rounds / 4,
            &SynthOpts {
                writes_per_fase: 46,
                ..SynthOpts::default()
            },
        ),
        8,
    );
    let mut ft = Table::new(
        "Flush paths: per-line sync vs coalesced ranged sweeps (simulated cycles)",
        &[
            "policy",
            "cache mode",
            "sync cycles",
            "pipelined cycles",
            "speedup",
            "flushes",
        ],
    );
    let mut frecords = Vec::new();
    for invalidates in [true, false] {
        let cache_mode = if invalidates { "clflush" } else { "clwb" };
        let machine = MachineConfig {
            flush_invalidates: invalidates,
            ..Default::default()
        };
        for kind in [
            PolicyKind::Lazy,
            PolicyKind::ScFixed { capacity: 23 },
            PolicyKind::Atlas { size: 8 },
            PolicyKind::Eager,
        ] {
            let opts = ReplayOptions::with_parallelism(host);
            let sync = run_policy_with(
                &ftr,
                &kind,
                &RunConfig {
                    machine,
                    flush_path: FlushPath::Sync,
                },
                &opts,
            );
            let pipe = run_policy_with(
                &ftr,
                &kind,
                &RunConfig {
                    machine,
                    flush_path: FlushPath::Pipelined,
                },
                &opts,
            );
            assert_eq!(
                sync.flushes(),
                pipe.flushes(),
                "{} {cache_mode}: flush counts must be bit-identical across paths",
                kind.label()
            );
            assert_eq!(sync.stores, pipe.stores);
            let speedup = sync.cycles as f64 / pipe.cycles as f64;
            ft.row(vec![
                kind.label().to_string(),
                cache_mode.to_string(),
                sync.cycles.to_string(),
                pipe.cycles.to_string(),
                format!("{speedup:.2}x"),
                sync.flushes().to_string(),
            ]);
            for (path, rep) in [(FlushPath::Sync, &sync), (FlushPath::Pipelined, &pipe)] {
                frecords.push(format!(
                    "    {{\"policy\": {}, \"cache_mode\": \"{cache_mode}\", \
                     \"flush_path\": \"{}\", \"cycles\": {}, \
                     \"speedup_vs_sync\": {:.4}, \"flushes\": {}}}",
                    json_str(kind.label()),
                    path.label(),
                    rep.cycles,
                    sync.cycles as f64 / rep.cycles as f64,
                    rep.flushes()
                ));
            }
        }
    }
    let json = format!(
        "{{\n  \"experiment\": \"replay_throughput\",\n  \"trace_threads\": 8,\n  \
         \"stores\": {stores},\n  \"host_parallelism\": {host},\n  \
         \"bit_identical\": true,\n  \"results\": [\n{}\n  ],\n  \
         \"flush_path_results\": [\n{}\n  ]\n}}\n",
        records.join(",\n"),
        frecords.join(",\n")
    );
    if let Err(e) = std::fs::write("BENCH_replay.json", &json) {
        eprintln!("warning: could not write BENCH_replay.json: {e}");
    }
    vec![t, ft]
}

/// Crash-point fuzz matrix: every policy × every crash adversary ×
/// `seeds` deterministic programs, a crash injected at every micro-step
/// of each, recovery checked against the atomicity oracle. Returns the
/// per-cell table, the total schedule count, and whether all passed.
fn crash_matrix(seeds: u64) -> (Table, u64, bool) {
    let cfg = CrashFuzzConfig::default();
    let policies = [
        PolicyKind::Eager,
        PolicyKind::Lazy,
        PolicyKind::Atlas { size: 8 },
        PolicyKind::ScFixed { capacity: 4 },
        PolicyKind::ScAdaptive(AdaptiveConfig {
            burst_len: 16,
            ..Default::default()
        }),
        PolicyKind::Best,
    ];
    let mut t = Table::new(
        &format!(
            "Crash-point matrix: {} FASEs/program, {seeds} seeds, crash at every micro-step",
            cfg.fases
        ),
        &[
            "policy",
            "mode",
            "clients",
            "seeds",
            "schedules",
            "failures",
            "result",
        ],
    );
    let mut total = 0u64;
    let mut all_ok = true;
    for kind in &policies {
        for mode_name in ["strict", "all-in-flight", "random"] {
            // clients > 1 sweeps the concurrent submission path: each
            // FASE is a cross-client group commit (a smaller program,
            // since per-FASE step mass grows with the merge width).
            for clients in [1usize, 4] {
                let cell_cfg = if clients == 1 {
                    cfg.clone()
                } else {
                    CrashFuzzConfig {
                        fases: 3,
                        stores_per_fase: 4,
                        clients,
                        ..cfg.clone()
                    }
                };
                let mut schedules = 0u64;
                let mut failures = 0u64;
                for seed in 0..seeds {
                    let mode = match mode_name {
                        "strict" => CrashMode::StrictDurableOnly,
                        "all-in-flight" => CrashMode::AllInFlightLands,
                        _ => CrashMode::random(0.5, 0.5, seed),
                    };
                    let r = crash_fuzz(kind, &mode, seed, &cell_cfg);
                    schedules += r.schedules;
                    failures += r.failure_count;
                    if let Some(f) = r.failures.first() {
                        eprintln!(
                            "FAIL {} {mode_name} clients {clients} seed {seed} step {}: {}",
                            kind.label(),
                            f.step,
                            f.detail
                        );
                    }
                }
                total += schedules;
                all_ok &= failures == 0;
                t.row(vec![
                    kind.label().to_string(),
                    mode_name.to_string(),
                    clients.to_string(),
                    seeds.to_string(),
                    schedules.to_string(),
                    failures.to_string(),
                    if failures == 0 { "pass" } else { "FAIL" }.to_string(),
                ]);
            }
        }
    }
    (t, total, all_ok)
}

/// `repro tree-crash [--seeds N]` — the CI smoke form of
/// `tests/tree_crash.rs`: deterministic programs of committed CoW
/// transactions per seed, a crash injected at strided micro-steps under
/// all three adversaries on both flush paths, recovery via
/// `Tree::reopen_from_image`, and the committed-prefix oracle — the
/// recovered tree must equal the state after a whole number of
/// committed transactions. Returns the per-cell table, the total
/// recovery count, and whether all held.
fn tree_crash_matrix(seeds: u64) -> (Table, u64, bool) {
    use nvcache_pmem::CrashPlan;
    use nvcache_treestore::{Tree, TreeConfig};
    fn mix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    // one txn = (key, Some(value-tag)) puts and (key, None) deletes
    type Txn = Vec<(u64, Option<u64>)>;
    fn program(seed: u64, txns: usize, keys: u64) -> Vec<Txn> {
        let mut s = seed;
        (0..txns)
            .map(|_| {
                let n = 3 + (mix64(&mut s) % 6) as usize;
                (0..n)
                    .map(|_| {
                        let r = mix64(&mut s);
                        let key = mix64(&mut s) % keys;
                        if r.is_multiple_of(5) {
                            (key, None)
                        } else {
                            (key, Some(mix64(&mut s)))
                        }
                    })
                    .collect()
            })
            .collect()
    }
    fn apply(t: &mut nvcache_treestore::Tree, txn: &Txn) {
        t.begin();
        for (key, tag) in txn {
            match tag {
                Some(tag) => {
                    let len = 8 + (tag % 40) as usize;
                    let v: Vec<u8> = (0..len).map(|i| (tag >> (8 * (i % 8))) as u8).collect();
                    t.put(*key, &v).expect("put within capacity");
                }
                None => {
                    t.delete(*key).expect("delete");
                }
            }
        }
        t.commit();
    }
    let cfg_for = |pipelined| TreeConfig {
        data_len: 1 << 21,
        log_len: 1 << 18,
        policy: PolicyKind::ScFixed { capacity: 8 },
        pipelined,
    };
    let dump = |t: &nvcache_treestore::Tree| t.scan(None, 0, u64::MAX, usize::MAX);
    let mut t = Table::new(
        &format!("Tree crash-point matrix: 12 txns/program, {seeds} seeds, strided micro-steps"),
        &["path", "mode", "seeds", "recoveries", "failures", "result"],
    );
    let mut total = 0u64;
    let mut all_ok = true;
    for pipelined in [false, true] {
        let cfg = cfg_for(pipelined);
        let path = if pipelined { "pipelined" } else { "sync" };
        for mode_name in ["strict", "all-in-flight", "random"] {
            let mut recoveries = 0u64;
            let mut failures = 0u64;
            for seed in 0..seeds {
                let prog = program(0xa11ce + seed, 12, 32);
                let mut rec_tree = Tree::create(&cfg).expect("format tree heap");
                let mut commit_steps = vec![rec_tree.steps()];
                let mut snaps = vec![dump(&rec_tree)];
                for txn in &prog {
                    apply(&mut rec_tree, txn);
                    commit_steps.push(rec_tree.steps());
                    snaps.push(dump(&rec_tree));
                }
                let setup = commit_steps[0];
                let total_steps = *commit_steps.last().unwrap();
                let stride = ((total_steps - setup) / 12).max(1);
                let mut k = setup + 1;
                while k < total_steps {
                    let mode = match mode_name {
                        "strict" => CrashMode::StrictDurableOnly,
                        "all-in-flight" => CrashMode::AllInFlightLands,
                        _ => CrashMode::random(0.5, 0.5, seed),
                    };
                    let mut tr = Tree::create(&cfg).expect("format tree heap");
                    tr.arm_crash(CrashPlan { at_step: k, mode });
                    for txn in &prog {
                        apply(&mut tr, txn);
                    }
                    let image = tr.take_crash_image().expect("crash step within program");
                    recoveries += 1;
                    match Tree::reopen_from_image(image, &cfg) {
                        Ok(rec) => {
                            let committed = commit_steps.iter().rposition(|&c| c <= k).unwrap();
                            let got = dump(&rec);
                            if !(got == snaps[committed] || Some(&got) == snaps.get(committed + 1))
                            {
                                failures += 1;
                                eprintln!(
                                    "FAIL {path} {mode_name} seed {seed} step {k}: \
                                     torn transaction (neither txn {committed}'s \
                                     state nor txn {}'s)",
                                    committed + 1
                                );
                            }
                        }
                        Err(e) => {
                            failures += 1;
                            eprintln!("FAIL {path} {mode_name} seed {seed} step {k}: {e:?}");
                        }
                    }
                    k += stride;
                }
            }
            total += recoveries;
            all_ok &= failures == 0;
            t.row(vec![
                path.to_string(),
                mode_name.to_string(),
                seeds.to_string(),
                recoveries.to_string(),
                failures.to_string(),
                if failures == 0 { "pass" } else { "FAIL" }.to_string(),
            ]);
        }
    }
    (t, total, all_ok)
}

/// `repro telemetry-diff BASE NEW [--threshold T] [--schema-only]
/// [--json]` — own arg grammar (two positionals), so it is dispatched
/// before the generic experiment parser.
fn telemetry_diff(rest: Vec<String>) -> ! {
    let mut files: Vec<String> = Vec::new();
    let mut threshold = 0.2f64;
    let mut schema_only = false;
    let mut json = false;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| *t >= 0.0)
                    .unwrap_or_else(|| usage("missing or bad value for --threshold"));
            }
            "--schema-only" => schema_only = true,
            "--json" => json = true,
            "--help" | "-h" => usage(""),
            other if !other.starts_with('-') && files.len() < 2 => files.push(other.to_string()),
            other => usage(&format!("unexpected argument {other}")),
        }
    }
    if files.len() != 2 {
        usage("telemetry-diff needs exactly two files: BASE NEW");
    }
    let load = |path: &str| -> jsonv::Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        jsonv::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: {path} is not valid JSON: {e}");
            std::process::exit(2);
        })
    };
    let rep = diff::diff(&load(&files[0]), &load(&files[1]), threshold);
    let mut t = Table::new(
        &format!(
            "telemetry-diff: {} vs {} (threshold {:.0}%{})",
            files[0],
            files[1],
            threshold * 100.0,
            if schema_only { ", schema only" } else { "" }
        ),
        &["metric", "baseline", "new", "ratio", "verdict"],
    );
    for row in diff::report_rows(&rep) {
        t.row(row);
    }
    if json {
        println!("{}", t.to_json());
    } else {
        t.print();
    }
    let code = rep.exit_code(schema_only);
    eprintln!(
        "[telemetry-diff: {} schema errors, {} regressions ({} metrics) -> exit {code}]",
        rep.schema_errors.len(),
        rep.regressions.len(),
        rep.compared
    );
    std::process::exit(code);
}

/// Build the KV server the network subcommands share: SC-adaptive
/// policy, pipelined flush path, group commit on.
fn net_kv_server(shards: usize) -> std::sync::Arc<nvcache_kvstore::KvServer> {
    use nvcache_kvstore::{AdaptConfig, KvConfig, KvServer, ServerConfig, ShardConfig};
    std::sync::Arc::new(KvServer::new(
        &KvConfig {
            shards,
            shard: ShardConfig {
                buckets: 512,
                data_len: 1 << 21,
                log_len: 1 << 17,
                policy: PolicyKind::ScAdaptive(AdaptiveConfig {
                    external_control: true,
                    ..Default::default()
                }),
                adapt: Some(AdaptConfig::default()),
                pipelined: true,
            },
        },
        &ServerConfig::default(),
    ))
}

/// `repro net-smoke [--connections N] [--depth D] [--ops N]` — the CI
/// acceptance sweep for the network serving path: an in-process
/// transport, an open-loop pipelined loadgen with ack tracking, then a
/// crash + recover and the ack-after-commit audit. Exits nonzero if any
/// acked write is missing, stale, or corrupt after recovery.
fn net_smoke(rest: Vec<String>) -> ! {
    use nvcache_kvstore::{run_net, verify_acked, InProcTransport, NetLoadConfig, NetServer};
    let (mut connections, mut depth, mut ops) = (8usize, 4usize, 2_000u64);
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| usage(&format!("missing or bad value for {name}")))
        };
        match a.as_str() {
            "--connections" => connections = num("--connections") as usize,
            "--depth" => depth = num("--depth") as usize,
            "--ops" => ops = num("--ops"),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unexpected argument {other}")),
        }
    }
    let kv = net_kv_server(2);
    let transport = InProcTransport::new();
    let srv = NetServer::start(&transport, "inproc", std::sync::Arc::clone(&kv))
        .expect("in-process listener");
    let rep = run_net(
        &transport,
        "inproc",
        &NetLoadConfig {
            connections,
            pipeline_depth: depth,
            ops_per_conn: ops,
            keys: 512,
            track_acks: true,
            target_ops_per_sec: 100_000.0,
            ..Default::default()
        },
    );
    let frames_in = srv
        .stats()
        .frames_in
        .load(std::sync::atomic::Ordering::Relaxed);
    srv.shutdown();
    let answered_all = rep.ops_answered == rep.ops_sent;
    // the audit only means something after the server actually died:
    // drop every non-durable line, recover, then check the acks
    kv.crash_and_recover_all(&CrashMode::StrictDurableOnly);
    let audit = verify_acked(&kv, &rep);
    kv.close();
    let snap = &rep.snapshot;
    let mut merged = nvcache_telemetry::Histogram::new();
    merged.merge(snap.hist(nvcache_telemetry::HistId::KvGetNs));
    merged.merge(snap.hist(nvcache_telemetry::HistId::KvPutNs));
    let (p50, p99, p999) = merged.percentiles();
    eprintln!(
        "[net-smoke: {connections} conns x depth {depth}, {}/{} answered, \
         {} frames in, {:.0} ops/s, p50/p99/p999 {p50}/{p99}/{p999} ns]",
        rep.ops_answered,
        rep.ops_sent,
        frames_in,
        rep.ops_per_sec(),
    );
    match (&audit, answered_all) {
        (Ok(()), true) => {
            eprintln!("[net-smoke: every acked write survived crash + recover]");
            std::process::exit(0);
        }
        (Ok(()), false) => {
            eprintln!(
                "error: {} requests went unanswered",
                rep.ops_sent - rep.ops_answered
            );
            std::process::exit(1);
        }
        (Err(e), _) => {
            eprintln!("error: ack-after-commit violated: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro kv-serve [--addr HOST:PORT]` — serve the framed wire protocol
/// over TCP until killed. Address precedence: `--addr` > `NVKV_ADDR` >
/// `NVKV_PORT` > the built-in default.
fn kv_serve(rest: Vec<String>) -> ! {
    use nvcache_kvstore::{listen_addr, NetServer, TcpTransport};
    let mut addr_cli: Option<String> = None;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr_cli = Some(it.next().unwrap_or_else(|| usage("missing --addr"))),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unexpected argument {other}")),
        }
    }
    let addr = listen_addr(addr_cli.as_deref());
    let kv = net_kv_server(4);
    let transport = TcpTransport;
    let srv = NetServer::start(&transport, &addr, std::sync::Arc::clone(&kv)).unwrap_or_else(|e| {
        eprintln!("error: cannot listen on {addr}: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "[kv-serve: listening on {} — kill to stop]",
        srv.local_addr()
    );
    loop {
        std::thread::park();
    }
}

/// `repro kv-load [--addr HOST:PORT] [--connections N] [--depth D]
/// [--ops N] [--rate R]` — open-loop TCP loadgen against a running
/// `kv-serve`, reporting throughput and intended-arrival percentiles.
fn kv_load(rest: Vec<String>) -> ! {
    use nvcache_kvstore::{listen_addr, run_net, NetLoadConfig, TcpTransport};
    let mut addr_cli: Option<String> = None;
    let (mut connections, mut depth, mut ops) = (8usize, 4usize, 10_000u64);
    let mut rate = 50_000.0f64;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr_cli = Some(it.next().unwrap_or_else(|| usage("missing --addr"))),
            "--connections" | "--depth" | "--ops" | "--rate" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage(&format!("missing value for {a}")));
                match a.as_str() {
                    "--connections" => {
                        connections = v.parse().unwrap_or_else(|_| usage("bad --connections"))
                    }
                    "--depth" => depth = v.parse().unwrap_or_else(|_| usage("bad --depth")),
                    "--ops" => ops = v.parse().unwrap_or_else(|_| usage("bad --ops")),
                    _ => rate = v.parse().unwrap_or_else(|_| usage("bad --rate")),
                }
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unexpected argument {other}")),
        }
    }
    let addr = listen_addr(addr_cli.as_deref());
    let rep = run_net(
        &TcpTransport,
        &addr,
        &NetLoadConfig {
            connections,
            pipeline_depth: depth,
            ops_per_conn: ops,
            target_ops_per_sec: rate,
            ..Default::default()
        },
    );
    let mut merged = nvcache_telemetry::Histogram::new();
    merged.merge(rep.snapshot.hist(nvcache_telemetry::HistId::KvGetNs));
    merged.merge(rep.snapshot.hist(nvcache_telemetry::HistId::KvPutNs));
    let (p50, p99, p999) = merged.percentiles();
    println!(
        "{{\"connections\": {connections}, \"pipeline_depth\": {depth}, \
         \"ops_sent\": {}, \"ops_answered\": {}, \"rejected\": {}, \
         \"throughput_ops_s\": {:.0}, \
         \"p50_ns\": {p50}, \"p99_ns\": {p99}, \"p999_ns\": {p999}}}",
        rep.ops_sent,
        rep.ops_answered,
        rep.rejected,
        rep.ops_per_sec(),
    );
    std::process::exit(if rep.ops_answered == rep.ops_sent {
        0
    } else {
        1
    });
}

fn main() {
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        Some("telemetry-diff") => telemetry_diff(argv.collect()),
        Some("net-smoke") => net_smoke(argv.collect()),
        Some("kv-serve") => kv_serve(argv.collect()),
        Some("kv-load") => kv_load(argv.collect()),
        _ => {}
    }
    let args = parse_args();
    if args.experiment == "crash-matrix" {
        let start = std::time::Instant::now();
        let (t, schedules, ok) = crash_matrix(args.seeds);
        if args.json {
            println!("{}", t.to_json());
        } else {
            t.print();
        }
        eprintln!(
            "[crash-matrix: {schedules} schedules, {} in {:.1}s]",
            if ok {
                "all consistent"
            } else {
                "ORACLE VIOLATED"
            },
            start.elapsed().as_secs_f64()
        );
        std::process::exit(if ok { 0 } else { 1 });
    }
    if args.experiment == "tree-crash" {
        let start = std::time::Instant::now();
        let (t, recoveries, ok) = tree_crash_matrix(args.seeds);
        if args.json {
            println!("{}", t.to_json());
        } else {
            t.print();
        }
        eprintln!(
            "[tree-crash: {recoveries} recoveries, {} in {:.1}s]",
            if ok {
                "all committed-prefix"
            } else {
                "ORACLE VIOLATED"
            },
            start.elapsed().as_secs_f64()
        );
        std::process::exit(if ok { 0 } else { 1 });
    }
    if args.telemetry.is_some() {
        telemetry::enable();
    }
    let start = std::time::Instant::now();
    let results = run_one(&args.experiment, args.scale, &args.threads, args.smoke);
    for t in &results {
        if args.json {
            println!("{}", t.to_json());
        } else {
            t.print();
        }
    }
    if let Some(path) = &args.telemetry {
        let runs = telemetry::drain();
        if runs.is_empty() {
            eprintln!(
                "warning: --telemetry captured no runs \
                 ({} performs no timed replays)",
                args.experiment
            );
        }
        let t = telemetry_table(&runs);
        if args.json {
            println!("{}", t.to_json());
        } else {
            t.print();
        }
        let envelope = telemetry_envelope(&args.experiment, args.scale, &runs);
        match std::fs::write(path, &envelope) {
            Ok(()) => eprintln!("[telemetry: {} runs -> {path}]", runs.len()),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
    eprintln!(
        "[{} at scale {} in {:.1}s]",
        args.experiment,
        args.scale,
        start.elapsed().as_secs_f64()
    );
}
