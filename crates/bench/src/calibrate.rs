//! Machine-model calibration shared by all experiments.
//!
//! Absolute cycle costs are arbitrary; what is calibrated is the set of
//! *ratios* the paper's conclusions rest on (EXPERIMENTS.md §Calibration):
//! flush service time vs per-store compute (drives ER's ~22× Table I
//! slowdown), the async queue depth (how much overlap mid-FASE flushes
//! get), and a contention term that reproduces the rising
//! BEST L1 miss ratios of Table IV as thread counts grow.

use nvcache_cachesim::MachineConfig;
use nvcache_core::adaptive::AdaptiveConfig;
use nvcache_locality::{lru_mrc, select_cache_size, KneeConfig};
use nvcache_trace::Trace;

/// Calibration constants.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Cross-thread/OS contention factor per log2(threads)
    /// (probability an L1 line was evicted externally).
    pub contention_per_log2_thread: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            contention_per_log2_thread: 0.035,
        }
    }
}

/// The hardware context configuration for a run with `threads` threads.
pub fn machine_for(threads: usize) -> MachineConfig {
    let cal = Calibration::default();
    let t = threads.max(1) as f64;
    MachineConfig {
        contention_miss_prob: cal.contention_per_log2_thread * t.log2(),
        ..MachineConfig::default()
    }
}

/// Offline profiling (the paper's SC-offline): exact MRC of the whole
/// FASE-renamed write trace, knee-selected capacity.
pub fn offline_capacity(trace: &Trace, knee: &KneeConfig) -> usize {
    // profile thread 0 (threads are homogeneous in these workloads)
    let renamed = trace.threads[0].renamed_writes();
    let mrc = lru_mrc(&renamed, knee.max_size);
    select_cache_size(&mrc, knee)
}

/// The online adaptive configuration for a trace: the paper uses a 64M
/// write burst at full scale; proportionally, an eighth of the (scaled)
/// trace, floored so tiny traces still complete a burst.
pub fn adaptive_config_for(trace: &Trace) -> AdaptiveConfig {
    let writes = trace.threads.first().map(|t| t.write_count()).unwrap_or(0);
    AdaptiveConfig {
        burst_len: (writes / 8).clamp(512, 1 << 26),
        ..AdaptiveConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvcache_trace::synth::{cyclic, SynthOpts};

    #[test]
    fn contention_grows_with_threads() {
        assert_eq!(machine_for(1).contention_miss_prob, 0.0);
        assert!(machine_for(8).contention_miss_prob > 0.0);
        assert!(machine_for(32).contention_miss_prob > machine_for(8).contention_miss_prob);
    }

    #[test]
    fn offline_capacity_finds_working_set() {
        let tr = cyclic(23, 2000, &SynthOpts::default());
        let cap = offline_capacity(&tr, &KneeConfig::default());
        assert_eq!(cap, 23);
    }

    #[test]
    fn adaptive_burst_is_proportional_and_bounded() {
        let tr = cyclic(10, 10_000, &SynthOpts::default());
        let cfg = adaptive_config_for(&tr);
        assert_eq!(cfg.burst_len, 12_500);
        let tiny = cyclic(4, 10, &SynthOpts::default());
        assert_eq!(adaptive_config_for(&tiny).burst_len, 512);
    }
}
