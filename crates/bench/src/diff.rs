//! `repro telemetry-diff` — structural and threshold comparison of two
//! harness JSON artifacts (`BENCH_kv.json`, `BENCH_replay.json`, or a
//! `--telemetry` envelope).
//!
//! Two verdict classes, reported separately because they gate
//! differently in CI:
//!
//! - **schema errors** — a key present on one side only, a type change,
//!   an array length change, or an identity field (strings, booleans)
//!   whose value moved. These always fail: they mean the artifact's
//!   shape drifted and downstream parsers/gates would break.
//! - **regressions** — a known wall-clock metric moved past the
//!   threshold in its bad direction (throughput down, latency up).
//!   These fail unless the caller asked for `--schema-only` (CI runs
//!   schema-only: smoke runs on shared runners are too noisy to gate on
//!   wall-clock).
//!
//! Metrics are matched positionally: the harness emits its result
//! arrays in a fixed grid order, and the identity-field check catches
//! any misalignment (a reordered grid shows up as `"mix": "A" != "B"`,
//! not as a bogus regression).

use crate::jsonv::Json;

/// Direction of "bad" for a numeric leaf, keyed by field name.
fn direction(key: &str) -> Option<Direction> {
    match key {
        // higher is better — regression when the new value drops
        "throughput_ops_s" | "writes_per_sec" | "speedup_vs_sync" | "speedup_vs_seq"
        | "speedup_vs_dyn" => Some(Direction::HigherBetter),
        // lower is better — regression when the new value climbs
        "p50_ns" | "p99_ns" | "p999_ns" | "secs" | "cycles" => Some(Direction::LowerBetter),
        _ => None,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    HigherBetter,
    LowerBetter,
}

/// One thresholded metric that moved the wrong way.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Dotted path of the metric (`results[3].p99_ns`).
    pub path: String,
    /// Baseline value.
    pub base: f64,
    /// New value.
    pub new: f64,
    /// `new / base` (∞ when the baseline is 0).
    pub ratio: f64,
}

/// The full comparison outcome.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Structural drift — always a failure.
    pub schema_errors: Vec<String>,
    /// Thresholded wall-clock metrics that moved the wrong way.
    pub regressions: Vec<Regression>,
    /// Numeric leaves compared against a threshold.
    pub compared: usize,
}

impl DiffReport {
    /// Suggested process exit code: 2 for schema drift (even under
    /// `--schema-only`), 1 for regressions, 0 when clean.
    pub fn exit_code(&self, schema_only: bool) -> i32 {
        if !self.schema_errors.is_empty() {
            2
        } else if !schema_only && !self.regressions.is_empty() {
            1
        } else {
            0
        }
    }
}

/// Compare `new` against `base`. `threshold` is the tolerated relative
/// move of each thresholded metric (0.2 = 20%).
pub fn diff(base: &Json, new: &Json, threshold: f64) -> DiffReport {
    let mut rep = DiffReport::default();
    walk(base, new, "$", threshold, &mut rep);
    rep
}

fn walk(base: &Json, new: &Json, path: &str, threshold: f64, rep: &mut DiffReport) {
    match (base, new) {
        (Json::Obj(bm), Json::Obj(nm)) => {
            for (k, bv) in bm {
                match new.get(k) {
                    Some(nv) => walk(bv, nv, &format!("{path}.{k}"), threshold, rep),
                    // a null on the only side that has the key is the
                    // same statement as the key's absence: "no value".
                    // Columns added after a baseline was captured (e.g.
                    // speedup_vs_unbatched on legacy rows) emit null —
                    // that must not read as schema drift.
                    None if matches!(bv, Json::Null) => {}
                    None => rep
                        .schema_errors
                        .push(format!("{path}.{k}: missing in new artifact")),
                }
            }
            for (k, nv) in nm {
                if base.get(k).is_none() && !matches!(nv, Json::Null) {
                    rep.schema_errors
                        .push(format!("{path}.{k}: missing in baseline"));
                }
            }
        }
        (Json::Arr(bv), Json::Arr(nv)) => {
            if bv.len() != nv.len() {
                rep.schema_errors.push(format!(
                    "{path}: array length {} -> {}",
                    bv.len(),
                    nv.len()
                ));
            }
            for (i, (b, n)) in bv.iter().zip(nv).enumerate() {
                walk(b, n, &format!("{path}[{i}]"), threshold, rep);
            }
        }
        (Json::Num(b), Json::Num(n)) => {
            let key = path.rsplit('.').next().unwrap_or(path);
            if let Some(dir) = direction(key) {
                rep.compared += 1;
                let bad = match dir {
                    Direction::HigherBetter => *n < *b * (1.0 - threshold),
                    Direction::LowerBetter => *n > *b * (1.0 + threshold),
                };
                if bad {
                    rep.regressions.push(Regression {
                        path: path.to_string(),
                        base: *b,
                        new: *n,
                        ratio: if *b == 0.0 { f64::INFINITY } else { *n / *b },
                    });
                }
            }
        }
        (Json::Str(b), Json::Str(n)) => {
            // identity fields: a moved label means the grids are
            // misaligned, which would turn every metric diff into noise
            if b != n {
                rep.schema_errors
                    .push(format!("{path}: \"{b}\" != \"{n}\""));
            }
        }
        (Json::Bool(b), Json::Bool(n)) => {
            if b != n {
                rep.schema_errors.push(format!("{path}: {b} != {n}"));
            }
        }
        (Json::Null, Json::Null) => {}
        // null <-> number is a legitimate run-to-run difference for
        // optional cells (a controller that fired in one run and not
        // the other), not schema drift
        (Json::Null, Json::Num(_)) | (Json::Num(_), Json::Null) => {}
        (b, n) => {
            rep.schema_errors.push(format!(
                "{path}: type {} -> {}",
                b.type_name(),
                n.type_name()
            ));
        }
    }
}

/// Render the report as table rows (`metric`, `baseline`, `new`,
/// `ratio`, `verdict`) for the harness's text table.
pub fn report_rows(rep: &DiffReport) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for e in &rep.schema_errors {
        rows.push(vec![
            e.clone(),
            "-".into(),
            "-".into(),
            "-".into(),
            "SCHEMA".into(),
        ]);
    }
    for r in &rep.regressions {
        rows.push(vec![
            r.path.clone(),
            format!("{:.0}", r.base),
            format!("{:.0}", r.new),
            format!("{:.2}x", r.ratio),
            "REGRESSED".into(),
        ]);
    }
    if rows.is_empty() {
        rows.push(vec![
            format!("{} metrics compared", rep.compared),
            "-".into(),
            "-".into(),
            "-".into(),
            "pass".into(),
        ]);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonv::parse;

    fn kv(th: f64, p99: f64) -> Json {
        parse(&format!(
            r#"{{"experiment": "kv_ycsb", "results": [
                 {{"mix": "A", "policy": "SC", "throughput_ops_s": {th},
                   "p99_ns": {p99}, "windows_to_knee": [1, 2]}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_artifacts_pass() {
        let rep = diff(&kv(100_000.0, 4096.0), &kv(100_000.0, 4096.0), 0.2);
        assert!(rep.schema_errors.is_empty());
        assert!(rep.regressions.is_empty());
        assert_eq!(rep.compared, 2);
        assert_eq!(rep.exit_code(false), 0);
    }

    #[test]
    fn noise_within_threshold_passes() {
        let rep = diff(&kv(100_000.0, 4096.0), &kv(85_000.0, 4900.0), 0.2);
        assert!(rep.regressions.is_empty(), "{:?}", rep.regressions);
    }

    #[test]
    fn throughput_drop_past_threshold_regresses() {
        let rep = diff(&kv(100_000.0, 4096.0), &kv(70_000.0, 4096.0), 0.2);
        assert_eq!(rep.regressions.len(), 1);
        assert!(rep.regressions[0].path.ends_with("throughput_ops_s"));
        assert_eq!(rep.exit_code(false), 1);
        assert_eq!(rep.exit_code(true), 0, "--schema-only ignores regressions");
    }

    #[test]
    fn latency_climb_past_threshold_regresses() {
        let rep = diff(&kv(100_000.0, 4096.0), &kv(100_000.0, 9000.0), 0.2);
        assert_eq!(rep.regressions.len(), 1);
        assert!(rep.regressions[0].path.ends_with("p99_ns"));
        assert!((rep.regressions[0].ratio - 9000.0 / 4096.0).abs() < 1e-9);
    }

    #[test]
    fn faster_is_never_a_regression() {
        let rep = diff(&kv(100_000.0, 4096.0), &kv(300_000.0, 100.0), 0.2);
        assert!(rep.regressions.is_empty());
    }

    #[test]
    fn missing_and_extra_keys_are_schema_errors() {
        let base = parse(r#"{"a": 1, "p99_ns": 2}"#).unwrap();
        let new = parse(r#"{"a": 1, "b": 3}"#).unwrap();
        let rep = diff(&base, &new, 0.2);
        assert_eq!(rep.schema_errors.len(), 2);
        assert_eq!(
            rep.exit_code(true),
            2,
            "schema drift fails even schema-only"
        );
    }

    #[test]
    fn type_and_identity_changes_are_schema_errors() {
        let base = parse(r#"{"mix": "A", "x": 1, "arr": [1, 2]}"#).unwrap();
        let new = parse(r#"{"mix": "B", "x": "one", "arr": [1]}"#).unwrap();
        let rep = diff(&base, &new, 0.2);
        let msgs = rep.schema_errors.join("\n");
        assert!(msgs.contains("$.mix"), "{msgs}");
        assert!(msgs.contains("$.x: type number -> string"), "{msgs}");
        assert!(msgs.contains("$.arr: array length 2 -> 1"), "{msgs}");
    }

    /// A column added after the baseline was captured appears as null
    /// on the side that has it and is absent on the other — "no value"
    /// either way, so neither orientation is schema drift. A *real*
    /// value opposite an absent key still is.
    #[test]
    fn null_against_absent_key_is_equal_not_drift() {
        let base = parse(r#"{"mix": "A", "throughput_ops_s": 1.0}"#).unwrap();
        let new = parse(r#"{"mix": "A", "throughput_ops_s": 1.0, "speedup_vs_unbatched": null}"#)
            .unwrap();
        let rep = diff(&base, &new, 0.2);
        assert!(rep.schema_errors.is_empty(), "{:?}", rep.schema_errors);
        assert_eq!(rep.exit_code(true), 0);

        // symmetric: baseline has the null, new artifact dropped the key
        let rep = diff(&new, &base, 0.2);
        assert!(rep.schema_errors.is_empty(), "{:?}", rep.schema_errors);

        // a concrete value against an absent key is still drift
        let newer =
            parse(r#"{"mix": "A", "throughput_ops_s": 1.0, "speedup_vs_unbatched": 2.5}"#).unwrap();
        let rep = diff(&base, &newer, 0.2);
        assert_eq!(rep.schema_errors.len(), 1);
        assert_eq!(rep.exit_code(true), 2);
    }

    #[test]
    fn optional_cells_may_toggle_null() {
        let base = parse(r#"{"chosen_capacity": [24, null]}"#).unwrap();
        let new = parse(r#"{"chosen_capacity": [null, 25]}"#).unwrap();
        let rep = diff(&base, &new, 0.2);
        assert!(rep.schema_errors.is_empty(), "{:?}", rep.schema_errors);
    }
}
