//! Ablations beyond the paper (DESIGN.md §5): each isolates one design
//! choice of the adaptive software cache.

use super::{sc_online, timed};
use crate::calibrate::machine_for;
use crate::pool::par_map;
use crate::report::{ratio, Table};
use nvcache_core::{flush_stats, grouped_capacities, run_policy, PolicyKind, RunConfig};
use nvcache_locality::{knee::knees, lru_mrc, reuse_all_k, select_cache_size, KneeConfig, Mrc};
use nvcache_trace::synth::{phased, SynthOpts};
use nvcache_workloads::registry::splash2_workloads;

/// Knee-selection strategy ablation: the paper picks the *largest*
/// candidate knee; compare against picking the steepest knee, and fixed
/// sizes 8 (Atlas-equivalent capacity) and 50 (the bound).
pub fn ablation_knee(scale: f64) -> Table {
    let mut t = Table::new(
        "Ablation: knee strategy → flush ratio",
        &[
            "program",
            "largest-knee",
            "steepest-knee",
            "fixed-8",
            "fixed-50",
        ],
    );
    let cfg = KneeConfig::default();
    for w in splash2_workloads(scale) {
        let tr = w.trace(1);
        let renamed = tr.threads[0].renamed_writes();
        let mrc = lru_mrc(&renamed, cfg.max_size);
        let largest = select_cache_size(&mrc, &cfg);
        let steepest = {
            let ks = knees(&mrc, &cfg);
            let g = mrc.gradient();
            ks.iter()
                .copied()
                .max_by(|&a, &b| g[a].partial_cmp(&g[b]).unwrap())
                .unwrap_or(cfg.max_size)
        };
        let fr = |cap: usize| {
            ratio(flush_stats(&tr, &PolicyKind::ScFixed { capacity: cap }).flush_ratio())
        };
        t.row(vec![
            w.name().into(),
            format!("{} ({largest})", fr(largest)),
            format!("{} ({steepest})", fr(steepest)),
            fr(8),
            fr(50),
        ]);
    }
    t
}

/// Atlas table-size ablation: does a bigger direct-mapped table close
/// the gap to the fully-associative software cache?
pub fn ablation_atlas(scale: f64) -> Table {
    let sizes = [4usize, 8, 16, 32, 64];
    let mut headers = vec!["program".to_string(), "SC(online)".to_string()];
    headers.extend(sizes.iter().map(|s| format!("AT{s}")));
    let mut t = Table::new(
        "Ablation: Atlas table size → flush ratio",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for row in par_map(&splash2_workloads(scale), |w| {
        let tr = w.trace(1);
        let mut row = vec![
            w.name().to_string(),
            ratio(flush_stats(&tr, &sc_online(&tr)).flush_ratio()),
        ];
        for &s in &sizes {
            row.push(ratio(
                flush_stats(&tr, &PolicyKind::Atlas { size: s }).flush_ratio(),
            ));
        }
        row
    }) {
        t.row(row);
    }
    t
}

/// Maximum-capacity bound ablation (the paper bounds SC at 50 to limit
/// FASE-end stalls): flush ratio vs simulated cycles across bounds.
pub fn ablation_bound(scale: f64) -> Table {
    let bounds = [10usize, 25, 50, 100, 200];
    let mut headers = vec!["program".to_string()];
    for b in bounds {
        headers.push(format!("bound={b}"));
    }
    let mut t = Table::new(
        "Ablation: max-capacity bound → cycles (M) [chosen size]",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for row in par_map(&splash2_workloads(scale), |w| {
        let tr = w.trace(1);
        let mut row = vec![w.name().to_string()];
        for &b in &bounds {
            let cfg = KneeConfig {
                max_size: b,
                ..Default::default()
            };
            let renamed = tr.threads[0].renamed_writes();
            let cap = select_cache_size(&lru_mrc(&renamed, b), &cfg);
            let r = timed(&tr, &PolicyKind::ScFixed { capacity: cap });
            row.push(format!("{:.2} [{cap}]", r.cycles as f64 / 1e6));
        }
        row
    }) {
        t.row(row);
    }
    t
}

/// Burst-length ablation: how much sampling does the online MRC need
/// before it picks the same size as offline profiling?
pub fn ablation_burst(scale: f64) -> Table {
    let fracs = [64usize, 16, 4, 1]; // trace/64 … full trace
    let mut headers = vec!["program".to_string(), "offline".to_string()];
    for f in fracs {
        headers.push(format!("1/{f}"));
    }
    let mut t = Table::new(
        "Ablation: burst length → selected size (MAE vs exact MRC)",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let cfg = KneeConfig::default();
    for w in splash2_workloads(scale) {
        let tr = w.trace(1);
        let renamed = tr.threads[0].renamed_writes();
        let exact = lru_mrc(&renamed, cfg.max_size);
        let offline = select_cache_size(&exact, &cfg);
        let mut row = vec![w.name().to_string(), offline.to_string()];
        for &f in &fracs {
            let take = (renamed.len() / f).max(32);
            let burst = &renamed[..take.min(renamed.len())];
            let mrc = Mrc::from_reuse(&reuse_all_k(burst), cfg.max_size);
            let sel = select_cache_size(&mrc, &cfg);
            row.push(format!("{sel} ({:.3})", mrc.mean_abs_error(&exact)));
        }
        t.row(row);
    }
    t
}

/// `clflush` vs `clwb` ablation (paper Section II-A discusses both but
/// Atlas — and the evaluation — use `clflush`): how much of each
/// policy's cost is the *indirect* invalidation penalty that `clwb`
/// avoids?
pub fn ablation_clwb(scale: f64) -> Table {
    let mut t = Table::new(
        "Ablation: clflush vs clwb → cycles (M), and clwb's saving",
        &[
            "program",
            "AT/clflush",
            "AT/clwb",
            "SC/clflush",
            "SC/clwb",
            "SC saving",
        ],
    );
    for row in par_map(&splash2_workloads(scale), |w| {
        let tr = w.trace(1);
        let run = |kind: &PolicyKind, invalidates: bool| {
            let mut cfg = RunConfig {
                machine: machine_for(1),
                ..Default::default()
            };
            cfg.machine.flush_invalidates = invalidates;
            run_policy(&tr, kind, &cfg).cycles as f64 / 1e6
        };
        let at = PolicyKind::Atlas { size: 8 };
        let sc = sc_online(&tr);
        let at_cl = run(&at, true);
        let at_wb = run(&at, false);
        let sc_cl = run(&sc, true);
        let sc_wb = run(&sc, false);
        vec![
            w.name().into(),
            format!("{at_cl:.2}"),
            format!("{at_wb:.2}"),
            format!("{sc_cl:.2}"),
            format!("{sc_wb:.2}"),
            format!("{:.1}%", (1.0 - sc_wb / sc_cl) * 100.0),
        ]
    }) {
        t.row(row);
    }
    t
}

/// Re-adaptation ablation (paper future work): a workload whose working
/// set changes mid-run. One-shot analysis (the paper's infinite
/// hibernation) locks in the first phase's knee; periodic re-adaptation
/// (finite hibernation) follows the change.
pub fn ablation_phased(scale: f64) -> Table {
    let n = ((200_000.0 * scale) as usize).max(5_000);
    let opts = SynthOpts {
        writes_per_fase: 1000,
        work_per_write: 2,
        ..Default::default()
    };
    let mut t = Table::new(
        "Ablation: phase change (wss 8 → 32) → flush ratio",
        &["strategy", "flush ratio", "capacity trajectory"],
    );
    let tr = phased(8, n, 32, n, &opts);
    let burst = n / 8;
    for (name, hibernation) in [
        ("one-shot (paper)", None),
        ("periodic (future work)", Some((n / 4) as u64)),
    ] {
        let cfg = nvcache_core::AdaptiveConfig {
            burst_len: burst,
            hibernation,
            ..Default::default()
        };
        let f = flush_stats(&tr, &PolicyKind::ScAdaptive(cfg.clone()));
        // reconstruct the capacity trajectory for display
        let mut p = nvcache_core::AdaptiveScPolicy::new(cfg);
        let mut out = Vec::new();
        for w in tr.threads[0].writes() {
            nvcache_core::PersistPolicy::on_store(&mut p, w, &mut out);
            out.clear();
        }
        t.row(vec![
            name.into(),
            ratio(f.flush_ratio()),
            format!("8 → {:?}", p.selections()),
        ]);
    }
    // oracle rows for reference
    for cap in [8usize, 32] {
        let f = flush_stats(&tr, &PolicyKind::ScFixed { capacity: cap });
        t.row(vec![
            format!("fixed-{cap}"),
            ratio(f.flush_ratio()),
            "-".into(),
        ]);
    }
    t
}

/// Thread-grouping ablation (paper future work): per-thread MRCs are
/// clustered; one analysis per group. Reports the group count and the
/// flush cost of group-shared capacities vs per-thread selections.
pub fn ablation_groups(scale: f64, threads: usize) -> Table {
    let mut t = Table::new(
        "Ablation: thread-grouped MRC analysis",
        &[
            "program",
            "threads",
            "groups",
            "per-thread ratio",
            "grouped ratio",
        ],
    );
    let cfg = KneeConfig::default();
    for row in par_map(&splash2_workloads(scale), |w| {
        let tr = w.trace(threads);
        let mrcs: Vec<Mrc> = tr
            .threads
            .iter()
            .map(|th| lru_mrc(&th.renamed_writes(), cfg.max_size))
            .collect();
        let grouped = grouped_capacities(&mrcs, &cfg, 0.02);
        let groups = nvcache_core::group_threads(&mrcs, &cfg, 0.02).len();
        // flush ratio with per-thread capacities vs grouped capacities:
        // replay each thread with its assigned capacity
        let ratio_with = |caps: &[usize]| {
            let mut flushes = 0u64;
            let mut stores = 0u64;
            for (tid, th) in tr.threads.iter().enumerate() {
                let single = nvcache_trace::Trace {
                    threads: vec![th.clone()],
                };
                let f = flush_stats(
                    &single,
                    &PolicyKind::ScFixed {
                        capacity: caps[tid].max(1),
                    },
                );
                flushes += f.flushes();
                stores += f.stores;
            }
            flushes as f64 / stores.max(1) as f64
        };
        let own: Vec<usize> = mrcs.iter().map(|m| select_cache_size(m, &cfg)).collect();
        vec![
            w.name().into(),
            threads.to_string(),
            groups.to_string(),
            ratio(ratio_with(&own)),
            ratio(ratio_with(&grouped)),
        ]
    }) {
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: f64 = 0.004;

    #[test]
    fn knee_ablation_shape() {
        let t = ablation_knee(TINY);
        assert_eq!(t.rows.len(), 7);
    }

    #[test]
    fn atlas_ablation_bigger_tables_do_not_hurt() {
        let t = ablation_atlas(TINY);
        for r in &t.rows {
            let at4: f64 = r[2].parse().unwrap();
            let at64: f64 = r[6].parse().unwrap();
            assert!(
                at64 <= at4 + 1e-6,
                "{}: AT64 {at64} should not exceed AT4 {at4}",
                r[0]
            );
        }
    }

    #[test]
    fn burst_ablation_selection_quality_converges() {
        use nvcache_workloads::registry::workload_by_name;
        let t = ablation_burst(TINY);
        let cfg = KneeConfig::default();
        for r in &t.rows {
            let w = workload_by_name(&r[0], TINY).unwrap();
            let tr = w.trace(1);
            let renamed = tr.threads[0].renamed_writes();
            let exact = lru_mrc(&renamed, cfg.max_size);
            let offline: usize = r[1].parse().unwrap();
            let full: usize = r
                .last()
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            // the full-trace timescale choice must be nearly as good as
            // the exact-MRC oracle choice (same criterion as Fig. 7,
            // with the conversion's ±1 size quantization allowed)
            let best_near = exact.mr(full).min(exact.mr(full + 1));
            assert!(
                best_near <= exact.mr(offline) + 0.05,
                "{}: mr({full}±1)={:.3} vs mr({offline})={:.3}",
                r[0],
                best_near,
                exact.mr(offline)
            );
        }
    }

    #[test]
    fn bound_ablation_runs() {
        let t = ablation_bound(TINY);
        assert_eq!(t.rows.len(), 7);
    }

    #[test]
    fn clwb_never_slower_than_clflush() {
        let t = ablation_clwb(TINY);
        for r in &t.rows {
            let cl: f64 = r[3].parse().unwrap();
            let wb: f64 = r[4].parse().unwrap();
            assert!(wb <= cl * 1.01, "{}: clwb {wb} vs clflush {cl}", r[0]);
        }
    }

    #[test]
    fn periodic_readaptation_beats_one_shot_on_phase_change() {
        let t = ablation_phased(0.05);
        let one: f64 = t.rows[0][1].parse().unwrap();
        let per: f64 = t.rows[1][1].parse().unwrap();
        assert!(
            per < one,
            "re-adaptation must win on a phase change: {per} vs {one}"
        );
    }

    #[test]
    fn grouping_preserves_flush_quality() {
        let t = ablation_groups(TINY, 4);
        for r in &t.rows {
            let own: f64 = r[3].parse().unwrap();
            let grp: f64 = r[4].parse().unwrap();
            assert!(grp <= own + 0.05, "{}: grouped {grp} vs own {own}", r[0]);
            let groups: usize = r[2].parse().unwrap();
            assert!(groups <= 4);
        }
    }
}
