//! Figures 2 and 4–8 of the paper's evaluation, as printed series.

use super::{atlas, sc_offline, sc_online, timed, THREAD_SWEEP};
use crate::calibrate::offline_capacity;
use crate::pool::par_map;
use crate::report::{pct, speedup, Table};
use nvcache_core::PolicyKind;
use nvcache_locality::{lru_mrc, reuse_all_k, select_cache_size, BurstSampler, KneeConfig, Mrc};
use nvcache_workloads::registry::{splash2_workloads, workload_by_name};
use nvcache_workloads::{mdb::MdbWorkload, splash2::WaterSpatial, Workload};

/// Figure 2 — the MRC of water-spatial with its knees; the paper
/// selects capacity 23.
pub fn fig2(scale: f64) -> Table {
    let w = WaterSpatial::scaled(scale);
    let tr = w.trace(1);
    let renamed = tr.threads[0].renamed_writes();
    let exact = lru_mrc(&renamed, 50);
    let pred = Mrc::from_reuse(&reuse_all_k(&renamed), 50);
    let knee = select_cache_size(&exact, &KneeConfig::default());
    let mut t = Table::new(
        &format!("Figure 2: MRC of water-spatial (selected size = {knee}, paper: 23)"),
        &["size", "miss ratio (exact)", "miss ratio (timescale)"],
    );
    for c in (0..=50).step_by(2) {
        t.row(vec![
            c.to_string(),
            format!("{:.4}", exact.mr(c)),
            format!("{:.4}", pred.mr(c)),
        ]);
    }
    t
}

/// Figure 4 — single-thread speedups over ER (mdb uses 8 threads) for
/// AT, SC, SC-offline and BEST.
pub fn fig4(scale: f64) -> Table {
    let mut t = Table::new(
        "Figure 4: speedup over ER (AT / SC / SC-offline / BEST)",
        &["program", "AT", "SC", "SC-o", "BEST"],
    );
    let mut cells: Vec<(String, Box<dyn Workload>, usize)> = splash2_workloads(scale)
        .into_iter()
        .map(|w| (w.name().to_string(), w, 1usize))
        .collect();
    cells.push((
        "mdb(8t)".to_string(),
        Box::new(MdbWorkload::scaled(scale)),
        8,
    ));
    let runs: Vec<(String, Vec<f64>)> = par_map(&cells, |(name, w, tc)| {
        let tr = w.trace(*tc);
        let er = timed(&tr, &PolicyKind::Eager);
        let sp = |k: &PolicyKind| {
            let r = timed(&tr, k);
            er.cycles as f64 / r.cycles as f64
        };
        let vals = vec![
            sp(&atlas()),
            sp(&sc_online(&tr)),
            sp(&sc_offline(&tr)),
            sp(&PolicyKind::Best),
        ];
        (name.clone(), vals)
    });

    let mut avg = [0.0f64; 4];
    for (name, vals) in &runs {
        for (i, v) in vals.iter().enumerate() {
            avg[i] += v;
        }
        let mut row = vec![name.clone()];
        row.extend(vals.iter().map(|v| speedup(*v)));
        t.row(row);
    }
    let n = runs.len() as f64;
    t.row(vec![
        "average".into(),
        speedup(avg[0] / n),
        speedup(avg[1] / n),
        speedup(avg[2] / n),
        speedup(avg[3] / n),
    ]);
    t.row(vec![
        "paper avg".into(),
        "4.5x".into(),
        "9.6x".into(),
        "10.3x".into(),
        "16.1x".into(),
    ]);
    t
}

/// Figure 5 — SC and SC-offline speedups over AT across thread counts.
pub fn fig5(scale: f64, threads: &[usize]) -> Table {
    let mut headers: Vec<String> = vec!["program".into(), "policy".into()];
    headers.extend(threads.iter().map(|t| format!("T={t}")));
    let mut t = Table::new(
        "Figure 5: speedup over AT per thread count",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let workloads = splash2_workloads(scale);
    // grid cells (workload × thread count) fan out independently; rows
    // are reassembled per workload in sweep order afterwards
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for wi in 0..workloads.len() {
        for &tc in threads {
            cells.push((wi, tc));
        }
    }
    let results = par_map(&cells, |&(wi, tc)| {
        let tr = workloads[wi].trace(tc);
        let at = timed(&tr, &atlas());
        let sc = timed(&tr, &sc_online(&tr));
        let sco = timed(&tr, &sc_offline(&tr));
        (
            speedup(at.cycles as f64 / sc.cycles as f64),
            speedup(at.cycles as f64 / sco.cycles as f64),
        )
    });
    for (wi, w) in workloads.iter().enumerate() {
        let mut sc_row = vec![w.name().to_string(), "SC".to_string()];
        let mut sco_row = vec![w.name().to_string(), "SC-o".to_string()];
        for ti in 0..threads.len() {
            let (sc, sco) = &results[wi * threads.len() + ti];
            sc_row.push(sc.clone());
            sco_row.push(sco.clone());
        }
        t.row(sc_row);
        t.row(sco_row);
    }
    t
}

/// Figure 6 — SC slowdown over BEST across thread counts.
pub fn fig6(scale: f64, threads: &[usize]) -> Table {
    let mut headers: Vec<String> = vec!["program".into()];
    headers.extend(threads.iter().map(|t| format!("T={t}")));
    let mut t = Table::new(
        "Figure 6: slowdown of SC over BEST per thread count",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let workloads = splash2_workloads(scale);
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for wi in 0..workloads.len() {
        for &tc in threads {
            cells.push((wi, tc));
        }
    }
    let results = par_map(&cells, |&(wi, tc)| {
        let tr = workloads[wi].trace(tc);
        let sc = timed(&tr, &sc_online(&tr));
        let best = timed(&tr, &PolicyKind::Best);
        speedup(sc.cycles as f64 / best.cycles as f64)
    });
    for (wi, w) in workloads.iter().enumerate() {
        let mut row = vec![w.name().to_string()];
        row.extend(
            results[wi * threads.len()..(wi + 1) * threads.len()]
                .iter()
                .cloned(),
        );
        t.row(row);
    }
    t
}

/// Figure 7 — accuracy of the sampled (online) MRC against the
/// full-trace (offline) timescale MRC and the actual (exact LRU) MRC,
/// for four programs.
pub fn fig7(scale: f64) -> Table {
    let mut t = Table::new(
        "Figure 7: MRC accuracy — actual vs full-trace vs sampled",
        &[
            "program",
            "knee(actual)",
            "knee(full)",
            "knee(sampled)",
            "MAE(full)",
            "MAE(sampled)",
        ],
    );
    let cfg = KneeConfig::default();
    for name in ["barnes", "fmm", "water-nsquared", "water-spatial"] {
        let w = workload_by_name(name, scale).expect("known workload");
        let tr = w.trace(1);
        let renamed = tr.threads[0].renamed_writes();
        let actual = lru_mrc(&renamed, 50);
        let full = Mrc::from_reuse(&reuse_all_k(&renamed), 50);
        // sampled: first quarter of the trace, like the online sampler
        let mut sampler = BurstSampler::new((renamed.len() / 4).max(64), 50, None);
        let mut sampled = None;
        for &id in &renamed {
            if let Some(m) = sampler.push(id) {
                sampled = Some(m);
                break;
            }
        }
        let sampled = sampled.or_else(|| sampler.flush()).expect("burst");
        t.row(vec![
            name.into(),
            select_cache_size(&actual, &cfg).to_string(),
            select_cache_size(&full, &cfg).to_string(),
            select_cache_size(&sampled, &cfg).to_string(),
            format!("{:.4}", full.mean_abs_error(&actual)),
            format!("{:.4}", sampled.mean_abs_error(&actual)),
        ]);
    }
    t
}

/// Figure 8 — relative overhead of online cache-size selection: SC with
/// online analysis vs SC preset to the best size, at 1 and 8 threads.
/// Paper: 1–10%, average 6.78%.
pub fn fig8(scale: f64) -> Table {
    let mut t = Table::new(
        "Figure 8: online cache-selection overhead (% of execution)",
        &["program", "T=1", "T=8"],
    );
    let mut names: Vec<Box<dyn Workload>> = splash2_workloads(scale);
    names.push(Box::new(MdbWorkload::scaled(scale)));
    let overheads: Vec<[f64; 2]> = par_map(&names, |w| {
        let mut ovhs = [0.0f64; 2];
        for (i, &tc) in [1usize, 8].iter().enumerate() {
            let tr = w.trace(tc);
            let online = timed(&tr, &sc_online(&tr));
            // preset: same capacity the online run would choose, but no
            // sampling/analysis cost
            let preset = timed(
                &tr,
                &PolicyKind::ScFixed {
                    capacity: offline_capacity(&tr, &KneeConfig::default()),
                },
            );
            let ovh = (online.cycles as f64 - preset.cycles as f64) / online.cycles as f64;
            ovhs[i] = ovh.max(0.0);
        }
        ovhs
    });
    let mut sum = [0.0f64; 2];
    let mut n = 0usize;
    for (w, ovhs) in names.iter().zip(&overheads) {
        sum[0] += ovhs[0];
        sum[1] += ovhs[1];
        n += 1;
        t.row(vec![w.name().to_string(), pct(ovhs[0]), pct(ovhs[1])]);
    }
    t.row(vec![
        "average".into(),
        pct(sum[0] / n as f64),
        pct(sum[1] / n as f64),
    ]);
    t
}

/// The `fig5`/`fig6` default thread sweep, re-exported for the CLI.
pub fn default_threads() -> Vec<usize> {
    THREAD_SWEEP.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: f64 = 0.004;

    #[test]
    fn fig2_knee_matches_water_spatial_working_set() {
        let t = fig2(0.05);
        assert!(
            t.title.contains("selected size = 2"),
            "knee should be in the low twenties: {}",
            t.title
        );
        assert_eq!(t.rows.len(), 26);
    }

    #[test]
    fn fig4_sc_beats_at_nearly_everywhere() {
        // paper: SC uniformly better than AT; at harness scales the
        // online-sampling cost is proportionally larger, so we require
        // SC ≥ AT on the strong majority and never catastrophically
        // behind (mdb's gap is a documented fidelity limit).
        let t = fig4(0.02);
        let mut wins = 0;
        let rows = &t.rows[..t.rows.len() - 2];
        for r in rows {
            let at: f64 = r[1].trim_end_matches('x').parse().unwrap();
            let sc: f64 = r[2].trim_end_matches('x').parse().unwrap();
            let sco: f64 = r[3].trim_end_matches('x').parse().unwrap();
            let best: f64 = r[4].trim_end_matches('x').parse().unwrap();
            if sc >= at {
                wins += 1;
            }
            assert!(sc >= at * 0.75, "{}: SC {sc} far behind AT {at}", r[0]);
            assert!(sco >= at * 0.8, "{}: SC-o {sco} far behind AT {at}", r[0]);
            assert!(best >= sc * 0.95, "{}: BEST {best} vs SC {sc}", r[0]);
        }
        assert!(
            wins * 3 >= rows.len() * 2,
            "SC must beat AT on ≥2/3: {wins}/{}",
            rows.len()
        );
    }

    #[test]
    fn fig5_and_fig6_shapes() {
        let t5 = fig5(TINY, &[1, 2]);
        assert_eq!(t5.rows.len(), 14);
        let t6 = fig6(TINY, &[1, 2]);
        assert_eq!(t6.rows.len(), 7);
        // fig6: every slowdown ≥ 1 (BEST is an upper bound)
        for r in &t6.rows {
            for c in &r[1..] {
                let v: f64 = c.trim_end_matches('x').parse().unwrap();
                assert!(v >= 0.99, "{}: {v}", r[0]);
            }
        }
    }

    #[test]
    fn fig7_sampled_selection_is_nearly_as_good_as_actual() {
        // What matters is not the numeric size but the quality of the
        // selection: the exact MRC evaluated at the sampled choice must
        // be close to its value at the oracle choice.
        let t = fig7(0.02);
        let cfg = KneeConfig::default();
        for r in &t.rows {
            let w = workload_by_name(&r[0], 0.02).unwrap();
            let tr = w.trace(1);
            let renamed = tr.threads[0].renamed_writes();
            let exact = lru_mrc(&renamed, cfg.max_size);
            let actual: usize = r[1].parse().unwrap();
            let sampled: usize = r[3].parse().unwrap();
            // allow the conversion's ±1 size quantization at cliff feet
            // (the adaptive controller adds the same +1 safety entry)
            let best_near = exact.mr(sampled).min(exact.mr(sampled + 1));
            assert!(
                best_near <= exact.mr(actual) + 0.05,
                "{}: mr({sampled}±1)={:.3} vs mr({actual})={:.3}",
                r[0],
                best_near,
                exact.mr(actual)
            );
        }
    }

    #[test]
    fn fig8_overhead_is_small() {
        let t = fig8(TINY);
        let avg = t.rows.last().unwrap();
        let v: f64 = avg[1].trim_end_matches('%').parse().unwrap();
        assert!(v < 25.0, "average overhead {v}% too large");
    }
}
