//! `repro kv-bench` — YCSB mixes over the sharded persistent KV store
//! (the serving-layer experiment): closed-loop workers against 4+
//! shards, each shard one FASE runtime behind ER / AT / live-adaptive
//! SC, writes issued in group-commit batches. Reports wall-clock
//! throughput, the serving-phase flush ratio, and — for SC — the
//! capacity each shard's live controller chose, alongside the knee an
//! *offline* exact-Mattson analysis of the same recorded store-line
//! window would have picked. Results land in `BENCH_kv.json`.

use crate::report::{json_str, Table};
use nvcache_core::{AdaptiveConfig, PolicyKind};
use nvcache_fase::FaseStats;
use nvcache_kvstore::{
    load, run, AdaptConfig, KeyDist, KvConfig, KvStore, Mix, ShardConfig, YcsbConfig,
};
use nvcache_locality::{lru_mrc, select_cache_size, KneeConfig};
use nvcache_telemetry::{convergence, CapacityEvent, ConvergenceConfig, HistId, Histogram};

/// Shards in the grid (acceptance floor: ≥ 4).
const SHARDS: usize = 4;
/// Values stay inside one 64-byte node class → one line per update.
const VALUE_LEN: usize = 40;
/// Writes per group-commit batch (what gives FASEs intra-FASE reuse).
const BATCH: usize = 128;

struct Cell {
    mix: Mix,
    policy_label: &'static str,
}

fn store_for(policy_label: &str, burst: usize, pipelined: bool) -> KvStore {
    let (policy, adapt) = match policy_label {
        "ER" => (PolicyKind::Eager, None),
        "AT" => (PolicyKind::Atlas { size: 8 }, None),
        "SC" => (
            PolicyKind::ScAdaptive(AdaptiveConfig {
                external_control: true,
                ..Default::default()
            }),
            Some(AdaptConfig {
                burst_len: burst,
                record_stream: true,
                ..Default::default()
            }),
        ),
        other => unreachable!("unknown policy label {other}"),
    };
    KvStore::new(&KvConfig {
        shards: SHARDS,
        shard: ShardConfig {
            // the layout's per-shard maximum: keeps hash chains short so
            // the measurement exercises the persistence path, not
            // linked-list traversal
            buckets: 512,
            data_len: 1 << 21,
            log_len: 1 << 17,
            policy,
            adapt,
            pipelined,
        },
    })
}

fn json_opt_list(v: &[Option<usize>]) -> String {
    if v.iter().all(Option::is_none) {
        "null".to_string()
    } else {
        let items: Vec<String> = v
            .iter()
            .map(|x| x.map_or("null".to_string(), |n| n.to_string()))
            .collect();
        format!("[{}]", items.join(", "))
    }
}

/// One sync-or-pipelined run of a grid cell, with the SC live-controller
/// outcomes gathered while the store is still alive.
struct PathRun {
    path: &'static str,
    throughput: f64,
    serving: FaseStats,
    caps: Vec<Option<usize>>,
    online: Vec<Option<usize>>,
    offline: Vec<Option<usize>>,
    /// Merged get+put+put_many latency percentiles (ns).
    p50: u64,
    p99: u64,
    p999: u64,
    /// Per-shard windows-to-knee from the live controller's decision
    /// stream (SC only).
    wtk: Vec<Option<usize>>,
}

/// Run the YCSB grid (mixes A/B/C × ER/AT/SC-adaptive at [`SHARDS`]
/// shards), each cell once over the sync flush path and once over the
/// pipelined one (submission ring + grouped prelog + slab), print the
/// table, and write `BENCH_kv.json`. Per cell, a deterministic
/// single-worker parity run asserts that the two paths agree
/// bit-for-bit on store lines and policy flush counts — only wall-clock
/// may differ. `smoke` shrinks the sizes to CI scale (same grid, same
/// schema).
pub fn kv_bench(scale: f64, smoke: bool) -> Table {
    // Oversubscribing the host measures scheduler churn, not the
    // store: cap the worker pool at the hardware's parallelism (a
    // single-core box runs one worker per shard group, a 4-core box
    // the full 4).
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (keys, ops_per_worker, workers, burst) = if smoke {
        (400, 4_000, 2.min(host), 512)
    } else {
        (
            ((40_000.0 * scale) as usize).max(1_000),
            ((250_000.0 * scale) as usize).max(4_000),
            4.min(host),
            4_096,
        )
    };
    // Wall-clock repeats per path; the best run is reported (noise —
    // preemption, frequency shifts — only ever slows a run down).
    let repeats = if smoke { 1 } else { 5 };
    let mut t = Table::new(
        &format!(
            "KV serving: YCSB A/B/C, {SHARDS} shards, {workers} workers, \
             {keys} keys, batch {BATCH}"
        ),
        &[
            "mix",
            "policy",
            "path",
            "Kops/s",
            "x sync",
            "flush ratio",
            "p50/p99/p999 ns",
            "capacity/shard",
            "online knee",
            "offline knee",
            "wins-to-knee",
        ],
    );
    let mut records = Vec::new();
    let grid: Vec<Cell> = [Mix::A, Mix::B, Mix::C]
        .into_iter()
        .flat_map(|mix| {
            ["ER", "AT", "SC"]
                .into_iter()
                .map(move |policy_label| Cell { mix, policy_label })
        })
        .collect();
    let knee_cfg = KneeConfig::default();
    let mut total_ops = 0u64;
    for cell in &grid {
        // Deterministic parity check first: one worker (no cross-worker
        // interleaving on the shard locks), sync vs pipelined. The
        // pipeline reorders and elides *region* flushes, never the
        // policy's decisions, so these counts must match bit-for-bit.
        // The multi-worker measurement below reuses the same grid cell
        // but its shard-level op interleaving is scheduler-dependent,
        // which is why the exactness contract is checked here.
        let parity: Vec<FaseStats> = [false, true]
            .into_iter()
            .map(|pipelined| {
                let store = store_for(cell.policy_label, burst, pipelined);
                load(&store, keys, VALUE_LEN);
                let rep = run(
                    &store,
                    &YcsbConfig {
                        keys,
                        ops_per_worker: ops_per_worker.min(20_000),
                        workers: 1,
                        mix: cell.mix,
                        dist: KeyDist::Zipfian { theta: 0.99 },
                        value_len: VALUE_LEN,
                        seed: 42,
                        batch: BATCH,
                        target_ops_per_sec: None,
                        windows: 1,
                        ..Default::default()
                    },
                );
                rep.windows.iter().map(|w| w.stats).sum()
            })
            .collect();
        assert_eq!(
            parity[0].store_lines,
            parity[1].store_lines,
            "{}/{}: store lines diverge between flush paths",
            cell.mix.label(),
            cell.policy_label
        );
        assert_eq!(
            parity[0].data_flushes,
            parity[1].data_flushes,
            "{}/{}: policy flush counts diverge between flush paths",
            cell.mix.label(),
            cell.policy_label
        );
        // Interleave the repeats (sync, pipelined, sync, ...) so any
        // monotonic drift of the host (thermal, frequency) hits both
        // paths equally instead of biasing whichever ran last.
        let mut best: [Option<PathRun>; 2] = [None, None];
        for _ in 0..repeats {
            for pipelined in [false, true] {
                let store = store_for(cell.policy_label, burst, pipelined);
                load(&store, keys, VALUE_LEN);
                let rep = run(
                    &store,
                    &YcsbConfig {
                        keys,
                        ops_per_worker,
                        workers,
                        mix: cell.mix,
                        dist: KeyDist::Zipfian { theta: 0.99 },
                        value_len: VALUE_LEN,
                        seed: 42,
                        batch: BATCH,
                        target_ops_per_sec: None,
                        windows: 4,
                        latency: true,
                        ..Default::default()
                    },
                );
                total_ops = rep.ops;
                let serving: FaseStats = rep.windows.iter().map(|w| w.stats).sum();
                // live-controller outcomes (SC only): chosen capacity +
                // online knee per shard, and the offline exact-Mattson
                // knee over the same recorded window
                // merged op-latency percentiles over every span kind the
                // workers record (get + put + batched put_many)
                let lat = rep.latency.as_ref().expect("latency recording on");
                let mut merged = Histogram::new();
                for id in [HistId::KvGetNs, HistId::KvPutNs, HistId::KvPutManyNs] {
                    merged.merge(lat.hist(id));
                }
                let (p50, p99, p999) = merged.percentiles();
                let mut caps: Vec<Option<usize>> = vec![None; SHARDS];
                let mut online: Vec<Option<usize>> = vec![None; SHARDS];
                let mut offline: Vec<Option<usize>> = vec![None; SHARDS];
                let mut wtk: Vec<Option<usize>> = vec![None; SHARDS];
                if cell.policy_label == "SC" {
                    for s in 0..SHARDS {
                        store.with_shard(s, |sh| {
                            if let Some(c) = sh.chosen().first() {
                                caps[s] = Some(c.capacity);
                                online[s] = Some(c.knee);
                            }
                            // convergence over the shard's full decision
                            // stream: how many MRC windows until the
                            // controller landed on (and kept) the knee
                            let evs: Vec<CapacityEvent> = sh
                                .chosen()
                                .iter()
                                .map(|c| CapacityEvent {
                                    t: c.op,
                                    knee: c.knee as u64,
                                    capacity: c.capacity as u64,
                                })
                                .collect();
                            wtk[s] = convergence::analyze(&evs, &ConvergenceConfig::default())
                                .windows_to_knee;
                            if let Some(w) = sh.stream().and_then(|st| st.get(..burst)) {
                                offline[s] = Some(select_cache_size(
                                    &lru_mrc(w, knee_cfg.max_size),
                                    &knee_cfg,
                                ));
                            }
                        });
                    }
                }
                let this = PathRun {
                    path: if pipelined { "pipelined" } else { "sync" },
                    throughput: rep.throughput_ops_per_sec,
                    serving,
                    caps,
                    online,
                    offline,
                    p50,
                    p99,
                    p999,
                    wtk,
                };
                let slot = &mut best[pipelined as usize];
                if slot.as_ref().is_none_or(|b| this.throughput > b.throughput) {
                    *slot = Some(this);
                }
            }
        }
        let runs: Vec<PathRun> = best
            .into_iter()
            .map(|b| b.expect("at least one repeat"))
            .collect();
        let sync_tput = runs[0].throughput;
        let fmt_opt = |v: &[Option<usize>]| {
            if v.iter().all(Option::is_none) {
                "-".to_string()
            } else {
                v.iter()
                    .map(|x| x.map_or("-".into(), |n: usize| n.to_string()))
                    .collect::<Vec<_>>()
                    .join("/")
            }
        };
        for r in &runs {
            let flush_ratio = r.serving.flush_ratio();
            let speedup = r.throughput / sync_tput;
            t.row(vec![
                cell.mix.label().to_string(),
                cell.policy_label.to_string(),
                r.path.to_string(),
                format!("{:.0}", r.throughput / 1e3),
                format!("{speedup:.2}"),
                format!("{flush_ratio:.4}"),
                format!("{}/{}/{}", r.p50, r.p99, r.p999),
                fmt_opt(&r.caps),
                fmt_opt(&r.online),
                fmt_opt(&r.offline),
                fmt_opt(&r.wtk),
            ]);
            records.push(format!(
                "    {{\"mix\": {}, \"policy\": {}, \"flush_path\": {}, \
                 \"throughput_ops_s\": {:.0}, \"speedup_vs_sync\": {:.4}, \
                 \"flush_ratio\": {:.6}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
                 \"store_lines\": {}, \"data_flushes\": {}, \
                 \"chosen_capacity\": {}, \"online_knee\": {}, \"offline_knee\": {}, \
                 \"windows_to_knee\": {}}}",
                json_str(cell.mix.label()),
                json_str(cell.policy_label),
                json_str(r.path),
                r.throughput,
                speedup,
                flush_ratio,
                r.p50,
                r.p99,
                r.p999,
                r.serving.store_lines,
                r.serving.data_flushes,
                json_opt_list(&r.caps),
                json_opt_list(&r.online),
                json_opt_list(&r.offline),
                json_opt_list(&r.wtk),
            ));
        }
    }
    let json = format!(
        "{{\n  \"experiment\": \"kv_ycsb\",\n  \"shards\": {SHARDS},\n  \
         \"workers\": {workers},\n  \"keys\": {keys},\n  \"ops\": {total_ops},\n  \
         \"value_len\": {VALUE_LEN},\n  \"batch\": {BATCH},\n  \
         \"zipfian_theta\": 0.99,\n  \"results\": [\n{}\n  ]\n}}\n",
        records.join(",\n")
    );
    if let Err(e) = std::fs::write("BENCH_kv.json", &json) {
        eprintln!("warning: could not write BENCH_kv.json: {e}");
    }
    t
}
