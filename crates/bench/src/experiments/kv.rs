//! `repro kv-bench` — YCSB mixes over the sharded persistent KV store
//! (the serving-layer experiment): closed-loop workers against 4+
//! shards, each shard one FASE runtime behind ER / AT / live-adaptive
//! SC, writes issued in group-commit batches. Reports wall-clock
//! throughput, the serving-phase flush ratio, and — for SC — the
//! capacity each shard's live controller chose, alongside the knee an
//! *offline* exact-Mattson analysis of the same recorded store-line
//! window would have picked. Results land in `BENCH_kv.json`.

use std::sync::Arc;

use crate::report::{json_str, Table};
use nvcache_core::{AdaptiveConfig, PolicyKind};
use nvcache_fase::FaseStats;
use nvcache_kvstore::{
    load, load_on, run, run_net, run_on, AdaptConfig, InProcTransport, KeyDist, KvConfig, KvServer,
    KvStore, Mix, NetLoadConfig, NetServer, ServerConfig, ShardConfig, YcsbConfig,
};
use nvcache_locality::{lru_mrc, select_cache_size, KneeConfig};
use nvcache_telemetry::{convergence, CapacityEvent, ConvergenceConfig, HistId, Histogram};

/// Shards in the grid (acceptance floor: ≥ 4).
const SHARDS: usize = 4;
/// Values stay inside one 64-byte node class → one line per update.
const VALUE_LEN: usize = 40;
/// Writes per group-commit batch (what gives FASEs intra-FASE reuse).
const BATCH: usize = 128;

struct Cell {
    mix: Mix,
    policy_label: &'static str,
}

fn config_for(policy_label: &str, burst: usize, pipelined: bool) -> KvConfig {
    let (policy, adapt) = match policy_label {
        "ER" => (PolicyKind::Eager, None),
        "AT" => (PolicyKind::Atlas { size: 8 }, None),
        "SC" => (
            PolicyKind::ScAdaptive(AdaptiveConfig {
                external_control: true,
                ..Default::default()
            }),
            Some(AdaptConfig {
                burst_len: burst,
                record_stream: true,
                ..Default::default()
            }),
        ),
        other => unreachable!("unknown policy label {other}"),
    };
    KvConfig {
        shards: SHARDS,
        shard: ShardConfig {
            // the layout's per-shard maximum: keeps hash chains short so
            // the measurement exercises the persistence path, not
            // linked-list traversal
            buckets: 512,
            data_len: 1 << 21,
            log_len: 1 << 17,
            policy,
            adapt,
            pipelined,
        },
    }
}

fn store_for(policy_label: &str, burst: usize, pipelined: bool) -> KvStore {
    KvStore::new(&config_for(policy_label, burst, pipelined))
}

fn json_opt_list(v: &[Option<usize>]) -> String {
    if v.iter().all(Option::is_none) {
        "null".to_string()
    } else {
        let items: Vec<String> = v
            .iter()
            .map(|x| x.map_or("null".to_string(), |n| n.to_string()))
            .collect();
        format!("[{}]", items.join(", "))
    }
}

/// One sync-or-pipelined run of a grid cell, with the SC live-controller
/// outcomes gathered while the store is still alive.
struct PathRun {
    path: &'static str,
    throughput: f64,
    serving: FaseStats,
    caps: Vec<Option<usize>>,
    online: Vec<Option<usize>>,
    offline: Vec<Option<usize>>,
    /// Merged get+put+put_many latency percentiles (ns).
    p50: u64,
    p99: u64,
    p999: u64,
    /// Per-shard windows-to-knee from the live controller's decision
    /// stream (SC only).
    wtk: Vec<Option<usize>>,
}

/// One run of a network-grid cell: pipelined loadgen connections over
/// the framed wire protocol against a [`NetServer`].
struct NetRun {
    throughput: f64,
    /// Mean requests per drained batch over the serving phase.
    occupancy: f64,
    serving: FaseStats,
    p50: u64,
    p99: u64,
    p999: u64,
}

/// One run of a concurrent-grid cell: N clients driving the MPSC
/// submission queues of a live [`KvServer`].
struct ConcRun {
    path: &'static str,
    throughput: f64,
    /// Mean requests per drained batch over the measurement phase.
    occupancy: f64,
    serving: FaseStats,
    p50: u64,
    p99: u64,
    p999: u64,
}

/// Run the YCSB grid (mixes A/B/C × ER/AT/SC-adaptive at [`SHARDS`]
/// shards), each cell once over the sync flush path and once over the
/// pipelined one (submission ring + grouped prelog + slab), print the
/// table, and write `BENCH_kv.json`. Per cell, a deterministic
/// single-worker parity run asserts that the two paths agree
/// bit-for-bit on store lines and policy flush counts — only wall-clock
/// may differ.
///
/// A second, *concurrent* grid (mixes A/B, 8 closed-loop clients on
/// one contended lane) drives a [`KvServer`] — dedicated worker thread
/// per shard behind a bounded MPSC queue — once with group commit off
/// (`mpsc-unbatched`, one request per FASE) and once draining
/// everything in flight into a single cross-client FASE
/// (`mpsc-grouped`); `speedup_vs_unbatched` and the mean drained-batch
/// occupancy land in the same JSON.
///
/// A third, *network* grid drives the same single-lane grouped server
/// through [`NetServer`] and the framed wire protocol over the
/// in-process transport: connections × pipeline-depth cells
/// ({1,8} × {1,4}), each an open-window loadgen whose per-connection
/// reader feeds the submission queue and whose acks return out of
/// order after commit. Rows carry `connections`/`pipeline_depth`
/// (null on the other grids' rows). `smoke` shrinks the sizes to CI
/// scale (same grids, same schema).
pub fn kv_bench(scale: f64, smoke: bool) -> Table {
    // Oversubscribing the host measures scheduler churn, not the
    // store: cap the worker pool at the hardware's parallelism (a
    // single-core box runs one worker per shard group, a 4-core box
    // the full 4).
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (keys, ops_per_worker, workers, burst) = if smoke {
        (400, 4_000, 2.min(host), 512)
    } else {
        (
            ((40_000.0 * scale) as usize).max(1_000),
            ((250_000.0 * scale) as usize).max(4_000),
            4.min(host),
            4_096,
        )
    };
    // Wall-clock repeats per path; the best run is reported (noise —
    // preemption, frequency shifts — only ever slows a run down).
    let repeats = if smoke { 1 } else { 5 };
    let mut t = Table::new(
        &format!(
            "KV serving: YCSB A/B/C, {SHARDS} shards, {workers} workers, \
             {keys} keys, batch {BATCH}"
        ),
        &[
            "mix",
            "policy",
            "path",
            "clients",
            "Kops/s",
            "x sync",
            "x unbatch",
            "occ",
            "flush ratio",
            "p50/p99/p999 ns",
            "capacity/shard",
            "online knee",
            "offline knee",
            "wins-to-knee",
        ],
    );
    let mut records = Vec::new();
    let grid: Vec<Cell> = [Mix::A, Mix::B, Mix::C]
        .into_iter()
        .flat_map(|mix| {
            ["ER", "AT", "SC"]
                .into_iter()
                .map(move |policy_label| Cell { mix, policy_label })
        })
        .collect();
    let knee_cfg = KneeConfig::default();
    let mut total_ops = 0u64;
    for cell in &grid {
        // Deterministic parity check first: one worker (no cross-worker
        // interleaving on the shard locks), sync vs pipelined. The
        // pipeline reorders and elides *region* flushes, never the
        // policy's decisions, so these counts must match bit-for-bit.
        // The multi-worker measurement below reuses the same grid cell
        // but its shard-level op interleaving is scheduler-dependent,
        // which is why the exactness contract is checked here.
        let parity: Vec<FaseStats> = [false, true]
            .into_iter()
            .map(|pipelined| {
                let store = store_for(cell.policy_label, burst, pipelined);
                load(&store, keys, VALUE_LEN);
                let rep = run(
                    &store,
                    &YcsbConfig {
                        keys,
                        ops_per_worker: ops_per_worker.min(20_000),
                        workers: 1,
                        mix: cell.mix,
                        dist: KeyDist::Zipfian { theta: 0.99 },
                        value_len: VALUE_LEN,
                        seed: 42,
                        batch: BATCH,
                        target_ops_per_sec: None,
                        windows: 1,
                        ..Default::default()
                    },
                );
                rep.windows.iter().map(|w| w.stats).sum()
            })
            .collect();
        assert_eq!(
            parity[0].store_lines,
            parity[1].store_lines,
            "{}/{}: store lines diverge between flush paths",
            cell.mix.label(),
            cell.policy_label
        );
        assert_eq!(
            parity[0].data_flushes,
            parity[1].data_flushes,
            "{}/{}: policy flush counts diverge between flush paths",
            cell.mix.label(),
            cell.policy_label
        );
        // Interleave the repeats (sync, pipelined, sync, ...) so any
        // monotonic drift of the host (thermal, frequency) hits both
        // paths equally instead of biasing whichever ran last.
        let mut best: [Option<PathRun>; 2] = [None, None];
        for _ in 0..repeats {
            for pipelined in [false, true] {
                let store = store_for(cell.policy_label, burst, pipelined);
                load(&store, keys, VALUE_LEN);
                let rep = run(
                    &store,
                    &YcsbConfig {
                        keys,
                        ops_per_worker,
                        workers,
                        mix: cell.mix,
                        dist: KeyDist::Zipfian { theta: 0.99 },
                        value_len: VALUE_LEN,
                        seed: 42,
                        batch: BATCH,
                        target_ops_per_sec: None,
                        windows: 4,
                        latency: true,
                        ..Default::default()
                    },
                );
                total_ops = rep.ops;
                let serving: FaseStats = rep.windows.iter().map(|w| w.stats).sum();
                // live-controller outcomes (SC only): chosen capacity +
                // online knee per shard, and the offline exact-Mattson
                // knee over the same recorded window
                // merged op-latency percentiles over every span kind the
                // workers record (get + put + batched put_many)
                let lat = rep.latency.as_ref().expect("latency recording on");
                let mut merged = Histogram::new();
                for id in [HistId::KvGetNs, HistId::KvPutNs, HistId::KvPutManyNs] {
                    merged.merge(lat.hist(id));
                }
                let (p50, p99, p999) = merged.percentiles();
                let mut caps: Vec<Option<usize>> = vec![None; SHARDS];
                let mut online: Vec<Option<usize>> = vec![None; SHARDS];
                let mut offline: Vec<Option<usize>> = vec![None; SHARDS];
                let mut wtk: Vec<Option<usize>> = vec![None; SHARDS];
                if cell.policy_label == "SC" {
                    for s in 0..SHARDS {
                        store.with_shard(s, |sh| {
                            if let Some(c) = sh.chosen().first() {
                                caps[s] = Some(c.capacity);
                                online[s] = Some(c.knee);
                            }
                            // convergence over the shard's full decision
                            // stream: how many MRC windows until the
                            // controller landed on (and kept) the knee
                            let evs: Vec<CapacityEvent> = sh
                                .chosen()
                                .iter()
                                .map(|c| CapacityEvent {
                                    t: c.op,
                                    knee: c.knee as u64,
                                    capacity: c.capacity as u64,
                                })
                                .collect();
                            wtk[s] = convergence::analyze(&evs, &ConvergenceConfig::default())
                                .windows_to_knee;
                            if let Some(w) = sh.stream().and_then(|st| st.get(..burst)) {
                                offline[s] = Some(select_cache_size(
                                    &lru_mrc(w, knee_cfg.max_size),
                                    &knee_cfg,
                                ));
                            }
                        });
                    }
                }
                let this = PathRun {
                    path: if pipelined { "pipelined" } else { "sync" },
                    throughput: rep.throughput_ops_per_sec,
                    serving,
                    caps,
                    online,
                    offline,
                    p50,
                    p99,
                    p999,
                    wtk,
                };
                let slot = &mut best[pipelined as usize];
                if slot.as_ref().is_none_or(|b| this.throughput > b.throughput) {
                    *slot = Some(this);
                }
            }
        }
        let runs: Vec<PathRun> = best
            .into_iter()
            .map(|b| b.expect("at least one repeat"))
            .collect();
        let sync_tput = runs[0].throughput;
        let fmt_opt = |v: &[Option<usize>]| {
            if v.iter().all(Option::is_none) {
                "-".to_string()
            } else {
                v.iter()
                    .map(|x| x.map_or("-".into(), |n: usize| n.to_string()))
                    .collect::<Vec<_>>()
                    .join("/")
            }
        };
        for r in &runs {
            let flush_ratio = r.serving.flush_ratio();
            let speedup = r.throughput / sync_tput;
            t.row(vec![
                cell.mix.label().to_string(),
                cell.policy_label.to_string(),
                r.path.to_string(),
                workers.to_string(),
                format!("{:.0}", r.throughput / 1e3),
                format!("{speedup:.2}"),
                "-".to_string(),
                "-".to_string(),
                format!("{flush_ratio:.4}"),
                format!("{}/{}/{}", r.p50, r.p99, r.p999),
                fmt_opt(&r.caps),
                fmt_opt(&r.online),
                fmt_opt(&r.offline),
                fmt_opt(&r.wtk),
            ]);
            records.push(format!(
                "    {{\"mix\": {}, \"policy\": {}, \"flush_path\": {}, \
                 \"clients\": {workers}, \
                 \"connections\": null, \"pipeline_depth\": null, \
                 \"throughput_ops_s\": {:.0}, \"speedup_vs_sync\": {:.4}, \
                 \"speedup_vs_unbatched\": null, \"batch_occupancy_mean\": null, \
                 \"flush_ratio\": {:.6}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
                 \"store_lines\": {}, \"data_flushes\": {}, \
                 \"chosen_capacity\": {}, \"online_knee\": {}, \"offline_knee\": {}, \
                 \"windows_to_knee\": {}, \
                 \"engine\": \"hash\", \"scan_p99_ns\": null}}",
                json_str(cell.mix.label()),
                json_str(cell.policy_label),
                json_str(r.path),
                r.throughput,
                speedup,
                flush_ratio,
                r.p50,
                r.p99,
                r.p999,
                r.serving.store_lines,
                r.serving.data_flushes,
                json_opt_list(&r.caps),
                json_opt_list(&r.online),
                json_opt_list(&r.offline),
                json_opt_list(&r.wtk),
            ));
        }
    }

    // ---- concurrent shard runtime: MPSC submission + group commit ----
    //
    // N closed-loop clients push single-op requests (batch = 1, so the
    // loadgen does no client-side write combining) into each shard's
    // bounded submission queue. The worker thread either serves one
    // request per FASE ("mpsc-unbatched", max_batch = 1 — the queued
    // no-group-commit baseline) or drains everything in flight into one
    // cross-client FASE ("mpsc-grouped"). Same server, same queue, same
    // handoff — the only variable is group commit, and
    // `speedup_vs_unbatched` is its measured step change.
    let clients = 8usize;
    // One lane: group commit needs requests *piling up* behind a busy
    // worker, so the contended regime is clients ≥ lanes. (The legacy
    // grid above measures shard-parallel scaling; this grid measures
    // per-lane batching.)
    let conc_shards = 1usize;
    // Long enough per run (~0.3 s at single-core throughput) that a
    // scheduler burst can't swallow a whole repeat — the queue handoff
    // makes these runs an order of magnitude slower per op than the
    // direct grid, so they need fewer ops, not more.
    let conc_ops = if smoke {
        2_000
    } else {
        ops_per_worker.max(10_000)
    };
    // The measured effect on the read-heavy mix is a few percent —
    // close to host noise on a shared single-core machine. That noise
    // is one-sided (load only ever slows a run down), so each path's
    // best-observed throughput converges to its true ceiling from
    // below: keep interleaving repeats until neither path's best has
    // improved for `settle` consecutive rounds, rather than trusting a
    // fixed repeat count to have sampled both ceilings.
    let (min_rounds, settle, max_rounds) = if smoke { (1, 0, 1) } else { (repeats, 3, 24) };
    for mix in [Mix::A, Mix::B] {
        let mut best: [Option<ConcRun>; 2] = [None, None];
        let (mut rounds, mut stale) = (0usize, 0usize);
        while rounds < min_rounds || (stale < settle && rounds < max_rounds) {
            let mut improved = false;
            for (pi, path) in ["mpsc-unbatched", "mpsc-grouped"].into_iter().enumerate() {
                let server = KvServer::new(
                    &KvConfig {
                        shards: conc_shards,
                        ..config_for("SC", burst, true)
                    },
                    &ServerConfig {
                        max_batch: if pi == 0 { 1 } else { usize::MAX },
                        ..Default::default()
                    },
                );
                load_on(&server, keys, VALUE_LEN);
                // queue counters accumulate from birth; snapshot after
                // the load phase so occupancy reflects the measurement
                let qs0 = server.queue_stats();
                let rep = run_on(
                    &server,
                    &YcsbConfig {
                        keys,
                        ops_per_worker: conc_ops,
                        workers: clients,
                        mix,
                        dist: KeyDist::Zipfian { theta: 0.99 },
                        value_len: VALUE_LEN,
                        seed: 42,
                        batch: 1,
                        target_ops_per_sec: None,
                        windows: 4,
                        latency: true,
                        ..Default::default()
                    },
                );
                let qs1 = server.queue_stats();
                let batches = qs1.batches - qs0.batches;
                let occupancy = if batches == 0 {
                    0.0
                } else {
                    (qs1.drained - qs0.drained) as f64 / batches as f64
                };
                let serving: FaseStats = rep.windows.iter().map(|w| w.stats).sum();
                let lat = rep.latency.as_ref().expect("latency recording on");
                let mut merged = Histogram::new();
                for id in [HistId::KvGetNs, HistId::KvPutNs, HistId::KvPutManyNs] {
                    merged.merge(lat.hist(id));
                }
                let (p50, p99, p999) = merged.percentiles();
                let this = ConcRun {
                    path,
                    throughput: rep.throughput_ops_per_sec,
                    occupancy,
                    serving,
                    p50,
                    p99,
                    p999,
                };
                let slot = &mut best[pi];
                if slot.as_ref().is_none_or(|b| this.throughput > b.throughput) {
                    *slot = Some(this);
                    improved = true;
                }
            }
            rounds += 1;
            if improved {
                stale = 0;
            } else {
                stale += 1;
            }
        }
        let runs: Vec<ConcRun> = best
            .into_iter()
            .map(|b| b.expect("at least one repeat"))
            .collect();
        let unbatched_tput = runs[0].throughput;
        for r in &runs {
            let speedup_vs_unbatched = r.throughput / unbatched_tput;
            let flush_ratio = r.serving.flush_ratio();
            t.row(vec![
                mix.label().to_string(),
                "SC".to_string(),
                r.path.to_string(),
                clients.to_string(),
                format!("{:.0}", r.throughput / 1e3),
                "-".to_string(),
                format!("{speedup_vs_unbatched:.2}"),
                format!("{:.1}", r.occupancy),
                format!("{flush_ratio:.4}"),
                format!("{}/{}/{}", r.p50, r.p99, r.p999),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            records.push(format!(
                "    {{\"mix\": {}, \"policy\": \"SC\", \"flush_path\": {}, \
                 \"clients\": {clients}, \
                 \"connections\": null, \"pipeline_depth\": null, \
                 \"throughput_ops_s\": {:.0}, \"speedup_vs_sync\": null, \
                 \"speedup_vs_unbatched\": {:.4}, \"batch_occupancy_mean\": {:.4}, \
                 \"flush_ratio\": {:.6}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
                 \"store_lines\": {}, \"data_flushes\": {}, \
                 \"chosen_capacity\": null, \"online_knee\": null, \
                 \"offline_knee\": null, \"windows_to_knee\": null, \
                 \"engine\": \"hash\", \"scan_p99_ns\": null}}",
                json_str(mix.label()),
                json_str(r.path),
                r.throughput,
                speedup_vs_unbatched,
                r.occupancy,
                flush_ratio,
                r.p50,
                r.p99,
                r.p999,
                r.serving.store_lines,
                r.serving.data_flushes,
            ));
        }
    }
    // ---- network serving: framed wire protocol over the MPSC runtime ----
    //
    // The same single-lane grouped server, now behind the in-process
    // transport and the length-prefixed frame protocol: N loadgen
    // connections pipeline requests up to `depth` in flight, the
    // per-connection reader feeds the submission queue, and responses
    // are acked out of order after the owning FASE commits. The grid
    // varies connections × pipeline depth; with both at their high
    // setting the per-lane pile-up reappears through the network path
    // (batch occupancy > 1), which is the acceptance signal that
    // pipelining reaches group commit rather than serializing at the
    // socket.
    for (conns, depth) in [(1usize, 1usize), (1, 4), (8, 1), (8, 4)] {
        let mut best: Option<NetRun> = None;
        for _ in 0..repeats {
            let server = Arc::new(KvServer::new(
                &KvConfig {
                    shards: conc_shards,
                    ..config_for("SC", burst, true)
                },
                &ServerConfig::default(),
            ));
            load_on(server.as_ref(), keys, VALUE_LEN);
            server.take_stats(); // isolate the serving phase
            let qs0 = server.queue_stats();
            let transport = InProcTransport::new();
            let net = NetServer::start(&transport, "inproc", Arc::clone(&server))
                .expect("in-process listener");
            let rep = run_net(
                &transport,
                "inproc",
                &NetLoadConfig {
                    connections: conns,
                    pipeline_depth: depth,
                    ops_per_conn: conc_ops as u64,
                    keys: keys as u64,
                    mix: Mix::A,
                    dist: KeyDist::Zipfian { theta: 0.99 },
                    value_len: VALUE_LEN,
                    seed: 42,
                    target_ops_per_sec: 0.0, // closed by the window only
                    track_acks: false,
                    scan_len: 16,
                },
            );
            assert_eq!(rep.ops_answered, rep.ops_sent, "every request answered");
            net.shutdown();
            let qs1 = server.queue_stats();
            let batches = qs1.batches - qs0.batches;
            let occupancy = if batches == 0 {
                0.0
            } else {
                (qs1.drained - qs0.drained) as f64 / batches as f64
            };
            let serving = server.stats();
            let mut merged = Histogram::new();
            merged.merge(rep.snapshot.hist(HistId::KvGetNs));
            merged.merge(rep.snapshot.hist(HistId::KvPutNs));
            let (p50, p99, p999) = merged.percentiles();
            server.close();
            let this = NetRun {
                throughput: rep.ops_per_sec(),
                occupancy,
                serving,
                p50,
                p99,
                p999,
            };
            if best.as_ref().is_none_or(|b| this.throughput > b.throughput) {
                best = Some(this);
            }
        }
        let r = best.expect("at least one repeat");
        let flush_ratio = r.serving.flush_ratio();
        t.row(vec![
            "A".to_string(),
            "SC".to_string(),
            format!("net c{conns} d{depth}"),
            conns.to_string(),
            format!("{:.0}", r.throughput / 1e3),
            "-".to_string(),
            "-".to_string(),
            format!("{:.1}", r.occupancy),
            format!("{flush_ratio:.4}"),
            format!("{}/{}/{}", r.p50, r.p99, r.p999),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        records.push(format!(
            "    {{\"mix\": \"A\", \"policy\": \"SC\", \"flush_path\": \"net\", \
             \"clients\": {conns}, \
             \"connections\": {conns}, \"pipeline_depth\": {depth}, \
             \"throughput_ops_s\": {:.0}, \"speedup_vs_sync\": null, \
             \"speedup_vs_unbatched\": null, \"batch_occupancy_mean\": {:.4}, \
             \"flush_ratio\": {:.6}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
             \"store_lines\": {}, \"data_flushes\": {}, \
             \"chosen_capacity\": null, \"online_knee\": null, \
             \"offline_knee\": null, \"windows_to_knee\": null, \
             \"engine\": \"hash\", \"scan_p99_ns\": null}}",
            r.throughput,
            r.occupancy,
            flush_ratio,
            r.p50,
            r.p99,
            r.p999,
            r.serving.store_lines,
            r.serving.data_flushes,
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"kv_ycsb\",\n  \"shards\": {SHARDS},\n  \
         \"workers\": {workers},\n  \"keys\": {keys},\n  \"ops\": {total_ops},\n  \
         \"value_len\": {VALUE_LEN},\n  \"batch\": {BATCH},\n  \
         \"zipfian_theta\": 0.99,\n  \"results\": [\n{}\n  ]\n}}\n",
        records.join(",\n")
    );
    if let Err(e) = std::fs::write("BENCH_kv.json", &json) {
        eprintln!("warning: could not write BENCH_kv.json: {e}");
    }
    t
}
