//! One module per paper experiment; shared driving helpers here.

pub mod ablations;
pub mod figs;
pub mod kv;
pub mod tables;
pub mod tree;

use crate::calibrate::{adaptive_config_for, machine_for, offline_capacity};
use crate::telemetry;
use nvcache_core::{
    run_policy, run_policy_traced, PolicyKind, ReplayOptions, RunConfig, RunReport,
};
use nvcache_locality::KneeConfig;
use nvcache_trace::Trace;

/// Default scale for harness runs (fraction of paper problem size).
pub const DEFAULT_SCALE: f64 = 0.05;

/// The thread counts of the paper's parallel experiments (Figures 5–6,
/// Table IV).
pub const THREAD_SWEEP: &[usize] = &[1, 2, 4, 8, 16, 32];

/// Run `kind` over `trace` with the calibrated machine for its thread
/// count. When global telemetry collection is on (`repro --telemetry`),
/// the run goes through the traced driver and its snapshot is deposited
/// in the collector; the [`RunReport`] is identical either way.
pub fn timed(trace: &Trace, kind: &PolicyKind) -> RunReport {
    let cfg = RunConfig {
        machine: machine_for(trace.num_threads()),
        ..Default::default()
    };
    if telemetry::is_enabled() {
        let (report, snap) = run_policy_traced(
            trace,
            kind,
            &cfg,
            &ReplayOptions::sequential(),
            &telemetry::config(),
        );
        telemetry::record(format!("{}@{}t", kind.label(), trace.num_threads()), snap);
        report
    } else {
        run_policy(trace, kind, &cfg)
    }
}

/// The online-adaptive SC policy kind for a trace.
pub fn sc_online(trace: &Trace) -> PolicyKind {
    PolicyKind::ScAdaptive(adaptive_config_for(trace))
}

/// The SC-offline policy kind: capacity from exact offline profiling.
pub fn sc_offline(trace: &Trace) -> PolicyKind {
    PolicyKind::ScFixed {
        capacity: offline_capacity(trace, &KneeConfig::default()),
    }
}

/// The paper's Atlas baseline (8-entry table).
pub fn atlas() -> PolicyKind {
    PolicyKind::Atlas { size: 8 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvcache_trace::synth::{cyclic, SynthOpts};

    #[test]
    fn helpers_produce_expected_kinds() {
        let tr = cyclic(23, 2000, &SynthOpts::default());
        assert_eq!(sc_online(&tr).label(), "SC");
        match sc_offline(&tr) {
            PolicyKind::ScFixed { capacity } => assert_eq!(capacity, 23),
            _ => panic!("wrong kind"),
        }
        assert_eq!(atlas().label(), "AT");
        let r = timed(&tr, &atlas());
        assert!(r.cycles > 0);
    }
}
