//! Tables I–IV of the paper's evaluation.

use super::{atlas, sc_offline, sc_online, timed};
use crate::calibrate::machine_for;
use crate::pool::par_map;
use crate::report::{pct, ratio, speedup, Table};
use nvcache_core::{flush_stats, run_policy, PolicyKind, RunConfig};
use nvcache_workloads::splash2::WaterSpatial;
use nvcache_workloads::{all_workloads, mdb::MdbWorkload, registry::splash2_workloads, Workload};

/// Table I — the cost of eager persistence: ER slowdown vs a
/// no-persistence run (BEST) on the SPLASH2 programs. Paper average: 22×.
pub fn table1(scale: f64) -> Table {
    let mut t = Table::new(
        "Table I: cost of eager data persistence (slowdown of ER vs no persistence)",
        &["program", "slowdown", "paper"],
    );
    let paper: &[(&str, &str)] = &[
        ("barnes", "22x"),
        ("fmm", "24x"),
        ("ocean", "17x"),
        ("raytrace", "6x"),
        ("volrend", "26x"),
        ("water-nsquared", "24x"),
        ("water-spatial", "33x"),
    ];
    let workloads = splash2_workloads(scale);
    let slowdowns: Vec<f64> = par_map(&workloads, |w| {
        let tr = w.trace(1);
        let er = timed(&tr, &PolicyKind::Eager);
        let best = timed(&tr, &PolicyKind::Best);
        er.cycles as f64 / best.cycles as f64
    });
    let mut total = 0.0;
    let mut n = 0usize;
    for (w, &slow) in workloads.iter().zip(&slowdowns) {
        total += slow;
        n += 1;
        let p = paper
            .iter()
            .find(|(name, _)| *name == w.name())
            .map(|(_, v)| *v)
            .unwrap_or("-");
        t.row(vec![w.name().to_string(), speedup(slow), p.to_string()]);
    }
    t.row(vec![
        "average".into(),
        speedup(total / n as f64),
        "22x".into(),
    ]);
    t
}

/// Table II — MDB Mtest execution: ER/AT/SC/SC-offline/BEST, speedups
/// normalized to ER. Paper: 1 / 2.94 / 5.07 / 5.60 / 6.94.
pub fn table2(scale: f64) -> Table {
    let w = MdbWorkload::scaled(scale);
    let tr = w.trace(8);
    let mut t = Table::new(
        "Table II: execution of Mtest on MDB (8 threads)",
        &["method", "cycles(M)", "speedup", "paper"],
    );
    let er = timed(&tr, &PolicyKind::Eager);
    let runs = [
        ("ER", timed(&tr, &PolicyKind::Eager), "1x"),
        ("AT", timed(&tr, &atlas()), "2.94x"),
        ("SC", timed(&tr, &sc_online(&tr)), "5.07x"),
        ("SC-o", timed(&tr, &sc_offline(&tr)), "5.60x"),
        ("BEST", timed(&tr, &PolicyKind::Best), "6.94x"),
    ];
    for (name, r, paper) in runs {
        t.row(vec![
            name.into(),
            format!("{:.1}", r.cycles as f64 / 1e6),
            speedup(r.speedup_over(&er)),
            paper.into(),
        ]);
    }
    t
}

/// Table III — data flush ratios of ER/LA/AT/SC on all twelve
/// workloads, plus the AT/SC and SC/LA columns and the paper's values.
pub fn table3(scale: f64) -> Table {
    let mut t = Table::new(
        "Table III: data flush ratios (flushes per persistent store)",
        &[
            "benchmark",
            "writes",
            "fases",
            "ER",
            "LA",
            "AT",
            "SC",
            "AT/SC",
            "SC/LA",
            "paper LA",
            "paper AT",
            "paper SC",
        ],
    );
    // the paper averages ratio columns excluding the artificial
    // persistent-array and the already-optimal linked-list and queue
    let excluded = ["persistent-array", "linked-list", "queue"];
    let workloads = all_workloads(scale);
    struct Row3 {
        fases: usize,
        er: nvcache_core::FlushStats,
        la: nvcache_core::FlushStats,
        at: nvcache_core::FlushStats,
        sc: nvcache_core::FlushStats,
    }
    let stats: Vec<Row3> = par_map(&workloads, |w| {
        let tr = w.trace(1);
        Row3 {
            fases: tr.total_fases(),
            er: flush_stats(&tr, &PolicyKind::Eager),
            la: flush_stats(&tr, &PolicyKind::Lazy),
            at: flush_stats(&tr, &atlas()),
            sc: flush_stats(&tr, &sc_online(&tr)),
        }
    });
    let mut sums = [0.0f64; 5]; // la, at, sc, at/sc, sc/la
    let mut n = 0usize;
    for (w, s) in workloads.iter().zip(&stats) {
        let at_sc = s.at.flushes() as f64 / s.sc.flushes().max(1) as f64;
        let sc_la = s.sc.flushes() as f64 / s.la.flushes().max(1) as f64;
        if !excluded.contains(&w.name()) {
            sums[0] += s.la.flush_ratio();
            sums[1] += s.at.flush_ratio();
            sums[2] += s.sc.flush_ratio();
            sums[3] += at_sc;
            sums[4] += sc_la;
            n += 1;
        }
        let p = w.paper_row();
        t.row(vec![
            w.name().into(),
            s.er.stores.to_string(),
            s.fases.to_string(),
            ratio(s.er.flush_ratio()),
            ratio(s.la.flush_ratio()),
            ratio(s.at.flush_ratio()),
            ratio(s.sc.flush_ratio()),
            format!("{at_sc:.3}x"),
            format!("{sc_la:.3}x"),
            p.map(|r| ratio(r.la)).unwrap_or_default(),
            p.map(|r| ratio(r.at)).unwrap_or_default(),
            p.map(|r| ratio(r.sc)).unwrap_or_default(),
        ]);
    }
    let nf = n as f64;
    t.row(vec![
        "average*".into(),
        "-".into(),
        "-".into(),
        ratio(1.0),
        ratio(sums[0] / nf),
        ratio(sums[1] / nf),
        ratio(sums[2] / nf),
        format!("{:.3}x", sums[3] / nf),
        format!("{:.3}x", sums[4] / nf),
        ratio(0.16256),
        ratio(0.25066),
        ratio(0.18268),
    ]);
    t
}

/// Table IV — water-spatial across thread counts: instructions, flush
/// ratio and L1 miss ratio for AT, SC and BEST.
pub fn table4(scale: f64, threads: &[usize]) -> Table {
    let w = WaterSpatial::scaled(scale);
    let mut headers: Vec<String> = vec!["metric".into(), "policy".into()];
    headers.extend(threads.iter().map(|t| format!("T={t}")));
    let mut t = Table::new(
        "Table IV: water-spatial by thread count",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let mut rows: Vec<(String, String, Vec<String>)> = vec![
        ("inst(M)".into(), "AT".into(), vec![]),
        ("inst(M)".into(), "SC".into(), vec![]),
        ("inst(M)".into(), "BEST".into(), vec![]),
        ("flush ratio".into(), "AT".into(), vec![]),
        ("flush ratio".into(), "SC".into(), vec![]),
        ("flush ratio".into(), "BEST".into(), vec![]),
        ("L1 miss".into(), "AT".into(), vec![]),
        ("L1 miss".into(), "SC".into(), vec![]),
        ("L1 miss".into(), "BEST".into(), vec![]),
    ];
    let cols = par_map(threads, |&tc| {
        let tr = nvcache_workloads::Workload::trace(&w, tc);
        let cfg = RunConfig {
            machine: machine_for(tc),
            ..Default::default()
        };
        let at = run_policy(&tr, &atlas(), &cfg);
        let sc = run_policy(&tr, &sc_online(&tr), &cfg);
        let best = run_policy(&tr, &PolicyKind::Best, &cfg);
        [at, sc, best]
    });
    for col in &cols {
        for (i, r) in col.iter().enumerate() {
            rows[i]
                .2
                .push(format!("{:.2}", r.instructions as f64 / 1e6));
            rows[3 + i].2.push(pct(r.flush_ratio()));
            rows[6 + i].2.push(pct(r.l1_miss_ratio));
        }
    }
    for (metric, policy, cells) in rows {
        let mut row = vec![metric, policy];
        row.extend(cells);
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: f64 = 0.004;

    #[test]
    fn table1_shows_er_much_slower() {
        let t = table1(TINY);
        assert_eq!(t.rows.len(), 8);
        // every slowdown > 2x even at tiny scale
        for r in &t.rows[..7] {
            let v: f64 = r[1].trim_end_matches('x').parse().unwrap();
            assert!(v > 2.0, "{}: {v}", r[0]);
        }
    }

    #[test]
    fn table2_ordering() {
        let t = table2(TINY);
        let cyc: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[1].parse::<f64>().unwrap())
            .collect();
        // [ER, AT, SC, SC-o, BEST]. Our COW B+-tree gives Atlas's table
        // better locality than real MDB (EXPERIMENTS.md): SC lands close
        // to AT rather than 1.7x ahead; everything else orders as in the
        // paper.
        assert!(cyc[0] > 2.0 * cyc[1], "ER {} >> AT {}", cyc[0], cyc[1]);
        assert!(cyc[2] <= cyc[1] * 1.25, "SC {} ≲ AT {}", cyc[2], cyc[1]);
        assert!(cyc[3] <= cyc[2] * 1.05, "SC-o {} ≤ SC {}", cyc[3], cyc[2]);
        assert!(cyc[4] < cyc[3], "BEST {} fastest (vs {})", cyc[4], cyc[3]);
    }

    #[test]
    fn table3_has_all_rows_and_sane_average() {
        let t = table3(TINY);
        assert_eq!(t.rows.len(), 13); // 12 workloads + average
        let avg = t.rows.last().unwrap();
        let la: f64 = avg[4].parse().unwrap();
        let at: f64 = avg[5].parse().unwrap();
        let sc: f64 = avg[6].parse().unwrap();
        assert!(la <= sc && sc <= at, "LA {la} ≤ SC {sc} ≤ AT {at}");
    }

    #[test]
    fn table4_shape() {
        let t = table4(TINY, &[1, 2]);
        assert_eq!(t.rows.len(), 9);
        assert_eq!(t.rows[0].len(), 4);
    }
}
