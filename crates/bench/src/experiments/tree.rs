//! `repro tree-bench` — ordered-workload serving over the CoW B+-tree
//! engine: YCSB C (point-read baseline), E (95% range scans with
//! zipfian lengths), and F (read-modify-write) against a
//! [`KvServer<TreeEngine>`] — the same MPSC submission queues and group
//! commit as the hash grid, but every drained batch becomes one or more
//! copy-on-write transactions and scans stream leaves in key order.
//!
//! Rows carry `engine: "tree"` and, on the scan mix, the dedicated
//! `scan_p99_ns` percentile, and are **appended to `BENCH_kv.json`**
//! (same record schema as the hash grid, one artifact for the serving
//! layer) when a `kv-bench` artifact is present; otherwise a fresh
//! envelope is written.

use nvcache_core::PolicyKind;
use nvcache_fase::FaseStats;
use nvcache_kvstore::{
    load_on, run_on, KeyDist, KvServer, Mix, ServerConfig, TreeEngine, TreeEngineConfig, YcsbConfig,
};
use nvcache_telemetry::{HistId, Histogram};
use nvcache_treestore::TreeConfig;

use crate::report::{json_str, Table};

/// Tree lanes (one worker thread + one CoW tree each).
const LANES: usize = 2;
/// Same value class as the hash grid, for comparable rows.
const VALUE_LEN: usize = 40;
/// Upper bound on YCSB E scan lengths (lengths are zipfian in
/// `1..=MAX_SCAN`).
const MAX_SCAN: usize = 64;

struct TreeRun {
    throughput: f64,
    serving: FaseStats,
    p50: u64,
    p99: u64,
    p999: u64,
    /// p99 over the scan-op histogram alone (scan mixes only).
    scan_p99: Option<u64>,
    scans: u64,
    rmws: u64,
}

fn engine_cfg() -> TreeEngineConfig {
    TreeEngineConfig {
        tree: TreeConfig {
            // CoW churn needs transient headroom beyond the live set:
            // every txn shadows its root-to-leaf paths before reclaim
            // frees the old versions at batch end
            data_len: 1 << 23,
            log_len: 1 << 19,
            policy: PolicyKind::ScFixed { capacity: 8 },
            pipelined: true,
        },
        ..Default::default()
    }
}

/// One JSON record in the `BENCH_kv.json` row schema (hash-grid columns
/// carried as nulls, plus the `engine` / `scan_p99_ns` columns).
fn record(mix: Mix, clients: usize, r: &TreeRun) -> String {
    format!(
        "    {{\"mix\": {}, \"policy\": \"SC\", \"flush_path\": \"tree\", \
         \"clients\": {clients}, \
         \"connections\": null, \"pipeline_depth\": null, \
         \"throughput_ops_s\": {:.0}, \"speedup_vs_sync\": null, \
         \"speedup_vs_unbatched\": null, \"batch_occupancy_mean\": null, \
         \"flush_ratio\": {:.6}, \
         \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
         \"store_lines\": {}, \"data_flushes\": {}, \
         \"chosen_capacity\": null, \"online_knee\": null, \
         \"offline_knee\": null, \"windows_to_knee\": null, \
         \"engine\": \"tree\", \"scan_p99_ns\": {}}}",
        json_str(mix.label()),
        r.throughput,
        r.serving.flush_ratio(),
        r.p50,
        r.p99,
        r.p999,
        r.serving.store_lines,
        r.serving.data_flushes,
        r.scan_p99.map_or("null".to_string(), |p| p.to_string()),
    )
}

/// Append `records` to an existing `kv-bench` artifact's results array,
/// or write a fresh envelope if none is present. The splice relies on
/// the exact tail `kv_bench` writes, so a hand-edited file falls back
/// to the fresh envelope rather than corrupting the artifact.
fn emit(records: &[String], clients: usize, keys: usize, ops: u64) {
    const TAIL: &str = "\n  ]\n}\n";
    let json = match std::fs::read_to_string("BENCH_kv.json") {
        Ok(text)
            if text.contains("\"experiment\": \"kv_ycsb\"")
                && text.ends_with(TAIL)
                && !text.contains("\"engine\": \"tree\"") =>
        {
            let body = &text[..text.len() - TAIL.len()];
            format!("{body},\n{}{TAIL}", records.join(",\n"))
        }
        _ => format!(
            "{{\n  \"experiment\": \"kv_ycsb\",\n  \"shards\": {LANES},\n  \
             \"workers\": {clients},\n  \"keys\": {keys},\n  \"ops\": {ops},\n  \
             \"value_len\": {VALUE_LEN},\n  \"batch\": 1,\n  \
             \"zipfian_theta\": 0.99,\n  \"results\": [\n{}\n  ]\n}}\n",
            records.join(",\n")
        ),
    };
    if let Err(e) = std::fs::write("BENCH_kv.json", &json) {
        eprintln!("warning: could not write BENCH_kv.json: {e}");
    }
}

/// Run the tree-engine grid (YCSB C / E / F over [`LANES`] tree lanes,
/// closed-loop clients on the submission queues), print the table, and
/// append `engine: "tree"` rows to `BENCH_kv.json`. `smoke` shrinks the
/// sizes to CI scale (same grid, same schema).
pub fn tree_bench(scale: f64, smoke: bool) -> Table {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let clients = 4.min(host).max(2);
    let (keys, ops_per_worker) = if smoke {
        (400usize, 1_500u64)
    } else {
        (
            ((20_000.0 * scale) as usize).max(1_000),
            ((60_000.0 * scale) as u64).max(3_000),
        )
    };
    let repeats = if smoke { 1 } else { 3 };
    let mut t = Table::new(
        &format!(
            "Tree engine serving: YCSB C/E/F, {LANES} lanes, {clients} clients, \
             {keys} keys, scans <= {MAX_SCAN}"
        ),
        &[
            "mix",
            "engine",
            "clients",
            "Kops/s",
            "scans",
            "rmws",
            "flush ratio",
            "p50/p99/p999 ns",
            "scan p99 ns",
        ],
    );
    let mut records = Vec::new();
    let mut total_ops = 0u64;
    for mix in [Mix::C, Mix::E, Mix::F] {
        let mut best: Option<TreeRun> = None;
        for _ in 0..repeats {
            let server =
                KvServer::<TreeEngine>::new_tree(LANES, &engine_cfg(), &ServerConfig::default());
            load_on(&server, keys, VALUE_LEN);
            server.take_stats(); // isolate the serving phase
            let rep = run_on(
                &server,
                &YcsbConfig {
                    keys,
                    ops_per_worker: ops_per_worker as usize,
                    workers: clients,
                    mix,
                    dist: KeyDist::Zipfian { theta: 0.99 },
                    value_len: VALUE_LEN,
                    seed: 42,
                    batch: 1,
                    target_ops_per_sec: None,
                    windows: 2,
                    latency: true,
                    max_scan_len: MAX_SCAN,
                    ..Default::default()
                },
            );
            total_ops = rep.ops;
            let serving: FaseStats = rep.windows.iter().map(|w| w.stats).sum();
            let lat = rep.latency.as_ref().expect("latency recording on");
            let mut merged = Histogram::new();
            for id in [
                HistId::KvGetNs,
                HistId::KvPutNs,
                HistId::KvPutManyNs,
                HistId::KvScanNs,
            ] {
                merged.merge(lat.hist(id));
            }
            let (p50, p99, p999) = merged.percentiles();
            let scan_p99 = (rep.scans > 0).then(|| lat.hist(HistId::KvScanNs).percentiles().1);
            server.close();
            let this = TreeRun {
                throughput: rep.throughput_ops_per_sec,
                serving,
                p50,
                p99,
                p999,
                scan_p99,
                scans: rep.scans,
                rmws: rep.rmws,
            };
            if best.as_ref().is_none_or(|b| this.throughput > b.throughput) {
                best = Some(this);
            }
        }
        let r = best.expect("at least one repeat");
        t.row(vec![
            mix.label().to_string(),
            "tree".to_string(),
            clients.to_string(),
            format!("{:.0}", r.throughput / 1e3),
            r.scans.to_string(),
            r.rmws.to_string(),
            format!("{:.4}", r.serving.flush_ratio()),
            format!("{}/{}/{}", r.p50, r.p99, r.p999),
            r.scan_p99.map_or("-".to_string(), |p| p.to_string()),
        ]);
        records.push(record(mix, clients, &r));
    }
    emit(&records, clients, keys, total_ops);
    t
}
