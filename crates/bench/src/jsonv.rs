//! A minimal hand-rolled JSON value parser — the read-side counterpart
//! of the hand-rolled writers in [`crate::report`] and the experiment
//! modules (the workspace takes no serde dependency).
//!
//! Scope: everything the harness itself emits — objects, arrays,
//! strings with the standard escapes, f64 numbers, booleans, null.
//! Object key order is preserved so diffs read in emission order.

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64 — the harness never emits integers
    /// above 2^53).
    Num(f64),
    /// String (escapes resolved).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// A short name for the value's type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Parse a complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        // BMP only — the harness never emits surrogate
                        // pairs; map unpaired surrogates to U+FFFD
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            Some(_) => {
                // copy one UTF-8 scalar (multi-byte sequences intact)
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        members.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".into())
        );
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let doc = r#"{"b": [1, null, {"x": "y"}], "a": 2}"#;
        let v = parse(doc).unwrap();
        let Json::Obj(members) = &v else { panic!() };
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(2.0));
        let arr = v.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("x").and_then(Json::as_str), Some("y"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn round_trips_a_real_bench_record() {
        let doc = r#"{
  "experiment": "kv_ycsb",
  "results": [
    {"mix": "A", "policy": "SC", "throughput_ops_s": 123456,
     "p99_ns": 8192, "chosen_capacity": [24, null, 24, 25],
     "windows_to_knee": [1, 1, 2, 1]}
  ]
}"#;
        let v = parse(doc).unwrap();
        let rec = &v.get("results").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(rec.get("p99_ns").and_then(Json::as_f64), Some(8192.0));
        assert_eq!(
            rec.get("chosen_capacity").and_then(Json::as_arr).unwrap()[1],
            Json::Null
        );
    }
}
