//! Reproduction harness: regenerates every table and figure of the
//! paper's evaluation (Section IV) from this workspace's implementation.
//!
//! The `repro` binary exposes one subcommand per experiment
//! (`repro table3`, `repro fig5`, …, `repro all`); see EXPERIMENTS.md
//! for the paper-vs-measured record. Criterion benches in `benches/`
//! cover component costs (LRU ops, linear-time MRC, policy throughput)
//! and the ablations called out in DESIGN.md.

#![warn(missing_docs)]

pub mod calibrate;
pub mod diff;
pub mod experiments;
pub mod jsonv;
pub mod pool;
pub mod report;
pub mod telemetry;

pub use calibrate::{adaptive_config_for, machine_for, offline_capacity, Calibration};
pub use pool::{par_map, par_map_with};
pub use report::Table;
