//! Scoped worker pool for embarrassingly-parallel experiment grids.
//!
//! Every paper experiment is a grid of independent (workload × policy ×
//! thread-count) cells; this module fans the cells out over OS threads
//! while keeping the printed tables byte-identical to a sequential run:
//! workers pull indices from a shared cursor but results are re-slotted
//! by index, so output order never depends on scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count for experiment grids: one per available hardware
/// thread, at least 1.
pub fn pool_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Apply `f` to every item, in parallel, returning results in input
/// order. Uses [`pool_parallelism`] workers.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, pool_parallelism(), f)
}

/// [`par_map`] with an explicit worker count (clamped to the item
/// count; `workers <= 1` degenerates to a plain sequential map).
pub fn par_map_with<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        done.push((i, f(&items[i])));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("pool worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..57).collect();
        for workers in [1usize, 2, 3, 8, 64] {
            let out = par_map_with(&items, workers, |&x| x * 10);
            assert_eq!(out, items.iter().map(|x| x * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..100).map(|i| i * 7919).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x.rotate_left(13) ^ 0xabcd).collect();
        assert_eq!(par_map(&items, |&x| x.rotate_left(13) ^ 0xabcd), seq);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map_with(&[] as &[i32], 8, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallelism_probe_is_positive() {
        assert!(pool_parallelism() >= 1);
    }
}
