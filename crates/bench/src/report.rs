//! Plain-text table rendering and JSON artifact output for experiment
//! results — the harness prints the same rows/series the paper reports.
//! Also serializes collected [`TelemetrySnapshot`]s into the
//! `repro --telemetry` artifact (envelope + per-run snapshots).

use nvcache_telemetry::{CounterId, TelemetrySnapshot};
use std::fmt::Write as _;

/// A simple aligned text table with a title, built row by row.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            let _ = writeln!(out, "{}", line(r, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Pretty JSON rendering (experiment artifacts).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"title\": {},", json_str(&self.title));
        let _ = writeln!(out, "  \"headers\": {},", json_str_array(&self.headers));
        out.push_str("  \"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            out.push_str(&json_str_array(r));
        }
        out.push_str(if self.rows.is_empty() {
            "]\n}"
        } else {
            "\n  ]\n}"
        });
        out
    }
}

/// JSON string literal with the escapes our cell contents can contain.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", cells.join(", "))
}

/// The `repro --telemetry` JSON artifact: an envelope identifying the
/// experiment plus one snapshot per collected run and cross-run totals.
/// Top-level keys (`experiment`, `scale`, `runs`, `totals`) are stable —
/// CI validates them.
pub fn telemetry_envelope(
    experiment: &str,
    scale: f64,
    runs: &[(String, TelemetrySnapshot)],
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": {},", json_str(experiment));
    let _ = writeln!(out, "  \"scale\": {scale},");
    out.push_str("  \"runs\": [");
    for (i, (label, snap)) in runs.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"label\": {}, \"snapshot\": {}}}",
            json_str(label),
            snap.to_json()
        );
    }
    out.push_str(if runs.is_empty() { "],\n" } else { "\n  ],\n" });
    let total = |id: CounterId| -> u64 { runs.iter().map(|(_, s)| s.counter(id)).sum() };
    let _ = writeln!(
        out,
        "  \"totals\": {{\"runs\": {}, \"stores\": {}, \"flushes_async\": {}, \
         \"flushes_sync\": {}, \"sc_hits\": {}, \"sc_evictions\": {}, \
         \"capacity_changes\": {}, \"dropped_events\": {}}}",
        runs.len(),
        total(CounterId::Stores),
        total(CounterId::FlushesAsync),
        total(CounterId::FlushesSync),
        total(CounterId::ScHits),
        total(CounterId::ScEvictions),
        total(CounterId::CapacityChanges),
        runs.iter().map(|(_, s)| s.dropped_events).sum::<u64>(),
    );
    out.push('}');
    out.push('\n');
    out
}

/// Text summary of collected telemetry: one row per (run, metric).
pub fn telemetry_table(runs: &[(String, TelemetrySnapshot)]) -> Table {
    let mut t = Table::new("Telemetry", &["run", "metric", "value"]);
    for (label, snap) in runs {
        for (metric, value) in snap.summary_rows() {
            t.row(vec![label.clone(), metric, value]);
        }
    }
    t
}

/// Format a ratio like the paper's Table III (5 decimal places).
pub fn ratio(x: f64) -> String {
    format!("{x:.5}")
}

/// Format a speedup like "2.94x".
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.25".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let mut t = Table::new("q\"x", &["a", "b"]);
        t.row(vec!["1".into(), "two\n".into()]);
        let j = t.to_json();
        assert!(j.contains("\"title\": \"q\\\"x\""));
        assert!(j.contains("[\"a\", \"b\"]"));
        assert!(j.contains("\"two\\n\""));
        let empty = Table::new("e", &["h"]).to_json();
        assert!(empty.contains("\"rows\": []"));
    }

    #[test]
    fn telemetry_envelope_has_stable_top_level_keys() {
        use nvcache_telemetry::{Recorder, TelemetryConfig, ThreadRecorder};
        let mut rec = ThreadRecorder::new(0, &TelemetryConfig::default());
        rec.add(CounterId::Stores, 7);
        let runs = vec![(
            "ER@1t".to_string(),
            TelemetrySnapshot::from_threads(vec![rec]),
        )];
        let j = telemetry_envelope("table1", 0.05, &runs);
        for key in [
            "\"experiment\": \"table1\"",
            "\"scale\": 0.05",
            "\"runs\": [",
            "\"label\": \"ER@1t\"",
            "\"totals\": {\"runs\": 1, \"stores\": 7",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        let empty = telemetry_envelope("x", 1.0, &[]);
        assert!(empty.contains("\"runs\": []"));
        assert!(empty.contains("\"totals\": {\"runs\": 0"));
    }

    #[test]
    fn telemetry_table_renders_per_run_rows() {
        use nvcache_telemetry::{Recorder, TelemetryConfig, ThreadRecorder};
        let mut rec = ThreadRecorder::new(0, &TelemetryConfig::default());
        rec.add(CounterId::Stores, 3);
        let runs = vec![(
            "AT@8t".to_string(),
            TelemetrySnapshot::from_threads(vec![rec]),
        )];
        let t = telemetry_table(&runs);
        let s = t.render();
        assert!(s.contains("AT@8t"));
        assert!(s.contains("stores"));
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(0.0625), "0.06250");
        assert_eq!(speedup(2.941), "2.94x");
        assert_eq!(pct(0.0678), "6.78%");
    }
}
