//! Process-global telemetry collection for the repro harness.
//!
//! Experiments drive replays through [`crate::experiments::timed`];
//! when collection is enabled (`repro --telemetry out.json`) that
//! funnel switches to the traced driver and deposits each run's
//! [`TelemetrySnapshot`] here, labelled by policy and thread count. The
//! check is one relaxed atomic load per *run* (not per event), so the
//! disabled path costs nothing measurable and the simulated results are
//! identical either way — telemetry observes a run, it never perturbs
//! one.

use nvcache_telemetry::{TelemetryConfig, TelemetrySnapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One collected run: `(label, snapshot)`.
pub type LabelledRun = (String, TelemetrySnapshot);

static ENABLED: AtomicBool = AtomicBool::new(false);
static RUNS: Mutex<Vec<LabelledRun>> = Mutex::new(Vec::new());

/// Turn collection on for the rest of the process. Runs driven through
/// [`crate::experiments::timed`] are captured from this point on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Is collection on? Experiments consult this once per run.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The ring configuration used for collected runs.
pub fn config() -> TelemetryConfig {
    TelemetryConfig::default()
}

/// Deposit one run's snapshot under `label`.
pub fn record(label: String, snap: TelemetrySnapshot) {
    RUNS.lock()
        .expect("telemetry collector")
        .push((label, snap));
}

/// Drain every collected run, in collection order.
pub fn drain() -> Vec<LabelledRun> {
    std::mem::take(&mut *RUNS.lock().expect("telemetry collector"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvcache_telemetry::ThreadRecorder;

    #[test]
    fn collector_roundtrip() {
        // Note: `enable` is sticky process-wide; this test only checks
        // record/drain, which are independent of the flag.
        let snap = TelemetrySnapshot::from_threads(vec![ThreadRecorder::new(0, &config())]);
        record("demo".into(), snap);
        let runs = drain();
        assert!(runs.iter().any(|(l, _)| l == "demo"));
        assert!(drain().is_empty(), "drain empties the collector");
    }
}
