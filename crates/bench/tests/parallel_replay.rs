//! Differential test: parallel trace replay must be bit-identical to
//! sequential replay — full `RunReport` and `FlushStats` equality,
//! including the per-thread vectors — for every policy kind, on both
//! synthetic and SPLASH-2-style recorded traces.

use nvcache_bench::adaptive_config_for;
use nvcache_core::{flush_stats_with, run_policy_with, PolicyKind, ReplayOptions, RunConfig};
use nvcache_trace::synth::{cyclic, replicate, zipf, SynthOpts};
use nvcache_trace::Trace;
use nvcache_workloads::registry::workload_by_name;

fn all_kinds(trace: &Trace) -> Vec<PolicyKind> {
    vec![
        PolicyKind::Eager,
        PolicyKind::Lazy,
        PolicyKind::Atlas { size: 8 },
        PolicyKind::ScFixed { capacity: 23 },
        PolicyKind::ScAdaptive(adaptive_config_for(trace)),
        PolicyKind::Best,
    ]
}

fn assert_identical(trace: &Trace, label: &str) {
    let cfg = RunConfig::default();
    for kind in all_kinds(trace) {
        let seq_run = run_policy_with(trace, &kind, &cfg, &ReplayOptions::sequential());
        let seq_fl = flush_stats_with(trace, &kind, &ReplayOptions::sequential());
        for par in [2usize, 3, 8, 32] {
            let opts = ReplayOptions::with_parallelism(par);
            let run = run_policy_with(trace, &kind, &cfg, &opts);
            assert_eq!(
                run,
                seq_run,
                "{label}: RunReport diverged for {} at parallelism {par}",
                kind.label()
            );
            let fl = flush_stats_with(trace, &kind, &opts);
            assert_eq!(
                fl,
                seq_fl,
                "{label}: FlushStats diverged for {} at parallelism {par}",
                kind.label()
            );
        }
        // the per-thread vectors must really carry per-thread data
        assert_eq!(seq_run.per_thread.len(), trace.num_threads(), "{label}");
    }
}

#[test]
fn synthetic_traces_replay_identically() {
    let cyc = replicate(&cyclic(12, 300, &SynthOpts::default()), 8);
    assert_identical(&cyc, "cyclic x8");
    let zp = replicate(
        &zipf(
            64,
            2_000,
            0.9,
            &SynthOpts {
                writes_per_fase: 24,
                ..Default::default()
            },
        ),
        4,
    );
    assert_identical(&zp, "zipf x4");
}

#[test]
fn splash2_traces_replay_identically() {
    for name in ["water-spatial", "ocean"] {
        let w = workload_by_name(name, 0.004).expect("known workload");
        let tr = w.trace(4);
        assert_identical(&tr, name);
    }
}
