//! End-to-end check of the `repro telemetry-diff` exit-code contract:
//! clean pair → 0, injected wall-clock regression → 1 (but 0 under
//! `--schema-only`), schema drift → 2 always. This is the acceptance
//! gate for the CI telemetry-smoke step, which runs the schema-only
//! form on two smoke kv-bench passes.

use std::path::PathBuf;
use std::process::Command;

const BASE: &str = r#"{
  "experiment": "kv_ycsb",
  "results": [
    {"mix": "A", "policy": "SC", "flush_path": "sync",
     "throughput_ops_s": 100000, "p50_ns": 900, "p99_ns": 4096,
     "p999_ns": 9000, "windows_to_knee": [1, 1, 2, 1]}
  ]
}"#;

fn write_tmp(name: &str, text: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("repro_tdiff_{}_{name}.json", std::process::id()));
    std::fs::write(&p, text).expect("write temp artifact");
    p
}

fn run_diff(base: &PathBuf, new: &PathBuf, extra: &[&str]) -> i32 {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("telemetry-diff")
        .arg(base)
        .arg(new)
        .args(extra)
        .output()
        .expect("spawn repro");
    out.status.code().expect("exit code")
}

#[test]
fn identical_artifacts_exit_zero() {
    let a = write_tmp("id_a", BASE);
    let b = write_tmp("id_b", BASE);
    assert_eq!(run_diff(&a, &b, &[]), 0);
    assert_eq!(run_diff(&a, &b, &["--json"]), 0);
}

#[test]
fn injected_regression_exits_nonzero() {
    let slow = BASE
        .replace(
            "\"throughput_ops_s\": 100000",
            "\"throughput_ops_s\": 60000",
        )
        .replace("\"p99_ns\": 4096", "\"p99_ns\": 20000");
    let a = write_tmp("reg_a", BASE);
    let b = write_tmp("reg_b", &slow);
    assert_eq!(
        run_diff(&a, &b, &[]),
        1,
        "20% threshold must flag a 40% drop"
    );
    // a generous threshold tolerates the same pair
    assert_eq!(run_diff(&a, &b, &["--threshold", "5.0"]), 0);
    // schema-only mode ignores wall-clock moves entirely
    assert_eq!(run_diff(&a, &b, &["--schema-only"]), 0);
}

#[test]
fn schema_drift_exits_two_even_schema_only() {
    let drifted = BASE.replace("\"p999_ns\": 9000, ", "");
    let a = write_tmp("sch_a", BASE);
    let b = write_tmp("sch_b", &drifted);
    assert_eq!(run_diff(&a, &b, &[]), 2);
    assert_eq!(run_diff(&a, &b, &["--schema-only"]), 2);
}

/// Legacy baselines predate columns like `speedup_vs_unbatched` (and
/// the net grid's `connections`/`pipeline_depth`): the new artifact
/// carries them as null on old-style rows. Null-on-one-side vs
/// absent-on-the-other means "no value" either way — exit 0, not
/// schema drift.
#[test]
fn null_column_against_legacy_baseline_exits_zero() {
    let widened = BASE.replace(
        "\"throughput_ops_s\": 100000,",
        "\"throughput_ops_s\": 100000, \"speedup_vs_unbatched\": null, \
         \"connections\": null, \"pipeline_depth\": null,",
    );
    let a = write_tmp("null_a", BASE);
    let b = write_tmp("null_b", &widened);
    assert_eq!(run_diff(&a, &b, &[]), 0, "null vs absent is not drift");
    assert_eq!(run_diff(&b, &a, &[]), 0, "either orientation");
    assert_eq!(run_diff(&a, &b, &["--schema-only"]), 0);

    // a populated new column against a legacy baseline is still drift
    let populated = BASE.replace(
        "\"throughput_ops_s\": 100000,",
        "\"throughput_ops_s\": 100000, \"speedup_vs_unbatched\": 2.5,",
    );
    let c = write_tmp("null_c", &populated);
    assert_eq!(run_diff(&a, &c, &["--schema-only"]), 2);
}

#[test]
fn unreadable_or_invalid_input_exits_two() {
    let a = write_tmp("bad_a", BASE);
    let b = write_tmp("bad_b", "{ not json");
    assert_eq!(run_diff(&a, &b, &[]), 2);
    let missing = PathBuf::from("/nonexistent/never.json");
    assert_eq!(run_diff(&a, &missing, &[]), 2);
}
