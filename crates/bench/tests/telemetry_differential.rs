//! Differential test for the telemetry layer: instrumented counters
//! must **exactly** equal the replay drivers' own accounting — per run
//! and per thread — for every policy kind, on synthetic and
//! SPLASH-2-style traces, sequentially and in parallel. Telemetry
//! observes a run; it must never change one, and it must never drift
//! from the numbers the paper tables are built from.

use nvcache_bench::adaptive_config_for;
use nvcache_core::{
    flush_stats_traced, flush_stats_with, run_policy_traced, run_policy_with, PolicyKind,
    ReplayOptions, RunConfig,
};
use nvcache_telemetry::{CounterId, TelemetryConfig};
use nvcache_trace::synth::{cyclic, replicate, zipf, SynthOpts};
use nvcache_trace::Trace;
use nvcache_workloads::registry::workload_by_name;

fn all_kinds(trace: &Trace) -> Vec<PolicyKind> {
    vec![
        PolicyKind::Eager,
        PolicyKind::Lazy,
        PolicyKind::Atlas { size: 8 },
        PolicyKind::ScFixed { capacity: 23 },
        PolicyKind::ScAdaptive(adaptive_config_for(trace)),
        PolicyKind::Best,
    ]
}

fn assert_counters_match(trace: &Trace, label: &str) {
    let cfg = RunConfig::default();
    let tcfg = TelemetryConfig::default();
    for kind in all_kinds(trace) {
        for opts in [
            ReplayOptions::sequential(),
            ReplayOptions::with_parallelism(4),
        ] {
            let ctx = format!("{label}/{}/par={}", kind.label(), opts.parallelism);

            // flush-counting driver: FlushStats vs counters
            let plain = flush_stats_with(trace, &kind, &opts);
            let (stats, snap) = flush_stats_traced(trace, &kind, &opts, &tcfg);
            assert_eq!(plain, stats, "{ctx}: tracing perturbed FlushStats");
            assert_eq!(snap.counter(CounterId::Stores), stats.stores, "{ctx}");
            assert_eq!(
                snap.counter(CounterId::FlushesAsync),
                stats.flushes_async,
                "{ctx}"
            );
            assert_eq!(
                snap.counter(CounterId::FlushesSync),
                stats.flushes_sync,
                "{ctx}"
            );
            assert_eq!(
                snap.counter(CounterId::ScHits) + snap.counter(CounterId::ScMisses),
                stats.stores,
                "{ctx}: every store is a hit or a miss"
            );
            assert_eq!(
                snap.counter(CounterId::ScEvictions),
                stats.flushes_async,
                "{ctx}: mid-FASE flushes are exactly the evictions"
            );

            // timed driver: RunReport / per-thread MachineReports vs counters
            let plain_run = run_policy_with(trace, &kind, &cfg, &opts);
            let (report, tsnap) = run_policy_traced(trace, &kind, &cfg, &opts, &tcfg);
            assert_eq!(plain_run, report, "{ctx}: tracing perturbed RunReport");
            assert_eq!(tsnap.counter(CounterId::Stores), report.stores, "{ctx}");
            assert_eq!(tsnap.flushes(), report.flushes(), "{ctx}");
            assert_eq!(tsnap.threads, trace.num_threads(), "{ctx}");
            for (tid, mr) in report.per_thread.iter().enumerate() {
                let shard = &tsnap.per_thread[tid];
                assert_eq!(
                    shard[CounterId::FlushesAsync as usize]
                        + shard[CounterId::FlushesSync as usize],
                    mr.flushes(),
                    "{ctx}: thread {tid} flush count"
                );
            }
            assert_eq!(
                tsnap.counter(CounterId::FaseStallCycles),
                report.per_thread.iter().map(|r| r.fase_stall_cycles).sum(),
                "{ctx}: FASE stall attribution"
            );
        }
    }
}

#[test]
fn synthetic_telemetry_matches_driver_accounting() {
    let cyc = replicate(&cyclic(12, 300, &SynthOpts::default()), 8);
    assert_counters_match(&cyc, "cyclic x8");
    let zp = replicate(
        &zipf(
            64,
            2_000,
            0.9,
            &SynthOpts {
                writes_per_fase: 24,
                ..Default::default()
            },
        ),
        4,
    );
    assert_counters_match(&zp, "zipf x4");
}

#[test]
fn splash2_telemetry_matches_driver_accounting() {
    for name in ["water-spatial", "ocean"] {
        let w = workload_by_name(name, 0.004).expect("known workload");
        let tr = w.trace(4);
        assert_counters_match(&tr, name);
    }
}
