//! Set-associative write-back LRU cache with flush/invalidate support.
//!
//! Models the hardware L1D the paper measures with perf: `clflush`
//! invalidates the line, so the program's next access to flushed data
//! misses — the *indirect* cost of persistence (paper Section II-A).

use nvcache_trace::Line;

/// Whether an access is a load or a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store (allocates and dirties the line).
    Write,
}

/// Geometry of a simulated cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in lines.
    pub lines: usize,
    /// Ways per set.
    pub associativity: usize,
}

impl CacheConfig {
    /// A 32 KiB, 8-way L1D with 64-byte lines (the paper's Xeon E7-4890).
    pub fn l1d() -> Self {
        CacheConfig {
            lines: 512,
            associativity: 8,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.lines / self.associativity).max(1)
    }
}

/// Hit/miss/writeback counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub evict_writebacks: u64,
    /// Explicit flushes that found the line present.
    pub flush_present: u64,
    /// Explicit flushes of absent lines (no-ops at the cache).
    pub flush_absent: u64,
}

impl CacheStats {
    /// Misses / accesses (0.0 for no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64, // larger = more recent
}

/// The outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Did the access hit?
    pub hit: bool,
    /// A dirty line written back to satisfy the allocation, if any.
    pub writeback: Option<Line>,
}

/// A set-associative, write-back, write-allocate cache with true-LRU
/// replacement within each set.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    // Set-index fast path: when the set count is a power of two (every
    // realistic geometry, incl. the 64-set L1D) the per-access div/mod
    // folds to shift/mask. `set_shift == u32::MAX` marks the generic
    // div/mod path for odd set counts.
    set_mask: u64,
    set_shift: u32,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Build a cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.associativity > 0 && cfg.lines >= cfg.associativity);
        let sets = vec![
            vec![
                Way {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    lru: 0
                };
                cfg.associativity
            ];
            cfg.sets()
        ];
        let n = sets.len() as u64;
        let (set_mask, set_shift) = if n.is_power_of_two() {
            (n - 1, n.trailing_zeros())
        } else {
            (0, u32::MAX)
        };
        SetAssocCache {
            cfg,
            sets,
            set_mask,
            set_shift,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset counters (keep contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Decompose a line id into (set index, tag). Identical results on
    /// both paths: for a power-of-two set count `n`, `x & (n−1) == x % n`
    /// and `x >> log2(n) == x / n`.
    #[inline]
    fn split(&self, line: Line) -> (usize, u64) {
        if self.set_shift != u32::MAX {
            ((line.0 & self.set_mask) as usize, line.0 >> self.set_shift)
        } else {
            let n = self.sets.len() as u64;
            ((line.0 % n) as usize, line.0 / n)
        }
    }

    /// Perform a load or store of `line`.
    #[inline]
    pub fn access(&mut self, line: Line, kind: AccessKind) -> AccessResult {
        self.tick += 1;
        let tick = self.tick;
        let (sidx, tag) = self.split(line);
        let sets_len = self.sets.len() as u64;
        let set = &mut self.sets[sidx];

        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = tick;
            if kind == AccessKind::Write {
                w.dirty = true;
            }
            self.stats.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
            };
        }

        self.stats.misses += 1;
        // victim: invalid way if any, else LRU
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru + 1 } else { 0 })
            .expect("associativity > 0");
        let mut writeback = None;
        if victim.valid && victim.dirty {
            writeback = Some(Line(victim.tag * sets_len + sidx as u64));
            self.stats.evict_writebacks += 1;
        }
        victim.tag = tag;
        victim.valid = true;
        victim.dirty = kind == AccessKind::Write;
        victim.lru = tick;
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// `clflush` semantics: write back (if dirty) and invalidate the
    /// line. Returns true iff the line was present.
    #[inline]
    pub fn flush(&mut self, line: Line) -> bool {
        let (sidx, tag) = self.split(line);
        let set = &mut self.sets[sidx];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.valid = false;
            w.dirty = false;
            self.stats.flush_present += 1;
            true
        } else {
            self.stats.flush_absent += 1;
            false
        }
    }

    /// `clwb` semantics: write the line back (clear dirty) but keep it
    /// resident — the program's next access still hits.
    #[inline]
    pub fn writeback_keep(&mut self, line: Line) -> bool {
        let (sidx, tag) = self.split(line);
        let set = &mut self.sets[sidx];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.dirty = false;
            self.stats.flush_present += 1;
            true
        } else {
            self.stats.flush_absent += 1;
            false
        }
    }

    /// Invalidate without counting as a flush — used by the contention
    /// model to evict a line "from outside" (another core / the OS).
    #[inline]
    pub fn invalidate_silent(&mut self, line: Line) -> bool {
        let (sidx, tag) = self.split(line);
        let set = &mut self.sets[sidx];
        if let Some(w) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.valid = false;
            w.dirty = false;
            true
        } else {
            false
        }
    }

    /// Is the line currently cached?
    pub fn contains(&self, line: Line) -> bool {
        let (sidx, tag) = self.split(line);
        self.sets[sidx].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Is the line cached and dirty?
    pub fn is_dirty(&self, line: Line) -> bool {
        let (sidx, tag) = self.split(line);
        self.sets[sidx]
            .iter()
            .any(|w| w.valid && w.dirty && w.tag == tag)
    }

    /// Number of valid lines currently resident.
    pub fn resident(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|w| w.valid).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            lines: 8,
            associativity: 2,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small();
        assert!(!c.access(Line(1), AccessKind::Read).hit);
        assert!(c.access(Line(1), AccessKind::Read).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn write_dirties_line() {
        let mut c = small();
        c.access(Line(1), AccessKind::Write);
        assert!(c.is_dirty(Line(1)));
        c.access(Line(2), AccessKind::Read);
        assert!(!c.is_dirty(Line(2)));
    }

    #[test]
    fn lru_within_set_evicts_oldest() {
        let mut c = small(); // 4 sets × 2 ways
                             // lines 0, 4, 8 all map to set 0
        c.access(Line(0), AccessKind::Read);
        c.access(Line(4), AccessKind::Read);
        c.access(Line(0), AccessKind::Read); // refresh 0
        c.access(Line(8), AccessKind::Read); // evicts 4 (LRU)
        assert!(c.contains(Line(0)));
        assert!(!c.contains(Line(4)));
        assert!(c.contains(Line(8)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(Line(0), AccessKind::Write);
        c.access(Line(4), AccessKind::Read);
        let r = c.access(Line(8), AccessKind::Read); // evicts dirty 0
        assert_eq!(r.writeback, Some(Line(0)));
        assert_eq!(c.stats().evict_writebacks, 1);
    }

    #[test]
    fn flush_invalidates_and_next_access_misses() {
        let mut c = small();
        c.access(Line(3), AccessKind::Write);
        assert!(c.flush(Line(3)));
        assert!(!c.contains(Line(3)));
        assert!(!c.access(Line(3), AccessKind::Read).hit);
        assert!(!c.flush(Line(99)));
        assert_eq!(c.stats().flush_present, 1);
        assert_eq!(c.stats().flush_absent, 1);
    }

    #[test]
    fn writeback_keep_clears_dirty_but_stays_resident() {
        let mut c = small();
        c.access(Line(3), AccessKind::Write);
        assert!(c.is_dirty(Line(3)));
        assert!(c.writeback_keep(Line(3)));
        assert!(!c.is_dirty(Line(3)));
        assert!(c.contains(Line(3)), "clwb keeps the line");
        assert!(c.access(Line(3), AccessKind::Read).hit);
        assert!(!c.writeback_keep(Line(99)));
    }

    #[test]
    fn silent_invalidate_does_not_count() {
        let mut c = small();
        c.access(Line(3), AccessKind::Write);
        assert!(c.invalidate_silent(Line(3)));
        assert!(!c.invalidate_silent(Line(3)));
        assert_eq!(c.stats().flush_present, 0);
        assert_eq!(c.stats().flush_absent, 0);
    }

    #[test]
    fn resident_count_tracks_validity() {
        let mut c = small();
        for i in 0..5 {
            c.access(Line(i), AccessKind::Read);
        }
        assert_eq!(c.resident(), 5);
        c.flush(Line(0));
        assert_eq!(c.resident(), 4);
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = SetAssocCache::new(CacheConfig::l1d());
        // 256-line working set fits in a 512-line cache
        for round in 0..10 {
            for i in 0..256u64 {
                let r = c.access(Line(i), AccessKind::Write);
                if round > 0 {
                    assert!(r.hit, "round {round} line {i}");
                }
            }
        }
    }

    #[test]
    fn miss_ratio_computation() {
        let mut c = small();
        c.access(Line(1), AccessKind::Read); // miss
        c.access(Line(1), AccessKind::Read); // hit
        c.access(Line(1), AccessKind::Read); // hit
        c.access(Line(2), AccessKind::Read); // miss
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(c.stats().accesses(), 4);
    }

    #[test]
    fn split_matches_divmod_on_both_paths() {
        // 64 sets (shift/mask path) and 6 sets (generic path) must both
        // agree with the reference div/mod decomposition.
        for cfg in [
            CacheConfig::l1d(),
            CacheConfig {
                lines: 12,
                associativity: 2,
            },
        ] {
            let c = SetAssocCache::new(cfg);
            let n = cfg.sets() as u64;
            for line in (0..4096u64).chain([u64::MAX, u64::MAX - 63]) {
                let (sidx, tag) = c.split(Line(line));
                assert_eq!(sidx as u64, line % n, "sets={n} line={line}");
                assert_eq!(tag, line / n, "sets={n} line={line}");
            }
        }
    }

    #[test]
    fn non_pow2_geometry_behaves_like_pow2_semantics() {
        // Full behavioural pass on a 6-set cache: hits, flush, writeback
        // reconstruction all work off the generic div/mod path.
        let mut c = SetAssocCache::new(CacheConfig {
            lines: 12,
            associativity: 2,
        });
        let a = Line(7 * 6 + 3); // set 3
        let b = Line(9 * 6 + 3); // set 3
        let d = Line(11 * 6 + 3); // set 3
        c.access(a, AccessKind::Write);
        c.access(b, AccessKind::Read);
        let r = c.access(d, AccessKind::Read); // evicts dirty a
        assert_eq!(r.writeback, Some(a));
        assert!(c.contains(b) && c.contains(d) && !c.contains(a));
        assert!(c.flush(d));
        assert!(!c.contains(d));
    }

    #[test]
    fn tag_reconstruction_on_writeback_is_correct() {
        // Make sure the reported writeback line id round-trips through
        // set/tag decomposition.
        let mut c = SetAssocCache::new(CacheConfig {
            lines: 4,
            associativity: 1,
        });
        let victim = Line(0x1234 * 4 + 2); // maps to set 2
        c.access(victim, AccessKind::Write);
        let r = c.access(Line(0x9999 * 4 + 2), AccessKind::Read);
        assert_eq!(r.writeback, Some(victim));
    }
}
