//! Hardware-cache and machine timing simulation.
//!
//! The paper evaluates on a 60-core Xeon with DRAM emulating NVRAM and
//! measures (a) cache-line flush counts, (b) L1 miss ratios via perf, and
//! (c) wall-clock time. Flush counts are exact properties of policy ×
//! trace; for (b) and (c) this crate provides the simulated substrate
//! (DESIGN.md §2.1):
//!
//! * [`cache`] — a set-associative, write-back, write-allocate LRU cache
//!   with `clflush`-style invalidation, standing in for the L1D and the
//!   perf counters.
//! * [`timing`] — a deterministic cost model: per-store and per-work
//!   cycle costs, an asynchronous write-back queue with bounded
//!   outstanding slots (flushes overlap computation until the queue
//!   saturates — how the eager policy degrades), and synchronous
//!   end-of-FASE drains (how the lazy policy degrades).
//! * [`machine`] — one simulated hardware context per thread, combining
//!   both plus a thread-count-dependent contention model, producing a
//!   [`machine::MachineReport`].

#![warn(missing_docs)]

pub mod cache;
pub mod machine;
pub mod timing;

pub use cache::{AccessKind, CacheConfig, CacheStats, SetAssocCache};
pub use machine::{Machine, MachineConfig, MachineReport};
pub use timing::{FlushQueue, TimingConfig};
