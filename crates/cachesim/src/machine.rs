//! One simulated hardware context per thread: L1 cache + write-back
//! queue + cycle/instruction accounting + contention model.
//!
//! Persistence-policy drivers (in `nvcache-core`) feed the machine the
//! program's memory events and the policy's flush decisions; the machine
//! produces the quantities the paper reports: cycles (→ execution time),
//! instruction counts, L1 miss ratios, and flush counts (Table IV).

use crate::cache::{AccessKind, CacheConfig, CacheStats, SetAssocCache};
use crate::timing::{FlushQueue, TimingConfig};
use nvcache_trace::Line;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of a simulated hardware context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// Cycle cost model.
    pub timing: TimingConfig,
    /// Probability that an access finds its line evicted by cross-thread
    /// / OS contention (paper Section IV-F attributes BEST's rising L1
    /// miss ratio at high thread counts to such contention). Set per
    /// thread count by the harness; 0.0 for single-thread runs.
    pub contention_miss_prob: f64,
    /// RNG seed for the contention process (deterministic runs).
    pub seed: u64,
    /// Instructions per work unit.
    pub instr_work: u64,
    /// Instructions per persistent store (the store + Atlas-style
    /// bookkeeping entry).
    pub instr_store: u64,
    /// Instructions per issued flush.
    pub instr_flush: u64,
    /// Does a flush invalidate the L1 line (`clflush`, Atlas's choice and
    /// the default) or write it back in place (`clwb`, paper Section
    /// II-A: avoids the indirect re-miss cost but may leave stale lines
    /// visible to other threads)?
    pub flush_invalidates: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            l1: CacheConfig::l1d(),
            timing: TimingConfig::default(),
            contention_miss_prob: 0.0,
            seed: 0xace,
            instr_work: 1,
            instr_store: 8,
            instr_flush: 3,
            flush_invalidates: true,
        }
    }
}

/// Measured outcome of one thread's simulated execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MachineReport {
    /// Total cycles (the paper's execution time proxy).
    pub cycles: u64,
    /// Total instructions executed (Table IV "inst.").
    pub instructions: u64,
    /// L1 counters (Table IV "hw L1 cache mr").
    pub l1: CacheStats,
    /// Flushes issued asynchronously (mid-FASE evictions / eager).
    pub flushes_async: u64,
    /// Flushes issued synchronously (end-of-FASE drains).
    pub flushes_sync: u64,
    /// Cycles stalled waiting on the write-back queue *mid-FASE* (the
    /// end-of-FASE drain portion is reported separately below).
    pub queue_stall_cycles: u64,
    /// Cycles stalled in end-of-FASE drains and fences.
    pub fase_stall_cycles: u64,
}

impl MachineReport {
    /// Total flushes.
    pub fn flushes(&self) -> u64 {
        self.flushes_async + self.flushes_sync
    }

    /// Flushes / persistent stores, using the caller-known store count.
    pub fn flush_ratio(&self, stores: u64) -> f64 {
        if stores == 0 {
            0.0
        } else {
            self.flushes() as f64 / stores as f64
        }
    }
}

/// A simulated hardware context (one per thread).
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    l1: SetAssocCache,
    queue: FlushQueue,
    rng: SmallRng,
    now: u64,
    instructions: u64,
    flushes_async: u64,
    flushes_sync: u64,
    fase_stall: u64,
}

impl Machine {
    /// New context.
    pub fn new(cfg: MachineConfig) -> Self {
        Machine {
            l1: SetAssocCache::new(cfg.l1),
            queue: FlushQueue::new(cfg.timing.flush_slots, cfg.timing.t_flush_service),
            rng: SmallRng::seed_from_u64(cfg.seed),
            now: 0,
            instructions: 0,
            flushes_async: 0,
            flushes_sync: 0,
            fase_stall: 0,
            cfg,
        }
    }

    /// Current cycle.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Write-back queue depth right now (pure probe — telemetry's
    /// depth-sampling point).
    #[inline]
    pub fn queue_depth(&self) -> usize {
        self.queue.depth_at(self.now)
    }

    /// Cycles stalled so far in end-of-FASE drains and fences.
    #[inline]
    pub fn fase_stall_cycles(&self) -> u64 {
        self.fase_stall
    }

    /// Total queue stall cycles so far (mid-FASE *and* end-of-FASE; the
    /// final report splits them).
    #[inline]
    pub fn total_stall_cycles(&self) -> u64 {
        self.queue.stall_cycles
    }

    /// Execute `units` of opaque computation.
    #[inline]
    pub fn work(&mut self, units: u32) {
        self.now += units as u64 * self.cfg.timing.t_work;
        self.instructions += units as u64 * self.cfg.instr_work;
    }

    /// Account extra software instructions (policy bookkeeping); each
    /// costs one cycle.
    #[inline]
    pub fn software_overhead(&mut self, instructions: u64) {
        self.instructions += instructions;
        self.now += instructions;
    }

    #[inline]
    fn contended(&mut self, line: Line) {
        if self.cfg.contention_miss_prob > 0.0
            && self.rng.gen::<f64>() < self.cfg.contention_miss_prob
        {
            self.l1.invalidate_silent(line);
        }
    }

    #[inline]
    fn access(&mut self, line: Line, kind: AccessKind, base: u64) {
        self.contended(line);
        let r = self.l1.access(line, kind);
        self.now += base;
        if !r.hit {
            self.now += self.cfg.timing.t_miss;
        }
    }

    /// A persistent store to `line`.
    #[inline]
    pub fn store(&mut self, line: Line) {
        self.instructions += self.cfg.instr_store;
        self.access(line, AccessKind::Write, self.cfg.timing.t_store);
    }

    /// A load from `line`.
    #[inline]
    pub fn load(&mut self, line: Line) {
        self.instructions += 1;
        self.access(line, AccessKind::Read, 1);
    }

    /// Issue an asynchronous flush of `line` (mid-FASE eviction): the
    /// write-back overlaps computation unless the queue is saturated.
    #[inline]
    pub fn flush_async(&mut self, line: Line) {
        self.instructions += self.cfg.instr_flush;
        if self.cfg.flush_invalidates {
            self.l1.flush(line);
        } else {
            self.l1.writeback_keep(line);
        }
        self.now += self.cfg.timing.t_flush_issue;
        self.now = self.queue.issue_async(self.now);
        self.flushes_async += 1;
    }

    /// Issue a synchronous flush (end-of-FASE): the thread waits for the
    /// write-back to complete before continuing.
    #[inline]
    pub fn flush_sync(&mut self, line: Line) {
        self.instructions += self.cfg.instr_flush;
        if self.cfg.flush_invalidates {
            self.l1.flush(line);
        } else {
            self.l1.writeback_keep(line);
        }
        self.now += self.cfg.timing.t_flush_issue;
        let before = self.now;
        self.now = self.queue.issue_sync(self.now);
        self.fase_stall += self.now - before;
        self.flushes_sync += 1;
    }

    /// Flush a contiguous run of `n` lines starting at `start` as one
    /// coalesced ranged sweep at a FASE boundary. A single issue cost
    /// covers the whole run — the pipelined commit path's win — while
    /// each line still pays its per-flush instruction, its L1 effect,
    /// and serialized memory-side service. Write-backs stay in flight;
    /// the fence that follows pays the drain, and the wait is accounted
    /// as FASE stall exactly like [`Machine::flush_sync`]'s.
    pub fn flush_run(&mut self, start: Line, n: u64) {
        if n == 0 {
            return;
        }
        self.now += self.cfg.timing.t_flush_issue;
        let stall_before = self.queue.stall_cycles;
        for i in 0..n {
            let line = Line(start.0 + i);
            self.instructions += self.cfg.instr_flush;
            if self.cfg.flush_invalidates {
                self.l1.flush(line);
            } else {
                self.l1.writeback_keep(line);
            }
            self.now = self.queue.issue_async(self.now);
            self.flushes_sync += 1;
        }
        self.fase_stall += self.queue.stall_cycles - stall_before;
    }

    /// Fence at the end of a FASE: drain the write-back queue and pay the
    /// ordering cost.
    #[inline]
    pub fn fence(&mut self) {
        let before = self.now;
        self.now = self.queue.drain(self.now);
        self.fase_stall += self.now - before;
        self.now += self.cfg.timing.t_fence;
    }

    /// Finish: drain outstanding flushes and report.
    pub fn finish(mut self) -> MachineReport {
        self.now = self.queue.drain(self.now);
        MachineReport {
            cycles: self.now,
            instructions: self.instructions,
            l1: self.l1.stats(),
            flushes_async: self.flushes_async,
            flushes_sync: self.flushes_sync,
            // the queue's stall counter includes the end-of-FASE drains;
            // report the mid-FASE portion only
            queue_stall_cycles: self.queue.stall_cycles.saturating_sub(self.fase_stall),
            fase_stall_cycles: self.fase_stall,
        }
    }

    /// Peek at the L1 (tests).
    pub fn l1(&self) -> &SetAssocCache {
        &self.l1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig::default())
    }

    #[test]
    fn work_advances_clock_and_instructions() {
        let mut m = machine();
        m.work(100);
        let r = m.finish();
        assert_eq!(r.cycles, 100);
        assert_eq!(r.instructions, 100);
    }

    #[test]
    fn store_hit_vs_miss_cost() {
        let mut m = machine();
        m.store(Line(1)); // miss
        let after_miss = m.now();
        m.store(Line(1)); // hit
        let after_hit = m.now() - after_miss;
        assert!(after_miss > after_hit, "miss must cost more than hit");
        let r = m.finish();
        assert_eq!(r.l1.hits, 1);
        assert_eq!(r.l1.misses, 1);
    }

    #[test]
    fn flush_invalidates_so_next_store_misses() {
        let mut m = machine();
        m.store(Line(7));
        m.flush_async(Line(7));
        m.store(Line(7));
        let r = m.finish();
        assert_eq!(r.l1.misses, 2, "post-flush access must miss");
    }

    #[test]
    fn sync_flush_stalls_async_overlaps() {
        let cfg = MachineConfig::default();
        let mut a = Machine::new(cfg);
        a.store(Line(1));
        a.flush_async(Line(1));
        a.work(1000); // plenty of time to overlap
        let ra = a.finish();

        let mut s = Machine::new(cfg);
        s.store(Line(1));
        s.flush_sync(Line(1));
        s.work(1000);
        let rs = s.finish();

        assert!(
            rs.cycles > ra.cycles,
            "sync {0} !> async {1}",
            rs.cycles,
            ra.cycles
        );
        assert!(rs.fase_stall_cycles > 0);
        assert_eq!(ra.fase_stall_cycles, 0);
    }

    #[test]
    fn eager_storm_is_flush_bound() {
        // One flush per store: the run is bound by serialized write-back
        // service (issue cost + queue stalls), the Table I mechanism.
        let cfg = MachineConfig::default();
        let mut m = Machine::new(cfg);
        for i in 0..1000u64 {
            m.store(Line(i));
            m.flush_async(Line(i));
            m.work(1);
        }
        let r = m.finish();
        assert!(
            r.cycles >= 1000 * cfg.timing.t_flush_service * 9 / 10,
            "storm must be service-bound: {} cycles",
            r.cycles
        );
    }

    #[test]
    fn fence_drains_queue() {
        let mut m = machine();
        m.store(Line(1));
        m.flush_async(Line(1));
        m.fence();
        let stall = m.finish().fase_stall_cycles;
        assert!(stall > 0, "fence right after flush must wait");
    }

    #[test]
    fn contention_raises_miss_ratio() {
        let mk = |p: f64| {
            let cfg = MachineConfig {
                contention_miss_prob: p,
                ..Default::default()
            };
            let mut m = Machine::new(cfg);
            for i in 0..20_000u64 {
                m.store(Line(i % 64)); // fits easily in L1
            }
            m.finish().l1.miss_ratio()
        };
        let quiet = mk(0.0);
        let noisy = mk(0.3);
        assert!(quiet < 0.01, "quiet={quiet}");
        assert!(noisy > 0.1, "noisy={noisy}");
    }

    #[test]
    fn contention_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let cfg = MachineConfig {
                contention_miss_prob: 0.2,
                seed,
                ..Default::default()
            };
            let mut m = Machine::new(cfg);
            for i in 0..5000u64 {
                m.store(Line(i % 50));
            }
            m.finish()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1).l1, run(2).l1);
    }

    #[test]
    fn clwb_mode_keeps_the_line_resident() {
        let cfg = MachineConfig {
            flush_invalidates: false,
            ..Default::default()
        };
        let mut m = Machine::new(cfg);
        m.store(Line(7));
        m.flush_async(Line(7));
        m.store(Line(7)); // would miss under clflush; hits under clwb
        let r = m.finish();
        assert_eq!(r.l1.misses, 1, "only the cold miss");
        assert_eq!(r.l1.hits, 1);
    }

    #[test]
    fn clwb_is_faster_than_clflush_on_reuse_heavy_streams() {
        let run = |invalidate: bool| {
            let cfg = MachineConfig {
                flush_invalidates: invalidate,
                ..Default::default()
            };
            let mut m = Machine::new(cfg);
            for i in 0..5_000u64 {
                let l = Line(i % 8);
                m.store(l);
                if i % 4 == 3 {
                    m.flush_async(l);
                }
                m.work(20);
            }
            m.finish().cycles
        };
        assert!(run(false) < run(true), "clwb must avoid the re-miss cost");
    }

    #[test]
    fn report_flush_ratio() {
        let mut m = machine();
        for i in 0..10u64 {
            m.store(Line(i));
        }
        m.flush_async(Line(0));
        m.flush_sync(Line(1));
        let r = m.finish();
        assert_eq!(r.flushes(), 2);
        assert!((r.flush_ratio(10) - 0.2).abs() < 1e-12);
        assert_eq!(r.flush_ratio(0), 0.0);
    }

    #[test]
    fn flush_run_amortizes_the_issue_cost() {
        let cfg = MachineConfig::default();
        let run_of = |coalesced: bool| {
            let mut m = Machine::new(cfg);
            for i in 0..32u64 {
                m.store(Line(i));
            }
            if coalesced {
                m.flush_run(Line(0), 32);
            } else {
                for i in 0..32u64 {
                    m.flush_sync(Line(i));
                }
            }
            m.fence();
            m.finish()
        };
        let swept = run_of(true);
        let sync = run_of(false);
        assert_eq!(swept.flushes_sync, sync.flushes_sync, "same flush count");
        assert!(
            swept.cycles < sync.cycles,
            "sweep {} !< per-line sync {}",
            swept.cycles,
            sync.cycles
        );
        // the saving is at least the amortized issue cost
        assert!(sync.cycles - swept.cycles >= 31 * cfg.timing.t_flush_issue / 2);
    }

    #[test]
    fn flush_run_invalidates_every_line_in_the_run() {
        let mut m = machine();
        for i in 0..8u64 {
            m.store(Line(i));
        }
        m.flush_run(Line(0), 8);
        for i in 0..8u64 {
            m.store(Line(i));
        }
        let r = m.finish();
        assert_eq!(r.l1.misses, 16, "every post-sweep access must re-miss");
        assert_eq!(r.flushes_sync, 8);
    }

    #[test]
    fn empty_flush_run_is_free() {
        let mut m = machine();
        m.flush_run(Line(5), 0);
        let r = m.finish();
        assert_eq!(r.cycles, 0);
        assert_eq!(r.flushes(), 0);
    }

    #[test]
    fn finish_drains_outstanding() {
        let mut m = machine();
        m.store(Line(1));
        m.flush_async(Line(1));
        let r = m.finish();
        // completion time of the flush is included in cycles
        assert!(r.cycles >= TimingConfig::default().t_flush_service);
    }
}
