//! Deterministic cycle-cost model for persistence policies.
//!
//! The model captures the three performance mechanisms the paper
//! identifies (Sections I–II):
//!
//! 1. **Direct flush cost with overlap** — a `clflush` issued mid-FASE is
//!    asynchronous: the write-back proceeds while the program computes.
//!    The memory system services write-backs serially and admits a
//!    bounded number of outstanding flushes; when the program issues
//!    flushes faster than they are serviced, it stalls (this is why eager
//!    flushing is 22× slower, Table I).
//! 2. **End-of-FASE stall** — flushes issued at a FASE boundary are
//!    ordered by a fence and cannot overlap computation; the CPU stalls
//!    for the full drain (this is why lazy flushing is slow despite the
//!    minimum flush count).
//! 3. **Indirect invalidation cost** — `clflush` evicts the line from L1,
//!    so the next access misses; accounted by the machine model.

use std::collections::VecDeque;

/// Cycle costs and queue geometry. Defaults are calibrated against the
/// paper's testbed ratios (see EXPERIMENTS.md; absolute cycle values are
/// arbitrary, ratios matter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConfig {
    /// Cycles per abstract work unit.
    pub t_work: u64,
    /// Base cycles per persistent store (the store itself).
    pub t_store: u64,
    /// Extra cycles for an L1 miss (fetch from farther away).
    pub t_miss: u64,
    /// Cycles to issue a flush instruction (pipeline cost).
    pub t_flush_issue: u64,
    /// Memory-side service time per flushed line.
    pub t_flush_service: u64,
    /// Outstanding asynchronous flushes the memory system admits.
    pub flush_slots: usize,
    /// Cycles for an `sfence` (ordering point at FASE end).
    pub t_fence: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            t_work: 1,
            t_store: 2,
            t_miss: 80,
            t_flush_issue: 24,
            t_flush_service: 70,
            flush_slots: 4,
            t_fence: 25,
        }
    }
}

/// The asynchronous write-back queue of one hardware context.
///
/// Completion times are tracked explicitly; service is serialized (one
/// memory channel per context), and at most `slots` flushes may be
/// outstanding — issuing into a full queue stalls the thread until the
/// oldest completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushQueue {
    slots: usize,
    service: u64,
    /// Completion cycles of in-flight flushes (monotonically increasing).
    inflight: VecDeque<u64>,
    /// Total cycles threads have stalled waiting for a free slot.
    pub stall_cycles: u64,
    /// Total flushes that passed through the queue.
    pub issued: u64,
}

impl FlushQueue {
    /// New queue with `slots` outstanding entries and `service` cycles of
    /// serialized service time per flush.
    pub fn new(slots: usize, service: u64) -> Self {
        assert!(slots > 0);
        FlushQueue {
            slots,
            service,
            inflight: VecDeque::with_capacity(slots),
            stall_cycles: 0,
            issued: 0,
        }
    }

    /// Retire entries completed by cycle `now`.
    #[inline]
    fn retire(&mut self, now: u64) {
        while matches!(self.inflight.front(), Some(&c) if c <= now) {
            self.inflight.pop_front();
        }
    }

    /// Issue an asynchronous flush at cycle `now`. Returns the cycle at
    /// which the *thread* may continue (≥ `now` if it had to stall for a
    /// slot). The flush itself completes later.
    #[inline]
    pub fn issue_async(&mut self, now: u64) -> u64 {
        self.retire(now);
        let mut t = now;
        if self.inflight.len() == self.slots {
            // wait for the oldest in-flight flush
            let head = self.inflight.pop_front().expect("non-empty");
            self.stall_cycles += head - t;
            t = head;
        }
        let start = self.inflight.back().copied().unwrap_or(t).max(t);
        self.inflight.push_back(start + self.service);
        self.issued += 1;
        t
    }

    /// Issue a synchronous flush at cycle `now`: the thread waits for the
    /// write-back (and everything queued before it) to complete.
    #[inline]
    pub fn issue_sync(&mut self, now: u64) -> u64 {
        let resume = self.issue_async(now);
        let done = *self.inflight.back().expect("just pushed");
        self.stall_cycles += done - resume;
        self.inflight.clear(); // everything before it has completed too
        done
    }

    /// Wait until the queue is empty (drain at a fence). Returns the
    /// completion cycle.
    #[inline]
    pub fn drain(&mut self, now: u64) -> u64 {
        self.retire(now);
        let done = self.inflight.back().copied().unwrap_or(now).max(now);
        self.stall_cycles += done - now;
        self.inflight.clear();
        done
    }

    /// Number of flushes still in flight at cycle `now`, **without**
    /// touching the queue: completed-but-unretired entries are merely
    /// skipped, not popped. This is the probe telemetry sampling uses —
    /// observing depth must never perturb timing state.
    #[inline]
    pub fn depth_at(&self, now: u64) -> usize {
        self.inflight.iter().filter(|&&c| c > now).count()
    }

    /// Number of flushes currently in flight at cycle `now`. Pure alias
    /// of [`FlushQueue::depth_at`] (it used to retire completed entries
    /// as a side effect; observation is now read-only).
    pub fn outstanding(&self, now: u64) -> usize {
        self.depth_at(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_flush_overlaps_until_slots_fill() {
        let mut q = FlushQueue::new(2, 100);
        // two issues at t=0: no stall
        assert_eq!(q.issue_async(0), 0);
        assert_eq!(q.issue_async(0), 0);
        // third at t=0: waits for first completion at t=100
        assert_eq!(q.issue_async(0), 100);
        assert_eq!(q.stall_cycles, 100);
    }

    #[test]
    fn service_is_serialized() {
        let mut q = FlushQueue::new(4, 100);
        q.issue_async(0); // completes 100
        q.issue_async(0); // completes 200 (serialized)
        assert_eq!(q.drain(0), 200);
    }

    #[test]
    fn spaced_issues_never_stall() {
        let mut q = FlushQueue::new(2, 50);
        for i in 0..10 {
            let now = q.issue_async(i * 100);
            assert_eq!(now, i * 100, "flush {i} should not stall");
        }
        assert_eq!(q.stall_cycles, 0);
    }

    #[test]
    fn sync_flush_waits_for_completion() {
        let mut q = FlushQueue::new(4, 100);
        let done = q.issue_sync(10);
        assert_eq!(done, 110);
        assert_eq!(q.stall_cycles, 100);
        // queue drained by the sync
        assert_eq!(q.outstanding(done), 0);
    }

    #[test]
    fn drain_on_empty_is_free() {
        let mut q = FlushQueue::new(2, 100);
        assert_eq!(q.drain(42), 42);
        assert_eq!(q.stall_cycles, 0);
    }

    #[test]
    fn retire_frees_slots() {
        let mut q = FlushQueue::new(1, 10);
        assert_eq!(q.issue_async(0), 0); // completes at 10
                                         // at t=20 the slot is free again
        assert_eq!(q.issue_async(20), 20);
        assert_eq!(q.stall_cycles, 0);
    }

    #[test]
    fn depth_probe_is_pure() {
        // Observing queue depth must not mutate timing state: the probed
        // queue stays structurally identical and every subsequent issue
        // behaves exactly like an unprobed clone's.
        let mut q = FlushQueue::new(2, 100);
        q.issue_async(0); // completes 100
        q.issue_async(0); // completes 200
        let unprobed = q.clone();
        assert_eq!(q.depth_at(0), 2);
        assert_eq!(q.depth_at(150), 1, "completed head skipped, not popped");
        assert_eq!(q.depth_at(500), 0);
        assert_eq!(q.outstanding(150), 1);
        assert_eq!(q, unprobed, "probing left the queue untouched");
        // identical future behaviour
        let mut probed = q;
        let mut clean = unprobed;
        for t in [0u64, 120, 300] {
            assert_eq!(probed.issue_async(t), clean.issue_async(t));
            assert_eq!(probed.stall_cycles, clean.stall_cycles);
        }
        assert_eq!(probed, clean);
    }

    #[test]
    fn eager_saturation_costs_service_per_flush() {
        // Issuing n flushes back-to-back costs ~n·service once the
        // slots fill — the Table I mechanism.
        let mut q = FlushQueue::new(4, 90);
        let mut now = 0;
        for _ in 0..1000 {
            now = q.issue_async(now) + 1; // 1 cycle of work between
        }
        let done = q.drain(now);
        assert!(
            done > 1000 * 85,
            "saturated queue must serialize: done={done}"
        );
    }
}
