//! SC — the online adaptive software cache (paper Sections III-B/C).
//!
//! Wraps the fixed-capacity [`ScPolicy`] with the full online pipeline:
//! FASE renaming of the write stream → bursty sampling → linear-time
//! `reuse(k)` → MRC → knee selection → cache resize. The cache starts at
//! the default capacity (8) and is resized once when the first burst
//! completes (hibernation is infinite by default, as in the paper's
//! evaluation; finite hibernation re-adapts periodically — the paper's
//! future-work extension).

use crate::policy::{PersistPolicy, StoreOutcome};
use crate::sc::ScPolicy;
use nvcache_locality::{select_cache_size, BurstSampler, KneeConfig};
use nvcache_trace::Line;

/// Configuration of the adaptive controller.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Knee selection parameters (default size 8, max 50 — paper values).
    pub knee: KneeConfig,
    /// Writes per sampling burst. The paper uses 64M on full-size runs;
    /// the default here matches the scaled-down workloads and is
    /// overridden by the harness (`--scale`).
    pub burst_len: usize,
    /// Writes to skip between bursts; `None` analyzes exactly once
    /// (paper behaviour).
    pub hibernation: Option<u64>,
    /// Modeled bookkeeping instructions to record one sampled write.
    pub sample_instr_per_write: u64,
    /// Modeled instructions per sampled write for the linear-time MRC
    /// analysis at burst end (reuse(k) for all k + knee pick).
    pub analysis_instr_per_write: u64,
    /// Disable the built-in burst sampler: capacity changes only through
    /// [`AdaptiveScPolicy::apply_capacity`]. This is the serving-layer
    /// configuration, where an external controller (one per KV shard)
    /// owns the sampler and resizes the cache between requests instead
    /// of inside the store hot path.
    pub external_control: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            knee: KneeConfig::default(),
            burst_len: 1 << 16,
            hibernation: None,
            sample_instr_per_write: 1,
            analysis_instr_per_write: 10,
            external_control: false,
        }
    }
}

/// The online adaptive software-cache policy ("SC").
#[derive(Debug, Clone)]
pub struct AdaptiveScPolicy {
    sc: ScPolicy,
    sampler: BurstSampler,
    cfg: AdaptiveConfig,
    /// FASE epoch for renaming sampled writes.
    epoch: u64,
    /// Modeled instruction overhead not yet charged to the machine.
    pending_instrs: u64,
    /// Capacities chosen so far (diagnostics; Fig. 8 / Section IV-G).
    selections: Vec<usize>,
    /// Most recent resize as `(knee, new_capacity)`, drained by the
    /// telemetry-enabled driver via `take_capacity_change`.
    last_change: Option<(usize, usize)>,
}

impl AdaptiveScPolicy {
    /// New adaptive cache starting at `cfg.knee.default_size`.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        AdaptiveScPolicy {
            sc: ScPolicy::new(cfg.knee.default_size),
            sampler: BurstSampler::new(cfg.burst_len, cfg.knee.max_size, cfg.hibernation),
            epoch: 0,
            pending_instrs: 0,
            selections: Vec::new(),
            last_change: None,
            cfg,
        }
    }

    /// Current cache capacity.
    pub fn capacity(&self) -> usize {
        self.sc.capacity()
    }

    /// Capacities selected by completed analyses, in order.
    pub fn selections(&self) -> &[usize] {
        &self.selections
    }

    /// The wrapped fixed-capacity cache (hit/miss counters).
    pub fn sc(&self) -> &ScPolicy {
        &self.sc
    }

    /// Apply a capacity decision made by an **external** controller (a
    /// KV-shard adaptation loop that runs its own [`BurstSampler`] over
    /// the serving write stream). `knee` is the MRC knee that motivated
    /// the choice, `size` the new capacity; the clamp to
    /// `[min_size, max_size]` and the bookkeeping (selection history,
    /// pending `take_capacity_change`) match the internal path, so
    /// telemetry pins the resize identically. Entries evicted by a
    /// shrink are appended to `out` for the caller to flush.
    pub fn apply_capacity(&mut self, knee: usize, size: usize, out: &mut Vec<Line>) {
        let size = size.clamp(self.cfg.knee.min_size.max(1), self.cfg.knee.max_size);
        self.selections.push(size);
        self.last_change = Some((knee, size));
        self.sc.set_capacity_into(size, out);
    }
}

/// Low line-address bits preserved by FASE renaming.
const RENAME_ADDR_BITS: u32 = 40;
/// Epoch bits folded above the address bits. The renamed key is
/// `epoch[23:0] ++ line[39:0]`.
const RENAME_EPOCH_BITS: u32 = 64 - RENAME_ADDR_BITS;

/// FASE renaming: combine the FASE epoch with a line address so that an
/// address reused across FASEs looks like a fresh datum to the sampler.
///
/// The epoch is masked into a 24-bit window **explicitly**: renamed keys
/// alias with period 2^24 FASEs (epoch e and e + 2^24 rename a line
/// identically). That is harmless for reuse sampling — a burst spans a
/// handful of FASEs, nowhere near 16M — but the masking must be explicit
/// rather than relying on `epoch << 40` discarding high bits, which
/// reads as (and previously was) a silent overflow.
///
/// Public so external adaptation controllers (e.g. the KV serving
/// layer's per-shard sampler) rename their store streams identically to
/// the in-policy sampler.
#[inline]
pub fn rename_for_epoch(epoch: u64, line: u64) -> u64 {
    let window = epoch & ((1u64 << RENAME_EPOCH_BITS) - 1);
    (window << RENAME_ADDR_BITS) | (line & ((1u64 << RENAME_ADDR_BITS) - 1))
}

impl PersistPolicy for AdaptiveScPolicy {
    fn name(&self) -> &'static str {
        "SC"
    }

    fn sc_capacity(&self) -> Option<usize> {
        Some(self.capacity())
    }

    #[inline]
    fn on_store(&mut self, line: Line, out: &mut Vec<Line>) -> StoreOutcome {
        if self.cfg.external_control {
            // Serving-layer mode: the shard controller samples and
            // resizes; the hot path is a plain fixed-capacity cache.
            return self.sc.on_store(line, out);
        }
        // Sample with FASE renaming (Section III-B): an address reused
        // across FASEs must look like a fresh datum.
        let renamed = rename_for_epoch(self.epoch, line.0);
        if matches!(
            self.sampler.phase(),
            nvcache_locality::sampling::SamplerPhase::Burst
        ) {
            self.pending_instrs += self.cfg.sample_instr_per_write;
        }
        if let Some(mrc) = self.sampler.push(renamed) {
            // +1 safety entry: the timescale conversion's c-axis is
            // quantized by the running average c = k − reuse(k), which
            // can place a sharp cliff one size early; one spare entry
            // guards the cliff foot at negligible cost.
            let knee = select_cache_size(&mrc, &self.cfg.knee);
            let size = (knee + 1).min(self.cfg.knee.max_size);
            self.selections.push(size);
            self.last_change = Some((knee, size));
            self.pending_instrs += self.cfg.analysis_instr_per_write * self.cfg.burst_len as u64;
            self.sc.set_capacity_into(size, out);
        }
        self.sc.on_store(line, out)
    }

    fn on_fase_end(&mut self, out: &mut Vec<Line>) {
        self.epoch += 1;
        self.sc.on_fase_end(out);
    }

    fn store_overhead_instrs(&self) -> u64 {
        self.sc.store_overhead_instrs()
    }

    fn drain_extra_instrs(&mut self) -> u64 {
        std::mem::take(&mut self.pending_instrs)
    }

    fn take_capacity_change(&mut self) -> Option<(usize, usize)> {
        self.last_change.take()
    }

    fn reset(&mut self) {
        let cfg = self.cfg.clone();
        *self = AdaptiveScPolicy::new(cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_preserves_line_at_epoch_zero() {
        assert_eq!(rename_for_epoch(0, 0xABCD), 0xABCD);
    }

    #[test]
    fn rename_distinguishes_epochs_within_the_window() {
        let line = 0x1234;
        let keys: Vec<u64> = (0..4).map(|e| rename_for_epoch(e, line)).collect();
        assert!(keys.windows(2).all(|w| w[0] != w[1]));
        // the line bits survive untouched under every epoch
        assert!(keys
            .iter()
            .all(|k| k & ((1u64 << RENAME_ADDR_BITS) - 1) == line));
    }

    #[test]
    fn rename_epoch_wraps_with_documented_period() {
        // Aliasing period is exactly 2^24 FASEs — and, critically, an
        // epoch past the window masks cleanly instead of overflowing
        // the shift (regression: `epoch << 40` truncated silently).
        let line = 0x42;
        let period = 1u64 << RENAME_EPOCH_BITS;
        assert_eq!(rename_for_epoch(period, line), rename_for_epoch(0, line));
        assert_eq!(
            rename_for_epoch(period + 5, line),
            rename_for_epoch(5, line)
        );
        assert_ne!(
            rename_for_epoch(period - 1, line),
            rename_for_epoch(period, line)
        );
        // no bits of a huge epoch leak above the 64-bit key
        let k = rename_for_epoch(u64::MAX, line);
        assert_eq!(k >> RENAME_ADDR_BITS, (1u64 << RENAME_EPOCH_BITS) - 1);
    }

    fn small_cfg(burst: usize) -> AdaptiveConfig {
        AdaptiveConfig {
            burst_len: burst,
            ..Default::default()
        }
    }

    /// Feed `rounds` round-robin passes over `wss` lines within one FASE.
    fn feed_cyclic(p: &mut AdaptiveScPolicy, wss: u64, rounds: usize, out: &mut Vec<Line>) {
        for _ in 0..rounds {
            for i in 0..wss {
                p.on_store(Line(i), out);
            }
        }
    }

    #[test]
    fn starts_at_default_capacity() {
        let p = AdaptiveScPolicy::new(AdaptiveConfig::default());
        assert_eq!(p.capacity(), KneeConfig::default().default_size);
    }

    #[test]
    fn adapts_to_working_set_knee() {
        let mut p = AdaptiveScPolicy::new(small_cfg(2000));
        let mut out = Vec::new();
        feed_cyclic(&mut p, 23, 200, &mut out);
        assert_eq!(p.selections().len(), 1, "one burst analyzed");
        let cap = p.capacity();
        assert!(
            (21..=24).contains(&cap),
            "capacity should land at the knee (≈23, +1 safety), got {cap}"
        );
    }

    #[test]
    fn growing_capacity_eliminates_evictions() {
        let mut p = AdaptiveScPolicy::new(small_cfg(1000));
        let mut out = Vec::new();
        feed_cyclic(&mut p, 20, 200, &mut out);
        let evictions_before = out.len();
        assert!(evictions_before > 0, "default size 8 thrashes on wss 20");
        out.clear();
        feed_cyclic(&mut p, 20, 200, &mut out);
        assert!(
            out.is_empty(),
            "after adaptation the working set fits: {} evictions",
            out.len()
        );
    }

    #[test]
    fn analysis_happens_once_with_infinite_hibernation() {
        let mut p = AdaptiveScPolicy::new(small_cfg(500));
        let mut out = Vec::new();
        feed_cyclic(&mut p, 10, 1000, &mut out);
        assert_eq!(p.selections().len(), 1);
    }

    #[test]
    fn finite_hibernation_readapts_to_phase_change() {
        let mut cfg = small_cfg(1000);
        cfg.hibernation = Some(100);
        let mut p = AdaptiveScPolicy::new(cfg);
        let mut out = Vec::new();
        feed_cyclic(&mut p, 10, 300, &mut out);
        let first = p.capacity();
        // phase change: much larger working set (different lines)
        for _ in 0..300 {
            for i in 0..40u64 {
                p.on_store(Line(1000 + i), &mut out);
            }
        }
        let second = p.capacity();
        assert!(p.selections().len() >= 2);
        assert!(
            second > first,
            "re-adaptation must grow the cache: {first} → {second}"
        );
    }

    #[test]
    fn fase_renaming_prevents_cross_fase_reuse_inflation() {
        // ab|ab|ab…: without renaming the MRC would show a perfect
        // 2-line cache; with renaming every write is a cold miss, the
        // MRC is knee-less, and selection falls back to max_size.
        let mut p = AdaptiveScPolicy::new(small_cfg(600));
        let mut out = Vec::new();
        for _ in 0..400 {
            p.on_store(Line(1), &mut out);
            p.on_store(Line(2), &mut out);
            p.on_fase_end(&mut out);
        }
        assert_eq!(p.selections().len(), 1);
        assert_eq!(
            p.capacity(),
            KneeConfig::default().max_size,
            "no intra-FASE reuse ⇒ flat MRC ⇒ max size"
        );
    }

    #[test]
    fn overhead_instrs_are_charged_and_drained() {
        let mut p = AdaptiveScPolicy::new(small_cfg(100));
        let mut out = Vec::new();
        feed_cyclic(&mut p, 5, 30, &mut out);
        let drained = p.drain_extra_instrs();
        assert!(drained > 0, "sampling + analysis must cost something");
        assert_eq!(p.drain_extra_instrs(), 0, "drain empties the counter");
    }

    #[test]
    fn external_control_disables_internal_sampling() {
        let mut cfg = small_cfg(100);
        cfg.external_control = true;
        let mut p = AdaptiveScPolicy::new(cfg);
        let mut out = Vec::new();
        feed_cyclic(&mut p, 30, 100, &mut out);
        assert!(p.selections().is_empty(), "no internal analysis may run");
        assert_eq!(p.capacity(), KneeConfig::default().default_size);
        assert_eq!(p.drain_extra_instrs(), 0, "no sampling cost either");
        assert!(p.take_capacity_change().is_none());
    }

    #[test]
    fn apply_capacity_resizes_and_records_like_internal_path() {
        let mut cfg = small_cfg(100);
        cfg.external_control = true;
        let mut p = AdaptiveScPolicy::new(cfg);
        let mut out = Vec::new();
        feed_cyclic(&mut p, 20, 5, &mut out);
        out.clear();
        p.apply_capacity(23, 24, &mut out);
        assert_eq!(p.capacity(), 24);
        assert_eq!(p.selections(), &[24]);
        assert_eq!(p.take_capacity_change(), Some((23, 24)));
        assert!(p.take_capacity_change().is_none(), "drained once");
        // shrink below the live working set evicts into `out`
        p.apply_capacity(2, 3, &mut out);
        assert_eq!(p.capacity(), 3);
        assert!(!out.is_empty(), "shrink must surface evictions");
        // clamped to the knee config bounds
        p.apply_capacity(99, 10_000, &mut out);
        assert_eq!(p.capacity(), KneeConfig::default().max_size);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut p = AdaptiveScPolicy::new(small_cfg(100));
        let mut out = Vec::new();
        feed_cyclic(&mut p, 30, 50, &mut out);
        p.reset();
        assert_eq!(p.capacity(), KneeConfig::default().default_size);
        assert!(p.selections().is_empty());
    }
}
