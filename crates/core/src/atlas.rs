//! AT — the Atlas table (paper Section II-A): the state-of-the-art
//! baseline. A fixed-size, direct-mapped table of modified cache-line
//! addresses. On a write whose address is absent, the conflicting slot's
//! occupant (if any) is flushed and replaced; at FASE end the whole
//! table is flushed. Equivalent to a direct-mapped, fixed-size software
//! cache — cheap, but conflict misses force avoidable flushes.

use crate::policy::{PersistPolicy, StoreOutcome};
use nvcache_trace::Line;

/// The Atlas-table policy. The paper's Atlas uses 8 entries.
#[derive(Debug, Clone)]
pub struct AtlasPolicy {
    table: Vec<Option<Line>>,
}

impl AtlasPolicy {
    /// New table with `size` entries (paper default: 8).
    pub fn new(size: usize) -> Self {
        assert!(size >= 1);
        AtlasPolicy {
            table: vec![None; size],
        }
    }

    /// Table entries.
    pub fn size(&self) -> usize {
        self.table.len()
    }

    #[inline]
    fn slot(&self, line: Line) -> usize {
        (line.0 % self.table.len() as u64) as usize
    }
}

impl PersistPolicy for AtlasPolicy {
    fn name(&self) -> &'static str {
        "AT"
    }

    #[inline]
    fn on_store(&mut self, line: Line, out: &mut Vec<Line>) -> StoreOutcome {
        let s = self.slot(line);
        match self.table[s] {
            Some(existing) if existing == line => StoreOutcome::Combined,
            Some(conflicting) => {
                out.push(conflicting);
                self.table[s] = Some(line);
                StoreOutcome::Inserted
            }
            None => {
                self.table[s] = Some(line);
                StoreOutcome::Inserted
            }
        }
    }

    fn on_fase_end(&mut self, out: &mut Vec<Line>) {
        for slot in self.table.iter_mut() {
            if let Some(line) = slot.take() {
                out.push(line);
            }
        }
    }

    fn store_overhead_instrs(&self) -> u64 {
        2 // modulo + compare
    }

    fn reset(&mut self) {
        self.table.iter_mut().for_each(|s| *s = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_writes_combine() {
        let mut p = AtlasPolicy::new(8);
        let mut out = Vec::new();
        for _ in 0..100 {
            p.on_store(Line(3), &mut out);
        }
        assert!(out.is_empty());
        p.on_fase_end(&mut out);
        assert_eq!(out, vec![Line(3)]);
    }

    #[test]
    fn conflict_evicts_old_entry() {
        let mut p = AtlasPolicy::new(8);
        let mut out = Vec::new();
        p.on_store(Line(1), &mut out);
        p.on_store(Line(9), &mut out); // 9 % 8 == 1 % 8
        assert_eq!(out, vec![Line(1)], "conflicting line flushed");
        out.clear();
        p.on_fase_end(&mut out);
        assert_eq!(out, vec![Line(9)]);
    }

    #[test]
    fn no_conflict_no_flush() {
        let mut p = AtlasPolicy::new(8);
        let mut out = Vec::new();
        for i in 0..8u64 {
            p.on_store(Line(i), &mut out);
        }
        assert!(out.is_empty(), "distinct slots fit");
        p.on_fase_end(&mut out);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn direct_mapping_thrashes_where_lru_would_not() {
        // Alternating 0, 8 conflicts in every slot-0 access: AT flushes
        // every time — the weakness SC's full associativity removes.
        let mut p = AtlasPolicy::new(8);
        let mut out = Vec::new();
        for i in 0..100 {
            p.on_store(Line(if i % 2 == 0 { 0 } else { 8 }), &mut out);
        }
        assert_eq!(out.len(), 99);
    }

    #[test]
    fn fase_end_clears_table() {
        let mut p = AtlasPolicy::new(4);
        let mut out = Vec::new();
        p.on_store(Line(1), &mut out);
        p.on_fase_end(&mut out);
        out.clear();
        p.on_fase_end(&mut out);
        assert!(out.is_empty(), "second end flushes nothing");
    }

    #[test]
    fn reset_empties_without_flushing() {
        let mut p = AtlasPolicy::new(4);
        let mut out = Vec::new();
        p.on_store(Line(1), &mut out);
        p.reset();
        p.on_fase_end(&mut out);
        assert!(out.is_empty());
    }
}
