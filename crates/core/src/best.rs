//! BEST — no flushes at all. Not a valid persistence technique (a crash
//! loses everything), but the paper's upper bound: minimal flush count
//! (zero) and perfect overlap, used to bound how much headroom remains
//! above SC (Figures 4 and 6).

use crate::policy::{PersistPolicy, StoreOutcome};
use nvcache_trace::Line;

/// The no-op upper-bound policy.
#[derive(Debug, Default, Clone)]
pub struct BestPolicy;

impl BestPolicy {
    /// New instance.
    pub fn new() -> Self {
        BestPolicy
    }
}

impl PersistPolicy for BestPolicy {
    fn name(&self) -> &'static str {
        "BEST"
    }

    #[inline]
    fn on_store(&mut self, _line: Line, _out: &mut Vec<Line>) -> StoreOutcome {
        // BEST buffers nothing and flushes nothing; every write is
        // trivially "combined" (no flush obligation is ever created)
        StoreOutcome::Combined
    }

    fn on_fase_end(&mut self, _out: &mut Vec<Line>) {}

    fn store_overhead_instrs(&self) -> u64 {
        0
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_flushes() {
        let mut p = BestPolicy::new();
        let mut out = Vec::new();
        for i in 0..100 {
            p.on_store(Line(i), &mut out);
        }
        p.on_fase_end(&mut out);
        assert!(out.is_empty());
        assert_eq!(p.store_overhead_instrs(), 0);
    }
}
