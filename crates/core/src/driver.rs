//! Trace replay drivers: policy × trace → flush counts and/or simulated
//! execution.
//!
//! Two modes:
//! * [`flush_stats`] — exact flush accounting only (no timing); this is
//!   how Table III's flush ratios are produced, and it is fast enough
//!   for the paper-size write counts.
//! * [`run_policy`] — full machine simulation: cycles, instructions and
//!   L1 behaviour per thread (Tables I/II/IV, Figures 4–6). Threads are
//!   simulated independently (per-thread software caches share nothing,
//!   paper Section II-B); parallel execution time is the maximum
//!   per-thread cycle count.
//!
//! Both drivers replay trace threads on real OS threads when asked to
//! via [`ReplayOptions`] (`flush_stats_with` / `run_policy_with`).
//! Because per-thread policies and machines share nothing and
//! per-thread RNG seeds are fixed functions of the thread id, the
//! parallel result is **bit-identical** to the sequential one: workers
//! return `(tid, result)` pairs that are re-assembled in tid order
//! before any aggregation happens.
//!
//! Dispatch architecture: the replay loops are generic over
//! `P: PersistPolicy + ?Sized`, and the public entry points match on
//! [`PolicyKind`] **once** (via `dispatch_kind!`) to instantiate them
//! with each concrete policy type. Every `on_store` in the hot loop is
//! therefore a direct, inlinable call — no vtable, no box. The same
//! generic loops instantiated with `dyn PersistPolicy` form the
//! reference engine ([`flush_stats_dyn`] & friends), kept for
//! differential testing and for benchmarking the dispatch win.

use crate::policy::{PersistPolicy, PolicyKind, StoreOutcome};
use nvcache_cachesim::{Machine, MachineConfig, MachineReport};
use nvcache_telemetry::{
    CounterId, EventKind, HistId, NullRecorder, Recorder, Sample, TelemetryConfig,
    TelemetrySnapshot, ThreadRecorder,
};
use nvcache_trace::{Event, ThreadTrace, Trace};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How replay work is scheduled across OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOptions {
    /// Maximum number of OS threads used to simulate trace threads.
    /// `1` replays sequentially on the calling thread (the default).
    pub parallelism: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions { parallelism: 1 }
    }
}

impl ReplayOptions {
    /// Sequential replay on the calling thread.
    pub fn sequential() -> Self {
        ReplayOptions::default()
    }

    /// Use up to `n` OS threads (clamped to at least 1).
    pub fn with_parallelism(n: usize) -> Self {
        ReplayOptions {
            parallelism: n.max(1),
        }
    }

    /// Use every hardware thread the host offers.
    pub fn parallel() -> Self {
        Self::with_parallelism(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

/// Run `f` over `items` on up to `workers` scoped OS threads, returning
/// results in item order. Work is claimed from a shared atomic cursor,
/// so scheduling is dynamic, but each result is keyed by its index —
/// the output is independent of which worker ran what.
fn fan_out<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // one result buffer per worker thread, pre-sized to
                    // the worst case (this worker claims every item) so
                    // the claim loop never reallocates
                    let mut done = Vec::with_capacity(items.len());
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        done.push((i, f(i, &items[i])));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("replay worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every item processed"))
        .collect()
}

/// Exact flush accounting of one policy over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FlushStats {
    /// Technique label ("ER", "AT", …).
    pub label: String,
    /// Persistent stores observed.
    pub stores: u64,
    /// Flushes issued mid-FASE (async-eligible).
    pub flushes_async: u64,
    /// Flushes issued at FASE ends.
    pub flushes_sync: u64,
}

impl FlushStats {
    /// Total flushes.
    pub fn flushes(&self) -> u64 {
        self.flushes_async + self.flushes_sync
    }

    /// Flushes per persistent store — the paper's "data flush ratio"
    /// (Table III).
    pub fn flush_ratio(&self) -> f64 {
        if self.stores == 0 {
            0.0
        } else {
            self.flushes() as f64 / self.stores as f64
        }
    }
}

/// Flush accounting of a single trace thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct ThreadFlushes {
    stores: u64,
    fl_async: u64,
    fl_sync: u64,
}

/// Events per inner replay chunk. The replay loops walk the trace in
/// fixed-size chunks: the event slice of one chunk stays L1-resident
/// while the policy and machine state churn, and the telemetry batch
/// below is drained once per chunk instead of once per event.
const REPLAY_CHUNK: usize = 1024;

/// Per-chunk batch of the per-store telemetry counters. Counter sums
/// are order-independent, so accumulating them in registers and
/// draining at chunk boundaries (and before any rare event that also
/// writes counters) leaves every snapshot bit-identical while keeping
/// shard-array traffic off the per-event path. Timeline `emit`s and
/// histogram `observe`s are *not* batched — the ring is bounded (drop
/// order matters) and histogram samples depend on in-loop state.
#[derive(Default, Clone, Copy)]
struct StoreBatch {
    stores: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl StoreBatch {
    /// Flush the batched counts into the recorder shard and reset.
    /// Evictions and async flushes are counted 1:1 on this path.
    #[inline]
    fn drain_into<R: Recorder>(&mut self, rec: &mut R) {
        if R::ENABLED {
            rec.add(CounterId::Stores, self.stores);
            rec.add(CounterId::ScHits, self.hits);
            rec.add(CounterId::ScMisses, self.misses);
            rec.add(CounterId::ScEvictions, self.evictions);
            rec.add(CounterId::FlushesAsync, self.evictions);
            *self = StoreBatch::default();
        }
    }
}

/// Replay one thread through `policy`, counting flushes.
///
/// Generic over the policy (`?Sized`, so both concrete types and
/// `dyn PersistPolicy` instantiate the same loop) and the telemetry
/// [`Recorder`]: with [`NullRecorder`] every `R::ENABLED` block is a
/// constant-false branch the optimizer deletes, so the uninstrumented
/// path is byte-for-byte the pre-telemetry loop. Timeline timestamps in
/// this (untimed) driver are the per-thread trace-event ordinal.
fn flush_thread<P: PersistPolicy + ?Sized, R: Recorder>(
    thread: &ThreadTrace,
    policy: &mut P,
    rec: &mut R,
) -> ThreadFlushes {
    let mut acc = ThreadFlushes::default();
    let mut depth = 0usize;
    let mut buf = Vec::with_capacity(FLUSH_BUF_CAPACITY);
    let mut t = 0u64; // event ordinal (telemetry time axis)
    let mut fase_stores = 0u64;
    let mut batch = StoreBatch::default();
    for chunk in thread.events.chunks(REPLAY_CHUNK) {
        for e in chunk {
            t += 1;
            match e {
                Event::Write(l) => {
                    acc.stores += 1;
                    let outcome = policy.on_store(*l, &mut buf);
                    acc.fl_async += buf.len() as u64;
                    if R::ENABLED {
                        fase_stores += 1;
                        batch.stores += 1;
                        match outcome {
                            StoreOutcome::Combined => {
                                batch.hits += 1;
                                rec.emit(EventKind::ScHit, t, l.0, 0);
                            }
                            StoreOutcome::Inserted => {
                                batch.misses += 1;
                                rec.emit(EventKind::ScInsert, t, l.0, 0);
                            }
                        }
                        for victim in &buf {
                            batch.evictions += 1;
                            rec.emit(EventKind::ScEvict, t, victim.0, 0);
                        }
                        if let Some((knee, cap)) = policy.take_capacity_change() {
                            rec.incr(CounterId::CapacityChanges);
                            rec.emit(EventKind::CapacityChange, t, knee as u64, cap as u64);
                        }
                    }
                    buf.clear();
                }
                Event::FaseBegin => {
                    depth += 1;
                    if depth == 1 {
                        policy.on_fase_begin();
                        if R::ENABLED {
                            rec.incr(CounterId::FaseBegins);
                            rec.emit(EventKind::FaseBegin, t, 0, 0);
                            fase_stores = 0;
                        }
                    }
                }
                Event::FaseEnd => {
                    if depth == 1 {
                        policy.on_fase_end(&mut buf);
                        acc.fl_sync += buf.len() as u64;
                        if R::ENABLED {
                            rec.incr(CounterId::FaseEnds);
                            rec.add(CounterId::FlushesSync, buf.len() as u64);
                            rec.observe(HistId::FaseStores, fase_stores);
                            rec.emit(EventKind::FaseEnd, t, fase_stores, buf.len() as u64);
                        }
                        buf.clear();
                    }
                    depth = depth.saturating_sub(1);
                }
                Event::Read(_) | Event::Work(_) => {}
            }
        }
        batch.drain_into(rec);
    }
    // program exit: remaining buffered lines must still be persisted
    policy.on_fase_end(&mut buf);
    acc.fl_sync += buf.len() as u64;
    if R::ENABLED {
        rec.add(CounterId::FlushesSync, buf.len() as u64);
    }
    acc
}

/// Monomorphize `$body` over the concrete policy type `$kind` names.
/// `$build` binds to a fresh-instance constructor in each arm, so a
/// replay loop inside `$body` compiles once per policy (and per
/// recorder), with the policy callbacks devirtualized and inlined.
macro_rules! dispatch_kind {
    ($kind:expr, $build:ident => $body:expr) => {
        match $kind {
            PolicyKind::Eager => {
                let $build = crate::eager::EagerPolicy::new;
                $body
            }
            PolicyKind::Lazy => {
                let $build = crate::lazy::LazyPolicy::new;
                $body
            }
            PolicyKind::Atlas { size } => {
                let $build = || crate::atlas::AtlasPolicy::new(*size);
                $body
            }
            PolicyKind::ScFixed { capacity } => {
                let $build = || crate::sc::ScPolicy::new(*capacity);
                $body
            }
            PolicyKind::ScAdaptive(cfg) => {
                let $build = || crate::adaptive::AdaptiveScPolicy::new(cfg.clone());
                $body
            }
            PolicyKind::Best => {
                let $build = crate::best::BestPolicy::new;
                $body
            }
        }
    };
}

/// Count flushes exactly, without the timing model (sequentially).
pub fn flush_stats(trace: &Trace, kind: &PolicyKind) -> FlushStats {
    flush_stats_with(trace, kind, &ReplayOptions::sequential())
}

/// Count flushes exactly, replaying trace threads on up to
/// `opts.parallelism` OS threads. Identical output to [`flush_stats`]
/// for every `opts`.
pub fn flush_stats_with(trace: &Trace, kind: &PolicyKind, opts: &ReplayOptions) -> FlushStats {
    let per = dispatch_kind!(kind, build => {
        fan_out(&trace.threads, opts.parallelism, |_tid, t| {
            flush_thread(t, &mut build(), &mut NullRecorder)
        })
    });
    aggregate_flushes(kind, per)
}

/// Count flushes exactly with telemetry enabled: same accounting as
/// [`flush_stats_with`], plus a [`TelemetrySnapshot`] of counters,
/// histograms and the merged event timeline. Per-thread shards are
/// merged in thread-id order, so the snapshot is identical for every
/// `opts.parallelism`.
pub fn flush_stats_traced(
    trace: &Trace,
    kind: &PolicyKind,
    opts: &ReplayOptions,
    tcfg: &TelemetryConfig,
) -> (FlushStats, TelemetrySnapshot) {
    let per = dispatch_kind!(kind, build => {
        fan_out(&trace.threads, opts.parallelism, |tid, t| {
            let mut rec = ThreadRecorder::new(tid as u32, tcfg);
            let flushes = flush_thread(t, &mut build(), &mut rec);
            (flushes, rec)
        })
    });
    let mut flushes = Vec::with_capacity(per.len());
    let mut shards = Vec::with_capacity(per.len());
    for (f, r) in per {
        flushes.push(f);
        shards.push(r);
    }
    (
        aggregate_flushes(kind, flushes),
        TelemetrySnapshot::from_threads(shards),
    )
}

/// [`flush_stats_with`] through the boxed `dyn PersistPolicy` shim —
/// the reference engine. Instantiates the *same* generic loop with
/// `dyn PersistPolicy`, so any divergence from the monomorphized path
/// is a dispatch bug; the differential suite pins them bit-identical.
pub fn flush_stats_dyn(trace: &Trace, kind: &PolicyKind, opts: &ReplayOptions) -> FlushStats {
    let per = fan_out(&trace.threads, opts.parallelism, |_tid, t| {
        flush_thread(t, &mut *kind.build(), &mut NullRecorder)
    });
    aggregate_flushes(kind, per)
}

/// [`flush_stats_traced`] through the boxed `dyn` shim (reference).
pub fn flush_stats_traced_dyn(
    trace: &Trace,
    kind: &PolicyKind,
    opts: &ReplayOptions,
    tcfg: &TelemetryConfig,
) -> (FlushStats, TelemetrySnapshot) {
    let per = fan_out(&trace.threads, opts.parallelism, |tid, t| {
        let mut rec = ThreadRecorder::new(tid as u32, tcfg);
        let flushes = flush_thread(t, &mut *kind.build(), &mut rec);
        (flushes, rec)
    });
    let mut flushes = Vec::with_capacity(per.len());
    let mut shards = Vec::with_capacity(per.len());
    for (f, r) in per {
        flushes.push(f);
        shards.push(r);
    }
    (
        aggregate_flushes(kind, flushes),
        TelemetrySnapshot::from_threads(shards),
    )
}

fn aggregate_flushes(kind: &PolicyKind, per: Vec<ThreadFlushes>) -> FlushStats {
    let mut stats = FlushStats {
        label: kind.label().to_string(),
        stores: 0,
        flushes_async: 0,
        flushes_sync: 0,
    };
    for t in per {
        stats.stores += t.stores;
        stats.flushes_async += t.fl_async;
        stats.flushes_sync += t.fl_sync;
    }
    stats
}

/// How FASE-boundary flush batches reach the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPath {
    /// One synchronous flush per line: issue, then wait for the
    /// write-back to complete before the next line (the Atlas
    /// baseline).
    #[default]
    Sync,
    /// Sort the batch and issue it as coalesced ranged sweeps: one
    /// issue cost per contiguous run, write-backs in flight until the
    /// commit fence drains them. Flush *counts* are identical to
    /// [`FlushPath::Sync`] — only the cycle cost changes.
    Pipelined,
}

impl FlushPath {
    /// Stable label for reports ("sync" / "pipelined").
    pub fn label(&self) -> &'static str {
        match self {
            FlushPath::Sync => "sync",
            FlushPath::Pipelined => "pipelined",
        }
    }
}

/// Configuration of a timed run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunConfig {
    /// Per-thread hardware context configuration.
    pub machine: MachineConfig,
    /// FASE-boundary flush mechanism.
    pub flush_path: FlushPath,
}

/// Outcome of a timed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Technique label.
    pub label: String,
    /// Persistent stores.
    pub stores: u64,
    /// Simulated execution time: max cycles over threads.
    pub cycles: u64,
    /// Total instructions over threads.
    pub instructions: u64,
    /// Aggregate L1 miss ratio over threads.
    pub l1_miss_ratio: f64,
    /// Per-thread machine reports.
    pub per_thread: Vec<MachineReport>,
}

impl RunReport {
    /// Total flushes over threads.
    pub fn flushes(&self) -> u64 {
        self.per_thread.iter().map(|r| r.flushes()).sum()
    }

    /// Flush ratio over the whole run.
    pub fn flush_ratio(&self) -> f64 {
        if self.stores == 0 {
            0.0
        } else {
            self.flushes() as f64 / self.stores as f64
        }
    }

    /// Speedup of this run over `base` (cycles ratio).
    pub fn speedup_over(&self, base: &RunReport) -> f64 {
        base.cycles as f64 / self.cycles as f64
    }
}

/// Pre-sized capacity for the per-event flush buffer: policies emit at
/// most a handful of victims per store and a working set per FASE end;
/// starting at 64 avoids regrowth in the hot loop for every workload in
/// the harness.
const FLUSH_BUF_CAPACITY: usize = 64;

/// Drain one FASE-boundary flush batch into the machine over the
/// configured [`FlushPath`], with per-flush telemetry when enabled.
///
/// Sync: one synchronous flush per line, in policy emission order.
/// Pipelined: sort the batch and issue each maximal contiguous run as
/// one ranged sweep ([`Machine::flush_run`]); a duplicate line — no
/// current policy emits one at a FASE end, but the contract must not
/// depend on that — terminates its run and is swept again as a
/// singleton, so the flush *count* matches the sync path exactly. The
/// caller's fence pays the drain either way.
fn drain_fase_buf<R: Recorder>(
    m: &mut Machine,
    buf: &mut Vec<nvcache_trace::Line>,
    path: FlushPath,
    rec: &mut R,
) {
    match path {
        FlushPath::Sync => {
            for line in buf.drain(..) {
                m.flush_sync(line);
                if R::ENABLED {
                    rec.incr(CounterId::FlushesSync);
                    rec.emit(EventKind::FlushSync, m.now(), line.0, 0);
                    rec.observe(HistId::QueueDepth, m.queue_depth() as u64);
                }
            }
        }
        FlushPath::Pipelined => {
            buf.sort_unstable();
            let mut i = 0;
            while i < buf.len() {
                let start = buf[i];
                let mut len = 1u64;
                while i + (len as usize) < buf.len() && buf[i + len as usize].0 == start.0 + len {
                    len += 1;
                }
                m.flush_run(start, len);
                if R::ENABLED {
                    for k in 0..len {
                        rec.incr(CounterId::FlushesSync);
                        rec.emit(EventKind::FlushSync, m.now(), start.0 + k, 0);
                    }
                    rec.observe(HistId::QueueDepth, m.queue_depth() as u64);
                }
                i += len as usize;
            }
            buf.clear();
        }
    }
}

/// Simulate one trace thread with full timing. `tid` decorrelates the
/// per-thread contention RNG: the seed is a pure function of the
/// config seed and the thread id, never of scheduling.
///
/// Generic over the telemetry [`Recorder`] like [`flush_thread`]; here
/// the timeline time axis is the machine's simulated cycle clock, and
/// the instrumentation additionally samples flush-queue depth and
/// attributes stall cycles to sync flushes vs. FASE-end drains.
fn replay_thread<P: PersistPolicy + ?Sized, R: Recorder>(
    thread: &ThreadTrace,
    tid: usize,
    policy: &mut P,
    cfg: &RunConfig,
    rec: &mut R,
) -> (u64, MachineReport) {
    let mut stores = 0u64;
    let mut mcfg = cfg.machine;
    mcfg.seed = cfg.machine.seed.wrapping_add(tid as u64 * 0x9e37_79b9);
    let mut m = Machine::new(mcfg);
    let mut depth = 0usize;
    let mut buf = Vec::with_capacity(FLUSH_BUF_CAPACITY);
    let mut fase_stores = 0u64;
    let mut batch = StoreBatch::default();
    // runtime-sampler state (recorder-on only): FASE ordinal drives the
    // cadence; hit/miss running totals survive the per-chunk batch
    // drain. Everything sampled is a pure function of the workload
    // (simulated cycles, queue depth, counters) — never wall-clock — so
    // parallel replay snapshots stay bit-identical to sequential.
    let mut fases = 0u64;
    let (mut cum_hits, mut cum_misses) = (0u64, 0u64);
    for chunk in thread.events.chunks(REPLAY_CHUNK) {
        for e in chunk {
            match e {
                Event::Write(l) => {
                    stores += 1;
                    m.store(*l);
                    let outcome = policy.on_store(*l, &mut buf);
                    m.software_overhead(policy.store_overhead_instrs());
                    let extra = policy.drain_extra_instrs();
                    if extra > 0 {
                        m.software_overhead(extra);
                    }
                    if R::ENABLED {
                        fase_stores += 1;
                        batch.stores += 1;
                        match outcome {
                            StoreOutcome::Combined => {
                                batch.hits += 1;
                                cum_hits += 1;
                                rec.emit(EventKind::ScHit, m.now(), l.0, 0);
                            }
                            StoreOutcome::Inserted => {
                                batch.misses += 1;
                                cum_misses += 1;
                                rec.emit(EventKind::ScInsert, m.now(), l.0, 0);
                            }
                        }
                        if let Some((knee, cap)) = policy.take_capacity_change() {
                            rec.incr(CounterId::CapacityChanges);
                            rec.emit(EventKind::CapacityChange, m.now(), knee as u64, cap as u64);
                        }
                    }
                    for victim in buf.drain(..) {
                        m.flush_async(victim);
                        if R::ENABLED {
                            batch.evictions += 1;
                            rec.emit(EventKind::FlushAsync, m.now(), victim.0, 0);
                            rec.observe(HistId::QueueDepth, m.queue_depth() as u64);
                        }
                    }
                }
                Event::Read(l) => m.load(*l),
                Event::Work(u) => m.work(*u),
                Event::FaseBegin => {
                    depth += 1;
                    if depth == 1 {
                        policy.on_fase_begin();
                        if R::ENABLED {
                            rec.incr(CounterId::FaseBegins);
                            rec.emit(EventKind::FaseBegin, m.now(), 0, 0);
                            fase_stores = 0;
                        }
                    }
                }
                Event::FaseEnd => {
                    if depth == 1 {
                        policy.on_fase_end(&mut buf);
                        if R::ENABLED {
                            let n = buf.len() as u64;
                            let stall_before = m.fase_stall_cycles();
                            drain_fase_buf(&mut m, &mut buf, cfg.flush_path, rec);
                            let sync_stall = m.fase_stall_cycles() - stall_before;
                            rec.observe(HistId::SyncFlushStall, sync_stall);
                            let drain_before = m.fase_stall_cycles();
                            m.fence();
                            let drain_stall = m.fase_stall_cycles() - drain_before;
                            rec.observe(HistId::DrainStall, drain_stall);
                            rec.incr(CounterId::Fences);
                            rec.incr(CounterId::FaseEnds);
                            rec.observe(HistId::FaseStores, fase_stores);
                            rec.emit(EventKind::QueueDrain, m.now(), drain_stall, 0);
                            rec.emit(EventKind::FaseEnd, m.now(), fase_stores, n);
                            fases += 1;
                            if rec.sample_due(fases) {
                                let total = cum_hits + cum_misses;
                                rec.sample(Sample {
                                    t: m.now(),
                                    tid: tid as u32,
                                    ring_depth: m.queue_depth() as u64,
                                    capacity: policy.sc_capacity().map_or(0, |c| c as u64),
                                    hit_ratio_bp: (cum_hits * 10_000)
                                        .checked_div(total)
                                        .unwrap_or(0)
                                        as u32,
                                    stalls: m.fase_stall_cycles(),
                                });
                            }
                        } else {
                            drain_fase_buf(&mut m, &mut buf, cfg.flush_path, rec);
                            m.fence();
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
            }
        }
        batch.drain_into(rec);
    }
    // flush whatever the policy still buffers at program end
    policy.on_fase_end(&mut buf);
    drain_fase_buf(&mut m, &mut buf, cfg.flush_path, rec);
    m.fence();
    if R::ENABLED {
        rec.incr(CounterId::Fences);
        rec.add(CounterId::FaseStallCycles, m.fase_stall_cycles());
        rec.add(CounterId::QueueStallCycles, m.total_stall_cycles());
    }
    (stores, m.finish())
}

/// Replay `trace` under `kind` with full timing (sequentially). Each
/// thread gets a fresh policy instance and hardware context
/// (per-thread seeds differ so contention schedules decorrelate).
pub fn run_policy(trace: &Trace, kind: &PolicyKind, cfg: &RunConfig) -> RunReport {
    run_policy_with(trace, kind, cfg, &ReplayOptions::sequential())
}

/// Replay `trace` under `kind` with full timing, simulating trace
/// threads on up to `opts.parallelism` OS threads. Identical output to
/// [`run_policy`] for every `opts`: threads share nothing, and
/// per-thread results are aggregated in thread-id order.
pub fn run_policy_with(
    trace: &Trace,
    kind: &PolicyKind,
    cfg: &RunConfig,
    opts: &ReplayOptions,
) -> RunReport {
    let per = dispatch_kind!(kind, build => {
        fan_out(&trace.threads, opts.parallelism, |tid, t| {
            replay_thread(t, tid, &mut build(), cfg, &mut NullRecorder)
        })
    });
    aggregate_runs(kind, per)
}

/// Timed replay with telemetry enabled: same [`RunReport`] as
/// [`run_policy_with`], plus a [`TelemetrySnapshot`] whose timeline is
/// stamped with simulated machine cycles. Deterministic across
/// `opts.parallelism` (shards merge in thread-id order).
pub fn run_policy_traced(
    trace: &Trace,
    kind: &PolicyKind,
    cfg: &RunConfig,
    opts: &ReplayOptions,
    tcfg: &TelemetryConfig,
) -> (RunReport, TelemetrySnapshot) {
    let per = dispatch_kind!(kind, build => {
        fan_out(&trace.threads, opts.parallelism, |tid, t| {
            let mut rec = ThreadRecorder::new(tid as u32, tcfg);
            let out = replay_thread(t, tid, &mut build(), cfg, &mut rec);
            (out, rec)
        })
    });
    let mut runs = Vec::with_capacity(per.len());
    let mut shards = Vec::with_capacity(per.len());
    for (r, rec) in per {
        runs.push(r);
        shards.push(rec);
    }
    (
        aggregate_runs(kind, runs),
        TelemetrySnapshot::from_threads(shards),
    )
}

/// [`run_policy_with`] through the boxed `dyn PersistPolicy` shim —
/// the timed reference engine (same generic loop, vtable dispatch).
pub fn run_policy_dyn(
    trace: &Trace,
    kind: &PolicyKind,
    cfg: &RunConfig,
    opts: &ReplayOptions,
) -> RunReport {
    let per = fan_out(&trace.threads, opts.parallelism, |tid, t| {
        replay_thread(t, tid, &mut *kind.build(), cfg, &mut NullRecorder)
    });
    aggregate_runs(kind, per)
}

/// [`run_policy_traced`] through the boxed `dyn` shim (reference).
pub fn run_policy_traced_dyn(
    trace: &Trace,
    kind: &PolicyKind,
    cfg: &RunConfig,
    opts: &ReplayOptions,
    tcfg: &TelemetryConfig,
) -> (RunReport, TelemetrySnapshot) {
    let per = fan_out(&trace.threads, opts.parallelism, |tid, t| {
        let mut rec = ThreadRecorder::new(tid as u32, tcfg);
        let out = replay_thread(t, tid, &mut *kind.build(), cfg, &mut rec);
        (out, rec)
    });
    let mut runs = Vec::with_capacity(per.len());
    let mut shards = Vec::with_capacity(per.len());
    for (r, rec) in per {
        runs.push(r);
        shards.push(rec);
    }
    (
        aggregate_runs(kind, runs),
        TelemetrySnapshot::from_threads(shards),
    )
}

fn aggregate_runs(kind: &PolicyKind, per: Vec<(u64, MachineReport)>) -> RunReport {
    let stores = per.iter().map(|(s, _)| *s).sum();
    let per_thread: Vec<MachineReport> = per.into_iter().map(|(_, r)| r).collect();

    let cycles = per_thread.iter().map(|r| r.cycles).max().unwrap_or(0);
    let instructions = per_thread.iter().map(|r| r.instructions).sum();
    let (hits, misses) = per_thread
        .iter()
        .fold((0u64, 0u64), |(h, m_), r| (h + r.l1.hits, m_ + r.l1.misses));
    let l1_miss_ratio = if hits + misses == 0 {
        0.0
    } else {
        misses as f64 / (hits + misses) as f64
    };

    RunReport {
        label: kind.label().to_string(),
        stores,
        cycles,
        instructions,
        l1_miss_ratio,
        per_thread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvcache_trace::synth::{cyclic, sequential, SynthOpts};
    use nvcache_trace::{Line, ThreadTrace};

    fn opts(wpf: usize) -> SynthOpts {
        SynthOpts {
            writes_per_fase: wpf,
            work_per_write: 2,
            ..Default::default()
        }
    }

    #[test]
    fn eager_flush_ratio_is_one() {
        let tr = cyclic(8, 100, &opts(50));
        let s = flush_stats(&tr, &PolicyKind::Eager);
        assert_eq!(s.stores, 800);
        assert!((s.flush_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lazy_reaches_minimum_flush_count() {
        // 8-line working set, 50 writes per FASE → ≥ 8 flushes per FASE
        let tr = cyclic(8, 100, &opts(50));
        let s = flush_stats(&tr, &PolicyKind::Lazy);
        // 800 writes / 50 per fase = 16 fases; each flushes 8 lines
        assert_eq!(s.flushes(), 16 * 8);
        assert_eq!(s.flushes_async, 0, "LA never flushes mid-FASE");
    }

    #[test]
    fn best_never_flushes() {
        let tr = cyclic(8, 100, &opts(50));
        let s = flush_stats(&tr, &PolicyKind::Best);
        assert_eq!(s.flushes(), 0);
    }

    #[test]
    fn policy_ordering_on_thrashy_trace() {
        // Working set 12 > Atlas table 8 but ≤ SC capacity 12:
        // ER > AT > SC = LA must hold on flush counts. (12 is chosen so
        // only slots 0–3 of the mod-8 table conflict; a multiple of 8
        // would conflict on every store and degenerate AT to ER.)
        let tr = cyclic(12, 200, &opts(100));
        let er = flush_stats(&tr, &PolicyKind::Eager).flushes();
        let at = flush_stats(&tr, &PolicyKind::Atlas { size: 8 }).flushes();
        let sc = flush_stats(&tr, &PolicyKind::ScFixed { capacity: 12 }).flushes();
        let la = flush_stats(&tr, &PolicyKind::Lazy).flushes();
        assert!(er > at, "ER {er} !> AT {at}");
        assert!(at > sc, "AT {at} !> SC {sc}");
        assert_eq!(sc, la, "right-sized SC reaches the LA minimum");
    }

    #[test]
    fn adaptive_sc_approaches_lazy_minimum() {
        // Long enough that the pre-adaptation thrash (cache still at the
        // default size 8 during the first burst) is amortized away.
        let tr = cyclic(23, 10_000, &opts(500));
        let cfg = crate::adaptive::AdaptiveConfig {
            burst_len: 2000,
            ..Default::default()
        };
        let sc = flush_stats(&tr, &PolicyKind::ScAdaptive(cfg));
        let la = flush_stats(&tr, &PolicyKind::Lazy);
        let ratio = sc.flushes() as f64 / la.flushes() as f64;
        assert!(
            ratio < 1.3,
            "adaptive SC must be near the LA minimum: {ratio}"
        );
    }

    #[test]
    fn exit_flushes_unterminated_fase_state() {
        // a trace ending mid-FASE still persists buffered lines
        let mut t = ThreadTrace::new();
        t.fase_begin();
        t.write(Line(1));
        t.write(Line(2));
        let tr = Trace { threads: vec![t] };
        let s = flush_stats(&tr, &PolicyKind::ScFixed { capacity: 8 });
        assert_eq!(s.flushes(), 2);
    }

    #[test]
    fn timed_run_ordering_matches_paper_figure4() {
        // On a thrashy working set (12 lines vs AT's 8-entry table),
        // simulated times must order ER > AT > SC > BEST.
        let tr = cyclic(12, 500, &opts(100));
        let cfg = RunConfig::default();
        let er = run_policy(&tr, &PolicyKind::Eager, &cfg);
        let at = run_policy(&tr, &PolicyKind::Atlas { size: 8 }, &cfg);
        let sc = run_policy(&tr, &PolicyKind::ScFixed { capacity: 12 }, &cfg);
        let best = run_policy(&tr, &PolicyKind::Best, &cfg);
        assert!(
            er.cycles > at.cycles,
            "ER {} !> AT {}",
            er.cycles,
            at.cycles
        );
        assert!(
            at.cycles > sc.cycles,
            "AT {} !> SC {}",
            at.cycles,
            sc.cycles
        );
        assert!(
            sc.cycles > best.cycles,
            "SC {} !> BEST {}",
            sc.cycles,
            best.cycles
        );
    }

    #[test]
    fn lazy_pays_fase_end_stall() {
        let tr = cyclic(32, 200, &opts(64));
        let cfg = RunConfig::default();
        let la = run_policy(&tr, &PolicyKind::Lazy, &cfg);
        let sc = run_policy(&tr, &PolicyKind::ScFixed { capacity: 32 }, &cfg);
        let la_stall: u64 = la.per_thread.iter().map(|r| r.fase_stall_cycles).sum();
        let sc_stall: u64 = sc.per_thread.iter().map(|r| r.fase_stall_cycles).sum();
        // LA and right-sized SC flush identical line sets at FASE end;
        // both stall — but LA must not stall *less* (it has no async
        // head start). Equal sets ⇒ similar stalls; key property is the
        // flush counts match while ER's stall profile differs.
        assert!(la_stall > 0 && sc_stall > 0);
        assert_eq!(la.flushes(), sc.flushes());
    }

    #[test]
    fn fewer_flushes_means_fewer_l1_misses() {
        let tr = sequential(16, 400, &opts(100));
        let cfg = RunConfig::default();
        let er = run_policy(&tr, &PolicyKind::Eager, &cfg);
        let best = run_policy(&tr, &PolicyKind::Best, &cfg);
        assert!(
            er.l1_miss_ratio > best.l1_miss_ratio,
            "flushing must hurt L1: ER {} vs BEST {}",
            er.l1_miss_ratio,
            best.l1_miss_ratio
        );
    }

    #[test]
    fn multithreaded_cycles_is_max_not_sum() {
        let single = cyclic(8, 100, &opts(50));
        let tr = nvcache_trace::synth::replicate(&single, 4);
        let cfg = RunConfig::default();
        let r1 = run_policy(&single, &PolicyKind::Atlas { size: 8 }, &cfg);
        let r4 = run_policy(&tr, &PolicyKind::Atlas { size: 8 }, &cfg);
        assert_eq!(r4.per_thread.len(), 4);
        // identical per-thread work ⇒ parallel time ≈ single time
        assert!(r4.cycles <= r1.cycles * 11 / 10);
        assert!(r4.instructions >= r1.instructions * 4);
    }

    #[test]
    fn replay_options_clamp_and_probe() {
        assert_eq!(ReplayOptions::default().parallelism, 1);
        assert_eq!(ReplayOptions::sequential().parallelism, 1);
        assert_eq!(ReplayOptions::with_parallelism(0).parallelism, 1);
        assert_eq!(ReplayOptions::with_parallelism(6).parallelism, 6);
        assert!(ReplayOptions::parallel().parallelism >= 1);
    }

    #[test]
    fn fan_out_preserves_item_order() {
        let items: Vec<usize> = (0..37).collect();
        for workers in [1, 2, 3, 8, 64] {
            let out = fan_out(&items, workers, |i, &x| (i, x * 2));
            assert_eq!(out.len(), 37, "workers={workers}");
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(*doubled, i * 2);
            }
        }
        let empty: Vec<usize> = Vec::new();
        assert!(fan_out(&empty, 8, |_, &x| x).is_empty());
    }

    #[test]
    fn parallel_replay_is_bit_identical_to_sequential() {
        let single = cyclic(12, 200, &opts(50));
        let tr = nvcache_trace::synth::replicate(&single, 8);
        let cfg = RunConfig::default();
        for kind in [
            PolicyKind::Eager,
            PolicyKind::Atlas { size: 8 },
            PolicyKind::ScFixed { capacity: 12 },
        ] {
            let seq = run_policy_with(&tr, &kind, &cfg, &ReplayOptions::sequential());
            for par in [2, 4, 8, 32] {
                let p = run_policy_with(&tr, &kind, &cfg, &ReplayOptions::with_parallelism(par));
                assert_eq!(seq, p, "{} parallelism={par}", kind.label());
            }
            let fseq = flush_stats_with(&tr, &kind, &ReplayOptions::sequential());
            let fpar = flush_stats_with(&tr, &kind, &ReplayOptions::with_parallelism(4));
            assert_eq!(fseq, fpar, "{}", kind.label());
        }
    }

    #[test]
    fn traced_flush_stats_match_untraced_and_counters_agree() {
        use nvcache_telemetry::CounterId;
        let single = cyclic(12, 200, &opts(50));
        let tr = nvcache_trace::synth::replicate(&single, 4);
        let tcfg = TelemetryConfig::default();
        for kind in [
            PolicyKind::Eager,
            PolicyKind::Lazy,
            PolicyKind::Atlas { size: 8 },
            PolicyKind::ScFixed { capacity: 12 },
            PolicyKind::Best,
        ] {
            let plain = flush_stats(&tr, &kind);
            let (stats, snap) = flush_stats_traced(&tr, &kind, &ReplayOptions::sequential(), &tcfg);
            assert_eq!(
                plain,
                stats,
                "{}: telemetry must not perturb results",
                kind.label()
            );
            assert_eq!(snap.counter(CounterId::Stores), stats.stores);
            assert_eq!(snap.counter(CounterId::FlushesAsync), stats.flushes_async);
            assert_eq!(snap.counter(CounterId::FlushesSync), stats.flushes_sync);
            assert_eq!(
                snap.counter(CounterId::ScHits) + snap.counter(CounterId::ScMisses),
                stats.stores
            );
        }
    }

    #[test]
    fn traced_snapshot_is_parallelism_invariant() {
        let single = cyclic(12, 200, &opts(50));
        let tr = nvcache_trace::synth::replicate(&single, 8);
        let tcfg = TelemetryConfig::default();
        let kind = PolicyKind::ScFixed { capacity: 12 };
        let (seq_stats, seq_snap) =
            flush_stats_traced(&tr, &kind, &ReplayOptions::sequential(), &tcfg);
        for par in [2, 4, 8] {
            let (s, snap) =
                flush_stats_traced(&tr, &kind, &ReplayOptions::with_parallelism(par), &tcfg);
            assert_eq!(seq_stats, s);
            assert_eq!(seq_snap.counters, snap.counters, "parallelism={par}");
            assert_eq!(seq_snap.per_thread, snap.per_thread);
            assert_eq!(seq_snap.timeline, snap.timeline);
        }
        let cfg = RunConfig::default();
        let (seq_rep, seq_tsnap) =
            run_policy_traced(&tr, &kind, &cfg, &ReplayOptions::sequential(), &tcfg);
        let (par_rep, par_tsnap) =
            run_policy_traced(&tr, &kind, &cfg, &ReplayOptions::with_parallelism(4), &tcfg);
        assert_eq!(seq_rep, par_rep);
        assert_eq!(seq_tsnap.counters, par_tsnap.counters);
        assert_eq!(seq_tsnap.timeline, par_tsnap.timeline);
    }

    #[test]
    fn traced_timed_run_matches_untraced_report() {
        use nvcache_telemetry::CounterId;
        let tr = cyclic(12, 300, &opts(80));
        let cfg = RunConfig::default();
        let tcfg = TelemetryConfig::default();
        for kind in [
            PolicyKind::Eager,
            PolicyKind::Atlas { size: 8 },
            PolicyKind::ScFixed { capacity: 12 },
        ] {
            let plain = run_policy(&tr, &kind, &cfg);
            let (rep, snap) =
                run_policy_traced(&tr, &kind, &cfg, &ReplayOptions::sequential(), &tcfg);
            assert_eq!(
                plain,
                rep,
                "{}: telemetry must not perturb timing",
                kind.label()
            );
            assert_eq!(
                snap.counter(CounterId::FlushesAsync) + snap.counter(CounterId::FlushesSync),
                rep.flushes(),
                "{}",
                kind.label()
            );
        }
    }

    #[test]
    fn adaptive_capacity_changes_hit_the_timeline() {
        let tr = cyclic(23, 5_000, &opts(500));
        let cfg = crate::adaptive::AdaptiveConfig {
            burst_len: 2000,
            ..Default::default()
        };
        let (_, snap) = flush_stats_traced(
            &tr,
            &PolicyKind::ScAdaptive(cfg),
            &ReplayOptions::sequential(),
            &TelemetryConfig::default(),
        );
        let changes = snap.capacity_timeline();
        assert_eq!(changes.len(), 1, "one burst ⇒ one resize event");
        let (_, _, knee, cap) = changes[0];
        assert!((21..=24).contains(&cap), "capacity near the knee: {cap}");
        assert!(knee <= cap);
        assert_eq!(
            snap.counter(nvcache_telemetry::CounterId::CapacityChanges),
            1
        );
    }

    #[test]
    fn pipelined_path_keeps_counts_and_cuts_cycles() {
        // Lazy over a sequential working set is the coalescing best
        // case: the FASE-end batch is one contiguous run. Counts must
        // not move; cycles must.
        let tr = sequential(32, 400, &opts(64));
        let sync_cfg = RunConfig::default();
        let pipe_cfg = RunConfig {
            flush_path: FlushPath::Pipelined,
            ..Default::default()
        };
        for kind in [
            PolicyKind::Lazy,
            PolicyKind::ScFixed { capacity: 32 },
            PolicyKind::Atlas { size: 8 },
            PolicyKind::Eager,
        ] {
            let s = run_policy(&tr, &kind, &sync_cfg);
            let p = run_policy(&tr, &kind, &pipe_cfg);
            assert_eq!(s.flushes(), p.flushes(), "{}: count parity", kind.label());
            assert_eq!(s.stores, p.stores);
            assert!(
                p.cycles <= s.cycles,
                "{}: pipelined {} !<= sync {}",
                kind.label(),
                p.cycles,
                s.cycles
            );
        }
        // and for a flush-bound configuration the win is a real step
        // change: under clwb (no re-miss dilution) the FASE-end drain
        // is almost pure flush time, where the sweep saves the per-line
        // issue cost (94 → ~70 cycles/line)
        let clwb = MachineConfig {
            flush_invalidates: false,
            ..Default::default()
        };
        let s = run_policy(
            &tr,
            &PolicyKind::Lazy,
            &RunConfig {
                machine: clwb,
                flush_path: FlushPath::Sync,
            },
        );
        let p = run_policy(
            &tr,
            &PolicyKind::Lazy,
            &RunConfig {
                machine: clwb,
                flush_path: FlushPath::Pipelined,
            },
        );
        assert_eq!(s.flushes(), p.flushes());
        assert!(
            s.cycles as f64 / p.cycles as f64 >= 1.15,
            "lazy sweep win must exceed 1.15x: sync {} pipelined {}",
            s.cycles,
            p.cycles
        );
    }

    #[test]
    fn pipelined_replay_is_parallelism_invariant_and_traceable() {
        let single = cyclic(12, 200, &opts(50));
        let tr = nvcache_trace::synth::replicate(&single, 4);
        let cfg = RunConfig {
            flush_path: FlushPath::Pipelined,
            ..Default::default()
        };
        let kind = PolicyKind::ScFixed { capacity: 12 };
        let seq = run_policy_with(&tr, &kind, &cfg, &ReplayOptions::sequential());
        for par in [2, 4] {
            let p = run_policy_with(&tr, &kind, &cfg, &ReplayOptions::with_parallelism(par));
            assert_eq!(seq, p, "parallelism={par}");
        }
        let (rep, snap) = run_policy_traced(
            &tr,
            &kind,
            &cfg,
            &ReplayOptions::sequential(),
            &TelemetryConfig::default(),
        );
        assert_eq!(seq, rep, "telemetry must not perturb the pipelined path");
        assert_eq!(
            snap.counter(nvcache_telemetry::CounterId::FlushesSync),
            rep.per_thread.iter().map(|r| r.flushes_sync).sum::<u64>()
        );
    }

    #[test]
    fn flush_path_labels() {
        assert_eq!(FlushPath::Sync.label(), "sync");
        assert_eq!(FlushPath::Pipelined.label(), "pipelined");
        assert_eq!(FlushPath::default(), FlushPath::Sync);
    }

    #[test]
    fn flush_stats_and_run_policy_agree_on_counts() {
        let tr = cyclic(12, 300, &opts(80));
        for kind in [
            PolicyKind::Eager,
            PolicyKind::Lazy,
            PolicyKind::Atlas { size: 8 },
            PolicyKind::ScFixed { capacity: 12 },
            PolicyKind::Best,
        ] {
            let fast = flush_stats(&tr, &kind);
            let timed = run_policy(&tr, &kind, &RunConfig::default());
            assert_eq!(fast.flushes(), timed.flushes(), "{}", kind.label());
            assert_eq!(fast.stores, timed.stores);
        }
    }
}
