//! Trace replay drivers: policy × trace → flush counts and/or simulated
//! execution.
//!
//! Two modes:
//! * [`flush_stats`] — exact flush accounting only (no timing); this is
//!   how Table III's flush ratios are produced, and it is fast enough
//!   for the paper-size write counts.
//! * [`run_policy`] — full machine simulation: cycles, instructions and
//!   L1 behaviour per thread (Tables I/II/IV, Figures 4–6). Threads are
//!   simulated independently (per-thread software caches share nothing,
//!   paper Section II-B); parallel execution time is the maximum
//!   per-thread cycle count.

use crate::policy::PolicyKind;
use nvcache_cachesim::{Machine, MachineConfig, MachineReport};
use nvcache_trace::{Event, Trace};
use serde::{Deserialize, Serialize};

/// Exact flush accounting of one policy over one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlushStats {
    /// Technique label ("ER", "AT", …).
    pub label: String,
    /// Persistent stores observed.
    pub stores: u64,
    /// Flushes issued mid-FASE (async-eligible).
    pub flushes_async: u64,
    /// Flushes issued at FASE ends.
    pub flushes_sync: u64,
}

impl FlushStats {
    /// Total flushes.
    pub fn flushes(&self) -> u64 {
        self.flushes_async + self.flushes_sync
    }

    /// Flushes per persistent store — the paper's "data flush ratio"
    /// (Table III).
    pub fn flush_ratio(&self) -> f64 {
        if self.stores == 0 {
            0.0
        } else {
            self.flushes() as f64 / self.stores as f64
        }
    }
}

/// Count flushes exactly, without the timing model.
pub fn flush_stats(trace: &Trace, kind: &PolicyKind) -> FlushStats {
    let mut stores = 0u64;
    let mut fl_async = 0u64;
    let mut fl_sync = 0u64;
    let mut buf = Vec::new();
    for thread in &trace.threads {
        let mut policy = kind.build();
        let mut depth = 0usize;
        for e in &thread.events {
            match e {
                Event::Write(l) => {
                    stores += 1;
                    policy.on_store(*l, &mut buf);
                    fl_async += buf.len() as u64;
                    buf.clear();
                }
                Event::FaseBegin => {
                    depth += 1;
                    if depth == 1 {
                        policy.on_fase_begin();
                    }
                }
                Event::FaseEnd => {
                    if depth == 1 {
                        policy.on_fase_end(&mut buf);
                        fl_sync += buf.len() as u64;
                        buf.clear();
                    }
                    depth = depth.saturating_sub(1);
                }
                Event::Read(_) | Event::Work(_) => {}
            }
        }
        // program exit: remaining buffered lines must still be persisted
        policy.on_fase_end(&mut buf);
        fl_sync += buf.len() as u64;
        buf.clear();
    }
    FlushStats {
        label: kind.label().to_string(),
        stores,
        flushes_async: fl_async,
        flushes_sync: fl_sync,
    }
}

/// Configuration of a timed run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[derive(Default)]
pub struct RunConfig {
    /// Per-thread hardware context configuration.
    pub machine: MachineConfig,
}


/// Outcome of a timed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Technique label.
    pub label: String,
    /// Persistent stores.
    pub stores: u64,
    /// Simulated execution time: max cycles over threads.
    pub cycles: u64,
    /// Total instructions over threads.
    pub instructions: u64,
    /// Aggregate L1 miss ratio over threads.
    pub l1_miss_ratio: f64,
    /// Per-thread machine reports.
    pub per_thread: Vec<MachineReport>,
}

impl RunReport {
    /// Total flushes over threads.
    pub fn flushes(&self) -> u64 {
        self.per_thread.iter().map(|r| r.flushes()).sum()
    }

    /// Flush ratio over the whole run.
    pub fn flush_ratio(&self) -> f64 {
        if self.stores == 0 {
            0.0
        } else {
            self.flushes() as f64 / self.stores as f64
        }
    }

    /// Speedup of this run over `base` (cycles ratio).
    pub fn speedup_over(&self, base: &RunReport) -> f64 {
        base.cycles as f64 / self.cycles as f64
    }
}

/// Replay `trace` under `kind` with full timing. Each thread gets a
/// fresh policy instance and hardware context (per-thread seeds differ
/// so contention schedules decorrelate).
pub fn run_policy(trace: &Trace, kind: &PolicyKind, cfg: &RunConfig) -> RunReport {
    let mut per_thread = Vec::with_capacity(trace.num_threads());
    let mut stores = 0u64;
    let mut buf = Vec::new();
    for (tid, thread) in trace.threads.iter().enumerate() {
        let mut policy = kind.build();
        let mut mcfg = cfg.machine;
        mcfg.seed = cfg.machine.seed.wrapping_add(tid as u64 * 0x9e37_79b9);
        let mut m = Machine::new(mcfg);
        let mut depth = 0usize;
        for e in &thread.events {
            match e {
                Event::Write(l) => {
                    stores += 1;
                    m.store(*l);
                    policy.on_store(*l, &mut buf);
                    m.software_overhead(policy.store_overhead_instrs());
                    let extra = policy.drain_extra_instrs();
                    if extra > 0 {
                        m.software_overhead(extra);
                    }
                    for victim in buf.drain(..) {
                        m.flush_async(victim);
                    }
                }
                Event::Read(l) => m.load(*l),
                Event::Work(u) => m.work(*u),
                Event::FaseBegin => {
                    depth += 1;
                    if depth == 1 {
                        policy.on_fase_begin();
                    }
                }
                Event::FaseEnd => {
                    if depth == 1 {
                        policy.on_fase_end(&mut buf);
                        for line in buf.drain(..) {
                            m.flush_sync(line);
                        }
                        m.fence();
                    }
                    depth = depth.saturating_sub(1);
                }
            }
        }
        // flush whatever the policy still buffers at program end
        policy.on_fase_end(&mut buf);
        for line in buf.drain(..) {
            m.flush_sync(line);
        }
        m.fence();
        per_thread.push(m.finish());
    }

    let cycles = per_thread.iter().map(|r| r.cycles).max().unwrap_or(0);
    let instructions = per_thread.iter().map(|r| r.instructions).sum();
    let (hits, misses) = per_thread.iter().fold((0u64, 0u64), |(h, m_), r| {
        (h + r.l1.hits, m_ + r.l1.misses)
    });
    let l1_miss_ratio = if hits + misses == 0 {
        0.0
    } else {
        misses as f64 / (hits + misses) as f64
    };

    RunReport {
        label: kind.label().to_string(),
        stores,
        cycles,
        instructions,
        l1_miss_ratio,
        per_thread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvcache_trace::synth::{cyclic, sequential, SynthOpts};
    use nvcache_trace::{Line, ThreadTrace};

    fn opts(wpf: usize) -> SynthOpts {
        SynthOpts {
            writes_per_fase: wpf,
            work_per_write: 2,
            ..Default::default()
        }
    }

    #[test]
    fn eager_flush_ratio_is_one() {
        let tr = cyclic(8, 100, &opts(50));
        let s = flush_stats(&tr, &PolicyKind::Eager);
        assert_eq!(s.stores, 800);
        assert!((s.flush_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lazy_reaches_minimum_flush_count() {
        // 8-line working set, 50 writes per FASE → ≥ 8 flushes per FASE
        let tr = cyclic(8, 100, &opts(50));
        let s = flush_stats(&tr, &PolicyKind::Lazy);
        // 800 writes / 50 per fase = 16 fases; each flushes 8 lines
        assert_eq!(s.flushes(), 16 * 8);
        assert_eq!(s.flushes_async, 0, "LA never flushes mid-FASE");
    }

    #[test]
    fn best_never_flushes() {
        let tr = cyclic(8, 100, &opts(50));
        let s = flush_stats(&tr, &PolicyKind::Best);
        assert_eq!(s.flushes(), 0);
    }

    #[test]
    fn policy_ordering_on_thrashy_trace() {
        // Working set 12 > Atlas table 8 but ≤ SC capacity 12:
        // ER > AT > SC = LA must hold on flush counts. (12 is chosen so
        // only slots 0–3 of the mod-8 table conflict; a multiple of 8
        // would conflict on every store and degenerate AT to ER.)
        let tr = cyclic(12, 200, &opts(100));
        let er = flush_stats(&tr, &PolicyKind::Eager).flushes();
        let at = flush_stats(&tr, &PolicyKind::Atlas { size: 8 }).flushes();
        let sc = flush_stats(&tr, &PolicyKind::ScFixed { capacity: 12 }).flushes();
        let la = flush_stats(&tr, &PolicyKind::Lazy).flushes();
        assert!(er > at, "ER {er} !> AT {at}");
        assert!(at > sc, "AT {at} !> SC {sc}");
        assert_eq!(sc, la, "right-sized SC reaches the LA minimum");
    }

    #[test]
    fn adaptive_sc_approaches_lazy_minimum() {
        // Long enough that the pre-adaptation thrash (cache still at the
        // default size 8 during the first burst) is amortized away.
        let tr = cyclic(23, 10_000, &opts(500));
        let cfg = crate::adaptive::AdaptiveConfig {
            burst_len: 2000,
            ..Default::default()
        };
        let sc = flush_stats(&tr, &PolicyKind::ScAdaptive(cfg));
        let la = flush_stats(&tr, &PolicyKind::Lazy);
        let ratio = sc.flushes() as f64 / la.flushes() as f64;
        assert!(
            ratio < 1.3,
            "adaptive SC must be near the LA minimum: {ratio}"
        );
    }

    #[test]
    fn exit_flushes_unterminated_fase_state() {
        // a trace ending mid-FASE still persists buffered lines
        let mut t = ThreadTrace::new();
        t.fase_begin();
        t.write(Line(1));
        t.write(Line(2));
        let tr = Trace { threads: vec![t] };
        let s = flush_stats(&tr, &PolicyKind::ScFixed { capacity: 8 });
        assert_eq!(s.flushes(), 2);
    }

    #[test]
    fn timed_run_ordering_matches_paper_figure4() {
        // On a thrashy working set (12 lines vs AT's 8-entry table),
        // simulated times must order ER > AT > SC > BEST.
        let tr = cyclic(12, 500, &opts(100));
        let cfg = RunConfig::default();
        let er = run_policy(&tr, &PolicyKind::Eager, &cfg);
        let at = run_policy(&tr, &PolicyKind::Atlas { size: 8 }, &cfg);
        let sc = run_policy(&tr, &PolicyKind::ScFixed { capacity: 12 }, &cfg);
        let best = run_policy(&tr, &PolicyKind::Best, &cfg);
        assert!(er.cycles > at.cycles, "ER {} !> AT {}", er.cycles, at.cycles);
        assert!(at.cycles > sc.cycles, "AT {} !> SC {}", at.cycles, sc.cycles);
        assert!(
            sc.cycles > best.cycles,
            "SC {} !> BEST {}",
            sc.cycles,
            best.cycles
        );
    }

    #[test]
    fn lazy_pays_fase_end_stall() {
        let tr = cyclic(32, 200, &opts(64));
        let cfg = RunConfig::default();
        let la = run_policy(&tr, &PolicyKind::Lazy, &cfg);
        let sc = run_policy(&tr, &PolicyKind::ScFixed { capacity: 32 }, &cfg);
        let la_stall: u64 = la.per_thread.iter().map(|r| r.fase_stall_cycles).sum();
        let sc_stall: u64 = sc.per_thread.iter().map(|r| r.fase_stall_cycles).sum();
        // LA and right-sized SC flush identical line sets at FASE end;
        // both stall — but LA must not stall *less* (it has no async
        // head start). Equal sets ⇒ similar stalls; key property is the
        // flush counts match while ER's stall profile differs.
        assert!(la_stall > 0 && sc_stall > 0);
        assert_eq!(la.flushes(), sc.flushes());
    }

    #[test]
    fn fewer_flushes_means_fewer_l1_misses() {
        let tr = sequential(16, 400, &opts(100));
        let cfg = RunConfig::default();
        let er = run_policy(&tr, &PolicyKind::Eager, &cfg);
        let best = run_policy(&tr, &PolicyKind::Best, &cfg);
        assert!(
            er.l1_miss_ratio > best.l1_miss_ratio,
            "flushing must hurt L1: ER {} vs BEST {}",
            er.l1_miss_ratio,
            best.l1_miss_ratio
        );
    }

    #[test]
    fn multithreaded_cycles_is_max_not_sum() {
        let single = cyclic(8, 100, &opts(50));
        let tr = nvcache_trace::synth::replicate(&single, 4);
        let cfg = RunConfig::default();
        let r1 = run_policy(&single, &PolicyKind::Atlas { size: 8 }, &cfg);
        let r4 = run_policy(&tr, &PolicyKind::Atlas { size: 8 }, &cfg);
        assert_eq!(r4.per_thread.len(), 4);
        // identical per-thread work ⇒ parallel time ≈ single time
        assert!(r4.cycles <= r1.cycles * 11 / 10);
        assert!(r4.instructions >= r1.instructions * 4);
    }

    #[test]
    fn flush_stats_and_run_policy_agree_on_counts() {
        let tr = cyclic(12, 300, &opts(80));
        for kind in [
            PolicyKind::Eager,
            PolicyKind::Lazy,
            PolicyKind::Atlas { size: 8 },
            PolicyKind::ScFixed { capacity: 12 },
            PolicyKind::Best,
        ] {
            let fast = flush_stats(&tr, &kind);
            let timed = run_policy(&tr, &kind, &RunConfig::default());
            assert_eq!(fast.flushes(), timed.flushes(), "{}", kind.label());
            assert_eq!(fast.stores, timed.stores);
        }
    }
}
