//! ER — eager write-back: flush every persistent store immediately.
//!
//! Maximal overlap with computation (each flush is asynchronous), but
//! one flush per store — no write combining at all. Table I measures the
//! consequence: 22× average slowdown on SPLASH2.

use crate::policy::{PersistPolicy, StoreOutcome};
use nvcache_trace::Line;

/// The eager policy.
#[derive(Debug, Default, Clone)]
pub struct EagerPolicy;

impl EagerPolicy {
    /// New instance.
    pub fn new() -> Self {
        EagerPolicy
    }
}

impl PersistPolicy for EagerPolicy {
    fn name(&self) -> &'static str {
        "ER"
    }

    #[inline]
    fn on_store(&mut self, line: Line, out: &mut Vec<Line>) -> StoreOutcome {
        out.push(line);
        StoreOutcome::Inserted // never combines — that is ER's whole cost
    }

    fn on_fase_end(&mut self, _out: &mut Vec<Line>) {}

    fn store_overhead_instrs(&self) -> u64 {
        1 // issue the flush, nothing to look up
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_store_flushes() {
        let mut p = EagerPolicy::new();
        let mut out = Vec::new();
        for i in 0..10 {
            p.on_store(Line(i % 2), &mut out);
        }
        assert_eq!(out.len(), 10, "no combining, ever");
        out.clear();
        p.on_fase_end(&mut out);
        assert!(out.is_empty(), "nothing left at FASE end");
    }
}
