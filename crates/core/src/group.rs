//! Thread-grouped MRC analysis — the paper's stated future work
//! (Section III-C): "we could group threads with similar write locality
//! and calculate one MRC for each group" to cut the per-thread analysis
//! overhead.
//!
//! Greedy clustering: each thread's sampled MRC joins the first group
//! whose representative curve is within `max_distance` mean absolute
//! error; the group's representative is the point-wise mean of its
//! members, and one knee selection serves every member. For `T` threads
//! with `G` distinct behaviours this reduces analysis cost from `T` to
//! `G` selections (and, online, would let `T − G` threads skip sampling
//! entirely).

use nvcache_locality::{select_cache_size, KneeConfig, Mrc};

/// Result of grouping: member thread ids per group, the representative
/// curve, and the capacity selected for the group.
#[derive(Debug, Clone)]
pub struct ThreadGroup {
    /// Thread indices in this group.
    pub members: Vec<usize>,
    /// Point-wise mean MRC of the members.
    pub representative: Mrc,
    /// Capacity selected from the representative.
    pub capacity: usize,
}

fn mean_curves(curves: &[&Mrc]) -> Mrc {
    let len = curves.iter().map(|m| m.miss_ratio.len()).min().unwrap_or(1);
    let mut mr = vec![0.0f64; len];
    for m in curves {
        for (i, v) in mr.iter_mut().enumerate() {
            *v += m.miss_ratio[i];
        }
    }
    for v in mr.iter_mut() {
        *v /= curves.len() as f64;
    }
    Mrc {
        miss_ratio: mr,
        accesses: curves.iter().map(|m| m.accesses).sum(),
    }
}

/// Cluster per-thread MRCs and select one capacity per group.
///
/// `max_distance` is the mean-absolute-error threshold for two curves to
/// share a group (0.02 ≈ "within the knee-selection tolerance").
pub fn group_threads(mrcs: &[Mrc], cfg: &KneeConfig, max_distance: f64) -> Vec<ThreadGroup> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut reps: Vec<Mrc> = Vec::new();
    for (tid, mrc) in mrcs.iter().enumerate() {
        match reps
            .iter()
            .position(|rep| rep.mean_abs_error(mrc) <= max_distance)
        {
            Some(g) => {
                groups[g].push(tid);
                let members: Vec<&Mrc> = groups[g].iter().map(|&t| &mrcs[t]).collect();
                reps[g] = mean_curves(&members);
            }
            None => {
                groups.push(vec![tid]);
                reps.push(mrc.clone());
            }
        }
    }
    groups
        .into_iter()
        .zip(reps)
        .map(|(members, representative)| {
            let capacity = select_cache_size(&representative, cfg);
            ThreadGroup {
                members,
                representative,
                capacity,
            }
        })
        .collect()
}

/// Per-thread capacities via grouping: `capacities[tid]` is the shared
/// selection of `tid`'s group.
pub fn grouped_capacities(mrcs: &[Mrc], cfg: &KneeConfig, max_distance: f64) -> Vec<usize> {
    let groups = group_threads(mrcs, cfg, max_distance);
    let mut out = vec![cfg.default_size; mrcs.len()];
    for g in &groups {
        for &t in &g.members {
            out[t] = g.capacity;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvcache_locality::lru_mrc;

    fn cyclic_mrc(w: u64, n: usize) -> Mrc {
        let trace: Vec<u64> = (0..n).map(|i| i as u64 % w).collect();
        lru_mrc(&trace, 50)
    }

    #[test]
    fn homogeneous_threads_form_one_group() {
        let mrcs: Vec<Mrc> = (0..8).map(|_| cyclic_mrc(23, 5000)).collect();
        let groups = group_threads(&mrcs, &KneeConfig::default(), 0.02);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members.len(), 8);
        assert_eq!(groups[0].capacity, 23);
    }

    #[test]
    fn distinct_behaviours_split() {
        let mut mrcs: Vec<Mrc> = (0..4).map(|_| cyclic_mrc(5, 5000)).collect();
        mrcs.extend((0..4).map(|_| cyclic_mrc(40, 5000)));
        let groups = group_threads(&mrcs, &KneeConfig::default(), 0.02);
        assert_eq!(groups.len(), 2);
        let caps: Vec<usize> = groups.iter().map(|g| g.capacity).collect();
        assert!(caps.contains(&5) && caps.contains(&40), "{caps:?}");
    }

    #[test]
    fn grouped_capacities_index_by_thread() {
        let mrcs = vec![
            cyclic_mrc(5, 5000),
            cyclic_mrc(40, 5000),
            cyclic_mrc(5, 5000),
        ];
        let caps = grouped_capacities(&mrcs, &KneeConfig::default(), 0.02);
        assert_eq!(caps, vec![5, 40, 5]);
    }

    #[test]
    fn group_selection_matches_individual_selection_quality() {
        // sharing one analysis must not pick a materially worse size
        let cfg = KneeConfig::default();
        let mrcs: Vec<Mrc> = (0..6).map(|i| cyclic_mrc(20 + (i % 2), 6000)).collect();
        let caps = grouped_capacities(&mrcs, &cfg, 0.05);
        for (tid, &cap) in caps.iter().enumerate() {
            let own = select_cache_size(&mrcs[tid], &cfg);
            let own_mr = mrcs[tid].mr(own);
            let grp_mr = mrcs[tid].mr(cap);
            assert!(
                grp_mr <= own_mr + 0.05,
                "thread {tid}: group cap {cap} (mr {grp_mr:.3}) vs own {own} (mr {own_mr:.3})"
            );
        }
    }

    #[test]
    fn empty_input() {
        assert!(group_threads(&[], &KneeConfig::default(), 0.02).is_empty());
        assert!(grouped_capacities(&[], &KneeConfig::default(), 0.02).is_empty());
    }

    #[test]
    fn loose_threshold_merges_everything() {
        let mrcs = vec![cyclic_mrc(5, 5000), cyclic_mrc(40, 5000)];
        let groups = group_threads(&mrcs, &KneeConfig::default(), 1.0);
        assert_eq!(groups.len(), 1);
    }
}
