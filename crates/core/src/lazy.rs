//! LA — lazy write-back: record dirty lines, flush them all at FASE end.
//!
//! Achieves the minimum possible flush count (each line once per FASE),
//! but every flush lands in the synchronous end-of-FASE drain where it
//! cannot overlap computation — the paper reports LA 17.8× slower than
//! AT on volrend despite the lowest flush ratio.

use crate::policy::{PersistPolicy, StoreOutcome};
use nvcache_trace::hash::FxHashSet;
use nvcache_trace::Line;

/// The lazy policy.
#[derive(Debug, Default, Clone)]
pub struct LazyPolicy {
    /// Fx-hashed: probed once per persistent store. Iteration order
    /// never escapes — `order` drives the deterministic drain.
    dirty: FxHashSet<Line>,
    /// Insertion order, so the drain is deterministic.
    order: Vec<Line>,
}

impl LazyPolicy {
    /// New instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lines currently recorded.
    pub fn pending(&self) -> usize {
        self.dirty.len()
    }
}

impl PersistPolicy for LazyPolicy {
    fn name(&self) -> &'static str {
        "LA"
    }

    #[inline]
    fn on_store(&mut self, line: Line, _out: &mut Vec<Line>) -> StoreOutcome {
        if self.dirty.insert(line) {
            self.order.push(line);
            StoreOutcome::Inserted
        } else {
            StoreOutcome::Combined
        }
    }

    fn on_fase_end(&mut self, out: &mut Vec<Line>) {
        out.append(&mut self.order);
        self.dirty.clear();
    }

    fn store_overhead_instrs(&self) -> u64 {
        3 // hash-set probe + conditional insert
    }

    fn reset(&mut self) {
        self.dirty.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_within_fase() {
        let mut p = LazyPolicy::new();
        let mut out = Vec::new();
        for _ in 0..5 {
            p.on_store(Line(1), &mut out);
            p.on_store(Line(2), &mut out);
        }
        assert!(out.is_empty(), "no mid-FASE flushes");
        p.on_fase_end(&mut out);
        assert_eq!(out, vec![Line(1), Line(2)]);
    }

    #[test]
    fn state_clears_between_fases() {
        let mut p = LazyPolicy::new();
        let mut out = Vec::new();
        p.on_store(Line(1), &mut out);
        p.on_fase_end(&mut out);
        out.clear();
        p.on_store(Line(1), &mut out);
        p.on_fase_end(&mut out);
        assert_eq!(out, vec![Line(1)], "same line flushed again next FASE");
    }

    #[test]
    fn reset_drops_pending() {
        let mut p = LazyPolicy::new();
        let mut out = Vec::new();
        p.on_store(Line(9), &mut out);
        assert_eq!(p.pending(), 1);
        p.reset();
        assert_eq!(p.pending(), 0);
        p.on_fase_end(&mut out);
        assert!(out.is_empty());
    }
}
