//! The adaptive software write-combining cache (the paper's primary
//! contribution) and the persistence policies it is evaluated against.
//!
//! A persistence policy decides *when* each dirty cache line written
//! inside a failure-atomic section (FASE) is flushed to NVRAM:
//!
//! | Policy | Paper name | Behaviour |
//! |---|---|---|
//! | [`EagerPolicy`] | ER | flush at every persistent store |
//! | [`LazyPolicy`] | LA | record addresses, flush all at FASE end |
//! | [`AtlasPolicy`] | AT | 8-entry direct-mapped address table (state of the art) |
//! | [`ScPolicy`] | SC-offline | fully-associative LRU software cache, fixed capacity |
//! | [`AdaptiveScPolicy`] | SC | LRU cache whose capacity is chosen online from a burst-sampled MRC knee |
//! | [`BestPolicy`] | BEST | no flushes (upper bound, not crash-consistent) |
//!
//! The cache itself ([`lru::LruCache`]) is the paper's hash-map +
//! doubly-linked-list design with O(1) lookup, insertion, promotion,
//! eviction and resize. It is strictly per-thread: policies are `!Sync`
//! by construction and each simulated or real thread owns one instance,
//! so there is no locking anywhere on the store path (paper Section
//! II-B).
//!
//! [`driver`] replays recorded traces through a policy, either counting
//! flushes exactly (Table III) or against the full machine timing model
//! (Tables I/II/IV, Figures 4–6).

#![warn(missing_docs)]

pub mod adaptive;
pub mod atlas;
pub mod best;
pub mod driver;
pub mod eager;
pub mod group;
pub mod lazy;
pub mod lru;
pub mod policy;
pub mod sc;

pub use adaptive::{rename_for_epoch, AdaptiveConfig, AdaptiveScPolicy};
pub use atlas::AtlasPolicy;
pub use best::BestPolicy;
pub use driver::{
    flush_stats, flush_stats_dyn, flush_stats_traced, flush_stats_traced_dyn, flush_stats_with,
    run_policy, run_policy_dyn, run_policy_traced, run_policy_traced_dyn, run_policy_with,
    FlushPath, FlushStats, ReplayOptions, RunConfig, RunReport,
};
pub use eager::EagerPolicy;
pub use group::{group_threads, grouped_capacities, ThreadGroup};
pub use lazy::LazyPolicy;
pub use lru::LruCache;
pub use policy::{PersistPolicy, Policy, PolicyKind, StoreOutcome};
pub use sc::ScPolicy;
