//! The software cache data structure: hash map + intrusive doubly-linked
//! list over a slab, exactly the design of paper Section III-C ("The
//! Cache"): all operations — lookup, insert, promote, evict, resize —
//! are O(1) (resize is O(1) per evicted entry).

use nvcache_trace::hash::{fx_map_with_capacity, FxHashMap};
use nvcache_trace::Line;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    prev: u32,
    next: u32,
    line: Line,
}

/// Result of inserting/touching a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Touch {
    /// The line was already cached (a write was combined).
    Hit,
    /// The line was inserted; `evicted` is the LRU victim if the cache
    /// was full.
    Miss {
        /// Evicted LRU line to be flushed, if the cache was at capacity.
        evicted: Option<Line>,
    },
}

/// Fully-associative LRU cache of cache-line addresses.
#[derive(Debug, Clone)]
pub struct LruCache {
    /// Line → slab index. Fx-hashed: `touch` probes this map on every
    /// persistent store, making it the hottest map in the simulator.
    map: FxHashMap<Line, u32>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32, // MRU
    tail: u32, // LRU
    capacity: usize,
}

impl LruCache {
    /// New cache holding at most `capacity` lines (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        LruCache {
            map: fx_map_with_capacity(capacity * 2),
            nodes: Vec::with_capacity(capacity),
            // every evict/remove pushes here before the next insert pops,
            // so the free list can reach `capacity` entries; pre-size it
            free: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Current number of cached lines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Is `line` cached?
    pub fn contains(&self, line: Line) -> bool {
        self.map.contains_key(&line)
    }

    #[inline]
    fn unlink(&mut self, idx: u32) {
        let Node { prev, next, .. } = self.nodes[idx as usize];
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    #[inline]
    fn push_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn pop_lru(&mut self) -> Line {
        debug_assert_ne!(self.tail, NIL);
        let idx = self.tail;
        let line = self.nodes[idx as usize].line;
        self.unlink(idx);
        self.free.push(idx);
        self.map.remove(&line);
        line
    }

    /// Write to `line`: promote it to MRU if present (the write is
    /// *combined*), otherwise insert it, evicting the LRU line when full.
    pub fn touch(&mut self, line: Line) -> Touch {
        if let Some(&idx) = self.map.get(&line) {
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return Touch::Hit;
        }
        let evicted = if self.map.len() == self.capacity {
            Some(self.pop_lru())
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize].line = line;
                i
            }
            None => {
                let i = self.nodes.len() as u32;
                self.nodes.push(Node {
                    prev: NIL,
                    next: NIL,
                    line,
                });
                i
            }
        };
        self.push_front(idx);
        self.map.insert(line, idx);
        Touch::Miss { evicted }
    }

    /// Remove a specific line (e.g. it was flushed for another reason).
    pub fn remove(&mut self, line: Line) -> bool {
        match self.map.remove(&line) {
            Some(idx) => {
                self.unlink(idx);
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Remove every cached line, appending them to `out` LRU first (the
    /// order flushes are issued at a FASE end — oldest data first).
    /// Allocation-free when `out` has capacity: the FASE-end drain on
    /// the replay hot path reuses one buffer per thread.
    pub fn drain_lru_first_into(&mut self, out: &mut Vec<Line>) {
        out.reserve(self.map.len());
        while !self.map.is_empty() {
            out.push(self.pop_lru());
        }
    }

    /// Remove and return every cached line, LRU first. Allocating
    /// wrapper over [`LruCache::drain_lru_first_into`].
    pub fn drain_lru_first(&mut self) -> Vec<Line> {
        let mut out = Vec::with_capacity(self.map.len());
        self.drain_lru_first_into(&mut out);
        out
    }

    /// Change the capacity; if shrinking below the current length,
    /// evicts LRU lines, appending them to `out`.
    pub fn set_capacity_into(&mut self, capacity: usize, out: &mut Vec<Line>) {
        assert!(capacity >= 1);
        self.capacity = capacity;
        while self.map.len() > capacity {
            out.push(self.pop_lru());
        }
    }

    /// Change the capacity, returning any evicted LRU lines. Allocating
    /// wrapper over [`LruCache::set_capacity_into`].
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<Line> {
        let mut evicted = Vec::new();
        self.set_capacity_into(capacity, &mut evicted);
        evicted
    }

    /// Forget every cached line without reporting them (reset path —
    /// nothing is flushed). Keeps the map, slab and free-list storage.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Cached lines from MRU to LRU (test/diagnostic helper).
    pub fn iter_mru(&self) -> impl Iterator<Item = Line> + '_ {
        struct It<'a> {
            cache: &'a LruCache,
            cur: u32,
        }
        impl Iterator for It<'_> {
            type Item = Line;
            fn next(&mut self) -> Option<Line> {
                if self.cur == NIL {
                    return None;
                }
                let n = &self.cache.nodes[self.cur as usize];
                self.cur = n.next;
                Some(n.line)
            }
        }
        It {
            cache: self,
            cur: self.head,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u64) -> Line {
        Line(x)
    }

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert_eq!(c.touch(l(1)), Touch::Miss { evicted: None });
        assert_eq!(c.touch(l(1)), Touch::Hit);
        assert_eq!(c.touch(l(2)), Touch::Miss { evicted: None });
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_is_lru() {
        let mut c = LruCache::new(2);
        c.touch(l(1));
        c.touch(l(2));
        c.touch(l(1)); // promote 1
        assert_eq!(
            c.touch(l(3)),
            Touch::Miss {
                evicted: Some(l(2))
            }
        );
        assert!(c.contains(l(1)));
        assert!(!c.contains(l(2)));
    }

    #[test]
    fn mru_order() {
        let mut c = LruCache::new(3);
        c.touch(l(1));
        c.touch(l(2));
        c.touch(l(3));
        c.touch(l(2));
        let order: Vec<u64> = c.iter_mru().map(|x| x.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn drain_is_lru_first_and_empties() {
        let mut c = LruCache::new(3);
        c.touch(l(1));
        c.touch(l(2));
        c.touch(l(3));
        let d: Vec<u64> = c.drain_lru_first().iter().map(|x| x.0).collect();
        assert_eq!(d, vec![1, 2, 3]);
        assert!(c.is_empty());
        // reusable after drain
        c.touch(l(9));
        assert!(c.contains(l(9)));
    }

    #[test]
    fn drain_into_appends_without_clearing_destination() {
        let mut c = LruCache::new(3);
        c.touch(l(1));
        c.touch(l(2));
        let mut out = vec![l(99)];
        c.drain_lru_first_into(&mut out);
        assert_eq!(out, vec![l(99), l(1), l(2)]);
        assert!(c.is_empty());
    }

    #[test]
    fn set_capacity_into_appends_evictions() {
        let mut c = LruCache::new(4);
        for i in 1..=4 {
            c.touch(l(i));
        }
        let mut out = vec![l(99)];
        c.set_capacity_into(2, &mut out);
        assert_eq!(out, vec![l(99), l(1), l(2)]);
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn clear_empties_and_cache_is_reusable() {
        let mut c = LruCache::new(3);
        c.touch(l(1));
        c.touch(l(2));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 3);
        c.touch(l(7));
        c.touch(l(8));
        let order: Vec<u64> = c.iter_mru().map(|x| x.0).collect();
        assert_eq!(order, vec![8, 7]);
    }

    #[test]
    fn shrink_evicts_lru() {
        let mut c = LruCache::new(4);
        for i in 1..=4 {
            c.touch(l(i));
        }
        let ev: Vec<u64> = c.set_capacity(2).iter().map(|x| x.0).collect();
        assert_eq!(ev, vec![1, 2]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.capacity(), 2);
        assert!(c.contains(l(3)) && c.contains(l(4)));
    }

    #[test]
    fn grow_keeps_contents() {
        let mut c = LruCache::new(2);
        c.touch(l(1));
        c.touch(l(2));
        assert!(c.set_capacity(5).is_empty());
        c.touch(l(3));
        assert_eq!(c.len(), 3);
        assert!(c.contains(l(1)));
    }

    #[test]
    fn remove_specific() {
        let mut c = LruCache::new(3);
        c.touch(l(1));
        c.touch(l(2));
        assert!(c.remove(l(1)));
        assert!(!c.remove(l(1)));
        assert_eq!(c.len(), 1);
        // list stays consistent
        c.touch(l(3));
        c.touch(l(4));
        let order: Vec<u64> = c.iter_mru().map(|x| x.0).collect();
        assert_eq!(order, vec![4, 3, 2]);
    }

    #[test]
    fn capacity_one() {
        let mut c = LruCache::new(1);
        assert_eq!(c.touch(l(1)), Touch::Miss { evicted: None });
        assert_eq!(
            c.touch(l(2)),
            Touch::Miss {
                evicted: Some(l(1))
            }
        );
        assert_eq!(c.touch(l(2)), Touch::Hit);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        LruCache::new(0);
    }

    #[test]
    fn slab_reuse_after_heavy_churn() {
        let mut c = LruCache::new(8);
        for i in 0..10_000u64 {
            c.touch(l(i));
        }
        // slab never grows past capacity + a small constant
        assert!(c.nodes.len() <= 9, "slab grew to {}", c.nodes.len());
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn behaves_like_reference_lru() {
        // differential test against the locality crate's simple oracle
        let mut c = LruCache::new(5);
        let mut oracle: Vec<u64> = Vec::new(); // back = MRU
        let mut hits = 0u32;
        let mut oracle_hits = 0u32;
        for i in 0..2000u64 {
            let line = (i * 7 + i / 3) % 13;
            if c.touch(l(line)) == Touch::Hit {
                hits += 1;
            }
            if let Some(p) = oracle.iter().position(|&x| x == line) {
                oracle.remove(p);
                oracle.push(line);
                oracle_hits += 1;
            } else {
                if oracle.len() == 5 {
                    oracle.remove(0);
                }
                oracle.push(line);
            }
        }
        assert_eq!(hits, oracle_hits);
        let mru: Vec<u64> = c.iter_mru().map(|x| x.0).collect();
        let mut expect = oracle.clone();
        expect.reverse();
        assert_eq!(mru, expect);
    }

    #[test]
    fn behaves_like_reference_lru_with_removes_and_resizes() {
        // the same oracle, with interleaved removes and capacity changes
        // exercising the Fx-hashed map's remove/rehash paths
        let mut cap = 6usize;
        let mut c = LruCache::new(cap);
        let mut oracle: Vec<u64> = Vec::new(); // back = MRU
        for i in 0..5000u64 {
            let line = (i * 11 + i / 5) % 23;
            match i % 7 {
                3 => {
                    let expected = if let Some(p) = oracle.iter().position(|&x| x == line) {
                        oracle.remove(p);
                        true
                    } else {
                        false
                    };
                    assert_eq!(c.remove(l(line)), expected, "i={i}");
                }
                5 if i % 35 == 5 => {
                    cap = if cap == 6 { 3 } else { 6 };
                    let evicted = c.set_capacity(cap);
                    let mut expect_ev = Vec::new();
                    while oracle.len() > cap {
                        expect_ev.push(oracle.remove(0));
                    }
                    let got: Vec<u64> = evicted.iter().map(|x| x.0).collect();
                    assert_eq!(got, expect_ev, "i={i}");
                }
                _ => {
                    let hit = if let Some(p) = oracle.iter().position(|&x| x == line) {
                        oracle.remove(p);
                        oracle.push(line);
                        true
                    } else {
                        if oracle.len() == cap {
                            oracle.remove(0);
                        }
                        oracle.push(line);
                        false
                    };
                    assert_eq!(c.touch(l(line)) == Touch::Hit, hit, "i={i}");
                }
            }
            assert_eq!(c.len(), oracle.len(), "i={i}");
        }
        let mru: Vec<u64> = c.iter_mru().map(|x| x.0).collect();
        let mut expect = oracle.clone();
        expect.reverse();
        assert_eq!(mru, expect);
    }
}
