//! The persistence-policy abstraction shared by all six techniques.

use nvcache_trace::Line;

/// What a policy did with one persistent store — the per-store signal
/// the telemetry layer turns into hit/miss (write-combining) counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The write was combined into state the policy already buffers
    /// (software-cache hit) — no new flush obligation was created.
    Combined,
    /// The write created a new buffered entry (software-cache miss);
    /// any eviction it forced is in the `out` buffer.
    Inserted,
}

/// A per-thread persistence policy: decides which cache lines to flush,
/// and when, in response to the instrumented event stream.
///
/// Contract (matching Atlas semantics):
/// * `on_store` may emit flushes that the runtime issues
///   **asynchronously** — they overlap computation.
/// * `on_fase_end` emits the flushes that must complete before the FASE
///   can commit; the runtime issues them **synchronously** and follows
///   with a fence. Only *outermost* FASE ends reach the policy.
/// * Policies are strictly per-thread; implementations need no
///   synchronization.
pub trait PersistPolicy {
    /// Display name ("ER", "AT", "SC", …).
    fn name(&self) -> &'static str;

    /// A persistent store to `line` happened; push any lines to flush
    /// asynchronously onto `out` and report whether the write was
    /// combined or inserted (telemetry; callers may ignore it).
    fn on_store(&mut self, line: Line, out: &mut Vec<Line>) -> StoreOutcome;

    /// An outermost FASE began.
    fn on_fase_begin(&mut self) {}

    /// An outermost FASE is ending; push the lines that must be flushed
    /// synchronously before the commit fence onto `out`.
    fn on_fase_end(&mut self, out: &mut Vec<Line>);

    /// Bookkeeping instructions the policy executes per persistent store
    /// (table lookup, list update, …). Used by the timing model to charge
    /// instruction overhead (paper Table IV shows SC runs ~8% more
    /// instructions than AT).
    fn store_overhead_instrs(&self) -> u64;

    /// Additional instructions accumulated since the last call (e.g. MRC
    /// analysis at a burst end). Default: none.
    fn drain_extra_instrs(&mut self) -> u64 {
        0
    }

    /// Capacity change performed by the most recent `on_store`, as
    /// `(knee, new_capacity)`, drained once. Only adaptive policies
    /// override this; the telemetry-enabled driver polls it to put
    /// resize events (with the MRC knee that motivated them) on the
    /// timeline.
    fn take_capacity_change(&mut self) -> Option<(usize, usize)> {
        None
    }

    /// Current software-cache capacity in lines; `None` for policies
    /// without a resizable cache. The runtime sampler reads this to put
    /// the live capacity on its time series. Default: no cache.
    fn sc_capacity(&self) -> Option<usize> {
        None
    }

    /// Forget all buffered state (used between runs).
    fn reset(&mut self);
}

/// Factory enumeration of the six techniques, used by the harness to
/// instantiate one policy instance per thread.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// ER: flush on every store.
    Eager,
    /// LA: flush everything at FASE end.
    Lazy,
    /// AT: Atlas direct-mapped table of `size` entries (paper: 8).
    Atlas {
        /// Table entries.
        size: usize,
    },
    /// SC with a fixed capacity (the "SC-offline" configuration once the
    /// capacity comes from offline profiling).
    ScFixed {
        /// Cache capacity in lines.
        capacity: usize,
    },
    /// SC with online adaptive capacity selection.
    ScAdaptive(crate::adaptive::AdaptiveConfig),
    /// BEST: never flush (upper bound).
    Best,
}

impl PolicyKind {
    /// Instantiate a fresh per-thread policy behind a `Box<dyn …>`.
    ///
    /// Compatibility shim: external callers that want type erasure keep
    /// working, but every call through the box is a virtual dispatch.
    /// Hot paths should use [`PolicyKind::build_policy`] (enum dispatch)
    /// or monomorphize over the concrete types like `driver` does.
    pub fn build(&self) -> Box<dyn PersistPolicy + Send> {
        match self {
            PolicyKind::Eager => Box::new(crate::eager::EagerPolicy::new()),
            PolicyKind::Lazy => Box::new(crate::lazy::LazyPolicy::new()),
            PolicyKind::Atlas { size } => Box::new(crate::atlas::AtlasPolicy::new(*size)),
            PolicyKind::ScFixed { capacity } => Box::new(crate::sc::ScPolicy::new(*capacity)),
            PolicyKind::ScAdaptive(cfg) => {
                Box::new(crate::adaptive::AdaptiveScPolicy::new(cfg.clone()))
            }
            PolicyKind::Best => Box::new(crate::best::BestPolicy::new()),
        }
    }

    /// Instantiate a fresh per-thread policy as a stack-allocated
    /// [`Policy`] enum — no heap allocation, no vtable.
    pub fn build_policy(&self) -> Policy {
        match self {
            PolicyKind::Eager => Policy::Eager(crate::eager::EagerPolicy::new()),
            PolicyKind::Lazy => Policy::Lazy(crate::lazy::LazyPolicy::new()),
            PolicyKind::Atlas { size } => Policy::Atlas(crate::atlas::AtlasPolicy::new(*size)),
            PolicyKind::ScFixed { capacity } => {
                Policy::ScFixed(crate::sc::ScPolicy::new(*capacity))
            }
            PolicyKind::ScAdaptive(cfg) => {
                Policy::ScAdaptive(crate::adaptive::AdaptiveScPolicy::new(cfg.clone()))
            }
            PolicyKind::Best => Policy::Best(crate::best::BestPolicy::new()),
        }
    }

    /// Paper label of the technique.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Eager => "ER",
            PolicyKind::Lazy => "LA",
            PolicyKind::Atlas { .. } => "AT",
            PolicyKind::ScFixed { .. } => "SC-offline",
            PolicyKind::ScAdaptive(_) => "SC",
            PolicyKind::Best => "BEST",
        }
    }
}

/// A concrete, stack-allocated policy instance — one variant per
/// technique, built by [`PolicyKind::build_policy`].
///
/// Unlike the boxed `dyn` shim, every [`PersistPolicy`] method on this
/// enum is an `#[inline]` six-way match: callers that hold a `Policy`
/// pay one predictable branch per call instead of a virtual dispatch,
/// and callers that match on the variant once (the replay drivers in
/// [`crate::driver`]) monomorphize their whole loop per concrete policy
/// type with zero dispatch cost.
// size skew (ScAdaptive carries the burst sampler) is fine: instances
// live one-per-thread on the stack, never in bulk collections, so the
// boxing clippy suggests would only buy back a pointer chase
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Policy {
    /// ER: flush on every store.
    Eager(crate::eager::EagerPolicy),
    /// LA: flush everything at FASE end.
    Lazy(crate::lazy::LazyPolicy),
    /// AT: Atlas direct-mapped table.
    Atlas(crate::atlas::AtlasPolicy),
    /// SC with a fixed capacity.
    ScFixed(crate::sc::ScPolicy),
    /// SC with online adaptive capacity selection.
    ScAdaptive(crate::adaptive::AdaptiveScPolicy),
    /// BEST: never flush.
    Best(crate::best::BestPolicy),
}

macro_rules! each_variant {
    ($self:expr, $p:ident => $e:expr) => {
        match $self {
            Policy::Eager($p) => $e,
            Policy::Lazy($p) => $e,
            Policy::Atlas($p) => $e,
            Policy::ScFixed($p) => $e,
            Policy::ScAdaptive($p) => $e,
            Policy::Best($p) => $e,
        }
    };
}

impl Policy {
    /// Current software-cache capacity, for the two SC variants; `None`
    /// for policies without a resizable cache. Lets a serving loop
    /// report the live capacity without knowing the concrete variant.
    pub fn sc_capacity(&self) -> Option<usize> {
        match self {
            Policy::ScFixed(p) => Some(p.capacity()),
            Policy::ScAdaptive(p) => Some(p.capacity()),
            _ => None,
        }
    }

    /// Resize the software cache to `capacity` on behalf of an external
    /// controller (`knee` = the MRC knee that motivated it). Evicted
    /// entries are appended to `out` for the caller to flush. Returns
    /// `false` (and does nothing) for policies without a resizable
    /// cache — ER/LA/AT/BEST have no capacity to steer.
    pub fn apply_capacity(&mut self, knee: usize, capacity: usize, out: &mut Vec<Line>) -> bool {
        match self {
            Policy::ScFixed(p) => {
                p.set_capacity_into(capacity.max(1), out);
                true
            }
            Policy::ScAdaptive(p) => {
                p.apply_capacity(knee, capacity, out);
                true
            }
            _ => false,
        }
    }
}

impl PersistPolicy for Policy {
    #[inline]
    fn name(&self) -> &'static str {
        each_variant!(self, p => p.name())
    }

    #[inline]
    fn on_store(&mut self, line: Line, out: &mut Vec<Line>) -> StoreOutcome {
        each_variant!(self, p => p.on_store(line, out))
    }

    #[inline]
    fn on_fase_begin(&mut self) {
        each_variant!(self, p => p.on_fase_begin())
    }

    #[inline]
    fn on_fase_end(&mut self, out: &mut Vec<Line>) {
        each_variant!(self, p => p.on_fase_end(out))
    }

    #[inline]
    fn store_overhead_instrs(&self) -> u64 {
        each_variant!(self, p => p.store_overhead_instrs())
    }

    #[inline]
    fn drain_extra_instrs(&mut self) -> u64 {
        each_variant!(self, p => p.drain_extra_instrs())
    }

    #[inline]
    fn take_capacity_change(&mut self) -> Option<(usize, usize)> {
        each_variant!(self, p => p.take_capacity_change())
    }

    #[inline]
    fn sc_capacity(&self) -> Option<usize> {
        Policy::sc_capacity(self)
    }

    #[inline]
    fn reset(&mut self) {
        each_variant!(self, p => p.reset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_named_policies() {
        let kinds = [
            (PolicyKind::Eager, "ER"),
            (PolicyKind::Lazy, "LA"),
            (PolicyKind::Atlas { size: 8 }, "AT"),
            (PolicyKind::ScFixed { capacity: 8 }, "SC-offline"),
            (
                PolicyKind::ScAdaptive(crate::adaptive::AdaptiveConfig::default()),
                "SC",
            ),
            (PolicyKind::Best, "BEST"),
        ];
        for (kind, label) in kinds {
            assert_eq!(kind.label(), label);
            let p = kind.build();
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn sc_capacity_and_apply_capacity_cover_only_sc_variants() {
        use nvcache_trace::Line;
        let mut out = Vec::new();
        for kind in [PolicyKind::Eager, PolicyKind::Lazy, PolicyKind::Best] {
            let mut p = kind.build_policy();
            assert_eq!(p.sc_capacity(), None, "{}", kind.label());
            assert!(!p.apply_capacity(5, 12, &mut out), "{}", kind.label());
        }
        let mut fixed = PolicyKind::ScFixed { capacity: 4 }.build_policy();
        assert_eq!(fixed.sc_capacity(), Some(4));
        for i in 0..4u64 {
            fixed.on_store(Line(i), &mut out);
        }
        out.clear();
        assert!(fixed.apply_capacity(2, 2, &mut out));
        assert_eq!(fixed.sc_capacity(), Some(2));
        assert_eq!(out.len(), 2, "shrink 4→2 evicts two LRU lines");
        let mut adaptive = PolicyKind::ScAdaptive(Default::default()).build_policy();
        assert!(adaptive.apply_capacity(9, 10, &mut out));
        assert_eq!(adaptive.sc_capacity(), Some(10));
        assert_eq!(adaptive.take_capacity_change(), Some((9, 10)));
    }

    #[test]
    fn enum_policy_behaves_like_boxed_policy() {
        use nvcache_trace::Line;
        let kinds = [
            PolicyKind::Eager,
            PolicyKind::Lazy,
            PolicyKind::Atlas { size: 4 },
            PolicyKind::ScFixed { capacity: 4 },
            PolicyKind::ScAdaptive(crate::adaptive::AdaptiveConfig {
                burst_len: 64,
                ..Default::default()
            }),
            PolicyKind::Best,
        ];
        for kind in kinds {
            let mut boxed = kind.build();
            let mut inline = kind.build_policy();
            assert_eq!(boxed.name(), inline.name());
            let (mut b_out, mut e_out) = (Vec::new(), Vec::new());
            for i in 0..200u64 {
                let line = Line(i % 7);
                assert_eq!(
                    boxed.on_store(line, &mut b_out),
                    inline.on_store(line, &mut e_out),
                    "{} store {i}",
                    kind.label()
                );
                assert_eq!(boxed.drain_extra_instrs(), inline.drain_extra_instrs());
                assert_eq!(boxed.take_capacity_change(), inline.take_capacity_change());
                if i % 50 == 49 {
                    boxed.on_fase_end(&mut b_out);
                    inline.on_fase_end(&mut e_out);
                    boxed.on_fase_begin();
                    inline.on_fase_begin();
                }
            }
            boxed.on_fase_end(&mut b_out);
            inline.on_fase_end(&mut e_out);
            assert_eq!(b_out, e_out, "{}", kind.label());
            assert_eq!(
                boxed.store_overhead_instrs(),
                inline.store_overhead_instrs()
            );
            inline.reset();
            e_out.clear();
            inline.on_fase_end(&mut e_out);
            assert!(e_out.is_empty(), "{}: reset drops state", kind.label());
        }
    }
}
