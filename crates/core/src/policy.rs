//! The persistence-policy abstraction shared by all six techniques.

use nvcache_trace::Line;

/// What a policy did with one persistent store — the per-store signal
/// the telemetry layer turns into hit/miss (write-combining) counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The write was combined into state the policy already buffers
    /// (software-cache hit) — no new flush obligation was created.
    Combined,
    /// The write created a new buffered entry (software-cache miss);
    /// any eviction it forced is in the `out` buffer.
    Inserted,
}

/// A per-thread persistence policy: decides which cache lines to flush,
/// and when, in response to the instrumented event stream.
///
/// Contract (matching Atlas semantics):
/// * `on_store` may emit flushes that the runtime issues
///   **asynchronously** — they overlap computation.
/// * `on_fase_end` emits the flushes that must complete before the FASE
///   can commit; the runtime issues them **synchronously** and follows
///   with a fence. Only *outermost* FASE ends reach the policy.
/// * Policies are strictly per-thread; implementations need no
///   synchronization.
pub trait PersistPolicy {
    /// Display name ("ER", "AT", "SC", …).
    fn name(&self) -> &'static str;

    /// A persistent store to `line` happened; push any lines to flush
    /// asynchronously onto `out` and report whether the write was
    /// combined or inserted (telemetry; callers may ignore it).
    fn on_store(&mut self, line: Line, out: &mut Vec<Line>) -> StoreOutcome;

    /// An outermost FASE began.
    fn on_fase_begin(&mut self) {}

    /// An outermost FASE is ending; push the lines that must be flushed
    /// synchronously before the commit fence onto `out`.
    fn on_fase_end(&mut self, out: &mut Vec<Line>);

    /// Bookkeeping instructions the policy executes per persistent store
    /// (table lookup, list update, …). Used by the timing model to charge
    /// instruction overhead (paper Table IV shows SC runs ~8% more
    /// instructions than AT).
    fn store_overhead_instrs(&self) -> u64;

    /// Additional instructions accumulated since the last call (e.g. MRC
    /// analysis at a burst end). Default: none.
    fn drain_extra_instrs(&mut self) -> u64 {
        0
    }

    /// Capacity change performed by the most recent `on_store`, as
    /// `(knee, new_capacity)`, drained once. Only adaptive policies
    /// override this; the telemetry-enabled driver polls it to put
    /// resize events (with the MRC knee that motivated them) on the
    /// timeline.
    fn take_capacity_change(&mut self) -> Option<(usize, usize)> {
        None
    }

    /// Forget all buffered state (used between runs).
    fn reset(&mut self);
}

/// Factory enumeration of the six techniques, used by the harness to
/// instantiate one policy instance per thread.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// ER: flush on every store.
    Eager,
    /// LA: flush everything at FASE end.
    Lazy,
    /// AT: Atlas direct-mapped table of `size` entries (paper: 8).
    Atlas {
        /// Table entries.
        size: usize,
    },
    /// SC with a fixed capacity (the "SC-offline" configuration once the
    /// capacity comes from offline profiling).
    ScFixed {
        /// Cache capacity in lines.
        capacity: usize,
    },
    /// SC with online adaptive capacity selection.
    ScAdaptive(crate::adaptive::AdaptiveConfig),
    /// BEST: never flush (upper bound).
    Best,
}

impl PolicyKind {
    /// Instantiate a fresh per-thread policy.
    pub fn build(&self) -> Box<dyn PersistPolicy + Send> {
        match self {
            PolicyKind::Eager => Box::new(crate::eager::EagerPolicy::new()),
            PolicyKind::Lazy => Box::new(crate::lazy::LazyPolicy::new()),
            PolicyKind::Atlas { size } => Box::new(crate::atlas::AtlasPolicy::new(*size)),
            PolicyKind::ScFixed { capacity } => Box::new(crate::sc::ScPolicy::new(*capacity)),
            PolicyKind::ScAdaptive(cfg) => {
                Box::new(crate::adaptive::AdaptiveScPolicy::new(cfg.clone()))
            }
            PolicyKind::Best => Box::new(crate::best::BestPolicy::new()),
        }
    }

    /// Paper label of the technique.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Eager => "ER",
            PolicyKind::Lazy => "LA",
            PolicyKind::Atlas { .. } => "AT",
            PolicyKind::ScFixed { .. } => "SC-offline",
            PolicyKind::ScAdaptive(_) => "SC",
            PolicyKind::Best => "BEST",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_named_policies() {
        let kinds = [
            (PolicyKind::Eager, "ER"),
            (PolicyKind::Lazy, "LA"),
            (PolicyKind::Atlas { size: 8 }, "AT"),
            (PolicyKind::ScFixed { capacity: 8 }, "SC-offline"),
            (
                PolicyKind::ScAdaptive(crate::adaptive::AdaptiveConfig::default()),
                "SC",
            ),
            (PolicyKind::Best, "BEST"),
        ];
        for (kind, label) in kinds {
            assert_eq!(kind.label(), label);
            let p = kind.build();
            assert!(!p.name().is_empty());
        }
    }
}
