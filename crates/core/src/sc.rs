//! SC with a fixed capacity — the software write-combining cache of
//! Section II-B: fully associative, LRU, per thread. With the capacity
//! supplied by offline MRC profiling this is the paper's **SC-offline**
//! configuration; [`crate::AdaptiveScPolicy`] adds online selection.

use crate::lru::{LruCache, Touch};
use crate::policy::{PersistPolicy, StoreOutcome};
use nvcache_trace::Line;

/// The fixed-capacity software-cache policy.
#[derive(Debug, Clone)]
pub struct ScPolicy {
    cache: LruCache,
    hits: u64,
    misses: u64,
}

impl ScPolicy {
    /// New software cache holding `capacity` line addresses.
    pub fn new(capacity: usize) -> Self {
        ScPolicy {
            cache: LruCache::new(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Resize the cache; evicted lines are returned for flushing.
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<Line> {
        self.cache.set_capacity(capacity)
    }

    /// Resize the cache, appending evicted lines to `out` (the
    /// allocation-free path the adaptive controller uses mid-replay).
    pub fn set_capacity_into(&mut self, capacity: usize, out: &mut Vec<Line>) {
        self.cache.set_capacity_into(capacity, out);
    }

    /// Software-cache hits (combined writes) so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Software-cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Software-cache miss ratio so far.
    pub fn miss_ratio(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.misses as f64 / t as f64
        }
    }
}

impl PersistPolicy for ScPolicy {
    fn name(&self) -> &'static str {
        "SC-offline"
    }

    fn sc_capacity(&self) -> Option<usize> {
        Some(self.capacity())
    }

    #[inline]
    fn on_store(&mut self, line: Line, out: &mut Vec<Line>) -> StoreOutcome {
        match self.cache.touch(line) {
            Touch::Hit => {
                self.hits += 1;
                StoreOutcome::Combined
            }
            Touch::Miss { evicted } => {
                self.misses += 1;
                if let Some(victim) = evicted {
                    out.push(victim);
                }
                StoreOutcome::Inserted
            }
        }
    }

    fn on_fase_end(&mut self, out: &mut Vec<Line>) {
        self.cache.drain_lru_first_into(out);
    }

    fn store_overhead_instrs(&self) -> u64 {
        4 // hash probe + list splice
    }

    fn reset(&mut self) {
        self.cache.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combines_within_capacity() {
        let mut p = ScPolicy::new(4);
        let mut out = Vec::new();
        for _ in 0..10 {
            for i in 0..4u64 {
                p.on_store(Line(i), &mut out);
            }
        }
        assert!(out.is_empty(), "working set fits: no mid-FASE flush");
        p.on_fase_end(&mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(p.hits(), 36);
        assert_eq!(p.misses(), 4);
    }

    #[test]
    fn eviction_flushes_lru_line() {
        let mut p = ScPolicy::new(2);
        let mut out = Vec::new();
        p.on_store(Line(1), &mut out);
        p.on_store(Line(2), &mut out);
        p.on_store(Line(1), &mut out); // promote 1
        p.on_store(Line(3), &mut out); // evicts 2
        assert_eq!(out, vec![Line(2)]);
    }

    #[test]
    fn full_associativity_beats_direct_mapping() {
        // The AtlasPolicy thrash case: lines 0 and 8 conflict in a
        // direct-mapped table but coexist in an LRU cache of size 2.
        let mut p = ScPolicy::new(2);
        let mut out = Vec::new();
        for i in 0..100 {
            p.on_store(Line(if i % 2 == 0 { 0 } else { 8 }), &mut out);
        }
        assert!(out.is_empty());
        p.on_fase_end(&mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn fase_end_drains_lru_first() {
        let mut p = ScPolicy::new(3);
        let mut out = Vec::new();
        p.on_store(Line(1), &mut out);
        p.on_store(Line(2), &mut out);
        p.on_store(Line(3), &mut out);
        p.on_fase_end(&mut out);
        assert_eq!(out, vec![Line(1), Line(2), Line(3)]);
        out.clear();
        p.on_fase_end(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn resize_returns_evictions() {
        let mut p = ScPolicy::new(4);
        let mut out = Vec::new();
        for i in 0..4u64 {
            p.on_store(Line(i), &mut out);
        }
        let ev = p.set_capacity(2);
        assert_eq!(ev.len(), 2);
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn miss_ratio_accounting() {
        let mut p = ScPolicy::new(2);
        let mut out = Vec::new();
        p.on_store(Line(1), &mut out); // miss
        p.on_store(Line(1), &mut out); // hit
        assert!((p.miss_ratio() - 0.5).abs() < 1e-12);
        p.reset();
        assert_eq!(p.miss_ratio(), 0.0);
    }
}
