//! Wall-clock micro-benchmark harness for the workspace's `benches/`.
//!
//! An in-repo stand-in for the slice of the `criterion` API the bench
//! targets use: groups, `bench_function` / `bench_with_input`,
//! `iter` / `iter_batched`, element throughput, and the
//! `criterion_group!` / `criterion_main!` macros. Cargo renames this
//! package to `criterion`, so bench files are unchanged.
//!
//! Methodology: each benchmark is warmed up, the per-iteration cost is
//! estimated, and `sample_size` samples are then collected with enough
//! iterations per sample to dominate timer overhead. The harness
//! reports mean and median ns/iteration (plus elements/second when a
//! throughput is declared). It favours low run time over statistical
//! rigor — regressions of interest here are multiples, not percents.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The iteration processes this many logical elements.
    Elements(u64),
}

/// How setup cost relates to routine cost in [`Bencher::iter_batched`].
/// The harness treats all variants identically.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Routine input is cheap to construct relative to the routine.
    SmallInput,
    /// Routine input is comparable in cost to the routine.
    LargeInput,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `hit/50`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter, for single-axis sweeps.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples_wanted: usize,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

/// Target wall-clock spent measuring one benchmark (excl. warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const WARMUP_BUDGET: Duration = Duration::from_millis(20);

impl Bencher {
    fn new(samples_wanted: usize) -> Self {
        Bencher {
            samples_wanted,
            samples: Vec::new(),
        }
    }

    /// Benchmark `routine` called back-to-back.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and estimate the per-iteration cost.
        let mut iters = 1u64;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let el = t.elapsed();
            if el >= WARMUP_BUDGET || iters >= 1 << 30 {
                break el.as_secs_f64() / iters as f64;
            }
            iters *= 4;
        };
        let budget = MEASURE_BUDGET.as_secs_f64() / self.samples_wanted as f64;
        let per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);
        for _ in 0..self.samples_wanted {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
    }

    /// Benchmark `routine` on fresh inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warm up once and estimate cost.
        let input = setup();
        let t = Instant::now();
        black_box(routine(input));
        let per_iter = t.elapsed().as_secs_f64();
        let budget = MEASURE_BUDGET.as_secs_f64() / self.samples_wanted as f64;
        let per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 16);
        for _ in 0..self.samples_wanted {
            let inputs: Vec<I> = (0..per_sample).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
    }

    fn report(mut self, group: &str, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{label}: no samples");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let mut line = format!("{group}/{label}: {mean:>12.1} ns/iter (median {median:.1})");
        if let Some(Throughput::Elements(n)) = throughput {
            let eps = n as f64 / (mean * 1e-9);
            line.push_str(&format!("  {:.1} Melem/s", eps / 1e6));
        }
        println!("{line}");
    }
}

/// A named set of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, id, self.throughput);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.label, self.throughput);
        self
    }

    /// Finish the group (prints a trailing newline separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level harness handle passed to every bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name} --");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Bundle bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a bench target (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_requested_samples() {
        let mut b = Bencher::new(5);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn iter_batched_collects_requested_samples() {
        let mut b = Bencher::new(4);
        b.iter_batched(
            || vec![1u64; 64],
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert_eq!(b.samples.len(), 4);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("hit", 50).label, "hit/50");
        assert_eq!(BenchmarkId::from_parameter("er").label, "er");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        g.finish();
        assert!(ran);
    }
}
