//! Typed persistent variables — the ergonomic face of the
//! instrumentation API (DESIGN.md §2.4): where Atlas's LLVM pass rewrites
//! raw stores, Rust code declares `PVar<T>` / `PArray<T>` handles whose
//! accessors route through the runtime's store/load hooks, giving the
//! same instrumentation points with compile-time types.

use crate::runtime::FaseRuntime;
use std::marker::PhantomData;

/// Values storable in persistent memory: fixed-size, byte-serializable.
/// Implemented for the primitive scalars; the representation is
/// little-endian, so regions are portable across hosts.
pub trait PValue: Copy {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// Encode into `buf[..SIZE]`.
    fn encode(&self, buf: &mut [u8]);
    /// Decode from `buf[..SIZE]`.
    fn decode(buf: &[u8]) -> Self;
}

macro_rules! pvalue_int {
    ($($t:ty),*) => {$(
        impl PValue for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            fn encode(&self, buf: &mut [u8]) {
                buf[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf[..Self::SIZE].try_into().expect("size"))
            }
        }
    )*};
}

pvalue_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl PValue for f64 {
    const SIZE: usize = 8;
    fn encode(&self, buf: &mut [u8]) {
        buf[..8].copy_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &[u8]) -> Self {
        f64::from_le_bytes(buf[..8].try_into().expect("size"))
    }
}

impl PValue for f32 {
    const SIZE: usize = 4;
    fn encode(&self, buf: &mut [u8]) {
        buf[..4].copy_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &[u8]) -> Self {
        f32::from_le_bytes(buf[..4].try_into().expect("size"))
    }
}

impl PValue for bool {
    const SIZE: usize = 1;
    fn encode(&self, buf: &mut [u8]) {
        buf[0] = *self as u8;
    }
    fn decode(buf: &[u8]) -> Self {
        buf[0] != 0
    }
}

/// A typed persistent variable at a fixed offset.
///
/// The handle is plain data (offset + type); all accesses go through an
/// explicit `&mut FaseRuntime`, keeping ownership of the region visible
/// at every use site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PVar<T: PValue> {
    offset: usize,
    _t: PhantomData<T>,
}

impl<T: PValue> PVar<T> {
    /// A variable at byte `offset` of the runtime's data area.
    pub fn at(offset: usize) -> Self {
        PVar {
            offset,
            _t: PhantomData,
        }
    }

    /// Byte offset.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Persistent store (undo-logged inside a FASE).
    pub fn set(&self, rt: &mut FaseRuntime, value: T) {
        let mut buf = [0u8; 16];
        value.encode(&mut buf);
        rt.store(self.offset, &buf[..T::SIZE]);
    }

    /// Load the current value.
    pub fn get(&self, rt: &mut FaseRuntime) -> T {
        let mut buf = [0u8; 16];
        rt.load(self.offset, &mut buf[..T::SIZE]);
        T::decode(&buf)
    }

    /// Read-modify-write.
    pub fn update(&self, rt: &mut FaseRuntime, f: impl FnOnce(T) -> T) -> T {
        let v = f(self.get(rt));
        self.set(rt, v);
        v
    }
}

/// A typed persistent array at a fixed offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PArray<T: PValue> {
    offset: usize,
    len: usize,
    /// Element stride (≥ `T::SIZE`; use `LINE_SIZE` to give each element
    /// its own cache line, like padded hot structures).
    stride: usize,
    _t: PhantomData<T>,
}

impl<T: PValue> PArray<T> {
    /// A dense array of `len` elements at `offset`.
    pub fn at(offset: usize, len: usize) -> Self {
        Self::with_stride(offset, len, T::SIZE)
    }

    /// An array whose elements are `stride` bytes apart.
    pub fn with_stride(offset: usize, len: usize, stride: usize) -> Self {
        assert!(stride >= T::SIZE, "stride must fit the element");
        PArray {
            offset,
            len,
            stride,
            _t: PhantomData,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes this array spans.
    pub fn byte_len(&self) -> usize {
        self.len * self.stride
    }

    fn elem(&self, i: usize) -> PVar<T> {
        assert!(i < self.len, "index {i} out of bounds {}", self.len);
        PVar::at(self.offset + i * self.stride)
    }

    /// Persistent store of element `i`.
    pub fn set(&self, rt: &mut FaseRuntime, i: usize, value: T) {
        self.elem(i).set(rt, value);
    }

    /// Load element `i`.
    pub fn get(&self, rt: &mut FaseRuntime, i: usize) -> T {
        self.elem(i).get(rt)
    }

    /// Load all elements (test/diagnostic helper).
    pub fn to_vec(&self, rt: &mut FaseRuntime) -> Vec<T> {
        (0..self.len).map(|i| self.get(rt, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvcache_core::PolicyKind;
    use nvcache_pmem::CrashMode;

    fn rt() -> FaseRuntime {
        FaseRuntime::new(4096, 1 << 16, &PolicyKind::ScFixed { capacity: 8 })
    }

    #[test]
    fn scalar_roundtrips() {
        let mut r = rt();
        let a = PVar::<u64>::at(0);
        let b = PVar::<f64>::at(8);
        let c = PVar::<bool>::at(16);
        let d = PVar::<i32>::at(24);
        r.fase(|r| {
            a.set(r, 0xdead_beef);
            b.set(r, 3.25);
            c.set(r, true);
            d.set(r, -42);
        });
        assert_eq!(a.get(&mut r), 0xdead_beef);
        assert_eq!(b.get(&mut r), 3.25);
        assert!(c.get(&mut r));
        assert_eq!(d.get(&mut r), -42);
    }

    #[test]
    fn update_is_read_modify_write() {
        let mut r = rt();
        let v = PVar::<u64>::at(0);
        r.fase(|r| {
            v.set(r, 10);
            assert_eq!(v.update(r, |x| x * 3), 30);
        });
        assert_eq!(v.get(&mut r), 30);
    }

    #[test]
    fn typed_vars_are_undo_logged() {
        let mut r = rt();
        let v = PVar::<f64>::at(0);
        r.fase(|r| v.set(r, 1.5));
        r.begin_fase();
        v.set(&mut r, 9.9);
        r.crash_and_recover(&CrashMode::AllInFlightLands);
        assert_eq!(v.get(&mut r), 1.5, "torn typed store rolled back");
    }

    #[test]
    fn array_dense_and_strided() {
        let mut r = rt();
        let dense = PArray::<u32>::at(0, 10);
        let padded = PArray::<u64>::with_stride(256, 8, 64); // line-padded
        r.fase(|r| {
            for i in 0..10 {
                dense.set(r, i, i as u32 * 2);
            }
            for i in 0..8 {
                padded.set(r, i, i as u64 + 100);
            }
        });
        assert_eq!(
            dense.to_vec(&mut r),
            (0..10u32).map(|i| i * 2).collect::<Vec<_>>()
        );
        assert_eq!(padded.get(&mut r, 7), 107);
        assert_eq!(padded.byte_len(), 512);
        assert!(!dense.is_empty());
        assert_eq!(dense.len(), 10);
    }

    #[test]
    fn line_padded_array_writes_distinct_lines() {
        // a padded array gives each element its own cache line — the
        // per-line flush counting must see 8 distinct lines
        let mut r = rt();
        r.record_trace();
        let padded = PArray::<u64>::with_stride(0, 8, 64);
        r.fase(|r| {
            for i in 0..8 {
                padded.set(r, i, 1);
            }
        });
        let t = r.take_trace().unwrap();
        let tr = nvcache_trace::Trace { threads: vec![t] };
        assert_eq!(tr.distinct_lines(), 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn array_bounds_checked() {
        let mut r = rt();
        let a = PArray::<u64>::at(0, 4);
        r.fase(|r| a.set(r, 4, 1));
    }

    #[test]
    #[should_panic(expected = "stride must fit")]
    fn stride_must_fit_element() {
        PArray::<u64>::with_stride(0, 4, 4);
    }
}
