//! Typed recovery errors.
//!
//! Recovery runs against bytes the process does not control — an image
//! read back from disk, or a crash capture from the fuzzer — so every
//! failure mode must surface as a value, never a panic. Conditions a
//! legitimate crash can produce (torn tail word, half-written final
//! record) are *not* errors: the log treats them as a torn log and
//! recovers the sane prefix. Errors are reserved for images that were
//! never a FASE region at all (or were corrupted beyond what the crash
//! model can produce).

/// Why a region could not be recovered as a FASE log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The region is smaller than the advertised data + log areas.
    RegionTooSmall {
        /// Bytes the region actually holds.
        region_len: usize,
        /// Bytes the data area plus log area require.
        need: usize,
    },
    /// The log header's magic word is absent — the image was never
    /// formatted as a FASE log, or its header was corrupted.
    BadMagic {
        /// The word found where the magic should be.
        found: u64,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::RegionTooSmall { region_len, need } => write!(
                f,
                "region too small for a FASE log: {region_len} bytes, need {need}"
            ),
            RecoveryError::BadMagic { found } => write!(
                f,
                "region does not contain a FASE log (magic word {found:#018x})"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}
