//! Crash-point fuzzing: deterministic random FASE programs, a crash
//! injected at **every** persistence micro-step, recovery, and an
//! atomicity oracle.
//!
//! The driver runs one *counting* pass of a generated program to learn
//! the region's total micro-step count and the step index at which each
//! FASE's commit completed, plus the slot snapshot after each commit.
//! It then replays the identical program once per crash step with a
//! [`CrashPlan`] armed: the region captures the exact post-crash image
//! at that step (execution continues unperturbed), the image is rebuilt
//! with [`PmemRegion::from_image`], recovered through
//! [`FaseRuntime::try_reopen`], and the recovered slots are checked
//! against the oracle:
//!
//! * **Strong oracle** (the five durable policies in every
//!   [`CrashMode`], and BEST under `AllInFlightLands`): the recovered
//!   slot array equals the snapshot after the last committed FASE — or,
//!   when the crash fell inside the next FASE's commit window, that next
//!   snapshot. Never a mix.
//! * **Weak oracle** (BEST under `StrictDurableOnly` / `Random`): BEST
//!   never flushes data, so committed values may simply be absent after
//!   a crash; per slot the recovered value must still be one of
//!   {0, before-snapshot, after-snapshot} — an *uncommitted* value can
//!   never survive, because its undo entry is durable before the data
//!   store and recovery rolls it back.
//!
//! Everything is keyed on a `u64` seed: same seed, same program, same
//! step schedule, same verdict.

use nvcache_core::PolicyKind;
use nvcache_pmem::{CrashMode, CrashPlan, PmemRegion};
use rand::{rngs::SmallRng, Rng, SeedableRng};

use crate::runtime::{FaseRuntime, FlushMode};

/// Slot array starts one line in, keeping line 0 (where a persistent
/// heap would put its magic) out of the fuzzed address range.
const SLOT_BASE: usize = 64;

/// Shape of the generated programs and the crash-step sweep.
#[derive(Debug, Clone)]
pub struct CrashFuzzConfig {
    /// Number of `u64` slots the program mutates.
    pub slots: usize,
    /// FASEs per program.
    pub fases: usize,
    /// Maximum stores per FASE (at least one is always issued).
    pub stores_per_fase: usize,
    /// Undo-log area bytes.
    pub log_len: usize,
    /// Crash-step stride: 1 replays every micro-step; `k` replays steps
    /// `first, first+k, …` (a deterministic sample for smoke runs).
    pub step_stride: u64,
    /// Flush path the fuzzed programs drive. `Pipelined` also routes
    /// each FASE's write set through [`FaseRuntime::prelog`], so the
    /// sweep covers the grouped-append commit protocol's micro-steps
    /// (record span flush, tail publish, ring drains, fence token).
    pub flush_mode: FlushMode,
    /// Concurrent submitters per group commit. With `clients > 1` each
    /// FASE is a *cross-client batch*: every client contributes its own
    /// deterministic store stream and the worker drains them into one
    /// failure-atomic section — the shard worker's group-commit shape.
    /// The oracle then asserts the merged batch is all-or-nothing: a
    /// crash mid-drain can never expose one client's writes without the
    /// rest of the same acknowledged batch. `clients = 1` reproduces
    /// the historical single-stream programs bit-for-bit.
    pub clients: usize,
}

impl Default for CrashFuzzConfig {
    fn default() -> Self {
        CrashFuzzConfig {
            slots: 24,
            fases: 5,
            stores_per_fase: 8,
            log_len: 1 << 14,
            step_stride: 1,
            flush_mode: FlushMode::Sync,
            clients: 1,
        }
    }
}

/// One oracle violation found by the fuzzer.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Micro-step index the crash was injected at.
    pub step: u64,
    /// Human-readable description of the violation.
    pub detail: String,
}

/// Outcome of one `(program, policy, mode)` crash-step sweep.
#[derive(Debug, Clone)]
pub struct CrashFuzzReport {
    /// Distinct crash schedules replayed (one per crash step tested).
    pub schedules: u64,
    /// Micro-steps the program executes end to end.
    pub total_steps: u64,
    /// Oracle violations (first few; see `failure_count` for the total).
    pub failures: Vec<FuzzFailure>,
    /// Total violations, including those not retained in `failures`.
    pub failure_count: u64,
}

impl CrashFuzzReport {
    /// Did every schedule satisfy the oracle?
    pub fn passed(&self) -> bool {
        self.failure_count == 0
    }
}

/// A generated program: per FASE, the `(slot, value)` stores it issues.
type Program = Vec<Vec<(usize, u64)>>;

/// Generate the deterministic random program for `seed`.
///
/// Each FASE is the concatenation of `cfg.clients` per-client store
/// streams drained in submission order — the same merge a shard worker
/// performs when it group-commits everything in flight. With one
/// client this degenerates to the historical generator: the RNG draw
/// sequence is identical, so legacy seeds map to identical programs.
fn generate_program(seed: u64, cfg: &CrashFuzzConfig) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0006_ea5e);
    let clients = cfg.clients.max(1);
    (0..cfg.fases)
        .map(|_| {
            let mut batch = Vec::new();
            for _client in 0..clients {
                let n = rng.gen_range(1..cfg.stores_per_fase + 1);
                for _ in 0..n {
                    let slot = rng.gen_range(0..cfg.slots);
                    let value = rng.gen::<u64>() | 1; // nonzero
                    batch.push((slot, value));
                }
            }
            batch
        })
        .collect()
}

fn data_len(cfg: &CrashFuzzConfig) -> usize {
    SLOT_BASE + cfg.slots * 8
}

/// Execute `program` on a fresh runtime (optionally with an armed crash
/// plan), returning the runtime afterwards.
fn run_program(
    kind: &PolicyKind,
    program: &Program,
    cfg: &CrashFuzzConfig,
    plan: Option<CrashPlan>,
    commit_done: Option<&mut Vec<u64>>,
    snapshots: Option<&mut Vec<Vec<u64>>>,
) -> FaseRuntime {
    let mut rt = FaseRuntime::new(data_len(cfg), cfg.log_len, kind);
    rt.set_flush_mode(cfg.flush_mode);
    if let Some(plan) = plan {
        rt.arm_crash(plan);
    }
    let mut commit_done = commit_done;
    let mut snapshots = snapshots;
    for fase in program {
        rt.begin_fase();
        if cfg.flush_mode == FlushMode::Pipelined {
            // the pipelined commit protocol pairs with grouped
            // prelogging: capture the whole write set up front
            let ranges: Vec<(u64, u64)> = fase
                .iter()
                .map(|&(slot, _)| ((SLOT_BASE + slot * 8) as u64, 8))
                .collect();
            rt.prelog(&ranges);
        }
        for &(slot, value) in fase {
            rt.store_u64(SLOT_BASE + slot * 8, value);
        }
        rt.end_fase();
        if let Some(cd) = commit_done.as_deref_mut() {
            cd.push(rt.steps());
        }
        if let Some(snaps) = snapshots.as_deref_mut() {
            let prev = snaps.last().expect("seeded with the initial snapshot");
            let mut snap = prev.clone();
            for &(slot, value) in fase {
                snap[slot] = value;
            }
            snaps.push(snap);
        }
    }
    rt
}

/// Read the recovered slot array out of a region.
fn read_slots(region: &PmemRegion, cfg: &CrashFuzzConfig) -> Vec<u64> {
    (0..cfg.slots)
        .map(|i| region.read_u64(SLOT_BASE + i * 8))
        .collect()
}

/// Does `kind` guarantee committed data is durable (flushed + fenced)
/// by commit time? BEST deliberately does not — it is the paper's
/// no-flush upper bound, checked against the weak oracle except under
/// the adversary that lands all in-flight lines.
fn strong_oracle(kind: &PolicyKind, mode: &CrashMode) -> bool {
    !matches!(kind, PolicyKind::Best) || matches!(mode, CrashMode::AllInFlightLands)
}

/// Sweep every crash step (per `cfg.step_stride`) of the program
/// generated from `seed`, under `kind` × `mode`, and check the recovery
/// oracle at each. Fully deterministic in `(kind, mode, seed, cfg)`.
pub fn crash_fuzz(
    kind: &PolicyKind,
    mode: &CrashMode,
    seed: u64,
    cfg: &CrashFuzzConfig,
) -> CrashFuzzReport {
    let program = generate_program(seed, cfg);

    // Counting pass: step boundaries + committed snapshots, no crash.
    let mut commit_done: Vec<u64> = Vec::with_capacity(cfg.fases);
    let mut snapshots: Vec<Vec<u64>> = vec![vec![0u64; cfg.slots]];
    let probe = FaseRuntime::new(data_len(cfg), cfg.log_len, kind);
    let format_steps = probe.steps();
    drop(probe);
    let rt = run_program(
        kind,
        &program,
        cfg,
        None,
        Some(&mut commit_done),
        Some(&mut snapshots),
    );
    let total_steps = rt.steps();
    drop(rt);

    let mut report = CrashFuzzReport {
        schedules: 0,
        total_steps,
        failures: Vec::new(),
        failure_count: 0,
    };
    let fail = |report: &mut CrashFuzzReport, step: u64, detail: String| {
        report.failure_count += 1;
        if report.failures.len() < 8 {
            report.failures.push(FuzzFailure { step, detail });
        }
    };

    // Replay pass: one run per crash step. Steps before `format_steps`
    // would crash mid-format (no log yet) — out of the model.
    let mut step = format_steps;
    while step < total_steps {
        report.schedules += 1;
        let mut rt = run_program(
            kind,
            &program,
            cfg,
            Some(CrashPlan {
                at_step: step,
                mode: mode.clone(),
            }),
            None,
            None,
        );
        let Some(image) = rt.take_crash_image() else {
            fail(
                &mut report,
                step,
                format!("no crash image captured at step {step} (< {total_steps})"),
            );
            step += cfg.step_stride;
            continue;
        };
        let region = PmemRegion::from_image(image);
        let recovered = match FaseRuntime::try_reopen(region, data_len(cfg), cfg.log_len, kind) {
            Ok(rt) => rt,
            Err(e) => {
                fail(&mut report, step, format!("recovery failed: {e}"));
                step += cfg.step_stride;
                continue;
            }
        };
        let got = read_slots(recovered.region(), cfg);

        // f = FASEs whose commit fully completed before this step.
        let f = commit_done.partition_point(|&c| c <= step);
        let before = &snapshots[f];
        let after = snapshots.get(f + 1);
        let ok = if strong_oracle(kind, mode) {
            // All-or-nothing: exactly the pre-snapshot, or (inside the
            // next commit window) exactly the post-snapshot.
            got == *before || after.is_some_and(|a| got == *a)
        } else {
            // Per slot: a committed value may be missing (0), but an
            // uncommitted value must never be visible.
            got.iter()
                .enumerate()
                .all(|(i, &v)| v == 0 || v == before[i] || after.is_some_and(|a| v == a[i]))
        };
        if !ok {
            fail(
                &mut report,
                step,
                format!(
                    "oracle violated after crash at step {step} ({} committed): got {:?}",
                    f,
                    &got[..got.len().min(8)]
                ),
            );
        }
        step += cfg.step_stride;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_generation_is_deterministic() {
        let cfg = CrashFuzzConfig::default();
        assert_eq!(generate_program(7, &cfg), generate_program(7, &cfg));
        assert_ne!(generate_program(7, &cfg), generate_program(8, &cfg));
    }

    #[test]
    fn every_step_of_a_small_program_recovers_consistently() {
        let cfg = CrashFuzzConfig {
            slots: 8,
            fases: 3,
            stores_per_fase: 4,
            ..CrashFuzzConfig::default()
        };
        let r = crash_fuzz(
            &PolicyKind::ScFixed { capacity: 4 },
            &CrashMode::AllInFlightLands,
            1,
            &cfg,
        );
        assert!(r.schedules > 50, "swept {} schedules", r.schedules);
        assert!(r.passed(), "failures: {:?}", r.failures);
    }

    #[test]
    fn best_policy_passes_weak_oracle_under_strict() {
        let cfg = CrashFuzzConfig {
            slots: 8,
            fases: 3,
            stores_per_fase: 4,
            ..CrashFuzzConfig::default()
        };
        let r = crash_fuzz(&PolicyKind::Best, &CrashMode::StrictDurableOnly, 2, &cfg);
        assert!(r.passed(), "failures: {:?}", r.failures);
    }

    #[test]
    fn pipelined_commit_path_recovers_at_every_step() {
        let cfg = CrashFuzzConfig {
            slots: 8,
            fases: 3,
            stores_per_fase: 4,
            flush_mode: FlushMode::Pipelined,
            ..CrashFuzzConfig::default()
        };
        for mode in [
            CrashMode::StrictDurableOnly,
            CrashMode::AllInFlightLands,
            CrashMode::random(0.5, 0.5, 13),
        ] {
            let r = crash_fuzz(&PolicyKind::ScFixed { capacity: 4 }, &mode, 5, &cfg);
            assert!(r.schedules > 30, "swept {} schedules", r.schedules);
            assert!(r.passed(), "mode {mode:?} failures: {:?}", r.failures);
        }
    }

    #[test]
    fn one_client_reproduces_the_legacy_program_shape() {
        // clients = 1 must not disturb the RNG draw sequence: the
        // per-FASE store counts stay within the single-stream bound.
        let cfg = CrashFuzzConfig::default();
        assert_eq!(cfg.clients, 1);
        let p = generate_program(7, &cfg);
        assert_eq!(p.len(), cfg.fases);
        for fase in &p {
            assert!((1..=cfg.stores_per_fase).contains(&fase.len()));
        }
    }

    #[test]
    fn multi_client_batches_merge_every_submitters_stream() {
        let cfg = CrashFuzzConfig {
            clients: 4,
            ..CrashFuzzConfig::default()
        };
        let p = generate_program(7, &cfg);
        assert_eq!(p.len(), cfg.fases);
        for fase in &p {
            // each of the 4 clients contributes at least one store
            assert!(fase.len() >= cfg.clients);
            assert!(fase.len() <= cfg.clients * cfg.stores_per_fase);
        }
        assert_eq!(
            generate_program(7, &cfg),
            generate_program(7, &cfg),
            "concurrent programs stay seed-deterministic"
        );
    }

    #[test]
    fn cross_client_group_commit_never_tears_at_any_step() {
        // The concurrent-submission sweep: each FASE carries several
        // clients' writes; a crash anywhere mid-drain must recover to
        // a committed prefix of whole batches — never a partial merge.
        let cfg = CrashFuzzConfig {
            slots: 8,
            fases: 3,
            stores_per_fase: 3,
            clients: 3,
            flush_mode: FlushMode::Pipelined,
            ..CrashFuzzConfig::default()
        };
        for mode in [
            CrashMode::StrictDurableOnly,
            CrashMode::AllInFlightLands,
            CrashMode::random(0.5, 0.5, 29),
        ] {
            let r = crash_fuzz(&PolicyKind::ScFixed { capacity: 4 }, &mode, 11, &cfg);
            assert!(r.schedules > 30, "swept {} schedules", r.schedules);
            assert!(r.passed(), "mode {mode:?} failures: {:?}", r.failures);
        }
    }

    #[test]
    fn stride_samples_the_schedule_space() {
        let cfg = CrashFuzzConfig {
            slots: 8,
            fases: 2,
            stores_per_fase: 3,
            step_stride: 7,
            ..CrashFuzzConfig::default()
        };
        let full = crash_fuzz(
            &PolicyKind::Lazy,
            &CrashMode::StrictDurableOnly,
            3,
            &CrashFuzzConfig {
                step_stride: 1,
                ..cfg.clone()
            },
        );
        let sampled = crash_fuzz(&PolicyKind::Lazy, &CrashMode::StrictDurableOnly, 3, &cfg);
        assert_eq!(full.total_steps, sampled.total_steps);
        assert!(sampled.schedules < full.schedules);
        assert!(sampled.passed());
    }
}
