//! Atlas-style failure-atomic sections (FASEs) over emulated NVRAM.
//!
//! The paper's system sits on Atlas (Chakrabarti et al., OOPSLA'14):
//! programs group invariant-violating updates into FASEs; upon failure,
//! either all or none of a FASE's updates are visible in NVRAM. Atlas
//! implements this with undo logging — a log entry holding the old value
//! is made durable *before* the data store — plus cache-line write-backs
//! of the modified data before the FASE commits.
//!
//! This crate provides:
//!
//! * [`log::UndoLog`] — the in-region undo log (append, commit,
//!   truncate, recovery scan) with the log-before-data ordering
//!   discipline.
//! * [`runtime::FaseRuntime`] — the per-thread runtime that Atlas's LLVM
//!   instrumentation pass would drive (DESIGN.md §2.4): every persistent
//!   store routes through [`runtime::FaseRuntime::store`], which logs,
//!   writes, and hands the touched cache line to the pluggable
//!   persistence policy (ER/LA/AT/SC/…) from `nvcache-core`.
//! * [`cell::PVar`] / [`cell::PArray`] — typed persistent variables over
//!   the runtime: the ergonomic equivalent of compiler-instrumented
//!   stores.
//! * crash/recovery — [`runtime::FaseRuntime::crash_and_recover`]
//!   injects a power failure via any [`nvcache_pmem::CrashMode`] and
//!   rolls back incomplete FASEs, restoring the "all or none" guarantee
//!   that the property tests in `tests/` verify.

#![warn(missing_docs)]

pub mod cell;
pub mod error;
pub mod fuzz;
pub mod log;
pub mod runtime;

pub use cell::{PArray, PValue, PVar};
pub use error::RecoveryError;
pub use fuzz::{crash_fuzz, CrashFuzzConfig, CrashFuzzReport, FuzzFailure};
pub use log::{LogStats, UndoLog};
pub use runtime::{FaseRuntime, FaseStats, FlushMode};
