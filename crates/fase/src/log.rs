//! The persistent undo log.
//!
//! Lives in a reserved suffix of the data region so that crash injection
//! hits data and log with a single consistent cut. Layout (offsets
//! relative to the log base):
//!
//! ```text
//! 0   magic   u64
//! 8   tail    u64   (next free offset, starts at 16)
//! 16… records: [offset u64][len u64][old bytes, padded to 8]
//!              COMMIT record: offset == u64::MAX, len == 0
//! ```
//!
//! Discipline:
//! * `append_entry` persists the record **and then** the tail bump, each
//!   with flush+fence, before returning — so by the time the caller
//!   performs the data store, the undo information is durable
//!   (log-before-data).
//! * `commit` appends a COMMIT record, persists it, then truncates
//!   (tail←16, persisted). A crash between the two leaves a log whose
//!   last record is COMMIT; recovery just truncates.
//! * `recover` rolls back any non-committed records in reverse order,
//!   persisting each restored value, then truncates.
//!
//! Recovery never trusts durable bytes: the tail word is clamped into
//! the log area and records are sanity-checked before use. Anything a
//! torn write could have produced (tail beyond the area, a record whose
//! length runs past the tail, an offset outside the data area) is
//! treated as a torn log — parsing stops there, since log-before-data
//! ordering guarantees the corresponding data store never happened.

use crate::error::RecoveryError;
use nvcache_pmem::PmemRegion;

const LOG_MAGIC: u64 = 0x4641_5345_4c4f_4731; // "FASELOG1"
const OFF_MAGIC: usize = 0;
const OFF_TAIL: usize = 8;
const RECORDS_START: u64 = 16;
const COMMIT_MARK: u64 = u64::MAX;

/// Counters for log activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Undo entries appended.
    pub entries: u64,
    /// Commits.
    pub commits: u64,
    /// Rollbacks performed by recovery.
    pub rollbacks: u64,
    /// Bytes of old-value data logged.
    pub bytes_logged: u64,
}

/// An undo log occupying `[base, base+len)` of a region.
#[derive(Debug, Clone)]
pub struct UndoLog {
    base: usize,
    len: usize,
    stats: LogStats,
}

impl UndoLog {
    /// Format a fresh log in `[base, base+len)`.
    pub fn format(region: &mut PmemRegion, base: usize, len: usize) -> Self {
        assert!(base + len <= region.len());
        assert!(len >= 64, "log area too small");
        region.write_u64(base + OFF_MAGIC, LOG_MAGIC);
        region.write_u64(base + OFF_TAIL, RECORDS_START);
        region.persist(base, 16);
        UndoLog {
            base,
            len,
            stats: LogStats::default(),
        }
    }

    /// Attach to an existing log formatted at `[base, base+len)`.
    ///
    /// Validates that the region can hold the advertised areas and that
    /// the header carries the log magic; a corrupt or unformatted image
    /// surfaces as a typed [`RecoveryError`], never a panic.
    pub fn open(region: &PmemRegion, base: usize, len: usize) -> Result<Self, RecoveryError> {
        let need = base
            .checked_add(len.max(16))
            .ok_or(RecoveryError::RegionTooSmall {
                region_len: region.len(),
                need: usize::MAX,
            })?;
        if len < 64 || need > region.len() {
            return Err(RecoveryError::RegionTooSmall {
                region_len: region.len(),
                need,
            });
        }
        let found = region.read_u64(base + OFF_MAGIC);
        if found != LOG_MAGIC {
            return Err(RecoveryError::BadMagic { found });
        }
        Ok(UndoLog {
            base,
            len,
            stats: LogStats::default(),
        })
    }

    /// Activity counters.
    pub fn stats(&self) -> LogStats {
        self.stats
    }

    fn tail(&self, region: &PmemRegion) -> u64 {
        region.read_u64(self.base + OFF_TAIL)
    }

    fn set_tail(&self, region: &mut PmemRegion, tail: u64) {
        region.write_u64(self.base + OFF_TAIL, tail);
        region.persist(self.base + OFF_TAIL, 8);
    }

    /// Bytes currently used by records.
    pub fn used(&self, region: &PmemRegion) -> u64 {
        self.tail(region) - RECORDS_START
    }

    /// Record the old value of `[offset, offset+old.len())` durably.
    /// Must be called *before* the data store it protects.
    ///
    /// # Panics
    /// When the log area overflows (size the log for the largest FASE).
    pub fn append_entry(&mut self, region: &mut PmemRegion, offset: u64, old: &[u8]) {
        let tail = self.tail(region);
        let padded = old.len().div_ceil(8) * 8;
        let rec_len = 16 + padded as u64;
        assert!(
            (tail + rec_len) as usize <= self.len,
            "undo log overflow: FASE touches more than {} bytes of log",
            self.len
        );
        let at = self.base + tail as usize;
        region.write_u64(at, offset);
        region.write_u64(at + 8, old.len() as u64);
        if !old.is_empty() {
            region.write(at + 16, old);
        }
        region.persist(at, 16 + old.len());
        self.set_tail(region, tail + rec_len);
        self.stats.entries += 1;
        self.stats.bytes_logged += old.len() as u64;
    }

    /// Record the old values of several `(offset, len)` ranges as one
    /// grouped append: every record is written contiguously, the whole
    /// span is persisted with a **single** ranged flush + fence, then
    /// the tail advances with one more persist — two fences per group
    /// instead of two per entry (the pipelined commit path's log-side
    /// win). Records are durable *before* the tail publishes, so a
    /// crash anywhere inside the group leaves the durable tail at its
    /// old value and recovery sees none of the group — safe, because
    /// the caller has not yet stored to any of the ranges
    /// (group-log-before-data). Zero-length ranges are skipped
    /// (recovery treats `len == 0` as a torn record); duplicate or
    /// overlapping ranges are harmless — each captures the same
    /// pre-group bytes, and reverse rollback converges to them.
    ///
    /// # Panics
    /// When the log area overflows.
    pub fn append_group(&mut self, region: &mut PmemRegion, ranges: &[(u64, u64)]) {
        let tail = self.tail(region);
        let mut pos = tail;
        let mut old = Vec::new();
        for &(offset, len) in ranges {
            if len == 0 {
                continue;
            }
            let padded = len.div_ceil(8) * 8;
            let rec_len = 16 + padded;
            assert!(
                (pos + rec_len) as usize <= self.len,
                "undo log overflow: grouped FASE write set exceeds {} bytes of log",
                self.len
            );
            let at = self.base + pos as usize;
            old.resize(len as usize, 0);
            region.read(offset as usize, &mut old);
            region.write_u64(at, offset);
            region.write_u64(at + 8, len);
            region.write(at + 16, &old);
            pos += rec_len;
            self.stats.entries += 1;
            self.stats.bytes_logged += len;
        }
        if pos == tail {
            return;
        }
        region.persist(self.base + tail as usize, (pos - tail) as usize);
        self.set_tail(region, pos);
    }

    /// Commit the open FASE: durable COMMIT record, then truncation.
    pub fn commit(&mut self, region: &mut PmemRegion) {
        let tail = self.tail(region);
        assert!(
            (tail + 16) as usize <= self.len,
            "undo log overflow at commit"
        );
        let at = self.base + tail as usize;
        region.write_u64(at, COMMIT_MARK);
        region.write_u64(at + 8, 0);
        region.persist(at, 16);
        self.set_tail(region, tail + 16);
        // Truncate: the FASE is durable; drop the records.
        self.set_tail(region, RECORDS_START);
        self.stats.commits += 1;
    }

    /// Scan the log after a restart and roll back an incomplete FASE, if
    /// any. Restored bytes are persisted before the log is truncated.
    /// Returns the number of undo entries applied.
    ///
    /// The durable `tail` word and every record header are validated
    /// before use: the tail is clamped into the log area and 8-aligned
    /// down, and a record whose length overruns the tail or whose target
    /// range leaves the data area stops the scan (treated as torn — its
    /// data store can never have happened under log-before-data). Only a
    /// missing magic word — an image that was never this log — is a hard
    /// [`RecoveryError`].
    pub fn recover(&mut self, region: &mut PmemRegion) -> Result<usize, RecoveryError> {
        let found = region.read_u64(self.base + OFF_MAGIC);
        if found != LOG_MAGIC {
            return Err(RecoveryError::BadMagic { found });
        }
        // Clamp the durable tail: a torn tail write may carry any value.
        let raw_tail = self.tail(region);
        let tail = raw_tail.min(self.len as u64) & !7;
        if tail <= RECORDS_START {
            if raw_tail != RECORDS_START {
                self.set_tail(region, RECORDS_START);
            }
            return Ok(0);
        }
        // Parse records into (offset, len, data_at).
        let mut recs: Vec<(u64, usize, usize)> = Vec::new();
        let mut pos = RECORDS_START;
        let mut committed = false;
        while pos + 16 <= tail {
            let at = self.base + pos as usize;
            let offset = region.read_u64(at);
            let len_w = region.read_u64(at + 8);
            if offset == COMMIT_MARK {
                // `commit` truncates right after appending, so a live
                // COMMIT can only be the final record inside the tail
                // window (crash between append and truncation). A
                // COMMIT-shaped word anywhere else is stale bytes from
                // an earlier FASE past the true tail — stop the scan
                // and keep the records gathered so far.
                if len_w == 0 && pos + 16 == tail {
                    committed = true;
                    recs.clear();
                }
                break;
            }
            // Record sanity: a real entry restores 1+ bytes that lie
            // entirely inside the data area [0, base). Anything else is
            // garbage past the true tail — stop there.
            let sane = len_w > 0
                && matches!(offset.checked_add(len_w),
                            Some(end) if end <= self.base as u64);
            if !sane {
                break;
            }
            let padded = (len_w + 7) & !7;
            if pos + 16 + padded > tail {
                break; // torn final record: its data store never happened
            }
            recs.push((offset, len_w as usize, at + 16));
            pos += 16 + padded;
        }

        let mut applied = 0usize;
        if !committed {
            for &(offset, len, data_at) in recs.iter().rev() {
                let mut old = vec![0u8; len];
                region.read(data_at, &mut old);
                region.write(offset as usize, &old);
                region.persist(offset as usize, len);
                applied += 1;
            }
            if applied > 0 {
                self.stats.rollbacks += 1;
            }
        }
        self.set_tail(region, RECORDS_START);
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvcache_pmem::CrashMode;

    const LOG_BASE: usize = 4096;
    const LOG_LEN: usize = 4096;

    fn setup() -> (PmemRegion, UndoLog) {
        let mut r = PmemRegion::new(LOG_BASE + LOG_LEN);
        let l = UndoLog::format(&mut r, LOG_BASE, LOG_LEN);
        (r, l)
    }

    #[test]
    fn entry_then_commit_truncates() {
        let (mut r, mut l) = setup();
        l.append_entry(&mut r, 0, &[1, 2, 3, 4]);
        assert!(l.used(&r) > 0);
        l.commit(&mut r);
        assert_eq!(l.used(&r), 0);
        assert_eq!(l.stats().entries, 1);
        assert_eq!(l.stats().commits, 1);
    }

    #[test]
    fn rollback_restores_old_values_in_reverse() {
        let (mut r, mut l) = setup();
        // initial durable state
        r.write(0, b"AAAA");
        r.persist(0, 4);
        // FASE: log old, then mutate — twice on the same location
        let mut old = [0u8; 4];
        r.read(0, &mut old);
        l.append_entry(&mut r, 0, &old);
        r.write(0, b"BBBB");
        r.persist(0, 4); // data may be durable — log already is
        r.read(0, &mut old);
        l.append_entry(&mut r, 0, &old);
        r.write(0, b"CCCC");
        r.persist(0, 4);
        // crash before commit
        r.crash(&CrashMode::AllInFlightLands);
        let mut l2 = UndoLog::open(&r, LOG_BASE, LOG_LEN).unwrap();
        let applied = l2.recover(&mut r).unwrap();
        assert_eq!(applied, 2);
        assert_eq!(r.slice(0, 4), b"AAAA", "reverse order restores oldest");
    }

    #[test]
    fn committed_fase_is_not_rolled_back() {
        let (mut r, mut l) = setup();
        r.write(0, b"AAAA");
        r.persist(0, 4);
        l.append_entry(&mut r, 0, b"AAAA");
        r.write(0, b"BBBB");
        r.persist(0, 4);
        l.commit(&mut r);
        r.crash(&CrashMode::StrictDurableOnly);
        let mut l2 = UndoLog::open(&r, LOG_BASE, LOG_LEN).unwrap();
        assert_eq!(l2.recover(&mut r).unwrap(), 0);
        assert_eq!(r.slice(0, 4), b"BBBB");
    }

    #[test]
    fn crash_between_commit_record_and_truncation() {
        // Simulate: commit record persisted, truncation lost. Recovery
        // must not roll back.
        let (mut r, mut l) = setup();
        r.write(0, b"AAAA");
        r.persist(0, 4);
        l.append_entry(&mut r, 0, b"AAAA");
        r.write(0, b"BBBB");
        r.persist(0, 4);
        // hand-craft the commit record without truncating
        let tail = r.read_u64(LOG_BASE + OFF_TAIL);
        let at = LOG_BASE + tail as usize;
        r.write_u64(at, COMMIT_MARK);
        r.write_u64(at + 8, 0);
        r.persist(at, 16);
        r.write_u64(LOG_BASE + OFF_TAIL, tail + 16);
        r.persist(LOG_BASE + OFF_TAIL, 8);
        r.crash(&CrashMode::StrictDurableOnly);
        let mut l2 = UndoLog::open(&r, LOG_BASE, LOG_LEN).unwrap();
        assert_eq!(l2.recover(&mut r).unwrap(), 0, "last record is COMMIT");
        assert_eq!(r.slice(0, 4), b"BBBB");
    }

    #[test]
    fn log_before_data_makes_early_durable_data_safe() {
        // The dangerous interleaving: data lands in NVRAM, log entry is
        // required to undo it. Because append_entry persists before the
        // data store, rollback always has what it needs.
        let (mut r, mut l) = setup();
        r.write(100, b"OLD!");
        r.persist(100, 4);
        l.append_entry(&mut r, 100, b"OLD!");
        r.write(100, b"NEW!");
        // crash where the dirty data line *lands* but nothing else
        r.crash(&CrashMode::random(0.0, 1.0, 3));
        let mut l2 = UndoLog::open(&r, LOG_BASE, LOG_LEN).unwrap();
        l2.recover(&mut r).unwrap();
        assert_eq!(r.slice(100, 4), b"OLD!");
    }

    #[test]
    fn recovery_is_idempotent() {
        let (mut r, mut l) = setup();
        r.write(0, b"AAAA");
        r.persist(0, 4);
        l.append_entry(&mut r, 0, b"AAAA");
        r.write(0, b"BBBB");
        r.persist(0, 4);
        r.crash(&CrashMode::AllInFlightLands);
        let mut l2 = UndoLog::open(&r, LOG_BASE, LOG_LEN).unwrap();
        l2.recover(&mut r).unwrap();
        assert_eq!(r.slice(0, 4), b"AAAA");
        // crash again mid-"nothing" and recover again
        r.crash(&CrashMode::StrictDurableOnly);
        let mut l3 = UndoLog::open(&r, LOG_BASE, LOG_LEN).unwrap();
        assert_eq!(l3.recover(&mut r).unwrap(), 0);
        assert_eq!(r.slice(0, 4), b"AAAA");
    }

    #[test]
    fn open_rejects_unformatted_area() {
        let r = PmemRegion::new(8192);
        match UndoLog::open(&r, 4096, 4096) {
            Err(RecoveryError::BadMagic { found }) => assert_eq!(found, 0),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_undersized_region() {
        let r = PmemRegion::new(1024);
        match UndoLog::open(&r, 4096, 4096) {
            Err(RecoveryError::RegionTooSmall { region_len, need }) => {
                assert_eq!(region_len, 1024);
                assert_eq!(need, 8192);
            }
            other => panic!("expected RegionTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn recover_clamps_corrupt_tail() {
        // A torn tail write can carry any value. Recovery must neither
        // panic nor read outside the log area: the tail is clamped and
        // the record scan stops at the first insane header.
        let (mut r, mut l) = setup();
        r.write(0, b"AAAA");
        r.persist(0, 4);
        l.append_entry(&mut r, 0, b"AAAA");
        r.write(0, b"BBBB");
        r.persist(0, 4);
        // corrupt the durable tail: way past the log area, unaligned
        r.write_u64(LOG_BASE + OFF_TAIL, u64::MAX - 3);
        r.persist(LOG_BASE + OFF_TAIL, 8);
        r.crash(&CrashMode::StrictDurableOnly);
        let mut l2 = UndoLog::open(&r, LOG_BASE, LOG_LEN).unwrap();
        let applied = l2.recover(&mut r).unwrap();
        assert_eq!(applied, 1, "the one sane record still rolls back");
        assert_eq!(r.slice(0, 4), b"AAAA");
        assert_eq!(r.read_u64(LOG_BASE + OFF_TAIL), RECORDS_START);
    }

    #[test]
    fn recover_stops_at_out_of_range_record() {
        // A record claiming to restore bytes outside the data area is
        // garbage past the true tail — the scan must treat it as torn,
        // not index out of bounds.
        let (mut r, mut l) = setup();
        r.write(0, b"AAAA");
        r.persist(0, 4);
        l.append_entry(&mut r, 0, b"AAAA");
        r.write(0, b"BBBB");
        r.persist(0, 4);
        // forge a second record whose target overruns the region, and a
        // tail that covers it
        let tail = r.read_u64(LOG_BASE + OFF_TAIL);
        let at = LOG_BASE + tail as usize;
        r.write_u64(at, u64::MAX - 64); // offset far outside the data area
        r.write_u64(at + 8, 1 << 40); // absurd length
        r.persist(at, 16);
        r.write_u64(LOG_BASE + OFF_TAIL, tail + 16 + 8);
        r.persist(LOG_BASE + OFF_TAIL, 8);
        r.crash(&CrashMode::StrictDurableOnly);
        let mut l2 = UndoLog::open(&r, LOG_BASE, LOG_LEN).unwrap();
        assert_eq!(l2.recover(&mut r).unwrap(), 1);
        assert_eq!(r.slice(0, 4), b"AAAA");
    }

    #[test]
    fn recover_rejects_clobbered_magic() {
        let (mut r, mut l) = setup();
        l.append_entry(&mut r, 0, b"AAAA");
        r.write_u64(LOG_BASE + OFF_MAGIC, 0xDEAD_BEEF);
        r.persist(LOG_BASE + OFF_MAGIC, 8);
        r.crash(&CrashMode::StrictDurableOnly);
        assert!(matches!(
            l.recover(&mut r),
            Err(RecoveryError::BadMagic { found: 0xDEAD_BEEF })
        ));
    }

    #[test]
    #[should_panic(expected = "undo log overflow")]
    fn overflow_panics() {
        let mut r = PmemRegion::new(4096 + 128);
        let mut l = UndoLog::format(&mut r, 4096, 128);
        for i in 0..10 {
            l.append_entry(&mut r, i * 8, &[0u8; 32]);
        }
    }

    #[test]
    fn empty_log_recovers_to_nothing() {
        let (mut r, mut l) = setup();
        assert_eq!(l.recover(&mut r).unwrap(), 0);
    }

    #[test]
    fn group_append_costs_two_fences_for_any_range_count() {
        let (mut r, mut l) = setup();
        for i in 0..8u64 {
            r.write_u64(i as usize * 8, 100 + i);
        }
        r.persist(0, 64);
        let before = r.stats().fences;
        let ranges: Vec<(u64, u64)> = (0..8u64).map(|i| (i * 8, 8)).collect();
        l.append_group(&mut r, &ranges);
        assert_eq!(
            r.stats().fences - before,
            2,
            "record span + tail publish, regardless of range count"
        );
        assert_eq!(l.stats().entries, 8);
    }

    #[test]
    fn group_rollback_restores_pre_group_values() {
        let (mut r, mut l) = setup();
        r.write(0, b"AAAA");
        r.write(64, b"XXXX");
        r.persist(0, 68);
        l.append_group(&mut r, &[(0, 4), (64, 4)]);
        r.write(0, b"BBBB");
        r.write(64, b"YYYY");
        r.persist(0, 68);
        r.crash(&CrashMode::AllInFlightLands);
        let mut l2 = UndoLog::open(&r, LOG_BASE, LOG_LEN).unwrap();
        assert_eq!(l2.recover(&mut r).unwrap(), 2);
        assert_eq!(r.slice(0, 4), b"AAAA");
        assert_eq!(r.slice(64, 4), b"XXXX");
    }

    #[test]
    fn crash_inside_group_before_tail_publish_is_safe() {
        // The group's records land but the tail publish does not: the
        // durable tail still reads RECORDS_START, recovery sees an
        // empty log — correct, because group-log-before-data means no
        // protected store has happened yet.
        let (mut r, mut l) = setup();
        r.write(0, b"AAAA");
        r.persist(0, 4);
        let mut probe = r.clone();
        l.append_group(&mut probe, &[(0, 4), (8, 8)]);
        // replay the group on `r` but crash (strict) before set_tail:
        // emulate by writing the records without touching the tail
        let at = LOG_BASE + 16;
        r.write_u64(at, 0);
        r.write_u64(at + 8, 4);
        r.write(at + 16, b"AAAA");
        r.persist(at, 28); // records durable, tail not published
        r.crash(&CrashMode::StrictDurableOnly);
        let mut l2 = UndoLog::open(&r, LOG_BASE, LOG_LEN).unwrap();
        assert_eq!(
            l2.recover(&mut r).unwrap(),
            0,
            "unpublished group invisible"
        );
        assert_eq!(r.slice(0, 4), b"AAAA");
    }

    #[test]
    fn group_with_duplicate_and_empty_ranges_converges() {
        let (mut r, mut l) = setup();
        r.write(0, b"OLD!");
        r.persist(0, 4);
        l.append_group(&mut r, &[(0, 4), (16, 0), (0, 4)]);
        assert_eq!(l.stats().entries, 2, "empty range skipped");
        r.write(0, b"NEW!");
        r.persist(0, 4);
        r.crash(&CrashMode::AllInFlightLands);
        let mut l2 = UndoLog::open(&r, LOG_BASE, LOG_LEN).unwrap();
        assert_eq!(l2.recover(&mut r).unwrap(), 2);
        assert_eq!(r.slice(0, 4), b"OLD!", "duplicates restore the same bytes");
    }
}
