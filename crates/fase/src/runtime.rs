//! The per-thread FASE runtime: the piece Atlas implements with an LLVM
//! instrumentation pass plus a runtime library. Every persistent store
//! goes through [`FaseRuntime::store`], which
//!
//! 1. makes the undo entry durable (log-before-data),
//! 2. updates the data in place (volatile),
//! 3. reports the touched cache line(s) to the pluggable persistence
//!    policy, and issues whatever flushes the policy requests,
//! 4. optionally records the event stream for offline analysis.
//!
//! At the end of an outermost FASE the policy's buffered lines are
//! flushed, a fence orders them, and the log commits — making the
//! FASE's updates durable atomically.

use nvcache_core::{PersistPolicy, Policy, PolicyKind, StoreOutcome};
use nvcache_pmem::{
    CrashMode, CrashPlan, FlushRing, PAlloc, PmemRegion, RingStats, SlabAlloc, SlabStats,
};
use nvcache_telemetry::{
    Clock, ClockSource, CounterId, EventKind, HistId, Recorder, Sample, TelemetryConfig,
    TelemetrySnapshot, ThreadRecorder,
};
use nvcache_trace::{Line, StoreSink, ThreadTrace, TraceRecorder};

use crate::error::RecoveryError;
use crate::log::UndoLog;

/// Policy flush buffer capacity reserved up front (and preserved across
/// FASEs) — sized for the largest per-store eviction burst the policies
/// emit plus typical FASE-end batches.
const FLUSH_BUF_CAPACITY: usize = 64;

/// Submission-ring slots for the pipelined flush path. Sized so whole
/// KV batches fit without tripping the inline-drain fallback.
const RING_CAPACITY: usize = 1024;

/// Which flush path the runtime drives.
///
/// Both paths report **bit-identical** [`FaseStats::data_flushes`] /
/// flush ratios: flush obligations are counted when the policy emits
/// them, before the pipelined path dedups or elides the actual
/// instructions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FlushMode {
    /// Blocking per-line flush loop at FASE exit (the baseline).
    #[default]
    Sync,
    /// Policy flushes are submitted into a [`FlushRing`]; commit
    /// publishes a fence token and drains sorted, coalesced, FliT-elided
    /// ranged sweeps before the ordering fence.
    Pipelined,
}

impl FlushMode {
    /// Stable label for benchmark tables ("sync" / "pipelined").
    pub fn label(&self) -> &'static str {
        match self {
            FlushMode::Sync => "sync",
            FlushMode::Pipelined => "pipelined",
        }
    }
}

/// Counters of runtime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaseStats {
    /// Outermost FASEs completed.
    pub fases: u64,
    /// Persistent store operations.
    pub stores: u64,
    /// Cache lines touched by stores (≥ stores; a store may span lines).
    pub store_lines: u64,
    /// Data-line flushes issued by the policy (the paper's flush count).
    pub data_flushes: u64,
    /// Fences issued for data (not log) ordering.
    pub fences: u64,
    /// Recoveries that rolled back an incomplete FASE.
    pub rollbacks: u64,
}

impl FaseStats {
    /// Data flushes per store-line — the paper's flush ratio.
    pub fn flush_ratio(&self) -> f64 {
        if self.store_lines == 0 {
            0.0
        } else {
            self.data_flushes as f64 / self.store_lines as f64
        }
    }
}

impl std::ops::Sub for FaseStats {
    type Output = FaseStats;

    /// Counter-wise difference — the interval delta between two
    /// snapshots of the same runtime (`self` the later one).
    fn sub(self, earlier: FaseStats) -> FaseStats {
        FaseStats {
            fases: self.fases - earlier.fases,
            stores: self.stores - earlier.stores,
            store_lines: self.store_lines - earlier.store_lines,
            data_flushes: self.data_flushes - earlier.data_flushes,
            fences: self.fences - earlier.fences,
            rollbacks: self.rollbacks - earlier.rollbacks,
        }
    }
}

impl std::ops::Add for FaseStats {
    type Output = FaseStats;

    /// Counter-wise sum — aggregate across shards or windows.
    fn add(self, other: FaseStats) -> FaseStats {
        FaseStats {
            fases: self.fases + other.fases,
            stores: self.stores + other.stores,
            store_lines: self.store_lines + other.store_lines,
            data_flushes: self.data_flushes + other.data_flushes,
            fences: self.fences + other.fences,
            rollbacks: self.rollbacks + other.rollbacks,
        }
    }
}

impl std::iter::Sum for FaseStats {
    fn sum<I: Iterator<Item = FaseStats>>(iter: I) -> FaseStats {
        iter.fold(FaseStats::default(), |a, b| a + b)
    }
}

/// A per-thread failure-atomic-section runtime over one region.
pub struct FaseRuntime {
    region: PmemRegion,
    log: UndoLog,
    /// Enum-dispatched: the store path calls `on_store` through a match
    /// on six concrete types, not a vtable (same engine as the replay
    /// drivers' monomorphized loops).
    policy: Policy,
    heap: Option<PAlloc>,
    data_len: usize,
    depth: usize,
    flush_buf: Vec<Line>,
    recorder: Option<TraceRecorder>,
    stats: FaseStats,
    /// Cumulative counters at the last [`FaseRuntime::take_stats`] call
    /// (the interval-delta baseline).
    stats_taken: FaseStats,
    /// Optional telemetry shard (one branch per store when disabled);
    /// timeline time axis = store-line ordinal.
    telemetry: Option<ThreadRecorder>,
    /// Span-timing clock; swap in a [`ClockSource::fake`] for
    /// deterministic latency tests. Only read when telemetry is on.
    clock: ClockSource,
    /// Ring-full inline-drain fallbacks (the pipelined path's stall
    /// analog, reported by the runtime sampler).
    ring_fallbacks: u64,
    /// Wall nanoseconds the most recent recovery took
    /// (`try_reopen`/`reopen` or `crash_and_recover`); `None` until one
    /// runs.
    last_recovery_ns: Option<u64>,
    /// Log bytes used when the current outermost FASE began.
    fase_log_start: u64,
    /// Store lines inside the current outermost FASE.
    fase_store_lines: u64,
    /// Active flush path (sync baseline or pipelined ring).
    flush_mode: FlushMode,
    /// The flush submission ring (idle in sync mode).
    ring: FlushRing,
    /// Optional slab layer over the heap (see
    /// [`FaseRuntime::enable_slab`]).
    slab: Option<SlabAlloc>,
    /// The current outermost FASE grouped-prelogged its write set;
    /// per-store undo logging is suppressed until it commits.
    prelogged: bool,
    /// Debug-only shadow of the prelogged ranges, to assert every
    /// unlogged store is actually covered.
    #[cfg(debug_assertions)]
    prelog_ranges: Vec<(u64, u64)>,
}

impl std::fmt::Debug for FaseRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaseRuntime")
            .field("data_len", &self.data_len)
            .field("depth", &self.depth)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl FaseRuntime {
    /// Create a runtime over a fresh region: `data_len` bytes of user
    /// data followed by a `log_len`-byte undo log.
    pub fn new(data_len: usize, log_len: usize, policy: &PolicyKind) -> Self {
        let data_len = data_len.div_ceil(64) * 64;
        let mut region = PmemRegion::new(data_len + log_len);
        let log = UndoLog::format(&mut region, data_len, log_len);
        FaseRuntime {
            region,
            log,
            policy: policy.build_policy(),
            heap: None,
            data_len,
            depth: 0,
            flush_buf: Vec::with_capacity(FLUSH_BUF_CAPACITY),
            recorder: None,
            stats: FaseStats::default(),
            stats_taken: FaseStats::default(),
            telemetry: None,
            clock: ClockSource::mono(),
            ring_fallbacks: 0,
            last_recovery_ns: None,
            fase_log_start: 0,
            fase_store_lines: 0,
            flush_mode: FlushMode::Sync,
            ring: FlushRing::new(RING_CAPACITY),
            slab: None,
            prelogged: false,
            #[cfg(debug_assertions)]
            prelog_ranges: Vec::new(),
        }
    }

    /// Like [`FaseRuntime::new`], with a persistent heap formatted over
    /// the data area (for pointer-based structures such as the MDB
    /// B+-tree).
    pub fn with_heap(data_len: usize, log_len: usize, policy: &PolicyKind) -> Self {
        let mut rt = Self::new(data_len, log_len, policy);
        rt.heap = Some(PAlloc::format_with_limit(
            &mut rt.region,
            rt.data_len as u64,
        ));
        rt
    }

    /// Re-attach to a region that previously backed a runtime (e.g.
    /// reopened from disk or after a crash), running recovery first.
    ///
    /// Convenience wrapper over [`FaseRuntime::try_reopen`] for regions
    /// known to be well-formed (e.g. produced by this process).
    ///
    /// # Panics
    /// When the region does not contain a FASE log — use `try_reopen`
    /// for images of unknown provenance.
    pub fn reopen(
        region: PmemRegion,
        data_len: usize,
        log_len: usize,
        policy: &PolicyKind,
    ) -> Self {
        match Self::try_reopen(region, data_len, log_len, policy) {
            Ok(rt) => rt,
            Err(e) => panic!("region does not contain a FASE log: {e}"),
        }
    }

    /// Re-attach to a region, running recovery first. A region that was
    /// never formatted as a FASE runtime (or whose log header is
    /// corrupted beyond what a crash can produce) surfaces as a typed
    /// [`RecoveryError`] instead of a panic, so callers handling
    /// untrusted images — disk files, fuzzer crash captures — can
    /// report the condition.
    pub fn try_reopen(
        mut region: PmemRegion,
        data_len: usize,
        log_len: usize,
        policy: &PolicyKind,
    ) -> Result<Self, RecoveryError> {
        let clock = ClockSource::mono();
        let t0 = clock.now_ns();
        let data_len = data_len.div_ceil(64) * 64;
        let mut log = UndoLog::open(&region, data_len, log_len)?;
        let rolled = log.recover(&mut region)?;
        let recovery_ns = clock.now_ns().saturating_sub(t0);
        let heap = PAlloc::open(&region);
        let mut stats = FaseStats::default();
        if rolled > 0 {
            stats.rollbacks = 1;
        }
        let rt = FaseRuntime {
            region,
            log,
            policy: policy.build_policy(),
            heap,
            data_len,
            depth: 0,
            // reopen paths used to rebuild this cold (zero capacity);
            // reserve up front so the first FASEs do not re-grow it
            flush_buf: Vec::with_capacity(FLUSH_BUF_CAPACITY),
            recorder: None,
            stats,
            stats_taken: FaseStats::default(),
            telemetry: None,
            clock,
            ring_fallbacks: 0,
            last_recovery_ns: Some(recovery_ns),
            fase_log_start: 0,
            fase_store_lines: 0,
            flush_mode: FlushMode::Sync,
            ring: FlushRing::new(RING_CAPACITY),
            slab: None,
            prelogged: false,
            #[cfg(debug_assertions)]
            prelog_ranges: Vec::new(),
        };
        debug_assert!(
            rt.ring.is_empty(),
            "reopened runtime starts with an empty ring"
        );
        Ok(rt)
    }

    /// Enable event recording; the trace is retrieved with
    /// [`FaseRuntime::take_trace`].
    pub fn record_trace(&mut self) {
        self.recorder = Some(TraceRecorder::new());
    }

    /// The recorded event stream so far (drains the recorder).
    pub fn take_trace(&mut self) -> Option<ThreadTrace> {
        self.recorder.as_mut().map(|r| r.finish())
    }

    /// Enable telemetry recording (counters, histograms, event
    /// timeline); retrieved with [`FaseRuntime::take_telemetry`].
    pub fn enable_telemetry(&mut self, cfg: &TelemetryConfig) {
        self.telemetry = Some(ThreadRecorder::new(0, cfg));
    }

    /// Snapshot and drain the telemetry recorded so far. `None` if
    /// telemetry was never enabled.
    pub fn take_telemetry(&mut self) -> Option<TelemetrySnapshot> {
        self.telemetry
            .take()
            .map(|rec| TelemetrySnapshot::from_threads(vec![rec]))
    }

    /// Replace the span-timing clock (tests install a
    /// [`ClockSource::fake`] for deterministic latency histograms).
    pub fn set_clock(&mut self, clock: ClockSource) {
        self.clock = clock;
    }

    /// Wall nanoseconds the most recent recovery took (`try_reopen` or
    /// [`FaseRuntime::crash_and_recover`]); `None` until one runs.
    pub fn last_recovery_ns(&self) -> Option<u64> {
        self.last_recovery_ns
    }

    /// Usable data bytes.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Runtime counters.
    pub fn stats(&self) -> FaseStats {
        self.stats
    }

    /// Counters accumulated since the previous `take_stats` call (or
    /// since creation, on the first call) — the per-window delta a
    /// serving loop reports without re-diffing the cumulative counters.
    /// [`FaseStats::flush_ratio`] on the returned value is the window's
    /// flush ratio. Cumulative [`FaseRuntime::stats`] is unaffected.
    pub fn take_stats(&mut self) -> FaseStats {
        let delta = self.stats - self.stats_taken;
        self.stats_taken = self.stats;
        delta
    }

    /// Current software-cache capacity (`None` for policies without a
    /// resizable cache).
    pub fn sc_capacity(&self) -> Option<usize> {
        self.policy.sc_capacity()
    }

    /// Resize the policy's software cache on behalf of an external
    /// adaptation controller: `knee` is the MRC knee that motivated the
    /// choice, `capacity` the new size. Entries evicted by a shrink are
    /// flushed immediately (they are still flush obligations), and the
    /// resize is pinned on the telemetry timeline as a
    /// `CapacityChange` event exactly like an in-policy adaptation.
    /// Returns `false` for policies with nothing to resize.
    pub fn apply_capacity(&mut self, knee: usize, capacity: usize) -> bool {
        debug_assert!(self.flush_buf.is_empty());
        if !self
            .policy
            .apply_capacity(knee, capacity, &mut self.flush_buf)
        {
            return false;
        }
        let n = self.emit_flushes();
        // Drain the policy's pending change so the next telemetered
        // store does not emit the event a second time.
        let change = self.policy.take_capacity_change();
        if let Some(tel) = &mut self.telemetry {
            let (k, cap) = change.unwrap_or((knee, capacity));
            let t = self.stats.store_lines;
            tel.incr(CounterId::CapacityChanges);
            tel.add(CounterId::FlushesAsync, n);
            tel.emit(EventKind::CapacityChange, t, k as u64, cap as u64);
        }
        true
    }

    /// The underlying region (read access for verification).
    pub fn region(&self) -> &PmemRegion {
        &self.region
    }

    /// Select the flush path. Switching requires an empty ring (switch
    /// between FASEs, not inside one).
    pub fn set_flush_mode(&mut self, mode: FlushMode) {
        debug_assert!(self.ring.is_empty(), "switch flush modes between FASEs");
        self.flush_mode = mode;
    }

    /// The active flush path.
    pub fn flush_mode(&self) -> FlushMode {
        self.flush_mode
    }

    /// Submission-ring counters (all zero while in sync mode).
    pub fn ring_stats(&self) -> RingStats {
        self.ring.stats()
    }

    /// Layer a volatile slab allocator over the heap: node allocation
    /// amortizes persistent metadata updates to one per chunk and frees
    /// become persist-free (crash leaks spare blocks, never corrupts —
    /// see [`SlabAlloc`]). Requires [`FaseRuntime::with_heap`].
    pub fn enable_slab(&mut self) {
        assert!(self.heap.is_some(), "runtime has no heap");
        self.slab = Some(SlabAlloc::default());
    }

    /// Slab counters, when [`FaseRuntime::enable_slab`] was called.
    pub fn slab_stats(&self) -> Option<SlabStats> {
        self.slab.as_ref().map(|s| s.stats())
    }

    /// Undo-log the *current* contents of `ranges` as one grouped
    /// append: all records are written contiguously and persisted with
    /// a single ranged flush + fence, then the tail publishes with one
    /// more — two fences for the whole write set instead of two per
    /// store ([`UndoLog::append_group`]). For the rest of this
    /// outermost FASE per-store logging is suppressed, so **every**
    /// subsequent store must target a prelogged range (debug builds
    /// assert coverage). Call before the FASE's first store.
    pub fn prelog(&mut self, ranges: &[(u64, u64)]) {
        assert_eq!(
            self.depth, 1,
            "prelog belongs at the top of an outermost FASE"
        );
        assert!(!self.prelogged, "prelog once per FASE");
        for &(off, len) in ranges {
            assert!(
                off.checked_add(len)
                    .is_some_and(|end| end <= self.data_len as u64),
                "prelog range outside data area"
            );
        }
        self.log.append_group(&mut self.region, ranges);
        self.prelogged = true;
        #[cfg(debug_assertions)]
        {
            self.prelog_ranges.clear();
            self.prelog_ranges.extend_from_slice(ranges);
        }
    }

    /// Drain the policy's buffered flush obligations through the active
    /// flush path, counting them into `data_flushes` at emission time —
    /// so sync and pipelined runs report bit-identical flush counts
    /// even when the ring later dedups or elides instructions. Returns
    /// the obligation count.
    fn emit_flushes(&mut self) -> u64 {
        let n = self.flush_buf.len() as u64;
        match self.flush_mode {
            FlushMode::Sync => {
                for line in self.flush_buf.drain(..) {
                    self.region.flush_line(line.0);
                }
            }
            FlushMode::Pipelined => {
                for line in self.flush_buf.drain(..) {
                    if !self.ring.submit(line.0) {
                        // inline-drain fallback: single-thread mode
                        // empties the full ring, then the submit retries
                        self.ring_fallbacks += 1;
                        self.ring.drain_all(&mut self.region);
                        let ok = self.ring.submit(line.0);
                        debug_assert!(ok, "ring accepts after a full drain");
                    }
                }
            }
        }
        self.stats.data_flushes += n;
        n
    }

    /// Current FASE nesting depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    // ----- FASE control -------------------------------------------------

    /// Enter a FASE (sections nest; only the outermost pair commits).
    pub fn begin_fase(&mut self) {
        self.depth += 1;
        if self.depth == 1 {
            self.policy.on_fase_begin();
            if self.telemetry.is_some() {
                self.fase_log_start = self.log.used(&self.region);
                self.fase_store_lines = 0;
                let t = self.stats.store_lines;
                if let Some(tel) = &mut self.telemetry {
                    tel.incr(CounterId::FaseBegins);
                    tel.emit(EventKind::FaseBegin, t, 0, 0);
                }
            }
        }
        if let Some(r) = &mut self.recorder {
            r.fase_begin();
        }
    }

    /// Leave a FASE; the outermost exit flushes, fences and commits.
    pub fn end_fase(&mut self) {
        assert!(self.depth > 0, "end_fase without begin_fase");
        if let Some(r) = &mut self.recorder {
            r.fase_end();
        }
        if self.depth == 1 {
            // span-time the whole commit (and the ring drain within it);
            // the clock is only read when telemetry is live
            let commit_t0 = if self.telemetry.is_some() {
                self.clock.now_ns()
            } else {
                0
            };
            self.policy.on_fase_end(&mut self.flush_buf);
            let n = self.emit_flushes();
            if self.flush_mode == FlushMode::Pipelined {
                // pipelined commit: publish the epoch fence token, then
                // retire everything submitted ≤ token as coalesced
                // ranged sweeps — instead of the blocking per-line loop
                let drain_t0 = if self.telemetry.is_some() {
                    self.clock.now_ns()
                } else {
                    0
                };
                let token = self.ring.fence_token();
                self.ring.drain_upto(token, &mut self.region);
                if let Some(tel) = &mut self.telemetry {
                    let dt = self.clock.now_ns().saturating_sub(drain_t0);
                    tel.observe(HistId::RingDrainNs, dt);
                }
            }
            self.region.fence();
            self.stats.fences += 1;
            if self.flush_mode == FlushMode::Pipelined {
                // the epoch's captures are durable; later re-flushes of
                // these lines must not be elided against this epoch
                self.ring.end_epoch();
            }
            if self.telemetry.is_some() {
                let log_bytes = self.log.used(&self.region) - self.fase_log_start;
                let t = self.stats.store_lines;
                let stores = self.fase_store_lines;
                if let Some(tel) = &mut self.telemetry {
                    tel.incr(CounterId::FaseEnds);
                    tel.incr(CounterId::Fences);
                    tel.add(CounterId::FlushesSync, n);
                    tel.add(CounterId::LogBytes, log_bytes);
                    tel.observe(HistId::FaseStores, stores);
                    tel.observe(HistId::FaseLogBytes, log_bytes);
                    tel.emit(EventKind::FaseEnd, t, stores, n);
                }
            }
            self.log.commit(&mut self.region);
            self.prelogged = false;
            #[cfg(debug_assertions)]
            self.prelog_ranges.clear();
            self.stats.fases += 1;
            if self.telemetry.is_some() {
                let fases = self.stats.fases;
                let t = self.stats.store_lines;
                let ring_depth = self.ring.pending() as u64;
                let capacity = self.policy.sc_capacity().map_or(0, |c| c as u64);
                let stalls = self.ring_fallbacks;
                if let Some(tel) = &mut self.telemetry {
                    let dt = self.clock.now_ns().saturating_sub(commit_t0);
                    tel.observe(HistId::FaseCommitNs, dt);
                    // runtime sampler: one time-series point every
                    // `sample_every` FASEs (time axis = store-line
                    // ordinal, like the event timeline)
                    if tel.sample_due(fases) {
                        let hits = tel.counter(CounterId::ScHits);
                        let misses = tel.counter(CounterId::ScMisses);
                        let total = hits + misses;
                        tel.sample(Sample {
                            t,
                            tid: tel.tid(),
                            ring_depth,
                            capacity,
                            hit_ratio_bp: (hits * 10_000).checked_div(total).unwrap_or(0) as u32,
                            stalls,
                        });
                    }
                }
            }
        }
        self.depth -= 1;
    }

    /// Run `f` inside a FASE (exception-safe only insofar as Rust
    /// unwinding is not used across it; panics abort the section).
    pub fn fase<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        self.begin_fase();
        let r = f(self);
        self.end_fase();
        r
    }

    // ----- persistent accesses -------------------------------------------

    /// Persistent store of `bytes` at `offset` (must lie in the data
    /// area). Inside a FASE the old value is undo-logged first.
    pub fn store(&mut self, offset: usize, bytes: &[u8]) {
        assert!(
            offset + bytes.len() <= self.data_len,
            "store outside data area"
        );
        if self.depth > 0 && !self.prelogged {
            let mut old = vec![0u8; bytes.len()];
            self.region.read(offset, &mut old);
            self.log.append_entry(&mut self.region, offset as u64, &old);
        }
        #[cfg(debug_assertions)]
        if self.depth > 0 && self.prelogged {
            let (s, e) = (offset as u64, (offset + bytes.len()) as u64);
            debug_assert!(
                self.prelog_ranges
                    .iter()
                    .any(|&(o, l)| o <= s && e <= o + l),
                "store at {offset}+{} not covered by any prelogged range",
                bytes.len()
            );
        }
        self.region.write(offset, bytes);
        self.stats.stores += 1;
        for line in PmemRegion::lines_of(offset, bytes.len()) {
            self.stats.store_lines += 1;
            if let Some(r) = &mut self.recorder {
                r.persistent_store(Line(line));
            }
            let outcome = self.policy.on_store(Line(line), &mut self.flush_buf);
            if let Some(tel) = &mut self.telemetry {
                self.fase_store_lines += 1;
                let t = self.stats.store_lines;
                tel.incr(CounterId::Stores);
                match outcome {
                    StoreOutcome::Combined => {
                        tel.incr(CounterId::ScHits);
                        tel.emit(EventKind::ScHit, t, line, 0);
                    }
                    StoreOutcome::Inserted => {
                        tel.incr(CounterId::ScMisses);
                        tel.emit(EventKind::ScInsert, t, line, 0);
                    }
                }
                for victim in &self.flush_buf {
                    tel.incr(CounterId::ScEvictions);
                    tel.incr(CounterId::FlushesAsync);
                    tel.emit(EventKind::ScEvict, t, victim.0, 0);
                }
                if let Some((knee, cap)) = self.policy.take_capacity_change() {
                    tel.incr(CounterId::CapacityChanges);
                    tel.emit(EventKind::CapacityChange, t, knee as u64, cap as u64);
                }
            }
            self.emit_flushes();
        }
    }

    /// Persistent store of a little-endian u64.
    pub fn store_u64(&mut self, offset: usize, v: u64) {
        self.store(offset, &v.to_le_bytes());
    }

    /// Load bytes (records a read event when tracing).
    pub fn load(&mut self, offset: usize, buf: &mut [u8]) {
        self.region.read(offset, buf);
        if let Some(r) = &mut self.recorder {
            for line in PmemRegion::lines_of(offset, buf.len()) {
                r.load(Line(line));
            }
        }
    }

    /// Load a little-endian u64.
    pub fn load_u64(&mut self, offset: usize) -> u64 {
        let mut b = [0u8; 8];
        self.load(offset, &mut b);
        u64::from_le_bytes(b)
    }

    /// Mark `units` of computation (for the recorded trace's timing).
    pub fn work(&mut self, units: u32) {
        if let Some(r) = &mut self.recorder {
            r.work(units);
        }
    }

    // ----- heap ----------------------------------------------------------

    /// Allocate from the persistent heap (requires
    /// [`FaseRuntime::with_heap`]). With the slab enabled, hot-path
    /// allocation pops a volatile free list and only touches the heap's
    /// persistent metadata once per carved chunk.
    pub fn alloc(&mut self, size: usize) -> Option<u64> {
        let heap = self.heap.expect("runtime has no heap");
        match &mut self.slab {
            Some(slab) => slab.alloc(&heap, &mut self.region, size),
            None => heap.alloc(&mut self.region, size),
        }
    }

    /// Free a heap block. With the slab enabled this is persist-free
    /// (the block recycles through a volatile list).
    pub fn free(&mut self, offset: u64, size: usize) {
        let heap = self.heap.expect("runtime has no heap");
        match &mut self.slab {
            Some(slab) => slab.free(offset, size),
            None => heap.free(&mut self.region, offset, size),
        }
    }

    /// Durable root pointer.
    pub fn root(&self) -> u64 {
        self.heap.expect("runtime has no heap").root(&self.region)
    }

    /// Set the durable root pointer.
    pub fn set_root(&mut self, offset: u64) {
        let heap = self.heap.expect("runtime has no heap");
        heap.set_root(&mut self.region, offset);
    }

    // ----- shutdown / failure ---------------------------------------------

    /// Persist everything the policy still buffers (clean shutdown).
    pub fn sync(&mut self) {
        self.policy.on_fase_end(&mut self.flush_buf);
        let n = self.emit_flushes();
        if self.flush_mode == FlushMode::Pipelined {
            self.ring.drain_all(&mut self.region);
        }
        self.region.fence();
        self.stats.fences += 1;
        if self.flush_mode == FlushMode::Pipelined {
            self.ring.end_epoch();
        }
        if let Some(tel) = &mut self.telemetry {
            tel.add(CounterId::FlushesSync, n);
            tel.incr(CounterId::Fences);
        }
    }

    /// Inject a power failure under `mode`, then run recovery; the
    /// runtime continues over the recovered state. Any open FASE is
    /// rolled back (all-or-nothing).
    pub fn crash_and_recover(&mut self, mode: &CrashMode) {
        let recovery_t0 = self.clock.now_ns();
        self.region.crash(mode);
        self.depth = 0;
        self.flush_buf.clear();
        self.policy.reset();
        // the cache contents are gone: forget submitted-but-undrained
        // lines and all elision history, and drop slab free lists
        // (blocks leak; the persisted bump cursor stays consistent)
        self.ring.reset();
        debug_assert!(self.ring.is_empty(), "ring empty after recovery reset");
        if let Some(slab) = &mut self.slab {
            slab.reset();
        }
        self.prelogged = false;
        #[cfg(debug_assertions)]
        self.prelog_ranges.clear();
        // The log was formatted by this runtime; a crash can tear it but
        // never strip the magic, so recovery cannot fail here.
        let rolled = self
            .log
            .recover(&mut self.region)
            .expect("in-process log lost its header");
        if rolled > 0 {
            self.stats.rollbacks += 1;
            if let Some(tel) = &mut self.telemetry {
                let t = self.stats.store_lines;
                tel.incr(CounterId::Rollbacks);
                tel.emit(
                    EventKind::Rollback,
                    t,
                    rolled as u64,
                    self.region.stats().crashes,
                );
            }
        }
        let recovery_ns = self.clock.now_ns().saturating_sub(recovery_t0);
        self.last_recovery_ns = Some(recovery_ns);
        if let Some(tel) = &mut self.telemetry {
            tel.observe(HistId::RecoveryNs, recovery_ns);
        }
    }

    /// Recover the runtime after a *panic* unwound through an open FASE
    /// (no power failure — the region keeps every line it holds). A
    /// worker that dies mid-section leaves `depth > 0`, a partially
    /// filled flush buffer, possibly a prelogged-but-uncommitted write
    /// set, and submitted-but-undrained ring entries; without healing,
    /// the next caller through a poisoned lock would nest its sections
    /// inside the abandoned one forever (no outermost `end_fase` ever
    /// runs, so nothing commits and the in-flight flush buffer leaks).
    ///
    /// Healing drops all of that volatile residue, rolls the abandoned
    /// section back through the undo log (its entries were durable
    /// before any data store, so the pre-section state is recoverable
    /// in place), and leaves the runtime serving again. Returns whether
    /// there was anything to heal.
    pub fn heal_after_panic(&mut self) -> bool {
        let open =
            self.depth > 0 || !self.flush_buf.is_empty() || self.prelogged || !self.ring.is_empty();
        if !open {
            // nothing abandoned: still run log recovery, which is a
            // no-op on a committed log (idempotent and cheap)
            return self.log.recover(&mut self.region).unwrap_or(0) > 0;
        }
        self.depth = 0;
        self.flush_buf.clear();
        self.policy.reset();
        self.ring.reset();
        if let Some(slab) = &mut self.slab {
            slab.reset();
        }
        self.prelogged = false;
        #[cfg(debug_assertions)]
        self.prelog_ranges.clear();
        let rolled = self
            .log
            .recover(&mut self.region)
            .expect("in-process log lost its header");
        if rolled > 0 {
            self.stats.rollbacks += 1;
            if let Some(tel) = &mut self.telemetry {
                let t = self.stats.store_lines;
                tel.incr(CounterId::Rollbacks);
                tel.emit(EventKind::Rollback, t, rolled as u64, 0);
            }
        }
        true
    }

    /// Arm a crash plan on the underlying region: the crash image is
    /// captured when the region's micro-step counter reaches the plan's
    /// step (see [`PmemRegion::arm_crash`]); execution continues
    /// unperturbed. Retrieve it with [`FaseRuntime::take_crash_image`].
    pub fn arm_crash(&mut self, plan: CrashPlan) {
        self.region.arm_crash(plan);
    }

    /// The crash image captured by an armed plan, if the step was
    /// reached (drains it). Rebuild with [`PmemRegion::from_image`] and
    /// [`FaseRuntime::try_reopen`] to simulate the post-crash restart.
    pub fn take_crash_image(&mut self) -> Option<Vec<u8>> {
        self.region.take_crash_image()
    }

    /// Micro-steps (stores, line flushes, fences) the region has
    /// executed — the crash-point index space.
    pub fn steps(&self) -> u64 {
        self.region.step()
    }

    /// Tear down, returning the region (e.g. to save it to disk).
    pub fn into_region(mut self) -> PmemRegion {
        self.sync();
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(kind: PolicyKind) -> FaseRuntime {
        FaseRuntime::new(1 << 16, 1 << 16, &kind)
    }

    #[test]
    fn committed_fase_survives_strict_crash() {
        let mut r = rt(PolicyKind::ScFixed { capacity: 8 });
        r.fase(|r| {
            r.store(0, b"hello persistent world");
        });
        r.crash_and_recover(&CrashMode::StrictDurableOnly);
        assert_eq!(r.region().slice(0, 22), b"hello persistent world");
    }

    #[test]
    fn uncommitted_fase_rolls_back() {
        let mut r = rt(PolicyKind::ScFixed { capacity: 8 });
        r.fase(|r| r.store_u64(0, 111));
        r.begin_fase();
        r.store_u64(0, 222);
        r.store_u64(8, 333);
        // crash with everything in flight landing — worst case for
        // atomicity
        r.crash_and_recover(&CrashMode::AllInFlightLands);
        assert_eq!(r.load_u64(0), 111, "rolled back to committed value");
        assert_eq!(r.load_u64(8), 0, "uncommitted store undone");
        assert_eq!(r.stats().rollbacks, 1);
    }

    #[test]
    fn all_policies_preserve_atomicity() {
        for kind in [
            PolicyKind::Eager,
            PolicyKind::Lazy,
            PolicyKind::Atlas { size: 8 },
            PolicyKind::ScFixed { capacity: 4 },
            PolicyKind::ScAdaptive(Default::default()),
        ] {
            for mode in [
                CrashMode::StrictDurableOnly,
                CrashMode::AllInFlightLands,
                CrashMode::random(0.5, 0.5, 17),
            ] {
                let mut r = rt(kind.clone());
                r.fase(|r| {
                    for i in 0..32 {
                        r.store_u64(i * 8, 1000 + i as u64);
                    }
                });
                r.begin_fase();
                for i in 0..32 {
                    r.store_u64(i * 8, 2000 + i as u64);
                }
                r.crash_and_recover(&mode);
                for i in 0..32 {
                    assert_eq!(
                        r.load_u64(i * 8),
                        1000 + i as u64,
                        "policy {} mode {:?} slot {i}",
                        kind.label(),
                        mode
                    );
                }
            }
        }
    }

    #[test]
    fn best_policy_is_not_crash_consistent_outside_log_protection() {
        // BEST never flushes; committed FASE data is still protected by
        // the undo log only while a FASE is open. After commit with no
        // flush, a strict crash loses data — demonstrating why BEST is
        // an upper bound, not a technique.
        let mut r = rt(PolicyKind::Best);
        r.fase(|r| r.store_u64(0, 777));
        r.crash_and_recover(&CrashMode::StrictDurableOnly);
        assert_eq!(r.load_u64(0), 0, "BEST loses unflushed data");
    }

    #[test]
    fn nested_fases_commit_once_at_outermost() {
        let mut r = rt(PolicyKind::ScFixed { capacity: 8 });
        r.begin_fase();
        r.store_u64(0, 1);
        r.begin_fase();
        r.store_u64(8, 2);
        r.end_fase(); // inner: no commit
        assert_eq!(r.stats().fases, 0);
        r.end_fase();
        assert_eq!(r.stats().fases, 1);
        r.crash_and_recover(&CrashMode::StrictDurableOnly);
        assert_eq!(r.load_u64(0), 1);
        assert_eq!(r.load_u64(8), 2);
    }

    #[test]
    fn nested_rollback_undoes_inner_updates_too() {
        let mut r = rt(PolicyKind::ScFixed { capacity: 8 });
        r.begin_fase();
        r.store_u64(0, 1);
        r.begin_fase();
        r.store_u64(8, 2);
        r.end_fase();
        // outer still open → crash rolls back everything
        r.crash_and_recover(&CrashMode::AllInFlightLands);
        assert_eq!(r.load_u64(0), 0);
        assert_eq!(r.load_u64(8), 0);
    }

    #[test]
    fn flush_counting_matches_policy_expectation() {
        // 4-line working set in an 8-capacity SC: exactly 4 flushes per
        // FASE (all at the end), like LA.
        let mut r = rt(PolicyKind::ScFixed { capacity: 8 });
        for _ in 0..10 {
            r.fase(|r| {
                for rep in 0..5 {
                    for i in 0..4usize {
                        r.store_u64(i * 64, rep * 10 + i as u64);
                    }
                }
            });
        }
        let s = r.stats();
        assert_eq!(s.stores, 200);
        assert_eq!(s.data_flushes, 40, "4 lines × 10 FASEs");
        assert!((s.flush_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn eager_flushes_every_store_line() {
        let mut r = rt(PolicyKind::Eager);
        r.fase(|r| {
            for i in 0..10usize {
                r.store_u64(i * 8, i as u64);
            }
        });
        assert_eq!(r.stats().data_flushes, 10);
    }

    #[test]
    fn trace_recording_captures_events() {
        let mut r = rt(PolicyKind::ScFixed { capacity: 8 });
        r.record_trace();
        r.fase(|r| {
            r.store_u64(0, 1);
            r.work(5);
            r.store_u64(128, 2);
        });
        let t = r.take_trace().unwrap();
        assert_eq!(t.write_count(), 2);
        assert_eq!(t.fase_count(), 1);
        assert_eq!(
            t.events
                .iter()
                .filter(|e| matches!(e, nvcache_trace::Event::Work(_)))
                .count(),
            1
        );
    }

    #[test]
    fn telemetry_reconciles_with_runtime_stats() {
        use nvcache_telemetry::CounterId;
        let mut r = rt(PolicyKind::ScFixed { capacity: 8 });
        r.enable_telemetry(&TelemetryConfig::default());
        for _ in 0..10 {
            r.fase(|r| {
                for rep in 0..5 {
                    for i in 0..12usize {
                        r.store_u64(i * 64, rep * 100 + i as u64);
                    }
                }
            });
        }
        r.sync();
        let s = r.stats();
        let snap = r.take_telemetry().unwrap();
        assert_eq!(snap.counter(CounterId::Stores), s.store_lines);
        assert_eq!(snap.flushes(), s.data_flushes, "telemetry == FaseStats");
        assert_eq!(snap.counter(CounterId::Fences), s.fences);
        assert_eq!(snap.counter(CounterId::FaseEnds), s.fases);
        assert!(snap.counter(CounterId::LogBytes) > 0, "stores were logged");
        let h = snap.hist(nvcache_telemetry::HistId::FaseStores);
        assert_eq!(h.count, 10, "one sample per FASE");
        assert_eq!(h.max, 60, "5 reps × 12 lines");
        assert!(r.take_telemetry().is_none(), "drained");
    }

    #[test]
    fn commit_spans_are_deterministic_under_fake_clock() {
        use nvcache_telemetry::HistId;
        let mut r = rt(PolicyKind::ScFixed { capacity: 8 });
        r.enable_telemetry(&TelemetryConfig::default());
        // every clock read advances by exactly 10ns: a sync-mode commit
        // reads the clock twice (start + observe), so each FaseCommitNs
        // sample is exactly 10
        r.set_clock(ClockSource::fake(0, 10));
        for i in 0..4 {
            r.fase(|r| r.store_u64(i * 8, i as u64));
        }
        let snap = r.take_telemetry().unwrap();
        let h = snap.hist(HistId::FaseCommitNs);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 40, "10ns per commit, deterministic");
        assert_eq!(h.max, 10);
        let (p50, p99, p999) = h.percentiles();
        assert_eq!((p50, p99, p999), (10, 10, 10));
        assert!(
            snap.hist(HistId::RingDrainNs).is_empty(),
            "sync mode never drains the ring"
        );
    }

    #[test]
    fn pipelined_commits_record_ring_drain_spans() {
        use nvcache_telemetry::HistId;
        let mut r = rt(PolicyKind::Lazy);
        r.set_flush_mode(FlushMode::Pipelined);
        r.enable_telemetry(&TelemetryConfig::default());
        r.set_clock(ClockSource::fake(0, 5));
        for i in 0..3 {
            r.fase(|r| r.store_u64(i * 64, 7));
        }
        let snap = r.take_telemetry().unwrap();
        assert_eq!(snap.hist(HistId::RingDrainNs).count, 3);
        assert_eq!(snap.hist(HistId::FaseCommitNs).count, 3);
        // the drain span nests inside the commit span
        assert!(snap.hist(HistId::FaseCommitNs).max >= snap.hist(HistId::RingDrainNs).max);
    }

    #[test]
    fn recovery_is_span_timed() {
        use nvcache_telemetry::HistId;
        let mut r = rt(PolicyKind::ScFixed { capacity: 8 });
        r.enable_telemetry(&TelemetryConfig::default());
        r.set_clock(ClockSource::fake(0, 3));
        assert_eq!(r.last_recovery_ns(), None);
        r.fase(|r| r.store_u64(0, 1));
        r.crash_and_recover(&CrashMode::StrictDurableOnly);
        assert!(r.last_recovery_ns().is_some());
        let snap = r.take_telemetry().unwrap();
        assert_eq!(snap.hist(HistId::RecoveryNs).count, 1);
    }

    #[test]
    fn reopen_records_recovery_duration() {
        let mut r = rt(PolicyKind::Lazy);
        r.fase(|r| r.store_u64(0, 42));
        let region = r.into_region();
        let r2 = FaseRuntime::reopen(region, 1 << 16, 1 << 16, &PolicyKind::Lazy);
        assert!(r2.last_recovery_ns().is_some(), "reopen timed its recovery");
    }

    #[test]
    fn runtime_sampler_emits_series_at_fase_cadence() {
        let cfg = TelemetryConfig {
            sample_every: 8,
            ..Default::default()
        };
        let mut r = rt(PolicyKind::ScFixed { capacity: 8 });
        r.enable_telemetry(&cfg);
        for i in 0..32 {
            r.fase(|r| r.store_u64((i % 16) * 8, i as u64));
        }
        let snap = r.take_telemetry().unwrap();
        assert_eq!(snap.series.len(), 4, "32 FASEs / cadence 8");
        for s in &snap.series {
            assert_eq!(s.capacity, 8, "ScFixed capacity on the series");
            assert!(s.hit_ratio_bp <= 10_000);
            assert_eq!(s.ring_depth, 0, "sync mode keeps the ring empty");
        }
        // time axis is the store-line ordinal: strictly increasing here
        assert!(snap.series.windows(2).all(|w| w[0].t < w[1].t));
    }

    #[test]
    fn telemetry_fase_log_bytes_tracks_undo_traffic() {
        let mut r = rt(PolicyKind::Lazy);
        r.enable_telemetry(&TelemetryConfig::default());
        // stores outside a FASE are not undo-logged
        r.store_u64(0, 1);
        r.fase(|r| {
            r.store_u64(0, 2);
            r.store_u64(64, 3);
        });
        let snap = r.take_telemetry().unwrap();
        let h = snap.hist(nvcache_telemetry::HistId::FaseLogBytes);
        assert_eq!(h.count, 1);
        assert!(h.max >= 16, "two 8-byte undo images: {}", h.max);
        assert_eq!(
            snap.counter(nvcache_telemetry::CounterId::LogBytes),
            h.sum,
            "counter aggregates the per-FASE samples"
        );
    }

    #[test]
    fn take_stats_yields_interval_deltas() {
        let mut r = rt(PolicyKind::Lazy);
        r.fase(|r| {
            for i in 0..4usize {
                r.store_u64(i * 64, 1);
            }
        });
        let w1 = r.take_stats();
        assert_eq!(w1.fases, 1);
        assert_eq!(w1.store_lines, 4);
        assert_eq!(w1.data_flushes, 4, "LA flushes all at FASE end");
        assert!((w1.flush_ratio() - 1.0).abs() < 1e-12);
        // second window: two FASEs over one line
        for _ in 0..2 {
            r.fase(|r| r.store_u64(0, 2));
        }
        let w2 = r.take_stats();
        assert_eq!(w2.fases, 2);
        assert_eq!(w2.store_lines, 2);
        // cumulative counters still intact; windows sum back to them
        assert_eq!(r.stats().fases, 3);
        assert_eq!(w1 + w2, r.stats());
        // empty window is all-zero
        assert_eq!(r.take_stats(), FaseStats::default());
    }

    #[test]
    fn apply_capacity_resizes_flushes_evictions_and_pins_telemetry() {
        use nvcache_telemetry::CounterId;
        let mut r = rt(PolicyKind::ScAdaptive(Default::default()));
        r.enable_telemetry(&TelemetryConfig::default());
        assert_eq!(r.sc_capacity(), Some(8));
        // fill the cache past the target so a shrink must evict
        r.begin_fase();
        for i in 0..8usize {
            r.store_u64(i * 64, 7);
        }
        let flushes_before = r.stats().data_flushes;
        assert!(r.apply_capacity(3, 4));
        assert_eq!(r.sc_capacity(), Some(4));
        assert_eq!(
            r.stats().data_flushes - flushes_before,
            4,
            "shrink 8→4 flushes the four evicted LRU lines"
        );
        r.end_fase();
        let snap = r.take_telemetry().unwrap();
        assert_eq!(snap.counter(CounterId::CapacityChanges), 1);
        let ev: Vec<_> = snap
            .timeline
            .iter()
            .filter(|e| e.kind == EventKind::CapacityChange)
            .collect();
        assert_eq!(ev.len(), 1, "resize pinned exactly once on the timeline");
        assert_eq!(ev[0].a, 3, "knee recorded");
        assert_eq!(ev[0].b, 4, "capacity recorded");
    }

    #[test]
    fn apply_capacity_is_a_noop_for_unresizable_policies() {
        let mut r = rt(PolicyKind::Eager);
        assert_eq!(r.sc_capacity(), None);
        let before = r.stats();
        assert!(!r.apply_capacity(5, 10));
        assert_eq!(r.stats(), before);
    }

    #[test]
    fn stores_outside_fases_persist_on_sync() {
        let mut r = rt(PolicyKind::ScFixed { capacity: 8 });
        r.store_u64(0, 42); // not atomic, but must be persistable
        r.sync();
        r.crash_and_recover(&CrashMode::StrictDurableOnly);
        assert_eq!(r.load_u64(0), 42);
    }

    #[test]
    fn reopen_recovers_incomplete_fase() {
        let mut r = rt(PolicyKind::ScFixed { capacity: 8 });
        r.fase(|r| r.store_u64(0, 5));
        r.begin_fase();
        r.store_u64(0, 99);
        // simulate process death: crash the raw region, then reopen
        let data_len = r.data_len();
        let mut region = {
            // take the region with the open FASE still in the log
            let FaseRuntime { region, .. } = r;
            region
        };
        region.crash(&CrashMode::AllInFlightLands);
        let mut r2 = FaseRuntime::reopen(
            region,
            data_len,
            1 << 16,
            &PolicyKind::ScFixed { capacity: 8 },
        );
        assert_eq!(r2.load_u64(0), 5, "reopen rolled back the open FASE");
        assert_eq!(r2.stats().rollbacks, 1);
    }

    #[test]
    fn try_reopen_rejects_unformatted_image() {
        // A region that never held a FASE runtime must surface a typed
        // error, not panic (regression: reopen used to .expect()).
        let region = PmemRegion::new(1 << 16);
        let res = FaseRuntime::try_reopen(region, 1 << 15, 1 << 15, &PolicyKind::Lazy);
        assert!(matches!(
            res,
            Err(crate::error::RecoveryError::BadMagic { found: 0 })
        ));
    }

    #[test]
    fn try_reopen_rejects_corrupted_header() {
        // Build a real runtime, persist state, then clobber the log
        // magic — as a misdirected write or media corruption would.
        let mut r = rt(PolicyKind::Lazy);
        r.fase(|r| r.store_u64(0, 5));
        let data_len = r.data_len();
        let mut region = r.into_region();
        region.write_u64(data_len, 0xBAD0_BAD0);
        region.persist(data_len, 8);
        let res = FaseRuntime::try_reopen(region, data_len, 1 << 16, &PolicyKind::Lazy);
        assert!(matches!(
            res,
            Err(crate::error::RecoveryError::BadMagic { found: 0xBAD0_BAD0 })
        ));
    }

    #[test]
    fn try_reopen_rejects_undersized_region() {
        let region = PmemRegion::new(128);
        let res = FaseRuntime::try_reopen(region, 1 << 15, 1 << 15, &PolicyKind::Lazy);
        assert!(matches!(
            res,
            Err(crate::error::RecoveryError::RegionTooSmall { .. })
        ));
    }

    #[test]
    fn mid_fase_crash_records_rollback_telemetry() {
        use nvcache_telemetry::CounterId;
        let mut r = rt(PolicyKind::ScFixed { capacity: 8 });
        r.enable_telemetry(&TelemetryConfig::default());
        r.fase(|r| r.store_u64(0, 1));
        r.begin_fase();
        r.store_u64(0, 2);
        r.crash_and_recover(&CrashMode::AllInFlightLands);
        assert_eq!(r.stats().rollbacks, 1);
        let snap = r.take_telemetry().unwrap();
        assert_eq!(snap.counter(CounterId::Rollbacks), 1);
        let rb: Vec<_> = snap
            .timeline
            .iter()
            .filter(|e| e.kind == EventKind::Rollback)
            .collect();
        assert_eq!(rb.len(), 1, "one rollback event on the timeline");
        assert!(rb[0].a >= 1, "undo entries applied");
        assert_eq!(rb[0].b, 1, "first injected crash");
    }

    #[test]
    fn heap_allocation_roundtrip() {
        let mut r = FaseRuntime::with_heap(1 << 16, 1 << 16, &PolicyKind::ScFixed { capacity: 8 });
        let a = r.alloc(64).unwrap() as usize;
        r.fase(|r| r.store_u64(a, 123));
        r.set_root(a as u64);
        r.crash_and_recover(&CrashMode::StrictDurableOnly);
        let root = r.root() as usize;
        assert_eq!(root, a);
        assert_eq!(r.load_u64(root), 123);
    }

    #[test]
    fn pipelined_flush_counts_are_bit_identical_to_sync() {
        // the acceptance contract: FaseStats (flushes, ratios, fences)
        // must not depend on the flush path, only the region-level
        // instruction count may shrink (dedup + elision)
        for kind in [
            PolicyKind::Eager,
            PolicyKind::Lazy,
            PolicyKind::Atlas { size: 8 },
            PolicyKind::ScFixed { capacity: 4 },
        ] {
            let run = |mode: FlushMode| {
                let mut r = rt(kind.clone());
                r.set_flush_mode(mode);
                for round in 0..6u64 {
                    r.fase(|r| {
                        for rep in 0..3 {
                            for i in 0..8usize {
                                r.store_u64(i * 64, round * 100 + rep * 10 + i as u64);
                            }
                        }
                    });
                }
                r
            };
            let sync = run(FlushMode::Sync);
            let piped = run(FlushMode::Pipelined);
            assert_eq!(sync.stats(), piped.stats(), "policy {}", kind.label());
            assert!(
                piped.region().stats().flushes <= sync.region().stats().flushes,
                "pipelined path never issues more instructions ({})",
                kind.label()
            );
            // both durable images agree after a clean shutdown
            let a = {
                let mut s = sync;
                s.sync();
                s.into_region().durable_image().to_vec()
            };
            let b = {
                let mut p = piped;
                p.sync();
                p.into_region().durable_image().to_vec()
            };
            assert_eq!(a, b, "policy {}", kind.label());
        }
    }

    #[test]
    fn pipelined_path_preserves_atomicity() {
        for kind in [
            PolicyKind::Eager,
            PolicyKind::Atlas { size: 8 },
            PolicyKind::ScFixed { capacity: 4 },
        ] {
            for mode in [
                CrashMode::StrictDurableOnly,
                CrashMode::AllInFlightLands,
                CrashMode::random(0.5, 0.5, 23),
            ] {
                let mut r = rt(kind.clone());
                r.set_flush_mode(FlushMode::Pipelined);
                r.fase(|r| {
                    for i in 0..16 {
                        r.store_u64(i * 8, 1000 + i as u64);
                    }
                });
                r.begin_fase();
                for i in 0..16 {
                    r.store_u64(i * 8, 2000 + i as u64);
                }
                r.crash_and_recover(&mode);
                for i in 0..16 {
                    assert_eq!(
                        r.load_u64(i * 8),
                        1000 + i as u64,
                        "policy {} mode {:?}",
                        kind.label(),
                        mode
                    );
                }
            }
        }
    }

    #[test]
    fn prelogged_fase_commits_and_rolls_back() {
        let mut r = rt(PolicyKind::ScFixed { capacity: 8 });
        r.set_flush_mode(FlushMode::Pipelined);
        // committed prelogged FASE
        r.begin_fase();
        r.prelog(&[(0, 8), (64, 8)]);
        r.store_u64(0, 7);
        r.store_u64(64, 8);
        r.end_fase();
        // uncommitted prelogged FASE rolls back to the committed state
        r.begin_fase();
        r.prelog(&[(0, 8), (64, 8)]);
        r.store_u64(0, 77);
        r.store_u64(64, 88);
        r.crash_and_recover(&CrashMode::AllInFlightLands);
        assert_eq!(r.load_u64(0), 7);
        assert_eq!(r.load_u64(64), 8);
        assert_eq!(r.stats().rollbacks, 1);
    }

    #[test]
    fn prelog_spends_two_fences_per_batch() {
        let mut r = rt(PolicyKind::Lazy);
        let fences_of = |r: &FaseRuntime| r.region().stats().fences;
        // per-store logging: 2 fences per store
        r.begin_fase();
        let before = fences_of(&r);
        for i in 0..8usize {
            r.store_u64(i * 8, 1);
        }
        let per_store = fences_of(&r) - before;
        r.end_fase();
        assert_eq!(per_store, 16, "2 fences × 8 stores");
        // grouped prelog: 2 fences for the whole batch
        r.begin_fase();
        let before = fences_of(&r);
        r.prelog(&(0..8u64).map(|i| (i * 8, 8)).collect::<Vec<_>>());
        for i in 0..8usize {
            r.store_u64(i * 8, 2);
        }
        let grouped = fences_of(&r) - before;
        r.end_fase();
        assert_eq!(grouped, 2, "record span + tail publish only");
    }

    #[test]
    fn slab_routes_alloc_and_free_volatilely() {
        let mut r = FaseRuntime::with_heap(1 << 16, 1 << 16, &PolicyKind::Lazy);
        r.enable_slab();
        let a = r.alloc(64).unwrap();
        let fences = r.region().stats().fences;
        r.free(a, 64);
        let b = r.alloc(64).unwrap();
        assert_eq!(a, b, "volatile recycle");
        assert_eq!(
            r.region().stats().fences,
            fences,
            "no persists on the hot path"
        );
        let s = r.slab_stats().unwrap();
        assert_eq!(s.fast_allocs, 2);
        assert_eq!(s.frees, 1);
        // crash: slab resets, heap stays consistent, fresh blocks only
        r.crash_and_recover(&CrashMode::StrictDurableOnly);
        let c = r.alloc(64).unwrap();
        assert_ne!(c, a, "leaked chunk never re-handed out");
    }

    #[test]
    #[should_panic(expected = "store outside data area")]
    fn store_into_log_area_panics() {
        let mut r = rt(PolicyKind::Best);
        let off = r.data_len();
        r.store_u64(off, 1);
    }

    #[test]
    #[should_panic(expected = "end_fase without begin_fase")]
    fn unbalanced_end_panics() {
        let mut r = rt(PolicyKind::Best);
        r.end_fase();
    }

    /// Regression (panic mid-FASE): before healing existed, an unwind
    /// through an open section left `depth > 0` and a stale flush
    /// buffer, so every later section nested inside the abandoned one —
    /// no outermost commit ever ran again. `heal_after_panic` must roll
    /// the abandoned section back and restore normal commit behaviour.
    #[test]
    fn heal_after_panic_rolls_back_and_resumes_commits() {
        let mut r = rt(PolicyKind::ScFixed { capacity: 4 });
        r.fase(|r| r.store_u64(64, 0xAAAA));
        let committed_fases = r.stats().fases;
        // simulate the unwound worker: open section, stores issued,
        // never closed
        r.begin_fase();
        r.store_u64(64, 0xBBBB);
        r.store_u64(128, 0xCCCC);
        assert!(r.heal_after_panic(), "abandoned section must be healed");
        assert_eq!(r.depth(), 0);
        assert_eq!(r.stats().rollbacks, 1);
        // the torn writes rolled back in place
        assert_eq!(r.load_u64(64), 0xAAAA);
        assert_eq!(r.load_u64(128), 0);
        // sections commit again (the regression: fases stayed frozen)
        r.fase(|r| r.store_u64(64, 0xDDDD));
        assert_eq!(r.stats().fases, committed_fases + 1);
        assert_eq!(r.load_u64(64), 0xDDDD);
        // the healed state is crash-consistent
        r.crash_and_recover(&CrashMode::StrictDurableOnly);
        assert_eq!(r.load_u64(64), 0xDDDD);
    }

    /// Healing the pipelined runtime also drops submitted-but-undrained
    /// ring entries and the prelogged write set of the abandoned FASE.
    #[test]
    fn heal_after_panic_clears_pipelined_residue() {
        let mut r = rt(PolicyKind::Eager);
        r.set_flush_mode(FlushMode::Pipelined);
        r.fase(|r| r.store_u64(64, 1));
        r.begin_fase();
        r.prelog(&[(128, 8)]);
        r.store_u64(128, 2);
        assert!(r.heal_after_panic());
        assert_eq!(r.load_u64(128), 0, "prelogged store rolled back");
        // ring is usable again: a clean pipelined FASE commits
        r.fase(|r| r.store_u64(128, 3));
        assert_eq!(r.load_u64(128), 3);
        r.crash_and_recover(&CrashMode::StrictDurableOnly);
        assert_eq!(r.load_u64(128), 3);
    }

    /// Healing a quiescent runtime is a no-op.
    #[test]
    fn heal_after_panic_is_noop_when_clean() {
        let mut r = rt(PolicyKind::Lazy);
        r.fase(|r| r.store_u64(64, 5));
        assert!(!r.heal_after_panic());
        assert_eq!(r.stats().rollbacks, 0);
        assert_eq!(r.load_u64(64), 5);
    }
}
