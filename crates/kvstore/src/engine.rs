//! The engine seam: what a shard lane's worker needs from the storage
//! structure it serves. Two implementations ride behind the same
//! submission queues, group commit, crash plumbing, and network layer:
//!
//! * [`Shard`] — the open-chaining persistent hash table (point ops in
//!   O(1), scans pay a full bucket walk + sort);
//! * [`TreeEngine`] — the copy-on-write B+-tree from `nvcache-treestore`
//!   (ordered scans stream leaves; every batch is one or more CoW
//!   transactions published by FASE commits).
//!
//! The worker drives exactly [`Engine::serve_batch`] +
//! [`Engine::heal_after_panic`]; everything else is server plumbing
//! (stats scraping, crash injection, verification dumps).

use nvcache_fase::FaseStats;
use nvcache_pmem::{CrashMode, CrashPlan};
use nvcache_treestore::{FasePager, Tree, TreeConfig, TreeError};

use crate::shard::{BatchReply, BatchRequest, CapacityChoice, Shard};

/// A storage engine servable by a `KvServer` lane.
#[allow(clippy::len_without_is_empty)]
pub trait Engine: Send + 'static {
    /// Serve one drained submission-queue batch with sequential
    /// semantics (a request observes every earlier request of its own
    /// batch) and the committed-prefix crash contract: after this
    /// returns, every reply's effect is durable; a crash mid-batch
    /// exposes only a prefix of the batch's commits, never a torn one.
    fn serve_batch(&mut self, reqs: &[BatchRequest]) -> Vec<BatchReply>;

    /// Roll back whatever a panic unwinding through `serve_batch` left
    /// open and rebuild volatile state. Returns whether anything needed
    /// healing.
    fn heal_after_panic(&mut self) -> bool;

    /// Inject a power failure and recover in place.
    fn crash_and_recover(&mut self, mode: &CrashMode);

    /// Flush buffered state (clean shutdown).
    fn sync(&mut self);

    /// Live keys.
    fn len(&self) -> usize;

    /// Every `(key, value)` pair, sorted by key (verification).
    fn dump(&mut self) -> Vec<(u64, Vec<u8>)>;

    /// Cumulative runtime counters.
    fn stats(&self) -> FaseStats;

    /// Counters since the last take.
    fn take_stats(&mut self) -> FaseStats;

    /// Persistence micro-steps executed (crash-point index space).
    fn steps(&self) -> u64;

    /// Arm a crash plan on the engine's region.
    fn arm_crash(&mut self, plan: CrashPlan);

    /// The crash image captured by an armed plan, if reached.
    fn take_crash_image(&mut self) -> Option<Vec<u8>>;

    /// Restart adaptation measurement (no-op for engines without a
    /// live controller).
    fn reset_sampler(&mut self) {}

    /// Capacity decisions the live controller has made, in order
    /// (empty for engines without one).
    fn chosen(&self) -> Vec<CapacityChoice> {
        Vec::new()
    }
}

impl Engine for Shard {
    fn serve_batch(&mut self, reqs: &[BatchRequest]) -> Vec<BatchReply> {
        Shard::serve_batch(self, reqs)
    }
    fn heal_after_panic(&mut self) -> bool {
        Shard::heal_after_panic(self)
    }
    fn crash_and_recover(&mut self, mode: &CrashMode) {
        Shard::crash_and_recover(self, mode)
    }
    fn sync(&mut self) {
        Shard::sync(self)
    }
    fn len(&self) -> usize {
        Shard::len(self)
    }
    fn dump(&mut self) -> Vec<(u64, Vec<u8>)> {
        Shard::dump(self)
    }
    fn stats(&self) -> FaseStats {
        Shard::stats(self)
    }
    fn take_stats(&mut self) -> FaseStats {
        Shard::take_stats(self)
    }
    fn steps(&self) -> u64 {
        Shard::steps(self)
    }
    fn arm_crash(&mut self, plan: CrashPlan) {
        Shard::arm_crash(self, plan)
    }
    fn take_crash_image(&mut self) -> Option<Vec<u8>> {
        Shard::take_crash_image(self)
    }
    fn reset_sampler(&mut self) {
        Shard::reset_sampler(self)
    }
    fn chosen(&self) -> Vec<CapacityChoice> {
        Shard::chosen(self).to_vec()
    }
}

/// Writes per tree transaction before the engine commits and opens a
/// fresh one. Each CoW'd page undo-logs its pre-image (~600 B per
/// put worst case), so a chunk must fit the undo log with headroom;
/// 256 × 600 B ≈ 150 KiB against the default 256 KiB log.
const TXN_CHUNK: usize = 256;

/// Shape of one tree lane.
#[derive(Debug, Clone)]
pub struct TreeEngineConfig {
    /// The underlying tree heap/log/policy shape.
    pub tree: TreeConfig,
    /// Writes per transaction before an intermediate commit.
    pub chunk: usize,
}

impl Default for TreeEngineConfig {
    fn default() -> Self {
        TreeEngineConfig {
            tree: TreeConfig::default(),
            chunk: TXN_CHUNK,
        }
    }
}

/// The B+-tree lane engine: batches become CoW transactions.
///
/// A batch lazily opens a transaction at its first write and commits at
/// the end (or every [`TreeEngineConfig::chunk`] writes, bounding the
/// undo log); reads inside the batch go through the staged root, so
/// read-your-batch holds without an overlay. Scans need no barrier for
/// visibility, but chunk boundaries keep the committed-prefix contract
/// intact: a crash exposes a prefix of the batch's commits, each a
/// consistent tree.
pub struct TreeEngine {
    t: Tree<FasePager>,
    chunk: usize,
    /// Writes in the currently open transaction.
    staged: usize,
}

impl TreeEngine {
    /// Fresh engine over a new tree heap.
    pub fn new(cfg: &TreeEngineConfig) -> Self {
        assert!(cfg.chunk >= 1, "chunk must hold at least one write");
        TreeEngine {
            t: Tree::create(&cfg.tree).expect("format tree heap"),
            chunk: cfg.chunk,
            staged: 0,
        }
    }

    /// Re-attach to a crash image: FASE recovery, then tree state
    /// rebuild from the durable root.
    pub fn reopen_from_image(image: Vec<u8>, cfg: &TreeEngineConfig) -> Result<Self, TreeError> {
        Ok(TreeEngine {
            t: Tree::reopen_from_image(image, &cfg.tree)?,
            chunk: cfg.chunk,
            staged: 0,
        })
    }

    /// The underlying tree (snapshot pins, reclamation, telemetry).
    pub fn tree(&self) -> &Tree<FasePager> {
        &self.t
    }

    /// The underlying tree, mutably.
    pub fn tree_mut(&mut self) -> &mut Tree<FasePager> {
        &mut self.t
    }

    fn stage(&mut self) {
        if !self.t.in_txn() {
            self.t.begin();
            self.staged = 0;
        } else if self.staged >= self.chunk {
            self.t.commit();
            self.t.begin();
            self.staged = 0;
        }
        self.staged += 1;
    }

    fn settle(&mut self) {
        if self.t.in_txn() {
            self.t.commit();
        }
        self.staged = 0;
    }
}

impl Engine for TreeEngine {
    fn serve_batch(&mut self, reqs: &[BatchRequest]) -> Vec<BatchReply> {
        let mut replies = Vec::with_capacity(reqs.len());
        for req in reqs {
            match req {
                BatchRequest::Get(k) => {
                    // in-txn reads resolve through the staged root:
                    // read-your-batch without an overlay
                    replies.push(BatchReply::Value(self.t.get(*k)));
                }
                BatchRequest::Put(k, v) => {
                    self.stage();
                    replies.push(BatchReply::Done(self.t.put(*k, v).is_ok()));
                }
                BatchRequest::PutMany(items) => {
                    // per-request atomicity: the whole group lands in
                    // one transaction (chunk boundaries fall between
                    // requests, not inside one)
                    self.stage();
                    let mut ok = true;
                    for (k, v) in items {
                        ok &= self.t.put(*k, v).is_ok();
                    }
                    replies.push(BatchReply::Done(ok));
                }
                BatchRequest::Delete(k) => {
                    self.stage();
                    let existed = self.t.delete(*k).unwrap_or(false);
                    replies.push(BatchReply::Done(existed));
                }
                BatchRequest::Scan(lo, hi, limit) => {
                    replies.push(BatchReply::Entries(self.t.scan(
                        None,
                        *lo,
                        *hi,
                        *limit as usize,
                    )));
                }
            }
        }
        self.settle();
        self.t.reclaim();
        replies
    }

    fn heal_after_panic(&mut self) -> bool {
        self.staged = 0;
        self.t.heal_after_panic().expect("tree heal after panic")
    }

    fn crash_and_recover(&mut self, mode: &CrashMode) {
        self.staged = 0;
        self.t.crash_and_recover(mode).expect("tree crash recovery");
    }

    fn sync(&mut self) {
        self.t.sync();
    }

    fn len(&self) -> usize {
        self.t.len() as usize
    }

    fn dump(&mut self) -> Vec<(u64, Vec<u8>)> {
        self.t.scan(None, 0, u64::MAX, usize::MAX)
    }

    fn stats(&self) -> FaseStats {
        self.t.stats()
    }

    fn take_stats(&mut self) -> FaseStats {
        self.t.take_stats()
    }

    fn steps(&self) -> u64 {
        self.t.steps()
    }

    fn arm_crash(&mut self, plan: CrashPlan) {
        self.t.arm_crash(plan);
    }

    fn take_crash_image(&mut self) -> Option<Vec<u8>> {
        self.t.take_crash_image()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TreeEngineConfig {
        TreeEngineConfig {
            tree: TreeConfig {
                data_len: 1 << 20,
                log_len: 1 << 18,
                ..Default::default()
            },
            chunk: 8,
        }
    }

    #[test]
    fn tree_engine_serves_mixed_batches() {
        let mut e = TreeEngine::new(&small());
        let replies = e.serve_batch(&[
            BatchRequest::Put(10, b"ten".to_vec()),
            BatchRequest::Get(10), // read-your-batch through staged root
            BatchRequest::PutMany(vec![(11, b"eleven".to_vec()), (10, b"TEN".to_vec())]),
            BatchRequest::Scan(0, 100, 10), // sees its own batch's writes
            BatchRequest::Delete(11),
            BatchRequest::Get(11),
        ]);
        assert_eq!(replies[0], BatchReply::Done(true));
        assert_eq!(replies[1], BatchReply::Value(Some(b"ten".to_vec())));
        assert_eq!(replies[2], BatchReply::Done(true));
        assert_eq!(
            replies[3],
            BatchReply::Entries(vec![(10, b"TEN".to_vec()), (11, b"eleven".to_vec())])
        );
        assert_eq!(replies[4], BatchReply::Done(true));
        assert_eq!(replies[5], BatchReply::Value(None));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn chunked_batch_commits_and_survives_crash() {
        let mut e = TreeEngine::new(&small());
        // 50 writes with chunk=8: several intermediate commits
        let reqs: Vec<BatchRequest> = (0..50u64)
            .map(|i| BatchRequest::Put(i, vec![i as u8; 16]))
            .collect();
        let replies = e.serve_batch(&reqs);
        assert!(replies.iter().all(|r| *r == BatchReply::Done(true)));
        Engine::crash_and_recover(&mut e, &CrashMode::AllInFlightLands);
        assert_eq!(e.len(), 50);
        for i in 0..50u64 {
            assert_eq!(e.t.get(i).as_deref(), Some(&vec![i as u8; 16][..]));
        }
    }

    #[test]
    fn oversized_value_fails_precisely() {
        let mut e = TreeEngine::new(&small());
        let replies = e.serve_batch(&[
            BatchRequest::Put(1, vec![0u8; nvcache_treestore::MAX_VALUE + 1]),
            BatchRequest::Put(2, b"fits".to_vec()),
        ]);
        assert_eq!(replies[0], BatchReply::Done(false));
        assert_eq!(replies[1], BatchReply::Done(true));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn hash_and_tree_agree_on_mixed_stream() {
        use crate::shard::ShardConfig;
        use nvcache_core::PolicyKind;
        let mut tree = TreeEngine::new(&small());
        let mut hash = Shard::new(&ShardConfig {
            buckets: 64,
            data_len: 1 << 19,
            log_len: 1 << 15,
            policy: PolicyKind::ScFixed { capacity: 8 },
            adapt: None,
            pipelined: false,
        });
        let mut reqs: Vec<BatchRequest> = Vec::new();
        let mut x = 31u64;
        for i in 0..200u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 32;
            reqs.push(match x % 5 {
                0 => BatchRequest::Get(key),
                1 => BatchRequest::Delete(key),
                2 => BatchRequest::Scan(key, key + 8, 4),
                _ => BatchRequest::Put(key, vec![i as u8; 16]),
            });
        }
        let a = Engine::serve_batch(&mut tree, &reqs);
        let b = Engine::serve_batch(&mut hash, &reqs);
        assert_eq!(a, b, "engines diverge on replies");
        assert_eq!(
            Engine::dump(&mut tree),
            Engine::dump(&mut hash),
            "engines diverge on end state"
        );
    }
}
