//! # nvcache-kvstore — sharded persistent KV serving with live adaptation
//!
//! The serving-layer reproduction of the paper's headline use case: a
//! memcached-style store whose *persistence* cost is governed by a
//! software write-combining cache, resized online from a miss-ratio
//! curve sampled off the store's own write stream.
//!
//! Three layers:
//!
//! - [`shard`] — one persistent open-chaining hash table per shard,
//!   owning a private `FaseRuntime` (every `put`/`delete` is a FASE)
//!   with `PAlloc`-backed buckets and value nodes, plus the shard's
//!   live adaptation controller: a `BurstSampler` fed the shard's
//!   FASE-renamed store-line stream, whose MRC knee resizes the
//!   `AdaptiveScPolicy` capacity *between* FASEs while the shard keeps
//!   serving. Capacity changes are pinned in the telemetry timeline.
//! - [`store`] — hash-routes keys over `N` mutex-guarded shards, so the
//!   per-thread cache model of the paper maps onto a concurrent server:
//!   different shards serve in parallel, each runtime stays
//!   single-owner.
//! - [`ycsb`] — a YCSB-style load generator (zipfian/uniform key
//!   popularity, mixes A/B/C/D, deterministic per-worker seeds, open-
//!   or closed-loop issue) with live per-window `FaseStats` scraping.
//!
//! ```
//! use nvcache_kvstore::{load, run, KvConfig, KvStore, Mix, YcsbConfig};
//!
//! let store = KvStore::new(&KvConfig::default());
//! load(&store, 1_000, 32);
//! let rep = run(
//!     &store,
//!     &YcsbConfig {
//!         keys: 1_000,
//!         ops_per_worker: 2_000,
//!         workers: 2,
//!         mix: Mix::B,
//!         value_len: 32,
//!         ..Default::default()
//!     },
//! );
//! assert_eq!(rep.ops, 4_000);
//! assert!(store.stats().data_flushes > 0);
//! ```

pub mod engine;
pub mod net;
pub mod netload;
pub mod proto;
pub mod queue;
pub mod server;
pub mod shard;
pub mod store;
pub mod ycsb;

pub use engine::{Engine, TreeEngine, TreeEngineConfig};
pub use net::{
    listen_addr, Conn, InProcTransport, Listener, NetClient, NetServer, TcpTransport, Transport,
};
pub use netload::{
    run_net, stored_version, verify_acked, versioned_value, NetLoadConfig, NetLoadReport,
};
pub use queue::{Backpressure, Completion, Notify, PushError, QueueStats, SubmissionQueue};
pub use server::{KvClient, KvServer, ServerConfig};
pub use shard::{
    AdaptConfig, BatchReply, BatchRequest, CapacityChoice, Shard, ShardConfig, MAX_VALUE_LEN,
};
pub use store::{KvConfig, KvStore};
pub use ycsb::{
    load, load_on, run, run_on, scheduled_latency_ns, value_bytes, KeyDist, KvTarget, Mix, OpMix,
    ThetaShift, WindowStats, YcsbConfig, YcsbReport, Zipfian,
};
