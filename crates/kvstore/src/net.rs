//! The network serving layer: a transport-trait server that speaks the
//! framed wire protocol of [`proto`] and feeds decoded requests into
//! the [`KvServer`]'s submission queues.
//!
//! ## Transports
//!
//! [`Transport`] abstracts listen/connect over byte-stream connections.
//! Two implementations:
//!
//! - [`InProcTransport`] — in-process duplex pipes (`Mutex<VecDeque>` +
//!   condvar halves). Deterministic, no sockets, no ports: what the
//!   test suite and the CI smoke run on.
//! - [`TcpTransport`] — real TCP. The listen address is decided like
//!   wrongodb's server: explicit CLI argument beats `NVKV_ADDR` beats
//!   `NVKV_PORT` (host-defaulted) beats the built-in default
//!   (see [`listen_addr`]).
//!
//! ## Per-connection pipelining
//!
//! Each accepted connection gets a **reader** thread and a **writer**
//! thread. The reader decodes frames and submits them non-blockingly
//! into the shard lanes' [`SubmissionQueue`]s — many requests from one
//! connection can be in flight at once, and requests from *different*
//! connections meet in the same queue, where the shard worker's drain
//! turns them into one grouped FASE (cross-client group commit). The
//! writer multiplexes over all of the connection's outstanding
//! completions via a shared [`Notify`] and sends responses back **in
//! completion order, not submission order** — responses carry the
//! request id, so the client reorders. One sweep of the writer encodes
//! every response that became ready and hands the transport a single
//! contiguous write.
//!
//! ## Ack contract
//!
//! A response frame for a write is encoded only after its completion
//! slot was filled, and the shard worker fills slots only after the
//! batch's FASE committed: **a response on the wire implies the write
//! is durable**. The crash sweep in `tests/net_e2e.rs` and the
//! `repro net-smoke` CI step enforce exactly this.
//!
//! [`proto`]: crate::proto

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use nvcache_telemetry::{CounterId, Recorder};

use crate::engine::Engine;
use crate::proto::{encode_response, fit_entries, FrameDecoder, Request, Response};
use crate::queue::{Completion, Notify};
use crate::server::{KvServer, ScanEntries};

/// Default TCP listen address (wrongodb-style: a fixed well-known
/// loopback port, overridable by environment or CLI).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7440";

/// Decide the TCP listen address: explicit CLI value > `NVKV_ADDR`
/// (full `host:port`) > `NVKV_PORT` (loopback host) > [`DEFAULT_ADDR`].
pub fn listen_addr(cli: Option<&str>) -> String {
    if let Some(a) = cli {
        return a.to_string();
    }
    if let Ok(a) = std::env::var("NVKV_ADDR") {
        if !a.is_empty() {
            return a;
        }
    }
    if let Ok(p) = std::env::var("NVKV_PORT") {
        if !p.is_empty() {
            return format!("127.0.0.1:{p}");
        }
    }
    DEFAULT_ADDR.to_string()
}

// ---- transport abstraction -------------------------------------------

/// One byte-stream connection end. Implementations must support
/// *independent* cloned handles (reader and writer threads each own
/// one) and an out-of-band shutdown that unblocks a blocked read.
pub trait Conn: Send {
    /// Read up to `buf.len()` bytes; `Ok(0)` means the peer closed.
    fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Write the whole buffer.
    fn write_all_bytes(&mut self, buf: &[u8]) -> io::Result<()>;
    /// A second handle over the same connection.
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>>;
    /// Tear the connection down; concurrent reads unblock with EOF or
    /// an error.
    fn shutdown_conn(&self);
}

/// A listening endpoint handing out accepted connections.
pub trait Listener: Send + Sync {
    /// Block for the next inbound connection.
    fn accept_conn(&self) -> io::Result<Box<dyn Conn>>;
    /// Stop listening; a blocked `accept_conn` returns an error.
    fn close(&self);
    /// Human-readable bound address.
    fn local_addr(&self) -> String;
}

/// A way to create listeners and client connections.
pub trait Transport {
    /// Bind a listener on `addr`.
    fn listen(&self, addr: &str) -> io::Result<Box<dyn Listener>>;
    /// Connect to a listener previously bound on `addr`.
    fn connect(&self, addr: &str) -> io::Result<Box<dyn Conn>>;
}

// ---- in-process transport --------------------------------------------

/// One direction of a duplex pipe: a byte queue with blocking reads.
#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct PipeState {
    data: VecDeque<u8>,
    closed: bool,
}

impl Pipe {
    fn write(&self, buf: &[u8]) -> io::Result<()> {
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if g.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
        }
        g.data.extend(buf);
        drop(g);
        self.cv.notify_all();
        Ok(())
    }

    fn read(&self, buf: &mut [u8]) -> io::Result<usize> {
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !g.data.is_empty() {
                let n = buf.len().min(g.data.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = g.data.pop_front().unwrap();
                }
                return Ok(n);
            }
            if g.closed {
                return Ok(0); // EOF
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.cv.notify_all();
    }
}

/// One end of an in-process duplex connection.
pub struct DuplexConn {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
}

impl DuplexConn {
    /// A fresh connected pair `(a, b)`: bytes written to `a` are read
    /// from `b` and vice versa.
    pub fn pair() -> (DuplexConn, DuplexConn) {
        let ab = Arc::new(Pipe::default());
        let ba = Arc::new(Pipe::default());
        (
            DuplexConn {
                rx: Arc::clone(&ba),
                tx: Arc::clone(&ab),
            },
            DuplexConn { rx: ab, tx: ba },
        )
    }
}

impl Conn for DuplexConn {
    fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.rx.read(buf)
    }

    fn write_all_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        self.tx.write(buf)
    }

    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(DuplexConn {
            rx: Arc::clone(&self.rx),
            tx: Arc::clone(&self.tx),
        }))
    }

    fn shutdown_conn(&self) {
        self.rx.close();
        self.tx.close();
    }
}

#[derive(Default)]
struct InProcState {
    backlog: VecDeque<DuplexConn>,
    closed: bool,
}

/// An in-process transport: `connect` hands the server half of a fresh
/// duplex pair to whoever is blocked in `accept_conn`. One logical
/// address space per transport instance (the `addr` strings are
/// ignored) — deterministic, portable, no sockets.
#[derive(Clone, Default)]
pub struct InProcTransport {
    inner: Arc<(Mutex<InProcState>, Condvar)>,
}

impl InProcTransport {
    /// A fresh, unconnected transport.
    pub fn new() -> Self {
        Self::default()
    }
}

struct InProcListener {
    inner: Arc<(Mutex<InProcState>, Condvar)>,
}

impl Listener for InProcListener {
    fn accept_conn(&self) -> io::Result<Box<dyn Conn>> {
        let (m, cv) = &*self.inner;
        let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(c) = g.backlog.pop_front() {
                return Ok(Box::new(c));
            }
            if g.closed {
                return Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "listener closed",
                ));
            }
            g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let (m, cv) = &*self.inner;
        m.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        cv.notify_all();
    }

    fn local_addr(&self) -> String {
        "inproc".to_string()
    }
}

impl Transport for InProcTransport {
    fn listen(&self, _addr: &str) -> io::Result<Box<dyn Listener>> {
        Ok(Box::new(InProcListener {
            inner: Arc::clone(&self.inner),
        }))
    }

    fn connect(&self, _addr: &str) -> io::Result<Box<dyn Conn>> {
        let (client, server) = DuplexConn::pair();
        let (m, cv) = &*self.inner;
        let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
        if g.closed {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "no listener",
            ));
        }
        g.backlog.push_back(server);
        drop(g);
        cv.notify_all();
        Ok(Box::new(client))
    }
}

// ---- TCP transport ---------------------------------------------------

impl Conn for TcpStream {
    fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.read(buf)
    }

    fn write_all_bytes(&mut self, buf: &[u8]) -> io::Result<()> {
        self.write_all(buf)
    }

    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn shutdown_conn(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

struct TcpListenerWrap {
    inner: TcpListener,
    closed: AtomicBool,
}

impl Listener for TcpListenerWrap {
    fn accept_conn(&self) -> io::Result<Box<dyn Conn>> {
        let (stream, _) = self.inner.accept()?;
        if self.closed.load(Ordering::Acquire) {
            // the wakeup connection from close(); report shutdown
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "listener closed",
            ));
        }
        stream.set_nodelay(true).ok();
        Ok(Box::new(stream))
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        // unblock a parked accept() by dialing ourselves
        if let Ok(addr) = self.inner.local_addr() {
            let _ = TcpStream::connect(addr);
        }
    }

    fn local_addr(&self) -> String {
        self.inner
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "?".to_string())
    }
}

/// Real TCP. Use `addr` `"127.0.0.1:0"` to let the OS pick a port
/// (read it back via [`Listener::local_addr`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpTransport;

impl Transport for TcpTransport {
    fn listen(&self, addr: &str) -> io::Result<Box<dyn Listener>> {
        Ok(Box::new(TcpListenerWrap {
            inner: TcpListener::bind(addr)?,
            closed: AtomicBool::new(false),
        }))
    }

    fn connect(&self, addr: &str) -> io::Result<Box<dyn Conn>> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true).ok();
        Ok(Box::new(s))
    }
}

// ---- server ----------------------------------------------------------

/// Connection-level counters, scraped by benchmarks and folded into
/// telemetry snapshots via [`NetStats::record_into`].
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Request frames decoded.
    pub frames_in: AtomicU64,
    /// Response frames written.
    pub frames_out: AtomicU64,
    /// Recoverable protocol errors skipped.
    pub proto_errors: AtomicU64,
}

impl NetStats {
    /// Fold the counters into a [`Recorder`] under the `Net*` counter
    /// ids, so one snapshot carries compute- and network-side totals.
    pub fn record_into<R: Recorder>(&self, r: &mut R) {
        r.add(
            CounterId::NetConnections,
            self.connections.load(Ordering::Relaxed),
        );
        r.add(
            CounterId::NetFramesIn,
            self.frames_in.load(Ordering::Relaxed),
        );
        r.add(
            CounterId::NetFramesOut,
            self.frames_out.load(Ordering::Relaxed),
        );
        r.add(
            CounterId::NetProtoErrors,
            self.proto_errors.load(Ordering::Relaxed),
        );
    }
}

/// One outstanding request on a connection, keyed by wire id. The
/// writer sweeps these and emits a response as soon as the entry is
/// ready — possibly out of submission order.
enum PendingState {
    /// A `Get` waiting on its completion.
    Value(Completion<Option<Vec<u8>>>),
    /// A `Put`/`Delete` waiting on its completion.
    Done(Completion<bool>),
    /// A `PutMany` split over several lanes: ready when every per-lane
    /// slice acked; the combined ack is the conjunction.
    Multi {
        parts: Vec<Completion<bool>>,
        got: Vec<Option<bool>>,
    },
    /// A `Scan` fanned out to every lane (keys are hash-routed): ready
    /// when each lane returned its slice; the response is the merged,
    /// sorted, limit-truncated union, further cut to fit one frame.
    Scan {
        parts: Vec<Completion<ScanEntries>>,
        got: Vec<Option<ScanEntries>>,
        limit: usize,
    },
    /// Ready immediately (Pong, Rejected).
    Ready(Response),
}

struct PendingEntry {
    id: u64,
    state: PendingState,
}

/// Shared between one connection's reader and writer threads.
struct ConnShared {
    pending: Mutex<VecDeque<PendingEntry>>,
    notify: Arc<Notify>,
    /// Reader finished (EOF or fatal error): writer drains and exits.
    done: AtomicBool,
}

impl ConnShared {
    /// Mark the entry `id` (inserted just before a failed submit) as an
    /// immediate `Rejected` response.
    fn reject(&self, id: u64) {
        let mut g = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = g.iter_mut().rev().find(|e| e.id == id) {
            e.state = PendingState::Ready(Response::Rejected { id });
        }
        drop(g);
        self.notify.post();
    }
}

struct ConnHandle {
    conn: Box<dyn Conn>,
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
}

/// The framed-protocol server: accepts connections from a
/// [`Listener`] and serves them over a shared [`KvServer`]. Does not
/// own the `KvServer` — shut the store down separately after
/// [`NetServer::shutdown`].
pub struct NetServer {
    listener: Arc<Box<dyn Listener>>,
    stats: Arc<NetStats>,
    conns: Arc<Mutex<Vec<ConnHandle>>>,
    accept: Option<JoinHandle<()>>,
    closing: Arc<AtomicBool>,
}

impl NetServer {
    /// Bind `transport` on `addr` and start accepting. Every accepted
    /// connection gets a reader + writer thread pair over `kv`'s
    /// submission queues.
    pub fn start<E: Engine>(
        transport: &dyn Transport,
        addr: &str,
        kv: Arc<KvServer<E>>,
    ) -> io::Result<NetServer> {
        let listener: Arc<Box<dyn Listener>> = Arc::new(transport.listen(addr)?);
        let stats = Arc::new(NetStats::default());
        let conns: Arc<Mutex<Vec<ConnHandle>>> = Arc::new(Mutex::new(Vec::new()));
        let closing = Arc::new(AtomicBool::new(false));
        let accept = {
            let listener = Arc::clone(&listener);
            let stats = Arc::clone(&stats);
            let conns = Arc::clone(&conns);
            let closing = Arc::clone(&closing);
            std::thread::spawn(move || loop {
                let conn = match listener.accept_conn() {
                    Ok(c) => c,
                    Err(_) => return, // listener closed
                };
                if closing.load(Ordering::Acquire) {
                    conn.shutdown_conn();
                    return;
                }
                stats.connections.fetch_add(1, Ordering::Relaxed);
                // a failed clone simply drops the connection
                if let Ok(h) = spawn_conn(conn, Arc::clone(&kv), Arc::clone(&stats)) {
                    conns.lock().unwrap_or_else(|e| e.into_inner()).push(h);
                }
            })
        };
        Ok(NetServer {
            listener,
            stats,
            conns,
            accept: Some(accept),
            closing,
        })
    }

    /// The bound address (e.g. the OS-chosen TCP port).
    pub fn local_addr(&self) -> String {
        self.listener.local_addr()
    }

    /// Connection-level counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Stop accepting, tear down live connections, join every thread.
    /// The shared [`KvServer`] keeps running — close it separately.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.closing.store(true, Ordering::Release);
        self.listener.close();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<ConnHandle> = {
            let mut g = self.conns.lock().unwrap_or_else(|e| e.into_inner());
            g.drain(..).collect()
        };
        for h in &handles {
            h.conn.shutdown_conn();
        }
        for h in handles {
            let _ = h.reader.join();
            let _ = h.writer.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Spawn the reader/writer pair for one accepted connection.
fn spawn_conn<E: Engine>(
    conn: Box<dyn Conn>,
    kv: Arc<KvServer<E>>,
    stats: Arc<NetStats>,
) -> io::Result<ConnHandle> {
    let read_half = conn.try_clone_conn()?;
    let write_half = conn.try_clone_conn()?;
    let shared = Arc::new(ConnShared {
        pending: Mutex::new(VecDeque::new()),
        notify: Arc::new(Notify::new()),
        done: AtomicBool::new(false),
    });
    let reader = {
        let shared = Arc::clone(&shared);
        let stats = Arc::clone(&stats);
        std::thread::spawn(move || {
            reader_loop(read_half, &kv, &shared, &stats);
            shared.done.store(true, Ordering::Release);
            shared.notify.post(); // writer: drain and exit
        })
    };
    let writer = {
        let shared = Arc::clone(&shared);
        let stats = Arc::clone(&stats);
        std::thread::spawn(move || writer_loop(write_half, &shared, &stats))
    };
    Ok(ConnHandle {
        conn,
        reader,
        writer,
    })
}

/// Decode frames off the connection and submit them. Returns on EOF,
/// read error, or a fatal protocol error (which also tears the
/// connection down so the peer notices).
fn reader_loop<E: Engine>(
    mut conn: Box<dyn Conn>,
    kv: &KvServer<E>,
    shared: &ConnShared,
    stats: &NetStats,
) {
    let client = kv.handle();
    let mut dec = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    'io: loop {
        let n = match conn.read_some(&mut buf) {
            Ok(0) | Err(_) => break 'io,
            Ok(n) => n,
        };
        dec.extend_from(&buf[..n]);
        loop {
            match dec.next_request() {
                Ok(None) => break,
                Ok(Some(req)) => {
                    stats.frames_in.fetch_add(1, Ordering::Relaxed);
                    submit(client, shared, req);
                }
                Err(e) if e.is_fatal() => {
                    conn.shutdown_conn();
                    break 'io;
                }
                Err(_) => {
                    stats.proto_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Register a pending entry for `req` **before** submitting it, so the
/// writer's notify-count snapshot can never miss the fill, then push
/// the request into the shard lane(s).
fn submit(client: &crate::server::KvClient, shared: &ConnShared, req: Request) {
    let id = req.id();
    let push_entry = |state: PendingState| {
        shared
            .pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(PendingEntry { id, state });
    };
    match req {
        Request::Ping { id } => {
            push_entry(PendingState::Ready(Response::Pong { id }));
            shared.notify.post();
        }
        Request::Get { id, key } => {
            let c = Completion::with_notify(Arc::clone(&shared.notify));
            push_entry(PendingState::Value(c.clone()));
            if !client.submit_get(key, c) {
                shared.reject(id);
            }
        }
        Request::Put { id, key, value } => {
            let c = Completion::with_notify(Arc::clone(&shared.notify));
            push_entry(PendingState::Done(c.clone()));
            if !client.submit_put(key, value, c) {
                shared.reject(id);
            }
        }
        Request::Delete { id, key } => {
            let c = Completion::with_notify(Arc::clone(&shared.notify));
            push_entry(PendingState::Done(c.clone()));
            if !client.submit_delete(key, c) {
                shared.reject(id);
            }
        }
        Request::PutMany { id, items } => {
            if items.is_empty() {
                push_entry(PendingState::Ready(Response::Done { id, ok: true }));
                shared.notify.post();
                return;
            }
            let mut by_lane: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); client.num_lanes()];
            for (k, v) in items {
                by_lane[client.lane_of(k)].push((k, v));
            }
            let mut parts = Vec::new();
            let mut slices = Vec::new();
            for (lane, group) in by_lane.into_iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                parts.push(Completion::with_notify(Arc::clone(&shared.notify)));
                slices.push((lane, group));
            }
            let got = vec![None; parts.len()];
            push_entry(PendingState::Multi {
                parts: parts.clone(),
                got,
            });
            let mut ok = true;
            for ((lane, group), c) in slices.into_iter().zip(parts) {
                ok &= client.submit_put_many(lane, group, c);
            }
            if !ok {
                // at least one lane refused: answer Rejected (slices
                // that *were* accepted still commit — at-most-once acks)
                shared.reject(id);
            }
        }
        Request::Scan { id, lo, hi, limit } => {
            if lo > hi || limit == 0 {
                push_entry(PendingState::Ready(Response::Entries {
                    id,
                    items: Vec::new(),
                }));
                shared.notify.post();
                return;
            }
            // keys are hash-routed: every lane may hold part of the
            // range, so fan the scan out and merge at response time
            let parts: Vec<Completion<ScanEntries>> = (0..client.num_lanes())
                .map(|_| Completion::with_notify(Arc::clone(&shared.notify)))
                .collect();
            let got = vec![None; parts.len()];
            push_entry(PendingState::Scan {
                parts: parts.clone(),
                got,
                limit: limit as usize,
            });
            let mut ok = true;
            for (lane, c) in parts.into_iter().enumerate() {
                ok &= client.submit_scan(lane, lo, hi, limit, c);
            }
            if !ok {
                shared.reject(id);
            }
        }
    }
}

/// Sweep the pending set whenever completions land, encode every
/// response that became ready (possibly out of submission order), and
/// write them back as one contiguous buffer per sweep.
fn writer_loop(mut conn: Box<dyn Conn>, shared: &ConnShared, stats: &NetStats) {
    let mut wire = Vec::new();
    let mut broken = false;
    loop {
        let seen = shared.notify.count();
        let done = shared.done.load(Ordering::Acquire);
        wire.clear();
        let mut sent = 0u64;
        let empty = {
            let mut g = shared.pending.lock().unwrap_or_else(|e| e.into_inner());
            let mut i = 0;
            while i < g.len() {
                if let Some(resp) = take_ready(&mut g[i]) {
                    wire.extend_from_slice(&encode_response(&resp));
                    sent += 1;
                    g.remove(i);
                } else {
                    i += 1;
                }
            }
            g.is_empty()
        };
        if !wire.is_empty() && !broken {
            if conn.write_all_bytes(&wire).is_err() {
                // peer gone: keep reaping completions (the shard
                // workers still fill them) but stop writing
                broken = true;
            } else {
                stats.frames_out.fetch_add(sent, Ordering::Relaxed);
            }
        }
        if done && empty {
            return;
        }
        if wire.is_empty() {
            // nothing was ready: sleep until a fill lands past our
            // pre-scan snapshot (a fill during the scan returns at once)
            if shared.done.load(Ordering::Acquire) && empty {
                return;
            }
            shared.notify.wait_past(seen);
        }
    }
}

/// If `entry` can answer now, build the response (consuming completion
/// results).
fn take_ready(entry: &mut PendingEntry) -> Option<Response> {
    let id = entry.id;
    match &mut entry.state {
        PendingState::Ready(r) => Some(r.clone()),
        PendingState::Value(c) => c.try_take().map(|v| Response::Value { id, value: v }),
        PendingState::Done(c) => c.try_take().map(|ok| Response::Done { id, ok }),
        PendingState::Multi { parts, got } => {
            for (slot, c) in got.iter_mut().zip(parts.iter()) {
                if slot.is_none() {
                    *slot = c.try_take();
                }
            }
            if got.iter().all(|s| s.is_some()) {
                Some(Response::Done {
                    id,
                    ok: got.iter().all(|s| s == &Some(true)),
                })
            } else {
                None
            }
        }
        PendingState::Scan { parts, got, limit } => {
            for (slot, c) in got.iter_mut().zip(parts.iter()) {
                if slot.is_none() {
                    *slot = c.try_take();
                }
            }
            if got.iter().all(|s| s.is_some()) {
                let mut items: Vec<(u64, Vec<u8>)> =
                    got.iter_mut().flat_map(|s| s.take().unwrap()).collect();
                items.sort_unstable_by_key(|&(k, _)| k);
                items.truncate(*limit);
                // never emit an unframeable response: cut to the
                // longest prefix that encodes under MAX_BODY
                items.truncate(fit_entries(&items));
                Some(Response::Entries { id, items })
            } else {
                None
            }
        }
    }
}

// ---- blocking client -------------------------------------------------

/// A simple blocking client: one request in flight at a time, matched
/// by id. The loadgen ([`crate::netload`]) pipelines instead; this is
/// for tests, tooling, and interactive use.
pub struct NetClient {
    conn: Box<dyn Conn>,
    dec: FrameDecoder,
    next_id: u64,
    buf: Vec<u8>,
}

impl NetClient {
    /// Connect through `transport` to `addr`.
    pub fn connect(transport: &dyn Transport, addr: &str) -> io::Result<NetClient> {
        Ok(NetClient {
            conn: transport.connect(addr)?,
            dec: FrameDecoder::new(),
            next_id: 1,
            buf: vec![0u8; 64 * 1024],
        })
    }

    fn call(&mut self, req: &Request) -> io::Result<Response> {
        let id = req.id();
        self.conn
            .write_all_bytes(&crate::proto::encode_request(req))?;
        loop {
            match self.dec.next_response() {
                Ok(Some(resp)) if resp.id() == id => return Ok(resp),
                Ok(Some(_)) => {} // stale (shouldn't happen single-in-flight)
                Ok(None) => {
                    let n = self.conn.read_some(&mut self.buf)?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed",
                        ));
                    }
                    self.dec.extend_from(&self.buf[..n]);
                }
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            }
        }
    }

    fn id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        let id = self.id();
        match self.call(&Request::Ping { id })? {
            Response::Pong { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Look up `key`.
    pub fn get(&mut self, key: u64) -> io::Result<Option<Vec<u8>>> {
        let id = self.id();
        match self.call(&Request::Get { id, key })? {
            Response::Value { value, .. } => Ok(value),
            Response::Rejected { .. } => Ok(None),
            other => Err(unexpected(&other)),
        }
    }

    /// Insert or update; `Ok(true)` means the write is committed
    /// durable (ack-after-commit).
    pub fn put(&mut self, key: u64, value: &[u8]) -> io::Result<bool> {
        let id = self.id();
        match self.call(&Request::Put {
            id,
            key,
            value: value.to_vec(),
        })? {
            Response::Done { ok, .. } => Ok(ok),
            Response::Rejected { .. } => Ok(false),
            other => Err(unexpected(&other)),
        }
    }

    /// Atomic-per-shard multi-put.
    pub fn put_many(&mut self, items: &[(u64, Vec<u8>)]) -> io::Result<bool> {
        let id = self.id();
        match self.call(&Request::PutMany {
            id,
            items: items.to_vec(),
        })? {
            Response::Done { ok, .. } => Ok(ok),
            Response::Rejected { .. } => Ok(false),
            other => Err(unexpected(&other)),
        }
    }

    /// Remove `key`.
    pub fn delete(&mut self, key: u64) -> io::Result<bool> {
        let id = self.id();
        match self.call(&Request::Delete { id, key })? {
            Response::Done { ok, .. } => Ok(ok),
            Response::Rejected { .. } => Ok(false),
            other => Err(unexpected(&other)),
        }
    }

    /// Range scan `lo..=hi`, at most `limit` entries, sorted by key.
    /// The server may return fewer than `limit` entries when the full
    /// result would not fit one response frame.
    pub fn scan(&mut self, lo: u64, hi: u64, limit: u32) -> io::Result<Vec<(u64, Vec<u8>)>> {
        let id = self.id();
        match self.call(&Request::Scan { id, lo, hi, limit })? {
            Response::Entries { items, .. } => Ok(items),
            Response::Rejected { .. } => Ok(Vec::new()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("response kind mismatch: {resp:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use crate::shard::ShardConfig;
    use crate::store::KvConfig;
    use nvcache_core::PolicyKind;

    fn kv(shards: usize) -> Arc<KvServer> {
        Arc::new(KvServer::new(
            &KvConfig {
                shards,
                shard: ShardConfig {
                    buckets: 64,
                    data_len: 1 << 19,
                    log_len: 1 << 15,
                    policy: PolicyKind::ScFixed { capacity: 8 },
                    adapt: None,
                    pipelined: true,
                },
            },
            &ServerConfig::default(),
        ))
    }

    #[test]
    fn duplex_pair_moves_bytes_both_ways() {
        let (mut a, mut b) = DuplexConn::pair();
        a.write_all_bytes(b"ping").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(b.read_some(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        b.write_all_bytes(b"pong!").unwrap();
        assert_eq!(a.read_some(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"pong!");
        a.shutdown_conn();
        assert_eq!(b.read_some(&mut buf).unwrap(), 0, "EOF after shutdown");
    }

    #[test]
    fn inproc_roundtrip_all_ops() {
        let kv = kv(2);
        let t = InProcTransport::new();
        let srv = NetServer::start(&t, "inproc", Arc::clone(&kv)).unwrap();
        let mut c = NetClient::connect(&t, "inproc").unwrap();
        c.ping().unwrap();
        assert!(c.put(1, b"one").unwrap());
        assert_eq!(c.get(1).unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(c.get(2).unwrap(), None);
        assert!(c
            .put_many(&[(3, b"three".to_vec()), (4, b"four".to_vec())])
            .unwrap());
        assert_eq!(c.get(4).unwrap().as_deref(), Some(&b"four"[..]));
        assert_eq!(
            c.scan(0, 10, 16).unwrap(),
            vec![
                (1, b"one".to_vec()),
                (3, b"three".to_vec()),
                (4, b"four".to_vec()),
            ],
            "scan merges all lanes sorted"
        );
        assert_eq!(c.scan(3, 10, 1).unwrap().len(), 1, "limit respected");
        assert!(c.delete(1).unwrap());
        assert!(!c.delete(1).unwrap());
        let st = srv.stats();
        assert_eq!(st.connections.load(Ordering::Relaxed), 1);
        assert!(st.frames_in.load(Ordering::Relaxed) >= 8);
        assert_eq!(
            st.frames_in.load(Ordering::Relaxed),
            st.frames_out.load(Ordering::Relaxed),
            "every decoded request was answered"
        );
        srv.shutdown();
        kv.close();
    }

    #[test]
    fn pipelined_requests_complete_out_of_order_by_id() {
        // drive the raw protocol: send a burst of puts + gets without
        // reading responses, then collect and match by id
        let kv = kv(4);
        let t = InProcTransport::new();
        let srv = NetServer::start(&t, "inproc", Arc::clone(&kv)).unwrap();
        let mut conn = t.connect("inproc").unwrap();
        let mut wire = Vec::new();
        for i in 0..64u64 {
            wire.extend_from_slice(&crate::proto::encode_request(&Request::Put {
                id: i,
                key: i,
                value: i.to_le_bytes().to_vec(),
            }));
        }
        conn.write_all_bytes(&wire).unwrap();
        let mut dec = FrameDecoder::new();
        let mut buf = vec![0u8; 4096];
        let mut acked = std::collections::HashSet::new();
        while acked.len() < 64 {
            let n = conn.read_some(&mut buf).unwrap();
            assert!(n > 0, "server closed early");
            dec.extend_from(&buf[..n]);
            while let Some(resp) = dec.next_response().unwrap() {
                match resp {
                    Response::Done { id, ok: true } => {
                        assert!(acked.insert(id), "duplicate ack {id}");
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        // every acked write is durable (ack-after-commit)
        kv.crash_and_recover_all(&nvcache_pmem::CrashMode::StrictDurableOnly);
        let client = kv.client();
        for i in 0..64u64 {
            assert_eq!(
                client.get(i).as_deref(),
                Some(&i.to_le_bytes()[..]),
                "acked key {i} lost"
            );
        }
        srv.shutdown();
        kv.close();
    }

    #[test]
    fn corrupt_frame_is_skipped_and_counted() {
        let kv = kv(1);
        let t = InProcTransport::new();
        let srv = NetServer::start(&t, "inproc", Arc::clone(&kv)).unwrap();
        let mut conn = t.connect("inproc").unwrap();
        // damaged put, then a valid ping: the ping must still answer
        let mut bad = crate::proto::encode_request(&Request::Put {
            id: 1,
            key: 1,
            value: b"x".to_vec(),
        });
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        conn.write_all_bytes(&bad).unwrap();
        conn.write_all_bytes(&crate::proto::encode_request(&Request::Ping { id: 2 }))
            .unwrap();
        let mut dec = FrameDecoder::new();
        let mut buf = vec![0u8; 256];
        let resp = loop {
            let n = conn.read_some(&mut buf).unwrap();
            assert!(n > 0);
            dec.extend_from(&buf[..n]);
            if let Some(r) = dec.next_response().unwrap() {
                break r;
            }
        };
        assert_eq!(resp, Response::Pong { id: 2 });
        assert_eq!(srv.stats().proto_errors.load(Ordering::Relaxed), 1);
        srv.shutdown();
        kv.close();
    }

    /// The net layer is engine-generic: a tree-engine server speaks the
    /// same wire protocol, and its scans come back sorted.
    #[test]
    fn tree_engine_serves_over_the_wire() {
        use crate::engine::{TreeEngine, TreeEngineConfig};
        let kv = Arc::new(KvServer::<TreeEngine>::new_tree(
            2,
            &TreeEngineConfig::default(),
            &ServerConfig::default(),
        ));
        let t = InProcTransport::new();
        let srv = NetServer::start(&t, "inproc", Arc::clone(&kv)).unwrap();
        let mut c = NetClient::connect(&t, "inproc").unwrap();
        for k in 0..50u64 {
            assert!(c.put(k, &k.to_le_bytes()).unwrap());
        }
        assert_eq!(c.get(7).unwrap().as_deref(), Some(&7u64.to_le_bytes()[..]));
        let got = c.scan(10, 19, 100).unwrap();
        assert_eq!(got.len(), 10);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        assert_eq!(got[0].0, 10);
        assert!(c.delete(7).unwrap());
        assert_eq!(c.get(7).unwrap(), None);
        srv.shutdown();
        kv.close();
    }

    #[test]
    fn tcp_transport_serves_localhost() {
        let kv = kv(2);
        let t = TcpTransport;
        let srv = NetServer::start(&t, "127.0.0.1:0", Arc::clone(&kv)).unwrap();
        let addr = srv.local_addr();
        let mut c = NetClient::connect(&t, &addr).unwrap();
        c.ping().unwrap();
        assert!(c.put(10, b"tcp").unwrap());
        assert_eq!(c.get(10).unwrap().as_deref(), Some(&b"tcp"[..]));
        srv.shutdown();
        kv.close();
    }

    #[test]
    fn listen_addr_precedence() {
        // single test fn: env mutations must not race other tests
        assert_eq!(listen_addr(Some("0.0.0.0:9")), "0.0.0.0:9");
        std::env::remove_var("NVKV_ADDR");
        std::env::remove_var("NVKV_PORT");
        assert_eq!(listen_addr(None), DEFAULT_ADDR);
        std::env::set_var("NVKV_PORT", "7001");
        assert_eq!(listen_addr(None), "127.0.0.1:7001");
        std::env::set_var("NVKV_ADDR", "10.0.0.1:7002");
        assert_eq!(listen_addr(None), "10.0.0.1:7002");
        assert_eq!(listen_addr(Some("cli:1")), "cli:1", "CLI beats env");
        std::env::remove_var("NVKV_ADDR");
        std::env::remove_var("NVKV_PORT");
    }
}
