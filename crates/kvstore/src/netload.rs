//! Open-loop network load generator: N concurrent client connections,
//! each pipelining requests over the framed wire protocol with a
//! bounded in-flight window and **scheduled** send times.
//!
//! ## Open loop and coordinated omission
//!
//! Each connection owns an arrival schedule: request `i` is *intended*
//! at `t0 + i / rate`. The sender issues it no earlier than that, and
//! the receiver measures latency from the **intended** time, not the
//! actual send time ([`crate::ycsb::scheduled_latency_ns`]). When the
//! server stalls and the sender falls behind schedule, the queueing
//! delay the stall imposed on every scheduled-but-unsent request is
//! charged to those requests — the p99/p999 inflation is *recorded*
//! instead of silently omitted.
//!
//! ## Ack tracking (durability audit)
//!
//! Under [`NetLoadConfig::track_acks`], connections write versioned
//! values to **disjoint per-connection key ranges** and record, per
//! key, the newest version the server acked and the newest version
//! sent. Because one connection's writes to one key flow FIFO through
//! one shard lane, the store must afterwards hold a version in
//! `[max acked, max sent]` for every key — exactly the ack-after-
//! commit contract, checked by [`verify_acked`] after a crash.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use nvcache_telemetry::{
    Clock, HistId, MonoClock, Recorder, TelemetryConfig, TelemetrySnapshot, ThreadRecorder,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::engine::Engine;
use crate::net::{Conn, Transport};
use crate::proto::{encode_request, FrameDecoder, Request, Response};
use crate::server::KvServer;
use crate::ycsb::{scheduled_latency_ns, KeyDist, Mix, Zipfian};

/// Shape of one network load run.
#[derive(Debug, Clone)]
pub struct NetLoadConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Bounded in-flight window per connection (pipeline depth). `1`
    /// degenerates to a blocking client.
    pub pipeline_depth: usize,
    /// Requests each connection issues.
    pub ops_per_conn: u64,
    /// Key-space size per connection (ranges are disjoint across
    /// connections when `track_acks`, shared otherwise).
    pub keys: u64,
    /// Operation mix. Reads issue `Get`, the scan fraction (mix E)
    /// issues `Scan` over a `scan_len`-wide window, and every other
    /// fraction (update/insert/rmw) is folded into versioned `Put`s so
    /// the ack audit stays meaningful.
    pub mix: Mix,
    /// Key popularity.
    pub dist: KeyDist,
    /// Value length (forced ≥ 16 under `track_acks` to carry the
    /// version header).
    pub value_len: usize,
    /// Base seed; connection `c` derives its own stream.
    pub seed: u64,
    /// Intended arrival rate per connection (open loop). `0.0` issues
    /// as fast as the window allows and measures from send time.
    pub target_ops_per_sec: f64,
    /// Record per-key acked/sent versions for [`verify_acked`].
    pub track_acks: bool,
    /// Window width and entry cap of each `Scan` request issued by the
    /// scan fraction of the mix.
    pub scan_len: u32,
}

impl Default for NetLoadConfig {
    fn default() -> Self {
        NetLoadConfig {
            connections: 4,
            pipeline_depth: 4,
            ops_per_conn: 1_000,
            keys: 1_000,
            mix: Mix::A,
            dist: KeyDist::Zipfian { theta: 0.99 },
            value_len: 56,
            seed: 42,
            target_ops_per_sec: 50_000.0,
            track_acks: false,
            scan_len: 16,
        }
    }
}

/// What one network load run produced.
#[derive(Debug)]
pub struct NetLoadReport {
    /// Requests sent (== responses received barring connection loss).
    pub ops_sent: u64,
    /// Responses received.
    pub ops_answered: u64,
    /// `Rejected` responses among them (server refused the submission).
    pub rejected: u64,
    /// Get responses that found no value.
    pub not_found: u64,
    /// Wall-clock span of the run.
    pub elapsed_ns: u64,
    /// Merged per-connection latency histograms (`KvGetNs` for reads,
    /// `KvPutNs` for writes, `KvScanNs` for scans — intended-arrival
    /// based).
    pub snapshot: TelemetrySnapshot,
    /// Per key: newest acked version (`track_acks` only).
    pub acked: Option<HashMap<u64, u64>>,
    /// Per key: newest sent version (`track_acks` only).
    pub sent: Option<HashMap<u64, u64>>,
    /// Value length actually used (post `track_acks` clamp).
    pub value_len: usize,
}

impl NetLoadReport {
    /// Aggregate throughput over the run.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.ops_answered as f64 / (self.elapsed_ns as f64 / 1e9)
        }
    }
}

/// A versioned value: `[key u64 LE][version u64 LE][fill]`, so the
/// durability audit can read the stored version straight back.
pub fn versioned_value(key: u64, version: u64, len: usize) -> Vec<u8> {
    let len = len.max(16);
    let mut v = Vec::with_capacity(len);
    v.extend_from_slice(&key.to_le_bytes());
    v.extend_from_slice(&version.to_le_bytes());
    let mut z = key ^ version.rotate_left(23) ^ 0x9e37_79b9;
    while v.len() < len {
        z = z
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        v.extend_from_slice(&z.to_le_bytes());
    }
    v.truncate(len);
    v
}

/// Decode the version header of a stored [`versioned_value`]; `None`
/// when the bytes are not a versioned value for `key`.
pub fn stored_version(key: u64, bytes: &[u8]) -> Option<u64> {
    if bytes.len() < 16 || bytes[..8] != key.to_le_bytes() {
        return None;
    }
    Some(u64::from_le_bytes(bytes[8..16].try_into().unwrap()))
}

/// Per-connection window gate: sender blocks at `depth` in flight,
/// receiver releases.
struct Window {
    inflight: Mutex<usize>,
    cv: Condvar,
}

impl Window {
    fn acquire(&self, depth: usize) {
        let mut g = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        while *g >= depth {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        *g += 1;
    }

    fn release(&self) {
        let mut g = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        *g = g.saturating_sub(1);
        drop(g);
        self.cv.notify_one();
    }
}

/// What the sender tells the receiver about request `id`: op class and
/// the data needed for intended-time latency and ack auditing.
#[derive(Clone, Copy)]
struct SentMeta {
    /// Intended arrival in the connection clock's time base.
    intended_ns: u64,
    /// `Some((key, version))` for writes, `None` for reads.
    write: Option<(u64, u64)>,
}

/// Run the load against `transport`/`addr`. Returns after every
/// connection has received a response (or lost its connection) for
/// every request it sent.
pub fn run_net(transport: &dyn Transport, addr: &str, cfg: &NetLoadConfig) -> NetLoadReport {
    assert!(cfg.connections >= 1 && cfg.pipeline_depth >= 1);
    let value_len = if cfg.track_acks {
        cfg.value_len.max(16)
    } else {
        cfg.value_len
    };
    let answered = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let not_found = AtomicU64::new(0);
    let recorders: Mutex<Vec<ThreadRecorder>> = Mutex::new(Vec::new());
    let acked: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());
    let sent_versions: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());
    let wall = MonoClock::new();
    let t_start = wall.now_ns();
    let total_sent = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for c in 0..cfg.connections {
            let conn = transport.connect(addr).expect("loadgen connect failed");
            let answered = &answered;
            let rejected = &rejected;
            let not_found = &not_found;
            let recorders = &recorders;
            let acked = &acked;
            let sent_versions = &sent_versions;
            let total_sent = &total_sent;
            scope.spawn(move || {
                let read_half = conn.try_clone_conn().expect("clone conn");
                let window = Arc::new(Window {
                    inflight: Mutex::new(0),
                    cv: Condvar::new(),
                });
                // sender fills metadata before sending; receiver reads
                // it after matching the response id
                let meta: Arc<Mutex<HashMap<u64, SentMeta>>> = Arc::new(Mutex::new(HashMap::new()));
                let clock = MonoClock::new(); // shared origin via clone
                let rec_clock = clock.clone();
                let period_ns = if cfg.target_ops_per_sec > 0.0 {
                    1e9 / cfg.target_ops_per_sec
                } else {
                    0.0
                };
                let m = cfg.mix.op_mix();
                let (read_f, scan_f) = (m.read, m.scan);
                let zipf = match cfg.dist {
                    KeyDist::Zipfian { theta } => {
                        Some(Zipfian::new(cfg.keys.max(2) as usize, theta))
                    }
                    KeyDist::Uniform => None,
                };
                // disjoint ranges under track_acks so per-key version
                // order is owned by exactly one connection
                let key_base = if cfg.track_acks {
                    c as u64 * cfg.keys
                } else {
                    0
                };

                let receiver = {
                    let window = Arc::clone(&window);
                    let meta = Arc::clone(&meta);
                    let ops = cfg.ops_per_conn;
                    std::thread::spawn(move || {
                        receiver_loop(read_half, rec_clock, window, meta, ops, c as u32)
                    })
                };

                // ---- sender ----
                let mut conn = conn;
                let mut rng = SmallRng::seed_from_u64(
                    cfg.seed ^ (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                let mut versions: HashMap<u64, u64> = HashMap::new();
                let mut my_sent: HashMap<u64, u64> = HashMap::new();
                for i in 0..cfg.ops_per_conn {
                    let intended_ns = (i as f64 * period_ns) as u64;
                    // pace to the schedule: coarse sleep, fine spin
                    loop {
                        let now = clock.now_ns();
                        if now >= intended_ns {
                            break;
                        }
                        let ahead = intended_ns - now;
                        if ahead > 2_000_000 {
                            std::thread::sleep(Duration::from_nanos(ahead / 2));
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    window.acquire(cfg.pipeline_depth);
                    let rank = match &zipf {
                        Some(z) => z.rank(rng.gen::<f64>()),
                        None => rng.gen_range(0..cfg.keys.max(1)),
                    };
                    let key = key_base + (rank % cfg.keys.max(1));
                    let r = rng.gen::<f64>();
                    let intended_ns = if period_ns > 0.0 {
                        intended_ns
                    } else {
                        clock.now_ns() // unpaced: measure from send
                    };
                    let (req, write) = if r < read_f {
                        (Request::Get { id: i, key }, None)
                    } else if r < read_f + scan_f {
                        let len = cfg.scan_len.max(1);
                        (
                            Request::Scan {
                                id: i,
                                lo: key,
                                hi: key.saturating_add(len as u64 - 1),
                                limit: len,
                            },
                            None,
                        )
                    } else {
                        let v = versions.entry(key).or_insert(0);
                        *v += 1;
                        let version = *v;
                        my_sent.insert(key, version);
                        (
                            Request::Put {
                                id: i,
                                key,
                                value: versioned_value(key, version, value_len),
                            },
                            Some((key, version)),
                        )
                    };
                    meta.lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(i, SentMeta { intended_ns, write });
                    if conn.write_all_bytes(&encode_request(&req)).is_err() {
                        // connection lost: undo the window slot, wake
                        // the receiver with EOF, and stop
                        window.release();
                        meta.lock().unwrap_or_else(|e| e.into_inner()).remove(&i);
                        conn.shutdown_conn();
                        break;
                    }
                    total_sent.fetch_add(1, Ordering::Relaxed);
                }

                let outcome = receiver.join().expect("receiver panicked");
                answered.fetch_add(outcome.answered, Ordering::Relaxed);
                rejected.fetch_add(outcome.rejected, Ordering::Relaxed);
                not_found.fetch_add(outcome.not_found, Ordering::Relaxed);
                recorders
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(outcome.recorder);
                if cfg.track_acks {
                    let mut a = acked.lock().unwrap_or_else(|e| e.into_inner());
                    for (k, v) in outcome.acked {
                        let e = a.entry(k).or_insert(0);
                        *e = (*e).max(v);
                    }
                    let mut s = sent_versions.lock().unwrap_or_else(|e| e.into_inner());
                    for (k, v) in my_sent {
                        let e = s.entry(k).or_insert(0);
                        *e = (*e).max(v);
                    }
                }
            });
        }
    });

    let elapsed_ns = wall.now_ns() - t_start;
    let mut shards = recorders.into_inner().unwrap_or_else(|e| e.into_inner());
    shards.sort_by_key(|r| r.tid());
    NetLoadReport {
        ops_sent: total_sent.into_inner(),
        ops_answered: answered.into_inner(),
        rejected: rejected.into_inner(),
        not_found: not_found.into_inner(),
        elapsed_ns,
        snapshot: TelemetrySnapshot::from_threads(shards),
        acked: cfg
            .track_acks
            .then(|| acked.into_inner().unwrap_or_else(|e| e.into_inner())),
        sent: cfg.track_acks.then(|| {
            sent_versions
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
        }),
        value_len,
    }
}

struct RecvOutcome {
    answered: u64,
    rejected: u64,
    not_found: u64,
    acked: HashMap<u64, u64>,
    recorder: ThreadRecorder,
}

fn receiver_loop(
    mut conn: Box<dyn Conn>,
    clock: MonoClock,
    window: Arc<Window>,
    meta: Arc<Mutex<HashMap<u64, SentMeta>>>,
    expect: u64,
    tid: u32,
) -> RecvOutcome {
    let mut dec = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut out = RecvOutcome {
        answered: 0,
        rejected: 0,
        not_found: 0,
        acked: HashMap::new(),
        recorder: ThreadRecorder::new(tid, &TelemetryConfig::default()),
    };
    'io: while out.answered < expect {
        let n = match conn.read_some(&mut buf) {
            Ok(0) | Err(_) => break 'io, // sender may have stopped early
            Ok(n) => n,
        };
        dec.extend_from(&buf[..n]);
        loop {
            let resp = match dec.next_response() {
                Ok(Some(r)) => r,
                Ok(None) => break,
                Err(e) if e.is_fatal() => break 'io,
                Err(_) => continue,
            };
            let id = resp.id();
            let m = meta.lock().unwrap_or_else(|e| e.into_inner()).remove(&id);
            let Some(m) = m else { continue };
            let lat = scheduled_latency_ns(m.intended_ns, clock.now_ns());
            match &resp {
                Response::Value { value, .. } => {
                    out.recorder.observe(HistId::KvGetNs, lat);
                    if value.is_none() {
                        out.not_found += 1;
                    }
                }
                Response::Done { ok, .. } => {
                    out.recorder.observe(HistId::KvPutNs, lat);
                    if *ok {
                        if let Some((key, version)) = m.write {
                            let e = out.acked.entry(key).or_insert(0);
                            *e = (*e).max(version);
                        }
                    }
                }
                Response::Entries { items, .. } => {
                    out.recorder.observe(HistId::KvScanNs, lat);
                    if items.is_empty() {
                        out.not_found += 1;
                    }
                }
                Response::Pong { .. } => {}
                Response::Rejected { .. } => {
                    out.recorder.observe(HistId::KvPutNs, lat);
                    out.rejected += 1;
                }
            }
            out.answered += 1;
            window.release();
        }
    }
    out
}

/// The durability audit: every key the server acked must, after a
/// crash + recover, hold a versioned value no older than the newest
/// acked version and no newer than the newest sent version. Returns
/// the first violation as an error string.
pub fn verify_acked<E: Engine>(kv: &KvServer<E>, report: &NetLoadReport) -> Result<(), String> {
    let acked = report
        .acked
        .as_ref()
        .ok_or("report has no ack tracking (set track_acks)")?;
    let sent = report.sent.as_ref().unwrap();
    let client = kv.client();
    for (&key, &acked_v) in acked {
        let got = client
            .get(key)
            .ok_or_else(|| format!("acked key {key} missing after recover"))?;
        let v = stored_version(key, &got)
            .ok_or_else(|| format!("key {key}: stored bytes are not a versioned value"))?;
        if v < acked_v {
            return Err(format!(
                "key {key}: stored version {v} older than acked {acked_v} — \
                 ack-after-commit violated"
            ));
        }
        let sent_v = sent.get(&key).copied().unwrap_or(acked_v);
        if v > sent_v {
            return Err(format!(
                "key {key}: stored version {v} newer than anything sent ({sent_v})"
            ));
        }
        if got != versioned_value(key, v, report.value_len) {
            return Err(format!("key {key}: stored bytes corrupt at version {v}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{InProcTransport, NetServer};
    use crate::server::ServerConfig;
    use crate::shard::ShardConfig;
    use crate::store::KvConfig;
    use nvcache_core::PolicyKind;

    fn kv(shards: usize) -> Arc<KvServer> {
        Arc::new(KvServer::new(
            &KvConfig {
                shards,
                shard: ShardConfig {
                    buckets: 128,
                    data_len: 1 << 20,
                    log_len: 1 << 16,
                    policy: PolicyKind::ScFixed { capacity: 8 },
                    adapt: None,
                    pipelined: true,
                },
            },
            &ServerConfig::default(),
        ))
    }

    #[test]
    fn versioned_value_roundtrips() {
        let v = versioned_value(77, 4, 56);
        assert_eq!(v.len(), 56);
        assert_eq!(stored_version(77, &v), Some(4));
        assert_eq!(stored_version(78, &v), None, "wrong key rejected");
        assert_eq!(stored_version(77, &v[..10]), None, "short rejected");
    }

    #[test]
    fn open_loop_run_answers_everything() {
        let kv = kv(2);
        let t = InProcTransport::new();
        let srv = NetServer::start(&t, "inproc", Arc::clone(&kv)).unwrap();
        let cfg = NetLoadConfig {
            connections: 3,
            pipeline_depth: 4,
            ops_per_conn: 400,
            keys: 200,
            target_ops_per_sec: 200_000.0,
            track_acks: true,
            ..Default::default()
        };
        let rep = run_net(&t, "inproc", &cfg);
        assert_eq!(rep.ops_sent, 3 * 400);
        assert_eq!(rep.ops_answered, rep.ops_sent, "every request answered");
        assert_eq!(rep.rejected, 0);
        let merged = {
            let mut h = nvcache_telemetry::Histogram::new();
            h.merge(rep.snapshot.hist(HistId::KvGetNs));
            h.merge(rep.snapshot.hist(HistId::KvPutNs));
            h
        };
        assert_eq!(merged.count, rep.ops_answered);
        let (p50, p99, p999) = merged.percentiles();
        assert!(p50 > 0 && p50 <= p99 && p99 <= p999);
        // acked writes survive crash + recover
        kv.crash_and_recover_all(&nvcache_pmem::CrashMode::StrictDurableOnly);
        verify_acked(&kv, &rep).unwrap();
        srv.shutdown();
        kv.close();
    }

    /// Mix E over the wire against the tree engine: the loadgen issues
    /// real `Scan` frames, every one is answered, and scan latency
    /// lands in its own histogram.
    #[test]
    fn mix_e_scans_the_tree_engine_over_the_wire() {
        use crate::engine::{TreeEngine, TreeEngineConfig};
        let kv = Arc::new(KvServer::<TreeEngine>::new_tree(
            2,
            &TreeEngineConfig::default(),
            &ServerConfig::default(),
        ));
        // preload so scans hit data
        let client = kv.client();
        for k in 0..200u64 {
            assert!(client.put(k, &k.to_le_bytes()));
        }
        let t = InProcTransport::new();
        let srv = NetServer::start(&t, "inproc", Arc::clone(&kv)).unwrap();
        let cfg = NetLoadConfig {
            connections: 2,
            pipeline_depth: 4,
            ops_per_conn: 300,
            keys: 200,
            mix: Mix::E,
            target_ops_per_sec: 0.0,
            scan_len: 8,
            ..Default::default()
        };
        let rep = run_net(&t, "inproc", &cfg);
        assert_eq!(rep.ops_answered, rep.ops_sent, "every request answered");
        assert_eq!(rep.rejected, 0);
        let scans = rep.snapshot.hist(HistId::KvScanNs).count;
        let puts = rep.snapshot.hist(HistId::KvPutNs).count;
        assert!(scans > 450, "~95% of 600 ops are scans, got {scans}");
        assert!(puts > 0, "~5% inserts, got {puts}");
        assert_eq!(scans + puts, rep.ops_answered);
        assert_eq!(rep.not_found, 0, "scans over a loaded keyspace hit");
        srv.shutdown();
        kv.close();
    }

    #[test]
    fn ack_audit_catches_a_tampered_store() {
        let kv = kv(1);
        let t = InProcTransport::new();
        let srv = NetServer::start(&t, "inproc", Arc::clone(&kv)).unwrap();
        let cfg = NetLoadConfig {
            connections: 1,
            pipeline_depth: 2,
            ops_per_conn: 100,
            keys: 20,
            mix: Mix::A,
            target_ops_per_sec: 0.0,
            track_acks: true,
            ..Default::default()
        };
        let rep = run_net(&t, "inproc", &cfg);
        verify_acked(&kv, &rep).unwrap();
        // simulate an ack-durability hole: delete one acked key
        let victim = *rep.acked.as_ref().unwrap().keys().next().unwrap();
        assert!(kv.client().delete(victim));
        let err = verify_acked(&kv, &rep).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        srv.shutdown();
        kv.close();
    }
}
