//! The wire protocol: length-prefixed, checksummed binary frames.
//!
//! Every frame is `[body_len: u32 LE][checksum: u32 LE][body]`, where
//! the checksum is FNV-1a over the body bytes. The body starts with the
//! client-chosen request id (echoed verbatim in the response — that is
//! how pipelined responses are matched back up when they return out of
//! order) followed by a one-byte opcode / status and the payload:
//!
//! ```text
//! request  body: [id u64 LE][opcode u8][payload]
//!   1 Get      [key u64]
//!   2 Put      [key u64][vlen u32][value]
//!   3 PutMany  [count u32] ([key u64][vlen u32][value])*
//!   4 Delete   [key u64]
//!   5 Ping     (empty)
//!   6 Scan     [lo u64][hi u64][limit u32]
//! response body: [id u64 LE][status u8][payload]
//!   0 Value·none  (empty)          — Get miss
//!   1 Value·some  [vlen u32][value]
//!   2 Done·true   (empty)          — write acked (committed!)
//!   3 Done·false  (empty)          — write refused by the shard
//!   4 Pong        (empty)
//!   5 Rejected    (empty)          — server refused the submission
//!   6 Entries     [count u32] ([key u64][vlen u32][value])*
//! ```
//!
//! `Entries` frames must fit [`MAX_BODY`] like any other frame; the
//! server truncates a scan result to the longest prefix that encodes
//! under the cap (see [`fit_entries`]) rather than emit an unframeable
//! response.
//!
//! Error discipline: a frame whose *length prefix* exceeds
//! [`MAX_BODY`] is **fatal** — the stream cannot be trusted to resync,
//! so the connection drops. A frame whose checksum or body is corrupt
//! is **recoverable**: the decoder skips exactly that frame (the length
//! prefix still delimits it) and continues with the next one, so one
//! damaged frame never desyncs the stream.

use std::collections::VecDeque;

/// Hard bound on a frame body; anything larger is a protocol violation
/// (values are capped far below this by the store).
pub const MAX_BODY: usize = 1 << 20;

/// Bytes of frame header (`body_len` + `checksum`).
pub const HEADER_LEN: usize = 8;

/// FNV-1a 32-bit over `data` — cheap, no tables, good enough to catch
/// torn or bit-flipped frames (this is corruption *detection* on a
/// reliable transport, not an integrity MAC).
pub fn fnv1a32(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// A client request as carried on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Look up a key.
    Get { id: u64, key: u64 },
    /// Insert or update one pair.
    Put { id: u64, key: u64, value: Vec<u8> },
    /// Atomic-per-shard multi-put.
    PutMany { id: u64, items: Vec<(u64, Vec<u8>)> },
    /// Remove a key.
    Delete { id: u64, key: u64 },
    /// Liveness probe; answered without touching the store.
    Ping { id: u64 },
    /// Range scan `lo..=hi`, at most `limit` entries.
    Scan {
        id: u64,
        lo: u64,
        hi: u64,
        limit: u32,
    },
}

impl Request {
    /// The request id echoed in this request's response.
    pub fn id(&self) -> u64 {
        match self {
            Request::Get { id, .. }
            | Request::Put { id, .. }
            | Request::PutMany { id, .. }
            | Request::Delete { id, .. }
            | Request::Ping { id }
            | Request::Scan { id, .. } => *id,
        }
    }
}

/// A server response as carried on the wire. A `Done(true)` ack is only
/// ever sent after the FASE containing the write committed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Get result (`None` = absent).
    Value { id: u64, value: Option<Vec<u8>> },
    /// Write outcome (`true` = committed durable).
    Done { id: u64, ok: bool },
    /// Ping reply.
    Pong { id: u64 },
    /// The server refused the submission (shutting down or overloaded);
    /// the operation was **not** performed.
    Rejected { id: u64 },
    /// Scan result: `(key, value)` pairs sorted by key.
    Entries { id: u64, items: Vec<(u64, Vec<u8>)> },
}

impl Response {
    /// The id of the request this answers.
    pub fn id(&self) -> u64 {
        match self {
            Response::Value { id, .. }
            | Response::Done { id, .. }
            | Response::Pong { id }
            | Response::Rejected { id }
            | Response::Entries { id, .. } => *id,
        }
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Length prefix exceeds [`MAX_BODY`]: the stream is garbage and
    /// cannot resync. Fatal — drop the connection.
    Oversized { body_len: usize },
    /// Checksum mismatch on a well-delimited frame. The decoder already
    /// skipped the frame; the stream stays in sync.
    Checksum { expected: u32, got: u32 },
    /// Body failed structural validation (unknown opcode, truncated
    /// payload, trailing bytes). Frame skipped; stream stays in sync.
    Malformed { reason: &'static str },
}

impl ProtoError {
    /// Must the connection be dropped (`true`), or did the decoder
    /// already skip the damaged frame and resync (`false`)?
    pub fn is_fatal(&self) -> bool {
        matches!(self, ProtoError::Oversized { .. })
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Oversized { body_len } => {
                write!(f, "frame body {body_len} B exceeds {MAX_BODY} B")
            }
            ProtoError::Checksum { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: header {expected:#010x}, body {got:#010x}"
                )
            }
            ProtoError::Malformed { reason } => write!(f, "malformed frame body: {reason}"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---- encoding --------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn frame(body: Vec<u8>) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_BODY, "encoder produced oversized body");
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    put_u32(&mut out, body.len() as u32);
    put_u32(&mut out, fnv1a32(&body));
    out.extend_from_slice(&body);
    out
}

/// Encode one request into a complete frame (header + body).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut b = Vec::new();
    match req {
        Request::Get { id, key } => {
            put_u64(&mut b, *id);
            b.push(1);
            put_u64(&mut b, *key);
        }
        Request::Put { id, key, value } => {
            put_u64(&mut b, *id);
            b.push(2);
            put_u64(&mut b, *key);
            put_u32(&mut b, value.len() as u32);
            b.extend_from_slice(value);
        }
        Request::PutMany { id, items } => {
            put_u64(&mut b, *id);
            b.push(3);
            put_u32(&mut b, items.len() as u32);
            for (k, v) in items {
                put_u64(&mut b, *k);
                put_u32(&mut b, v.len() as u32);
                b.extend_from_slice(v);
            }
        }
        Request::Delete { id, key } => {
            put_u64(&mut b, *id);
            b.push(4);
            put_u64(&mut b, *key);
        }
        Request::Ping { id } => {
            put_u64(&mut b, *id);
            b.push(5);
        }
        Request::Scan { id, lo, hi, limit } => {
            put_u64(&mut b, *id);
            b.push(6);
            put_u64(&mut b, *lo);
            put_u64(&mut b, *hi);
            put_u32(&mut b, *limit);
        }
    }
    frame(b)
}

/// Bytes one `(key, value)` entry occupies inside an `Entries` payload.
fn entry_wire_len(value_len: usize) -> usize {
    8 + 4 + value_len
}

/// Longest prefix of `items` whose `Entries` body (id, status, count,
/// entries) still fits [`MAX_BODY`]. The serving layer applies this
/// before encoding so a huge scan degrades into a shorter, well-formed
/// result instead of an oversized (fatal) frame.
pub fn fit_entries(items: &[(u64, Vec<u8>)]) -> usize {
    let mut used = 8 + 1 + 4; // id + status + count
    for (i, (_, v)) in items.iter().enumerate() {
        used += entry_wire_len(v.len());
        if used > MAX_BODY {
            return i;
        }
    }
    items.len()
}

/// Encode one response into a complete frame (header + body).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut b = Vec::new();
    match resp {
        Response::Value { id, value: None } => {
            put_u64(&mut b, *id);
            b.push(0);
        }
        Response::Value { id, value: Some(v) } => {
            put_u64(&mut b, *id);
            b.push(1);
            put_u32(&mut b, v.len() as u32);
            b.extend_from_slice(v);
        }
        Response::Done { id, ok } => {
            put_u64(&mut b, *id);
            b.push(if *ok { 2 } else { 3 });
        }
        Response::Pong { id } => {
            put_u64(&mut b, *id);
            b.push(4);
        }
        Response::Rejected { id } => {
            put_u64(&mut b, *id);
            b.push(5);
        }
        Response::Entries { id, items } => {
            put_u64(&mut b, *id);
            b.push(6);
            put_u32(&mut b, items.len() as u32);
            for (k, v) in items {
                put_u64(&mut b, *k);
                put_u32(&mut b, v.len() as u32);
                b.extend_from_slice(v);
            }
        }
    }
    frame(b)
}

// ---- decoding --------------------------------------------------------

/// Bounds-checked little-endian reader over one frame body.
struct Body<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Body<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Body { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        let b = *self.buf.get(self.pos).ok_or(ProtoError::Malformed {
            reason: "truncated body",
        })?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let s = self
            .buf
            .get(self.pos..self.pos + 4)
            .ok_or(ProtoError::Malformed {
                reason: "truncated body",
            })?;
        self.pos += 4;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let s = self
            .buf
            .get(self.pos..self.pos + 8)
            .ok_or(ProtoError::Malformed {
                reason: "truncated body",
            })?;
        self.pos += 8;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn bytes(&mut self, n: usize) -> Result<Vec<u8>, ProtoError> {
        let s = self
            .buf
            .get(
                self.pos..self.pos.checked_add(n).ok_or(ProtoError::Malformed {
                    reason: "length overflow",
                })?,
            )
            .ok_or(ProtoError::Malformed {
                reason: "truncated payload",
            })?;
        self.pos += n;
        Ok(s.to_vec())
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed {
                reason: "trailing bytes after payload",
            })
        }
    }
}

fn parse_request(body: &[u8]) -> Result<Request, ProtoError> {
    let mut b = Body::new(body);
    let id = b.u64()?;
    let op = b.u8()?;
    let req = match op {
        1 => Request::Get { id, key: b.u64()? },
        2 => {
            let key = b.u64()?;
            let len = b.u32()? as usize;
            Request::Put {
                id,
                key,
                value: b.bytes(len)?,
            }
        }
        3 => {
            let count = b.u32()? as usize;
            // a count claiming more entries than the body could hold is
            // structurally corrupt; bail before reserving anything
            if count > body.len() {
                return Err(ProtoError::Malformed {
                    reason: "put_many count exceeds body",
                });
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                let k = b.u64()?;
                let len = b.u32()? as usize;
                items.push((k, b.bytes(len)?));
            }
            Request::PutMany { id, items }
        }
        4 => Request::Delete { id, key: b.u64()? },
        5 => Request::Ping { id },
        6 => Request::Scan {
            id,
            lo: b.u64()?,
            hi: b.u64()?,
            limit: b.u32()?,
        },
        _ => {
            return Err(ProtoError::Malformed {
                reason: "unknown opcode",
            })
        }
    };
    b.finish()?;
    Ok(req)
}

fn parse_response(body: &[u8]) -> Result<Response, ProtoError> {
    let mut b = Body::new(body);
    let id = b.u64()?;
    let status = b.u8()?;
    let resp = match status {
        0 => Response::Value { id, value: None },
        1 => {
            let len = b.u32()? as usize;
            Response::Value {
                id,
                value: Some(b.bytes(len)?),
            }
        }
        2 => Response::Done { id, ok: true },
        3 => Response::Done { id, ok: false },
        4 => Response::Pong { id },
        5 => Response::Rejected { id },
        6 => {
            let count = b.u32()? as usize;
            // same structural guard as put_many: a count claiming more
            // entries than the body could hold is corrupt
            if count > body.len() {
                return Err(ProtoError::Malformed {
                    reason: "entries count exceeds body",
                });
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                let k = b.u64()?;
                let len = b.u32()? as usize;
                items.push((k, b.bytes(len)?));
            }
            Response::Entries { id, items }
        }
        _ => {
            return Err(ProtoError::Malformed {
                reason: "unknown status",
            })
        }
    };
    b.finish()?;
    Ok(resp)
}

/// Incremental frame decoder over a byte stream. Feed reads in with
/// [`extend_from`](FrameDecoder::extend_from), pull frames out with
/// [`next_request`](FrameDecoder::next_request) /
/// [`next_response`](FrameDecoder::next_response) until they return
/// `Ok(None)` (need more bytes). Recoverable errors consume exactly the
/// damaged frame; a fatal error leaves the decoder poisoned.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: VecDeque<u8>,
    scratch: Vec<u8>,
}

/// What one decode step yielded internally: a verified body, need-more,
/// or an error (frame already skipped unless fatal).
enum Step {
    Body(Vec<u8>),
    NeedMore,
    Failed(ProtoError),
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Append freshly read bytes to the stream buffer.
    pub fn extend_from(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn peek_le_u32(&self, at: usize) -> u32 {
        let mut b = [0u8; 4];
        for (i, slot) in b.iter_mut().enumerate() {
            *slot = self.buf[at + i];
        }
        u32::from_le_bytes(b)
    }

    fn step(&mut self) -> Step {
        if self.buf.len() < HEADER_LEN {
            return Step::NeedMore;
        }
        let body_len = self.peek_le_u32(0) as usize;
        if body_len > MAX_BODY {
            // do not consume: the stream is untrustworthy either way
            return Step::Failed(ProtoError::Oversized { body_len });
        }
        if self.buf.len() < HEADER_LEN + body_len {
            return Step::NeedMore;
        }
        let expected = self.peek_le_u32(4);
        self.buf.drain(..HEADER_LEN);
        self.scratch.clear();
        self.scratch.extend(self.buf.drain(..body_len));
        let got = fnv1a32(&self.scratch);
        if got != expected {
            return Step::Failed(ProtoError::Checksum { expected, got });
        }
        Step::Body(std::mem::take(&mut self.scratch))
    }

    /// Decode the next request frame. `Ok(None)` = need more bytes.
    pub fn next_request(&mut self) -> Result<Option<Request>, ProtoError> {
        match self.step() {
            Step::NeedMore => Ok(None),
            Step::Failed(e) => Err(e),
            Step::Body(body) => parse_request(&body).map(Some),
        }
    }

    /// Decode the next response frame. `Ok(None)` = need more bytes.
    pub fn next_response(&mut self) -> Result<Option<Response>, ProtoError> {
        match self.step() {
            Step::NeedMore => Ok(None),
            Step::Failed(e) => Err(e),
            Step::Body(body) => parse_response(&body).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: &Request) -> Request {
        let mut d = FrameDecoder::new();
        d.extend_from(&encode_request(req));
        let got = d.next_request().unwrap().unwrap();
        assert_eq!(d.buffered(), 0, "frame fully consumed");
        got
    }

    fn roundtrip_resp(resp: &Response) -> Response {
        let mut d = FrameDecoder::new();
        d.extend_from(&encode_response(resp));
        let got = d.next_response().unwrap().unwrap();
        assert_eq!(d.buffered(), 0);
        got
    }

    #[test]
    fn request_roundtrips_every_opcode() {
        for req in [
            Request::Get { id: 1, key: 42 },
            Request::Put {
                id: 2,
                key: 7,
                value: b"hello".to_vec(),
            },
            Request::PutMany {
                id: 3,
                items: vec![(1, b"a".to_vec()), (2, Vec::new()), (3, vec![0xff; 300])],
            },
            Request::Delete { id: 4, key: 9 },
            Request::Ping { id: u64::MAX },
            Request::Scan {
                id: 5,
                lo: 10,
                hi: 99,
                limit: 25,
            },
        ] {
            assert_eq!(roundtrip_req(&req), req);
        }
    }

    #[test]
    fn response_roundtrips_every_status() {
        for resp in [
            Response::Value { id: 1, value: None },
            Response::Value {
                id: 2,
                value: Some(b"v".to_vec()),
            },
            Response::Value {
                id: 3,
                value: Some(Vec::new()),
            },
            Response::Done { id: 4, ok: true },
            Response::Done { id: 5, ok: false },
            Response::Pong { id: 6 },
            Response::Rejected { id: 7 },
            Response::Entries {
                id: 8,
                items: Vec::new(),
            },
            Response::Entries {
                id: 9,
                items: vec![(1, b"one".to_vec()), (2, Vec::new()), (3, vec![0xee; 200])],
            },
        ] {
            assert_eq!(roundtrip_resp(&resp), resp);
        }
    }

    #[test]
    fn fit_entries_bounds_the_frame() {
        // small results fit whole
        let small = vec![(1u64, vec![7u8; 100]); 10];
        assert_eq!(fit_entries(&small), 10);
        // a result that would blow MAX_BODY is cut to a framable prefix
        let big: Vec<(u64, Vec<u8>)> = (0..2000u64).map(|k| (k, vec![k as u8; 1000])).collect();
        let n = fit_entries(&big);
        assert!(n > 0 && n < big.len(), "prefix cut, got {n}");
        let resp = Response::Entries {
            id: 1,
            items: big[..n].to_vec(),
        };
        let wire = encode_response(&resp);
        assert!(wire.len() <= HEADER_LEN + MAX_BODY, "frame under the cap");
        // one more entry would not have fit
        assert!(fit_entries(&big[..n + 1]) == n);
        let mut d = FrameDecoder::new();
        d.extend_from(&wire);
        assert_eq!(d.next_response().unwrap(), Some(resp));
    }

    #[test]
    fn pipelined_frames_decode_in_order_across_partial_reads() {
        let reqs: Vec<Request> = (0..20)
            .map(|i| Request::Put {
                id: i,
                key: i * 3,
                value: vec![i as u8; (i % 7) as usize * 11],
            })
            .collect();
        let mut wire = Vec::new();
        for r in &reqs {
            wire.extend_from_slice(&encode_request(r));
        }
        // feed the stream in awkward 3-byte slices
        let mut d = FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(3) {
            d.extend_from(chunk);
            while let Some(r) = d.next_request().unwrap() {
                got.push(r);
            }
        }
        assert_eq!(got, reqs);
    }

    #[test]
    fn truncated_frame_waits_for_more_bytes() {
        let wire = encode_request(&Request::Get { id: 9, key: 9 });
        let mut d = FrameDecoder::new();
        d.extend_from(&wire[..wire.len() - 1]);
        assert_eq!(d.next_request().unwrap(), None, "incomplete = need more");
        d.extend_from(&wire[wire.len() - 1..]);
        assert_eq!(
            d.next_request().unwrap(),
            Some(Request::Get { id: 9, key: 9 })
        );
    }

    #[test]
    fn oversized_length_is_fatal() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&((MAX_BODY as u32) + 1).to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.extend_from(&wire);
        let err = d.next_request().unwrap_err();
        assert!(err.is_fatal(), "{err}");
    }

    #[test]
    fn corrupt_checksum_skips_frame_without_desync() {
        let good1 = encode_request(&Request::Ping { id: 1 });
        let mut bad = encode_request(&Request::Put {
            id: 2,
            key: 5,
            value: b"xyz".to_vec(),
        });
        let last = bad.len() - 1;
        bad[last] ^= 0x40; // flip a payload bit; header checksum now wrong
        let good2 = encode_request(&Request::Ping { id: 3 });

        let mut d = FrameDecoder::new();
        d.extend_from(&good1);
        d.extend_from(&bad);
        d.extend_from(&good2);
        assert_eq!(d.next_request().unwrap(), Some(Request::Ping { id: 1 }));
        let err = d.next_request().unwrap_err();
        assert!(matches!(err, ProtoError::Checksum { .. }), "{err}");
        assert!(!err.is_fatal());
        // the damaged frame was consumed whole: the stream resyncs
        assert_eq!(d.next_request().unwrap(), Some(Request::Ping { id: 3 }));
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn malformed_bodies_are_recoverable_and_resync() {
        // a structurally valid frame wrapping garbage: checksum passes,
        // parse fails, next frame still decodes
        let mut wire = Vec::new();
        let junk = [0u8; 9]; // id=0, opcode=0 (unknown)
        wire.extend_from_slice(&(junk.len() as u32).to_le_bytes());
        wire.extend_from_slice(&fnv1a32(&junk).to_le_bytes());
        wire.extend_from_slice(&junk);
        wire.extend_from_slice(&encode_request(&Request::Ping { id: 8 }));
        let mut d = FrameDecoder::new();
        d.extend_from(&wire);
        let err = d.next_request().unwrap_err();
        assert!(matches!(err, ProtoError::Malformed { .. }), "{err}");
        assert!(!err.is_fatal());
        assert_eq!(d.next_request().unwrap(), Some(Request::Ping { id: 8 }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        // Get body with one extra byte: well-checksummed but too long
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(1);
        body.extend_from_slice(&2u64.to_le_bytes());
        body.push(0xAA);
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(&fnv1a32(&body).to_le_bytes());
        wire.extend_from_slice(&body);
        let mut d = FrameDecoder::new();
        d.extend_from(&wire);
        assert!(matches!(
            d.next_request().unwrap_err(),
            ProtoError::Malformed {
                reason: "trailing bytes after payload"
            }
        ));
    }
}
