//! Bounded MPSC submission queue and completion slots — the supply side
//! of cross-client group commit.
//!
//! Each shard worker owns exactly one [`SubmissionQueue`]: any number of
//! client threads [`push`] requests into it, the worker
//! [`drain_into`]s *everything in flight* (up to its batch cap) in one
//! lock acquisition and serves the whole batch as a single FASE. The
//! queue is the batch-formation mechanism: under contention the
//! drain naturally returns multi-client convoys, and the worker's
//! group commit amortizes the two log fences and the commit fence over
//! all of them.
//!
//! Ordering contract: the queue is FIFO. A single client's requests are
//! drained in the order it pushed them (MPSC with one consumer — no
//! cross-batch reordering is possible), which is what the committed-
//! prefix crash oracle relies on.
//!
//! Completion flows back through a [`Completion`] slot carried inside
//! the request: the worker fills it *after* the batch's FASE committed,
//! so a client that observed its ack may rely on durability
//! (acknowledged ⇒ committed ⇒ survives any crash).
//!
//! [`push`]: SubmissionQueue::push
//! [`drain_into`]: SubmissionQueue::drain_into

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// What a producer experiences when the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the producer until the worker drains (closed loop —
    /// clients self-pace to the shard's service rate).
    Block,
    /// Fail the push immediately, handing the request back (open loop —
    /// the caller counts the rejection and moves on; nothing is ever
    /// silently dropped).
    Reject,
}

/// Why a [`SubmissionQueue::push`] did not enqueue. The request rides
/// back to the caller in both cases — a bounded queue may refuse work,
/// but it never swallows it.
#[derive(Debug)]
pub enum PushError<T> {
    /// Queue at capacity under [`Backpressure::Reject`].
    Full(T),
    /// Queue closed (worker shut down).
    Closed(T),
}

/// Counters the serving layer scrapes for the `batch_occupancy_mean`
/// benchmark column.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests accepted into the queue.
    pub enqueued: u64,
    /// Pushes refused at capacity (Reject policy only).
    pub rejected: u64,
    /// Drain calls that returned at least one request (= batches the
    /// worker formed).
    pub batches: u64,
    /// Requests handed out across all batches.
    pub drained: u64,
    /// Largest single batch formed.
    pub max_batch: usize,
}

impl QueueStats {
    /// Mean requests per formed batch (the group-commit occupancy).
    pub fn occupancy_mean(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.drained as f64 / self.batches as f64
        }
    }

    /// Fold another queue's counters in (per-store aggregation over
    /// shard lanes).
    pub fn merge(&mut self, other: &QueueStats) {
        self.enqueued += other.enqueued;
        self.rejected += other.rejected;
        self.batches += other.batches;
        self.drained += other.drained;
        self.max_batch = self.max_batch.max(other.max_batch);
    }
}

#[derive(Debug)]
struct Inner<T> {
    buf: VecDeque<T>,
    closed: bool,
    stats: QueueStats,
}

/// Bounded multi-producer single-consumer request queue (see the module
/// docs for the role it plays in group commit).
#[derive(Debug)]
pub struct SubmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    /// Producers park here under [`Backpressure::Block`].
    not_full: Condvar,
    /// The worker parks here when nothing is in flight.
    not_empty: Condvar,
    capacity: usize,
    backpressure: Backpressure,
}

impl<T> SubmissionQueue<T> {
    /// A queue holding at most `capacity` in-flight requests.
    pub fn new(capacity: usize, backpressure: Backpressure) -> Self {
        assert!(capacity >= 1, "a zero-capacity queue can accept nothing");
        SubmissionQueue {
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(capacity),
                closed: false,
                stats: QueueStats::default(),
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
            backpressure,
        }
    }

    /// The bound this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue one request. Blocks at capacity under
    /// [`Backpressure::Block`]; returns [`PushError::Full`] under
    /// [`Backpressure::Reject`]; returns [`PushError::Closed`] once the
    /// worker has shut the queue. The request is returned inside every
    /// error — a refused push never loses it.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.lock();
        loop {
            if g.closed {
                return Err(PushError::Closed(item));
            }
            if g.buf.len() < self.capacity {
                g.buf.push_back(item);
                g.stats.enqueued += 1;
                drop(g);
                self.not_empty.notify_one();
                return Ok(());
            }
            match self.backpressure {
                Backpressure::Reject => {
                    g.stats.rejected += 1;
                    return Err(PushError::Full(item));
                }
                Backpressure::Block => {
                    g = self.not_full.wait(g).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Worker side: block until at least one request is in flight (or
    /// the queue is closed), then move up to `max` requests into `out`
    /// in FIFO order — everything in flight when the drain runs, capped.
    /// Returns `false` only when the queue is closed *and* empty: the
    /// worker's signal to exit after the final batch.
    pub fn drain_into(&self, out: &mut Vec<T>, max: usize) -> bool {
        let max = max.max(1);
        let mut g = self.lock();
        while g.buf.is_empty() {
            if g.closed {
                return false;
            }
            g = self.not_empty.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        let n = g.buf.len().min(max);
        out.extend(g.buf.drain(..n));
        g.stats.batches += 1;
        g.stats.drained += n as u64;
        g.stats.max_batch = g.stats.max_batch.max(n);
        drop(g);
        // only a bounded drain can leave producers still blocked on a
        // full buffer; wake them all — the buffer has `n` free slots now
        self.not_full.notify_all();
        true
    }

    /// Requests currently in flight.
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// Nothing in flight?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the queue: subsequent pushes fail with
    /// [`PushError::Closed`]; the worker drains what is already queued
    /// and then sees the closed-and-empty signal.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Has [`SubmissionQueue::close`] run?
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Snapshot of the batch-formation counters.
    pub fn stats(&self) -> QueueStats {
        self.lock().stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // a producer can die between push and notify without leaving the
        // queue in a torn state; keep serving
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A shared fill-counter + condvar: every [`Completion`] built with
/// [`Completion::with_notify`] bumps it on fill, so one collector
/// thread can sleep on *many* outstanding completions at once (the
/// network writer task does this to reap pipelined requests possibly
/// out of order) instead of blocking on each slot in turn.
#[derive(Debug, Default)]
pub struct Notify {
    state: Mutex<u64>,
    cv: Condvar,
}

impl Notify {
    /// A fresh notifier with a zero fill count.
    pub fn new() -> Self {
        Notify::default()
    }

    /// Total fills observed so far. Snapshot this *before* scanning the
    /// pending set, then [`wait_past`](Notify::wait_past) the snapshot:
    /// a fill that lands mid-scan bumps the count past the snapshot and
    /// the wait returns immediately — no lost wakeup.
    pub fn count(&self) -> u64 {
        *self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record one fill and wake all sleepers.
    pub fn post(&self) {
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *g += 1;
        drop(g);
        self.cv.notify_all();
    }

    /// Block until the fill count exceeds `seen` (a snapshot taken with
    /// [`count`](Notify::count)). Returns the current count.
    pub fn wait_past(&self, seen: u64) -> u64 {
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while *g <= seen {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        *g
    }
}

/// One-shot completion slot: the worker [`fill`]s it after the batch's
/// FASE committed; the issuing client [`wait`]s on it. Cloning shares
/// the slot (one clone rides inside the request, the other stays with
/// the client).
///
/// [`fill`]: Completion::fill
/// [`wait`]: Completion::wait
#[derive(Debug)]
pub struct Completion<T> {
    slot: Arc<(Mutex<Option<T>>, Condvar)>,
    notify: Option<Arc<Notify>>,
}

impl<T> Clone for Completion<T> {
    fn clone(&self) -> Self {
        Completion {
            slot: Arc::clone(&self.slot),
            notify: self.notify.clone(),
        }
    }
}

impl<T> Default for Completion<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Completion<T> {
    /// An unfilled slot.
    pub fn new() -> Self {
        Completion {
            slot: Arc::new((Mutex::new(None), Condvar::new())),
            notify: None,
        }
    }

    /// An unfilled slot whose fill additionally posts to `notify`, so a
    /// collector multiplexed over many slots learns something landed.
    pub fn with_notify(notify: Arc<Notify>) -> Self {
        Completion {
            slot: Arc::new((Mutex::new(None), Condvar::new())),
            notify: Some(notify),
        }
    }

    /// Deliver the result (exactly once; a second fill is a bug).
    pub fn fill(&self, value: T) {
        let (m, cv) = &*self.slot;
        let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(g.is_none(), "completion filled twice");
        *g = Some(value);
        drop(g);
        cv.notify_all();
        if let Some(n) = &self.notify {
            n.post();
        }
    }

    /// Block until the worker fills the slot, then take the result.
    pub fn wait(&self) -> T {
        let (m, cv) = &*self.slot;
        let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = g.take() {
                return v;
            }
            g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking probe: the result if already delivered.
    pub fn try_take(&self) -> Option<T> {
        let (m, _) = &*self.slot;
        m.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_and_across_pushes() {
        let q = SubmissionQueue::new(16, Backpressure::Block);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert!(q.drain_into(&mut out, 64));
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_drain_leaves_the_tail_in_order() {
        let q = SubmissionQueue::new(16, Backpressure::Block);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert!(q.drain_into(&mut out, 4));
        assert_eq!(out, vec![0, 1, 2, 3]);
        out.clear();
        assert!(q.drain_into(&mut out, 64));
        assert_eq!(out, (4..10).collect::<Vec<_>>());
        let s = q.stats();
        assert_eq!((s.batches, s.drained, s.max_batch), (2, 10, 6));
    }

    #[test]
    fn reject_policy_returns_the_request() {
        let q = SubmissionQueue::new(2, Backpressure::Reject);
        q.push("a").unwrap();
        q.push("b").unwrap();
        match q.push("c") {
            Err(PushError::Full("c")) => {}
            other => panic!("expected Full(c), got {other:?}"),
        }
        assert_eq!(q.stats().rejected, 1);
        let mut out = Vec::new();
        q.drain_into(&mut out, 64);
        assert_eq!(out, vec!["a", "b"], "the rejected push left no trace");
    }

    #[test]
    fn close_fails_pushes_and_drains_the_tail() {
        let q = SubmissionQueue::new(4, Backpressure::Block);
        q.push(1).unwrap();
        q.close();
        assert!(matches!(q.push(2), Err(PushError::Closed(2))));
        let mut out = Vec::new();
        assert!(q.drain_into(&mut out, 64), "queued tail still drains");
        assert_eq!(out, vec![1]);
        out.clear();
        assert!(!q.drain_into(&mut out, 64), "closed and empty: exit");
    }

    #[test]
    fn blocking_producer_resumes_after_drain() {
        let q = SubmissionQueue::new(2, Backpressure::Block);
        q.push(0).unwrap();
        q.push(1).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| q.push(2).unwrap()); // blocks at capacity
            let mut out = Vec::new();
            // drain until the blocked push lands (the producer wakes on
            // the not_full signal and finishes)
            let mut got = Vec::new();
            while got.len() < 3 {
                out.clear();
                assert!(q.drain_into(&mut out, 64));
                got.extend(out.iter().copied());
            }
            assert_eq!(got, vec![0, 1, 2]);
        });
    }

    /// Regression: a producer parked in `Backpressure::Block` on a full
    /// queue must be woken by `close()` and handed `Closed` back in
    /// bounded time — not left asleep on the condvar forever. (`close`
    /// must notify `not_full`, and the woken `push` must re-check
    /// `closed` *before* re-checking capacity, since the buffer is
    /// still full.)
    #[test]
    fn close_wakes_blocked_producer_in_bounded_time() {
        use std::sync::mpsc;
        use std::time::Duration;

        let q = Arc::new(SubmissionQueue::new(1, Backpressure::Block));
        q.push(0u32).unwrap();
        let (tx, rx) = mpsc::channel();
        let qp = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            // blocks: queue is at capacity and nothing ever drains it
            let res = qp.push(1u32);
            tx.send(()).unwrap();
            res
        });
        // give the producer time to actually park on not_full
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        rx.recv_timeout(Duration::from_secs(5))
            .expect("blocked producer not woken by close() within 5s");
        match producer.join().unwrap() {
            Err(PushError::Closed(1)) => {}
            other => panic!("expected Closed(1), got {other:?}"),
        }
        // the pre-close item still drains; the refused one left no trace
        let mut out = Vec::new();
        assert!(q.drain_into(&mut out, 64));
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn notify_multiplexes_many_completions() {
        let n = Arc::new(Notify::new());
        let slots: Vec<Completion<u32>> = (0..4)
            .map(|_| Completion::with_notify(Arc::clone(&n)))
            .collect();
        assert_eq!(n.count(), 0);
        std::thread::scope(|s| {
            for (i, c) in slots.iter().enumerate() {
                let c = c.clone();
                s.spawn(move || c.fill(i as u32));
            }
            // collector: snapshot-then-wait loop reaps all four fills
            // without ever blocking on an individual slot
            let mut got = Vec::new();
            while got.len() < 4 {
                let seen = n.count();
                for c in &slots {
                    if let Some(v) = c.try_take() {
                        got.push(v);
                    }
                }
                if got.len() < 4 {
                    n.wait_past(seen);
                }
            }
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        });
        assert_eq!(n.count(), 4);
    }

    #[test]
    fn completion_roundtrip_across_threads() {
        let c: Completion<u32> = Completion::new();
        let worker_side = c.clone();
        std::thread::scope(|s| {
            s.spawn(move || worker_side.fill(7));
            assert_eq!(c.wait(), 7);
        });
        assert_eq!(c.try_take(), None, "wait consumed the value");
    }

    #[test]
    fn occupancy_mean_reflects_batches() {
        let q = SubmissionQueue::new(8, Backpressure::Block);
        let mut out = Vec::new();
        for batch in [3usize, 5, 1] {
            for i in 0..batch {
                q.push(i).unwrap();
            }
            out.clear();
            q.drain_into(&mut out, 8);
            assert_eq!(out.len(), batch);
        }
        let s = q.stats();
        assert!((s.occupancy_mean() - 3.0).abs() < 1e-9);
        assert_eq!(s.max_batch, 5);
    }
}
