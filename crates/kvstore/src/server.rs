//! The concurrent shard runtime: one dedicated worker thread per
//! shard, fed by a bounded MPSC [`SubmissionQueue`], serving drained
//! batches through [`Shard::serve_batch`] — cross-client group commit.
//!
//! Any number of [`KvClient`] handles enqueue `Get`/`Put`/`PutMany`/
//! `Delete` requests carrying [`Completion`] slots; each shard's worker
//! drains *everything in flight* (up to [`ServerConfig::max_batch`]) in
//! one lock acquisition and serves the whole convoy as grouped FASEs.
//! The batch size is therefore adaptive by construction: it *is* the
//! queue depth at drain time — an idle shard serves per-op latency-
//! optimally (batches of one), a contended shard amortizes its log and
//! commit fences over every client that queued behind the FASE in
//! progress.
//!
//! Ack contract: a completion is filled only after the batch returned
//! from [`Shard::serve_batch`], i.e. after the FASE holding the request
//! committed. **Acknowledged ⇒ durable**: a crash can only take back
//! requests whose completions were never filled (they roll back whole —
//! the committed-prefix oracle in `tests/kv_crash.rs` sweeps exactly
//! this). The converse does not hold: a worker that panics mid-batch
//! fails every outstanding completion in the batch, including requests
//! whose segment had already committed — acks are at-most-once, not
//! exactly-once.
//!
//! Worker panics do not wedge the lane: the loop catches the unwind,
//! heals the shard in place ([`Shard::heal_after_panic`] rolls the
//! abandoned FASE back and drops volatile runtime residue), fails the
//! batch's completions, and keeps serving.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use nvcache_fase::FaseStats;
use nvcache_pmem::CrashMode;

use crate::engine::{Engine, TreeEngine, TreeEngineConfig};
use crate::queue::{Backpressure, Completion, QueueStats, SubmissionQueue};
use crate::shard::{BatchReply, BatchRequest, CapacityChoice, Shard};
use crate::store::{route_hash, KvConfig};

/// Shape of the concurrent serving layer (per shard lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Bound on requests in flight per shard queue.
    pub queue_capacity: usize,
    /// What a producer experiences at capacity.
    pub backpressure: Backpressure,
    /// Largest batch one drain may form (clamped to `queue_capacity`).
    /// `1` degenerates to per-request FASEs over the identical thread
    /// and queue machinery — the `speedup_vs_unbatched` baseline.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 256,
            backpressure: Backpressure::Block,
            max_batch: usize::MAX,
        }
    }
}

/// Sorted `(key, value)` entries a scan hands back.
pub type ScanEntries = Vec<(u64, Vec<u8>)>;

/// A queued request: the operation plus the completion slot its ack
/// flows back through.
enum Request {
    Get(u64, Completion<Option<Vec<u8>>>),
    Put(u64, Vec<u8>, Completion<bool>),
    PutMany(Vec<(u64, Vec<u8>)>, Completion<bool>),
    Delete(u64, Completion<bool>),
    Scan(u64, u64, u32, Completion<Vec<(u64, Vec<u8>)>>),
}

/// The completion half of a request, split off for positional reply
/// routing after [`Shard::serve_batch`].
enum ReplySlot {
    Value(Completion<Option<Vec<u8>>>),
    Done(Completion<bool>),
    Entries(Completion<Vec<(u64, Vec<u8>)>>),
}

impl ReplySlot {
    fn fill(self, reply: BatchReply) {
        match (self, reply) {
            (ReplySlot::Value(c), BatchReply::Value(v)) => c.fill(v),
            (ReplySlot::Done(c), BatchReply::Done(b)) => c.fill(b),
            (ReplySlot::Entries(c), BatchReply::Entries(e)) => c.fill(e),
            _ => unreachable!("serve_batch replies positionally"),
        }
    }

    /// Negative ack for a batch the worker could not serve (panic path):
    /// reads report absent, writes report failure.
    fn fail(self) {
        match self {
            ReplySlot::Value(c) => c.fill(None),
            ReplySlot::Done(c) => c.fill(false),
            ReplySlot::Entries(c) => c.fill(Vec::new()),
        }
    }
}

struct Lane<E> {
    shard: Arc<Mutex<E>>,
    queue: Arc<SubmissionQueue<Request>>,
    /// Behind a mutex so shutdown can join through `&self` — the
    /// network layer shares the server via `Arc<KvServer>`.
    worker: Mutex<Option<JoinHandle<()>>>,
}

/// A [`KvStore`]-shaped store served by per-shard worker threads (see
/// the module docs), generic over the lane [`Engine`]: hash shards by
/// default ([`KvServer::new`]), B+-tree lanes via
/// [`KvServer::new_tree`], arbitrary engines via
/// [`KvServer::with_engines`]. Hand out cheap [`KvClient`] handles with
/// [`KvServer::client`], and shut down with [`KvServer::shutdown`] (or
/// let `Drop` do it).
///
/// [`KvStore`]: crate::store::KvStore
pub struct KvServer<E: Engine = Shard> {
    lanes: Vec<Lane<E>>,
    /// A resident client handle for callers that drive the server
    /// directly (e.g. the loadgen's `KvTarget` impl) without paying a
    /// handle allocation per op.
    client: KvClient,
    /// Worker panics healed without losing the lane.
    healed_panics: Arc<AtomicU64>,
}

impl<E: Engine> std::fmt::Debug for KvServer<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvServer")
            .field("lanes", &self.lanes.len())
            .finish()
    }
}

fn lock<E>(m: &Mutex<E>) -> std::sync::MutexGuard<'_, E> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl KvServer<Shard> {
    /// Spawn one worker thread (and queue) per hash shard of `cfg`.
    pub fn new(cfg: &KvConfig, scfg: &ServerConfig) -> Self {
        assert!(cfg.shards >= 1, "at least one shard");
        KvServer::with_engines((0..cfg.shards).map(|_| Shard::new(&cfg.shard)), scfg)
    }
}

impl KvServer<TreeEngine> {
    /// Spawn `lanes` B+-tree engine lanes (each a private CoW tree over
    /// its own FASE heap) behind the same queues and group commit.
    pub fn new_tree(lanes: usize, cfg: &TreeEngineConfig, scfg: &ServerConfig) -> Self {
        assert!(lanes >= 1, "at least one lane");
        KvServer::with_engines((0..lanes).map(|_| TreeEngine::new(cfg)), scfg)
    }
}

impl<E: Engine> KvServer<E> {
    /// Spawn one worker thread (and queue) per engine.
    pub fn with_engines(engines: impl IntoIterator<Item = E>, scfg: &ServerConfig) -> Self {
        assert!(scfg.max_batch >= 1, "a batch holds at least one request");
        let healed_panics = Arc::new(AtomicU64::new(0));
        let max_batch = scfg.max_batch.min(scfg.queue_capacity);
        let lanes = engines
            .into_iter()
            .map(|engine| {
                let shard = Arc::new(Mutex::new(engine));
                let queue = Arc::new(SubmissionQueue::new(scfg.queue_capacity, scfg.backpressure));
                let worker = {
                    let shard = Arc::clone(&shard);
                    let queue = Arc::clone(&queue);
                    let healed = Arc::clone(&healed_panics);
                    std::thread::spawn(move || worker_loop(&shard, &queue, max_batch, &healed))
                };
                Lane {
                    shard,
                    queue,
                    worker: Mutex::new(Some(worker)),
                }
            })
            .collect::<Vec<Lane<E>>>();
        assert!(!lanes.is_empty(), "at least one engine lane");
        let client = KvClient {
            queues: lanes.iter().map(|l| Arc::clone(&l.queue)).collect(),
        };
        KvServer {
            lanes,
            client,
            healed_panics,
        }
    }

    /// A client handle: routes per key, enqueues, blocks on completion.
    pub fn client(&self) -> KvClient {
        self.client.clone()
    }

    /// Borrow the server's resident client (no allocation).
    pub fn handle(&self) -> &KvClient {
        &self.client
    }

    /// Number of shard lanes.
    pub fn num_shards(&self) -> usize {
        self.lanes.len()
    }

    /// Shard lane serving `key` (same routing as [`KvStore`]).
    ///
    /// [`KvStore`]: crate::store::KvStore
    pub fn shard_of(&self, key: u64) -> usize {
        (route_hash(key) % self.lanes.len() as u64) as usize
    }

    /// Run `f` with engine `i` locked (stats scraping, crash plumbing in
    /// tests). Serializes with the worker's batches: the worker holds
    /// the same lock while serving, never between batches.
    pub fn with_shard<R>(&self, i: usize, f: impl FnOnce(&mut E) -> R) -> R {
        f(&mut lock(&self.lanes[i].shard))
    }

    /// Cumulative runtime counters summed over shards.
    pub fn stats(&self) -> FaseStats {
        self.lanes.iter().map(|l| lock(&l.shard).stats()).sum()
    }

    /// Per-window counters summed over shards.
    pub fn take_stats(&self) -> FaseStats {
        self.lanes.iter().map(|l| lock(&l.shard).take_stats()).sum()
    }

    /// Batch-formation counters merged over every lane's queue — the
    /// source of the benchmark's `batch_occupancy_mean` column.
    pub fn queue_stats(&self) -> QueueStats {
        let mut s = QueueStats::default();
        for l in &self.lanes {
            s.merge(&l.queue.stats());
        }
        s
    }

    /// Worker panics healed in place so far.
    pub fn healed_panics(&self) -> u64 {
        self.healed_panics.load(Ordering::Relaxed)
    }

    /// Restart every shard's adaptation measurement (post-load).
    pub fn reset_samplers(&self) {
        for l in &self.lanes {
            lock(&l.shard).reset_sampler();
        }
    }

    /// Live-controller capacity decisions per shard.
    pub fn chosen(&self) -> Vec<Vec<CapacityChoice>> {
        self.lanes.iter().map(|l| lock(&l.shard).chosen()).collect()
    }

    /// Total live keys across shards.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| lock(&l.shard).len()).sum()
    }

    /// Is every shard empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every `(key, value)` pair across shards, sorted by key.
    pub fn dump(&self) -> Vec<(u64, Vec<u8>)> {
        let mut all: Vec<(u64, Vec<u8>)> = self
            .lanes
            .iter()
            .flat_map(|l| lock(&l.shard).dump())
            .collect();
        all.sort_unstable_by_key(|&(k, _)| k);
        all
    }

    /// Inject a power failure on every shard and recover in place,
    /// while the workers keep serving. Each shard's crash lands
    /// *between* its worker's batches (the crash takes the same lock
    /// the worker serves under), so acknowledged — committed — requests
    /// survive and in-flight ones are simply not yet in the region.
    pub fn crash_and_recover_all(&self, mode: &CrashMode) {
        for l in &self.lanes {
            lock(&l.shard).crash_and_recover(mode);
        }
    }

    /// Flush every shard's buffered state (clean shutdown).
    pub fn sync_all(&self) {
        for l in &self.lanes {
            lock(&l.shard).sync();
        }
    }

    /// Close the queues, drain the tails, and join the workers. Pending
    /// requests still get served (close lets queued work finish);
    /// pushes racing the close fail with their request handed back.
    pub fn shutdown(self) {
        self.close();
    }

    /// [`shutdown`](KvServer::shutdown) through a shared reference —
    /// what the network layer calls on its `Arc<KvServer>`. Idempotent.
    pub fn close(&self) {
        for l in &self.lanes {
            l.queue.close();
        }
        for l in &self.lanes {
            let h = l.worker.lock().unwrap_or_else(|e| e.into_inner()).take();
            if let Some(h) = h {
                let _ = h.join();
            }
        }
    }
}

impl<E: Engine> Drop for KvServer<E> {
    fn drop(&mut self) {
        self.close();
    }
}

/// A cheap, cloneable client handle over a [`KvServer`]'s submission
/// queues. Every call is blocking: enqueue, then wait on the completion
/// slot (filled only after the owning batch's FASE committed).
#[derive(Clone)]
pub struct KvClient {
    queues: Vec<Arc<SubmissionQueue<Request>>>,
}

impl std::fmt::Debug for KvClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvClient")
            .field("shards", &self.queues.len())
            .finish()
    }
}

impl KvClient {
    fn queue_for(&self, key: u64) -> &SubmissionQueue<Request> {
        &self.queues[self.lane_of(key)]
    }

    /// Number of shard lanes behind this handle.
    pub fn num_lanes(&self) -> usize {
        self.queues.len()
    }

    /// Lane index serving `key` (same routing as the store).
    pub fn lane_of(&self, key: u64) -> usize {
        (route_hash(key) % self.queues.len() as u64) as usize
    }

    /// Non-blocking submit of a `Get`: enqueue with a caller-provided
    /// completion slot (typically built with [`Completion::with_notify`]
    /// so one collector can multiplex many in-flight requests). Returns
    /// `false` when the submission was refused — full queue under
    /// [`Backpressure::Reject`] or a closed server — in which case the
    /// slot will never be filled.
    ///
    /// [`Backpressure::Reject`]: crate::queue::Backpressure::Reject
    pub fn submit_get(&self, key: u64, c: Completion<Option<Vec<u8>>>) -> bool {
        self.queue_for(key).push(Request::Get(key, c)).is_ok()
    }

    /// Non-blocking submit of a `Put` (see [`submit_get`]).
    ///
    /// [`submit_get`]: KvClient::submit_get
    pub fn submit_put(&self, key: u64, value: Vec<u8>, c: Completion<bool>) -> bool {
        self.queue_for(key)
            .push(Request::Put(key, value, c))
            .is_ok()
    }

    /// Non-blocking submit of a `Delete` (see [`submit_get`]).
    ///
    /// [`submit_get`]: KvClient::submit_get
    pub fn submit_delete(&self, key: u64, c: Completion<bool>) -> bool {
        self.queue_for(key).push(Request::Delete(key, c)).is_ok()
    }

    /// Non-blocking submit of one per-lane `PutMany` slice. The caller
    /// has already split the batch by [`lane_of`]; every key in `items`
    /// must route to `lane`.
    ///
    /// [`lane_of`]: KvClient::lane_of
    pub fn submit_put_many(
        &self,
        lane: usize,
        items: Vec<(u64, Vec<u8>)>,
        c: Completion<bool>,
    ) -> bool {
        debug_assert!(items.iter().all(|&(k, _)| self.lane_of(k) == lane));
        self.queues[lane].push(Request::PutMany(items, c)).is_ok()
    }

    /// Look up `key`. `None` covers both absence and a refused
    /// submission (full queue under [`Backpressure::Reject`], or a
    /// server that shut down).
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let c = Completion::new();
        if self.submit_get(key, c.clone()) {
            c.wait()
        } else {
            None
        }
    }

    /// Insert or update `key → value`; `false` when the shard rejected
    /// the write *or* the submission itself was refused.
    pub fn put(&self, key: u64, value: &[u8]) -> bool {
        let c = Completion::new();
        if self.submit_put(key, value.to_vec(), c.clone()) {
            c.wait()
        } else {
            false
        }
    }

    /// Apply a client-side batch: split by shard, enqueue one `PutMany`
    /// per involved lane, wait for all acks. Per-lane slices keep the
    /// store's per-shard atomicity contract; the lanes' FASEs may
    /// additionally absorb other clients' concurrent writes (that is
    /// the point).
    pub fn put_many(&self, items: &[(u64, Vec<u8>)]) -> bool {
        let mut by_shard: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); self.queues.len()];
        for (k, v) in items {
            by_shard[self.lane_of(*k)].push((*k, v.clone()));
        }
        let mut waits: Vec<Completion<bool>> = Vec::new();
        let mut ok = true;
        for (i, group) in by_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let c = Completion::new();
            if self.submit_put_many(i, group, c.clone()) {
                waits.push(c);
            } else {
                ok = false;
            }
        }
        for c in waits {
            ok &= c.wait();
        }
        ok
    }

    /// Remove `key`; `false` for absent keys and refused submissions.
    pub fn delete(&self, key: u64) -> bool {
        let c = Completion::new();
        if self.submit_delete(key, c.clone()) {
            c.wait()
        } else {
            false
        }
    }

    /// Non-blocking submit of a per-lane `Scan` (see [`submit_get`]).
    /// Keys are hash-routed over lanes, so a range scan must visit
    /// every lane; [`scan`] does the fan-out and merge.
    ///
    /// [`submit_get`]: KvClient::submit_get
    /// [`scan`]: KvClient::scan
    pub fn submit_scan(
        &self,
        lane: usize,
        lo: u64,
        hi: u64,
        limit: u32,
        c: Completion<Vec<(u64, Vec<u8>)>>,
    ) -> bool {
        self.queues[lane]
            .push(Request::Scan(lo, hi, limit, c))
            .is_ok()
    }

    /// Range scan `lo..=hi`, at most `limit` entries, sorted by key:
    /// one `Scan` per lane (issued concurrently — each lane snapshots
    /// its slice inside its own serve barrier), merged and truncated
    /// client-side. Per-lane results are each consistent; the merged
    /// view spans lanes like any multi-shard read does.
    pub fn scan(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, Vec<u8>)> {
        if lo > hi || limit == 0 {
            return Vec::new();
        }
        let per_lane = limit.min(u32::MAX as usize) as u32;
        let mut waits: Vec<Completion<ScanEntries>> = Vec::new();
        for lane in 0..self.queues.len() {
            let c = Completion::new();
            if self.submit_scan(lane, lo, hi, per_lane, c.clone()) {
                waits.push(c);
            }
        }
        let mut out: Vec<(u64, Vec<u8>)> = Vec::new();
        for c in waits {
            out.extend(c.wait());
        }
        out.sort_unstable_by_key(|&(k, _)| k);
        out.truncate(limit);
        out
    }
}

/// The per-shard worker: drain everything in flight, serve it as one
/// grouped batch under the engine lock, ack after commit. Panics heal.
fn worker_loop<E: Engine>(
    shard: &Mutex<E>,
    queue: &SubmissionQueue<Request>,
    max_batch: usize,
    healed: &AtomicU64,
) {
    let mut batch: Vec<Request> = Vec::new();
    let mut reqs: Vec<BatchRequest> = Vec::new();
    let mut slots: Vec<ReplySlot> = Vec::new();
    loop {
        batch.clear();
        if !queue.drain_into(&mut batch, max_batch) {
            return; // closed and empty
        }
        reqs.clear();
        slots.clear();
        for r in batch.drain(..) {
            match r {
                Request::Get(k, c) => {
                    reqs.push(BatchRequest::Get(k));
                    slots.push(ReplySlot::Value(c));
                }
                Request::Put(k, v, c) => {
                    reqs.push(BatchRequest::Put(k, v));
                    slots.push(ReplySlot::Done(c));
                }
                Request::PutMany(items, c) => {
                    reqs.push(BatchRequest::PutMany(items));
                    slots.push(ReplySlot::Done(c));
                }
                Request::Delete(k, c) => {
                    reqs.push(BatchRequest::Delete(k));
                    slots.push(ReplySlot::Done(c));
                }
                Request::Scan(lo, hi, limit, c) => {
                    reqs.push(BatchRequest::Scan(lo, hi, limit));
                    slots.push(ReplySlot::Entries(c));
                }
            }
        }
        let served = {
            let mut guard = lock(shard);
            catch_unwind(AssertUnwindSafe(|| guard.serve_batch(&reqs))).map_err(|_| {
                // the unwind may have abandoned a FASE mid-flight: roll
                // it back and drop volatile residue so the lane lives on
                guard.heal_after_panic();
                healed.fetch_add(1, Ordering::Relaxed);
            })
        };
        match served {
            Ok(replies) => {
                debug_assert_eq!(replies.len(), slots.len());
                for (slot, reply) in slots.drain(..).zip(replies) {
                    slot.fill(reply);
                }
            }
            Err(()) => {
                for slot in slots.drain(..) {
                    slot.fail();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardConfig;
    use nvcache_core::PolicyKind;

    fn cfg(shards: usize, pipelined: bool) -> KvConfig {
        KvConfig {
            shards,
            shard: ShardConfig {
                buckets: 64,
                data_len: 1 << 19,
                log_len: 1 << 15,
                policy: PolicyKind::ScFixed { capacity: 8 },
                adapt: None,
                pipelined,
            },
        }
    }

    #[test]
    fn single_client_roundtrip() {
        let server = KvServer::new(&cfg(2, false), &ServerConfig::default());
        let c = server.client();
        for k in 0..200u64 {
            assert!(c.put(k, &k.to_le_bytes()));
        }
        for k in 0..200u64 {
            assert_eq!(c.get(k).as_deref(), Some(&k.to_le_bytes()[..]), "key {k}");
        }
        assert!(c.delete(7));
        assert!(!c.delete(7));
        assert_eq!(c.get(7), None);
        assert_eq!(server.len(), 199);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_disjoint_keys() {
        let server = KvServer::new(&cfg(4, true), &ServerConfig::default());
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let c = server.client();
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let k = w * 1000 + i;
                        assert!(c.put(k, &k.to_le_bytes()));
                        assert_eq!(c.get(k).as_deref(), Some(&k.to_le_bytes()[..]));
                    }
                });
            }
        });
        assert_eq!(server.len(), 800);
        let qs = server.queue_stats();
        assert_eq!(qs.enqueued, qs.drained, "nothing left behind");
        assert!(qs.occupancy_mean() >= 1.0);
        server.shutdown();
    }

    #[test]
    fn put_many_spans_shards_and_commits_per_lane() {
        let server = KvServer::new(&cfg(4, true), &ServerConfig::default());
        let c = server.client();
        let items: Vec<(u64, Vec<u8>)> = (0..64u64).map(|i| (i, vec![i as u8; 24])).collect();
        assert!(c.put_many(&items));
        for i in 0..64u64 {
            assert_eq!(c.get(i).as_deref(), Some(&vec![i as u8; 24][..]));
        }
        server.shutdown();
    }

    #[test]
    fn max_batch_one_still_serves_correctly() {
        let server = KvServer::new(
            &cfg(2, false),
            &ServerConfig {
                max_batch: 1,
                ..Default::default()
            },
        );
        let c = server.client();
        for k in 0..100u64 {
            assert!(c.put(k, b"v"));
        }
        assert_eq!(server.len(), 100);
        let qs = server.queue_stats();
        assert_eq!(qs.max_batch, 1, "unbatched lanes never group");
        server.shutdown();
    }

    #[test]
    fn acks_only_after_commit() {
        // every acked write must already be durable: crash immediately
        // after the ack and the value must survive
        let server = KvServer::new(&cfg(2, true), &ServerConfig::default());
        let c = server.client();
        for k in 0..50u64 {
            assert!(c.put(k, &(k * 7).to_le_bytes()));
            server.crash_and_recover_all(&CrashMode::StrictDurableOnly);
            assert_eq!(
                c.get(k).as_deref(),
                Some(&(k * 7).to_le_bytes()[..]),
                "acked write lost at key {k}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_tail_and_fails_late_pushes() {
        let server = KvServer::new(&cfg(1, false), &ServerConfig::default());
        let c = server.client();
        assert!(c.put(1, b"x"));
        let dump = {
            let s = &server;
            let d: Vec<_> = (0..s.num_shards())
                .flat_map(|i| s.with_shard(i, |sh| sh.dump()))
                .collect();
            d
        };
        assert_eq!(dump.len(), 1);
        server.shutdown();
        // the client outlives the server: calls fail cleanly
        assert!(!c.put(2, b"y"));
        assert_eq!(c.get(1), None, "closed queue refuses the submission");
        assert!(!c.delete(1));
    }

    /// Reads see every earlier write of their own batch (overlay), and
    /// cross-client grouping actually happens under contention.
    #[test]
    fn grouped_lanes_form_multi_request_batches() {
        let server = KvServer::new(&cfg(1, true), &ServerConfig::default());
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let c = server.client();
                scope.spawn(move || {
                    for i in 0..300u64 {
                        let k = w * 10_000 + i;
                        assert!(c.put(k, &k.to_le_bytes()));
                    }
                });
            }
        });
        let qs = server.queue_stats();
        assert_eq!(qs.drained, 1200);
        assert!(qs.batches >= 1);
        assert!(
            qs.max_batch <= 256,
            "occupancy bounded by queue capacity, got {}",
            qs.max_batch
        );
        server.shutdown();
    }
}
