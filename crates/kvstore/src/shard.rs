//! One KV shard: a persistent open-chaining hash table owning a private
//! [`FaseRuntime`] (per-thread cache model, paper Section II-B) with
//! `PAlloc`-backed buckets and value nodes, plus the shard's **live
//! adaptation controller** — a [`BurstSampler`] fed the shard's own
//! store-line stream (FASE-renamed), whose MRC knee resizes the
//! software cache *while the shard keeps serving*.
//!
//! Persistent layout (all offsets inside the shard's region):
//!
//! ```text
//! [PAlloc header | bucket array (root) | value nodes …]     [undo log]
//! node := key u64 | next u64 | vlen u64 | value bytes
//! ```
//!
//! Every mutation is one FASE (insert: node fields + bucket head;
//! in-place update: value bytes; delete: unlink), so recovery always
//! lands on a committed-prefix-consistent map. Node allocation happens
//! *before* and `free` *after* the FASE: a crash in the gap can leak a
//! block (never corrupt the map) — the same discipline as the `hash`
//! micro-benchmark and Atlas's Makalu heap.

use nvcache_core::{rename_for_epoch, PolicyKind};
use nvcache_fase::{FaseRuntime, FaseStats, FlushMode, RecoveryError};
use nvcache_locality::{select_cache_size, BurstSampler, KneeConfig, Mrc};
use nvcache_pmem::{CrashMode, CrashPlan, PmemRegion};
use nvcache_trace::FxHashMap;

/// Node header bytes: key, next pointer, value length.
const NODE_HEADER: usize = 24;
/// Bucket-array block (one `PAlloc` max-class allocation).
const BUCKET_BLOCK: usize = 4096;
/// Largest value the node layout can hold (PAlloc max class minus
/// header).
pub const MAX_VALUE_LEN: usize = BUCKET_BLOCK - NODE_HEADER;

/// One request drained from a shard's submission queue, stripped of its
/// completion slot (the serving layer holds those; [`Shard::serve_batch`]
/// answers positionally).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchRequest {
    /// Look a key up (answered from the batch's pending-write overlay
    /// first, so it sees earlier writes of its own batch).
    Get(u64),
    /// Insert or update one key.
    Put(u64, Vec<u8>),
    /// A client-side group that must stay per-request atomic even on
    /// the replay path.
    PutMany(Vec<(u64, Vec<u8>)>),
    /// Remove a key. Acts as a segment barrier inside a batch.
    Delete(u64),
    /// Range scan `lo..=hi` (inclusive), at most `limit` entries, in
    /// key order. Also a segment barrier: the pending write group
    /// commits first, so the scan observes every earlier write of its
    /// own batch.
    Scan(u64, u64, u32),
}

/// Positional reply to one [`BatchRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchReply {
    /// `Get` result.
    Value(Option<Vec<u8>>),
    /// `Put`/`PutMany`/`Delete` outcome.
    Done(bool),
    /// `Scan` result: sorted, gap-free within the shard.
    Entries(Vec<(u64, Vec<u8>)>),
}

/// Live-adaptation controller configuration for one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptConfig {
    /// Store lines per sampling burst (paper: 64M on full-size runs;
    /// shards here serve scaled-down working sets).
    pub burst_len: usize,
    /// Knee-selection tunables (bounds, tolerance).
    pub knee: KneeConfig,
    /// Store lines to skip between bursts; `None` analyzes once
    /// (paper default), `Some(h)` re-adapts periodically.
    pub hibernation: Option<u64>,
    /// Also keep the full renamed store-line stream (offline
    /// exact-Mattson comparison in tests and `repro kv-bench`).
    pub record_stream: bool,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            burst_len: 1 << 12,
            knee: KneeConfig::default(),
            hibernation: None,
            record_stream: false,
        }
    }
}

/// One capacity decision made by the live controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityChoice {
    /// Operation index (per shard) at which the resize was applied.
    pub op: u64,
    /// The MRC knee the controller found.
    pub knee: usize,
    /// The capacity it installed (knee + 1 safety entry, clamped).
    pub capacity: usize,
}

/// Static shape of one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardConfig {
    /// Hash-chain count (≤ 512: the bucket array is one 4 KiB block).
    pub buckets: usize,
    /// Data-area bytes (heap: buckets + nodes).
    pub data_len: usize,
    /// Undo-log bytes.
    pub log_len: usize,
    /// Persistence policy for this shard's runtime.
    pub policy: PolicyKind,
    /// Live adaptation; `None` = fixed policy behaviour.
    pub adapt: Option<AdaptConfig>,
    /// Drive the pipelined flush path: policy flushes go through the
    /// submission ring (coalesced ranged sweeps + FliT elision), batch
    /// write sets are grouped-prelogged (two log fences per batch
    /// instead of two per store), and node allocation runs through the
    /// volatile slab. Flush counts/ratios stay bit-identical to the
    /// sync path.
    pub pipelined: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            buckets: 256,
            data_len: 1 << 20,
            log_len: 1 << 16,
            policy: PolicyKind::ScAdaptive(Default::default()),
            adapt: None,
            pipelined: false,
        }
    }
}

/// A single-owner persistent KV shard.
#[derive(Debug)]
pub struct Shard {
    rt: FaseRuntime,
    buckets: usize,
    bucket_base: usize,
    len: usize,
    ops: u64,
    /// FASE epoch for store-line renaming (one op = one FASE).
    epoch: u64,
    sampler: Option<BurstSampler>,
    adapt: Option<AdaptConfig>,
    pending_mrc: Option<Mrc>,
    chosen: Vec<CapacityChoice>,
    stream: Option<Vec<u64>>,
    /// Pipelined flush path + grouped prelogging active.
    pipelined: bool,
}

fn bucket_hash(key: u64) -> u64 {
    key.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31)
}

impl Shard {
    /// Create a fresh shard.
    pub fn new(cfg: &ShardConfig) -> Self {
        assert!(
            cfg.buckets >= 1 && cfg.buckets * 8 <= BUCKET_BLOCK,
            "1..=512 buckets per shard"
        );
        let mut rt = FaseRuntime::with_heap(cfg.data_len, cfg.log_len, &cfg.policy);
        let base = rt.alloc(BUCKET_BLOCK).expect("bucket array allocation") as usize;
        rt.set_root(base as u64);
        rt.fase(|rt| {
            for b in 0..cfg.buckets {
                rt.store_u64(base + b * 8, 0);
            }
        });
        Self::assemble(rt, base, cfg, 0)
    }

    /// Re-attach to a crash image (or saved region): run recovery, then
    /// rebuild the volatile index state by walking the buckets.
    pub fn reopen_from_image(image: Vec<u8>, cfg: &ShardConfig) -> Result<Self, RecoveryError> {
        let region = PmemRegion::from_image(image);
        let rt = FaseRuntime::try_reopen(region, cfg.data_len, cfg.log_len, &cfg.policy)?;
        let base = rt.root() as usize;
        let mut shard = Self::assemble(rt, base, cfg, 0);
        shard.len = shard.walk_len();
        Ok(shard)
    }

    fn assemble(mut rt: FaseRuntime, bucket_base: usize, cfg: &ShardConfig, len: usize) -> Self {
        if cfg.pipelined {
            rt.set_flush_mode(FlushMode::Pipelined);
            rt.enable_slab();
        }
        let (sampler, stream) = match &cfg.adapt {
            Some(a) => (
                Some(BurstSampler::new(
                    a.burst_len,
                    a.knee.max_size,
                    a.hibernation,
                )),
                a.record_stream.then(Vec::new),
            ),
            None => (None, None),
        };
        Shard {
            rt,
            buckets: cfg.buckets,
            bucket_base,
            len,
            ops: 0,
            epoch: 0,
            sampler,
            adapt: cfg.adapt.clone(),
            pending_mrc: None,
            chosen: Vec::new(),
            stream,
            pipelined: cfg.pipelined,
        }
    }

    fn bucket_off(&self, key: u64) -> usize {
        self.bucket_base + (bucket_hash(key) as usize % self.buckets) * 8
    }

    /// Feed one persistent store into the controller's sampler (and the
    /// recorded stream), FASE-renamed exactly like the in-policy path.
    fn observe(&mut self, offset: usize, len: usize) {
        if self.sampler.is_none() && self.stream.is_none() {
            return;
        }
        for line in PmemRegion::lines_of(offset, len) {
            let renamed = rename_for_epoch(self.epoch, line);
            if let Some(s) = &mut self.stream {
                s.push(renamed);
            }
            if let Some(sam) = &mut self.sampler {
                if let Some(mrc) = sam.push(renamed) {
                    self.pending_mrc = Some(mrc);
                }
            }
        }
    }

    /// End-of-op bookkeeping: bump the renaming epoch and, if a burst
    /// just completed, pick the knee and resize the live cache. The
    /// resize happens *between* FASEs — the shard never stops serving.
    fn after_op(&mut self) {
        self.ops += 1;
        self.epoch += 1;
        if let Some(mrc) = self.pending_mrc.take() {
            let knee_cfg = &self.adapt.as_ref().expect("mrc implies adapt").knee;
            let knee = select_cache_size(&mrc, knee_cfg);
            // +1 safety entry, same rationale as AdaptiveScPolicy: the
            // timescale curve can put a sharp cliff one size early.
            let capacity = (knee + 1).min(knee_cfg.max_size);
            if self.rt.apply_capacity(knee, capacity) {
                self.chosen.push(CapacityChoice {
                    op: self.ops,
                    knee,
                    capacity,
                });
            }
        }
    }

    /// Locate `key`: `(bucket offset, node offset, predecessor node)`.
    fn find(&mut self, key: u64) -> (usize, usize, Option<usize>) {
        let boff = self.bucket_off(key);
        let mut prev = None;
        let mut p = self.rt.load_u64(boff) as usize;
        while p != 0 {
            if self.rt.load_u64(p) == key {
                return (boff, p, prev);
            }
            prev = Some(p);
            p = self.rt.load_u64(p + 8) as usize;
        }
        (boff, 0, prev)
    }

    /// Look up `key`.
    pub fn get(&mut self, key: u64) -> Option<Vec<u8>> {
        let (_, node, _) = self.find(key);
        if node == 0 {
            return None;
        }
        let vlen = self.rt.load_u64(node + 16) as usize;
        let mut v = vec![0u8; vlen];
        self.rt.load(node + NODE_HEADER, &mut v);
        Some(v)
    }

    /// Insert or update `key → value` (one FASE; two when the value
    /// length changes and the node must be replaced). Returns `false`
    /// if the heap is exhausted or the value exceeds
    /// [`MAX_VALUE_LEN`] — the map is unchanged in that case.
    pub fn put(&mut self, key: u64, value: &[u8]) -> bool {
        if value.len() > MAX_VALUE_LEN {
            return false;
        }
        let (boff, node, _) = self.find(key);
        if node != 0 {
            let vlen = self.rt.load_u64(node + 16) as usize;
            if vlen == value.len() {
                // hot path: in-place update, a single small FASE
                self.rt.begin_fase();
                self.rt.store(node + NODE_HEADER, value);
                self.observe(node + NODE_HEADER, value.len().max(1));
                self.rt.end_fase();
                self.after_op();
                return true;
            }
            // size change: replace the node (unlink+insert, two FASEs)
            self.delete(key);
        }
        let Some(new) = self.rt.alloc(NODE_HEADER + value.len()) else {
            return false;
        };
        let new = new as usize;
        let head = self.rt.load_u64(boff);
        self.rt.begin_fase();
        self.rt.store_u64(new, key);
        self.observe(new, 8);
        self.rt.store_u64(new + 8, head);
        self.observe(new + 8, 8);
        self.rt.store_u64(new + 16, value.len() as u64);
        self.observe(new + 16, 8);
        if !value.is_empty() {
            self.rt.store(new + NODE_HEADER, value);
            self.observe(new + NODE_HEADER, value.len());
        }
        self.rt.store_u64(boff, new as u64);
        self.observe(boff, 8);
        self.rt.end_fase();
        self.len += 1;
        self.after_op();
        true
    }

    /// Apply a whole batch of writes as **one FASE** (group commit):
    /// every item either updates an existing node in place or splices a
    /// fresh node, and the batch commits or rolls back atomically. This
    /// is the serving configuration that actually gives the software
    /// cache something to do — per-op FASEs of one or two lines carry no
    /// intra-FASE reuse (FASE renaming hides reuse across commits, by
    /// design), while a transaction over a skewed key set revisits its
    /// hot lines before the commit flush.
    ///
    /// Repeated keys in `items` are written repeatedly (that reuse is
    /// the point); all writes to one key in a batch must keep its value
    /// length. Returns `false` — with the map unchanged — when any
    /// value is oversized, changes an existing length, or allocation
    /// fails (planned nodes are given back to the free list).
    pub fn put_many(&mut self, items: &[(u64, Vec<u8>)]) -> bool {
        if items.is_empty() {
            return true;
        }
        enum Op {
            /// In-place value write to `node`.
            Write { node: usize },
            /// Splice `node` at the head of its bucket chain.
            Insert {
                node: usize,
                boff: usize,
                key: u64,
                head: u64,
            },
        }
        // plan outside the FASE: locate nodes, allocate fresh ones, and
        // thread chain heads for multiple inserts into one bucket
        let mut planned: FxHashMap<u64, (usize, usize)> = FxHashMap::default();
        let mut heads: FxHashMap<usize, u64> = FxHashMap::default();
        let mut new_allocs: Vec<(u64, usize)> = Vec::new();
        let mut ops: Vec<(Op, usize)> = Vec::with_capacity(items.len());
        let mut inserts = 0usize;
        let mut ok = true;
        for (i, (key, value)) in items.iter().enumerate() {
            if value.len() > MAX_VALUE_LEN {
                ok = false;
                break;
            }
            let known = planned.get(key).copied().or_else(|| {
                let (_, node, _) = self.find(*key);
                (node != 0).then(|| {
                    let vlen = self.rt.load_u64(node + 16) as usize;
                    planned.insert(*key, (node, vlen));
                    (node, vlen)
                })
            });
            match known {
                Some((node, vlen)) => {
                    if vlen != value.len() {
                        ok = false; // batches are fixed-length per key
                        break;
                    }
                    ops.push((Op::Write { node }, i));
                }
                None => {
                    let boff = self.bucket_off(*key);
                    let Some(new) = self.rt.alloc(NODE_HEADER + value.len()) else {
                        ok = false;
                        break;
                    };
                    new_allocs.push((new, NODE_HEADER + value.len()));
                    let head = heads
                        .get(&boff)
                        .copied()
                        .unwrap_or_else(|| self.rt.load_u64(boff));
                    heads.insert(boff, new);
                    planned.insert(*key, (new as usize, value.len()));
                    inserts += 1;
                    ops.push((
                        Op::Insert {
                            node: new as usize,
                            boff,
                            key: *key,
                            head,
                        },
                        i,
                    ));
                }
            }
        }
        if !ok {
            for (off, size) in new_allocs {
                self.rt.free(off, size);
            }
            return false;
        }
        self.rt.begin_fase();
        if self.pipelined {
            // Grouped prelog: undo-capture the whole planned write set
            // with two log fences instead of two per store. Duplicate
            // ranges (repeated keys, shared bucket heads) all capture
            // pre-FASE bytes, so rollback still lands on the pre-batch
            // state.
            let mut ranges: Vec<(u64, u64)> = Vec::with_capacity(ops.len() * 2);
            for (op, i) in &ops {
                let vlen = items[*i].1.len() as u64;
                match *op {
                    Op::Write { node } => {
                        ranges.push(((node + NODE_HEADER) as u64, vlen));
                    }
                    Op::Insert { node, boff, .. } => {
                        ranges.push((node as u64, NODE_HEADER as u64 + vlen));
                        ranges.push((boff as u64, 8));
                    }
                }
            }
            self.rt.prelog(&ranges);
        }
        for (op, i) in &ops {
            let value = &items[*i].1;
            match *op {
                Op::Write { node } => {
                    self.rt.store(node + NODE_HEADER, value);
                    self.observe(node + NODE_HEADER, value.len().max(1));
                }
                Op::Insert {
                    node,
                    boff,
                    key,
                    head,
                } => {
                    self.rt.store_u64(node, key);
                    self.observe(node, 8);
                    self.rt.store_u64(node + 8, head);
                    self.observe(node + 8, 8);
                    self.rt.store_u64(node + 16, value.len() as u64);
                    self.observe(node + 16, 8);
                    if !value.is_empty() {
                        self.rt.store(node + NODE_HEADER, value);
                        self.observe(node + NODE_HEADER, value.len());
                    }
                    self.rt.store_u64(boff, node as u64);
                    self.observe(boff, 8);
                }
            }
        }
        self.rt.end_fase();
        self.len += inserts;
        self.after_op();
        true
    }

    /// Serve one drained submission-queue batch: the cross-client group
    /// commit at the heart of the concurrent shard runtime. Requests are
    /// processed in drain (= FIFO submission) order with *sequential*
    /// semantics, but all writes between delete barriers accumulate into
    /// a single [`Shard::put_many`] group — one FASE, one grouped
    /// prelog, one ring publish — regardless of how many clients
    /// contributed them. Reads are answered from the pending-write
    /// overlay first, so a `Get` observes every earlier write of its own
    /// batch exactly as it would have under per-op execution.
    ///
    /// Deletes split the batch into segments (unlinking inside a grouped
    /// write set would need ordering the group can't express); each
    /// segment commits before the delete runs. When a segment's group is
    /// rejected (oversized value, length-changing update, heap
    /// exhaustion), the segment — whose group left no trace — is
    /// replayed with per-request ops, so per-request failure is precise
    /// and the surviving requests still land.
    ///
    /// Crash contract: replies must only be released to clients after
    /// this returns. Every state the region can expose after a crash
    /// mid-batch is then a committed *prefix* of the batch's segment
    /// FASEs — an acknowledged request is durable, an unacknowledged one
    /// rolls back whole, never torn.
    pub fn serve_batch(&mut self, reqs: &[BatchRequest]) -> Vec<BatchReply> {
        let mut replies: Vec<BatchReply> = Vec::with_capacity(reqs.len());
        // current segment: grouped writes + the request span they cover
        let mut group: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut overlay: FxHashMap<u64, usize> = FxHashMap::default();
        let mut seg_start = 0usize;

        // Commit the pending segment group; on rejection, replay the
        // segment's requests individually (recomputing its replies).
        fn close_segment(
            shard: &mut Shard,
            reqs: &[BatchRequest],
            replies: &mut Vec<BatchReply>,
            group: &mut Vec<(u64, Vec<u8>)>,
            overlay: &mut FxHashMap<u64, usize>,
            seg_start: usize,
            seg_end: usize,
        ) {
            if !group.is_empty() && !shard.put_many(group) {
                // the grouped commit left no trace: replay this segment
                // sequentially for exact per-request outcomes
                replies.truncate(seg_start);
                for req in &reqs[seg_start..seg_end] {
                    replies.push(match req {
                        BatchRequest::Get(k) => BatchReply::Value(shard.get(*k)),
                        BatchRequest::Put(k, v) => BatchReply::Done(shard.put(*k, v)),
                        BatchRequest::PutMany(items) => BatchReply::Done(shard.put_many(items)),
                        BatchRequest::Delete(_) | BatchRequest::Scan(..) => {
                            unreachable!("barriers end segments")
                        }
                    });
                }
            }
            group.clear();
            overlay.clear();
        }

        for (i, req) in reqs.iter().enumerate() {
            match req {
                BatchRequest::Get(k) => {
                    let value = match overlay.get(k) {
                        Some(&gi) => Some(group[gi].1.clone()),
                        None => self.get(*k),
                    };
                    replies.push(BatchReply::Value(value));
                }
                BatchRequest::Put(k, v) => {
                    overlay.insert(*k, group.len());
                    group.push((*k, v.clone()));
                    replies.push(BatchReply::Done(true));
                }
                BatchRequest::PutMany(items) => {
                    // overlay points at each key's *last* write in the
                    // group (later inserts overwrite earlier ones)
                    for (j, (k, _)) in items.iter().enumerate() {
                        overlay.insert(*k, group.len() + j);
                    }
                    group.extend(items.iter().cloned());
                    replies.push(BatchReply::Done(true));
                }
                BatchRequest::Delete(k) => {
                    close_segment(
                        self,
                        reqs,
                        &mut replies,
                        &mut group,
                        &mut overlay,
                        seg_start,
                        i,
                    );
                    replies.push(BatchReply::Done(self.delete(*k)));
                    seg_start = i + 1;
                }
                BatchRequest::Scan(lo, hi, limit) => {
                    close_segment(
                        self,
                        reqs,
                        &mut replies,
                        &mut group,
                        &mut overlay,
                        seg_start,
                        i,
                    );
                    replies.push(BatchReply::Entries(self.scan(*lo, *hi, *limit as usize)));
                    seg_start = i + 1;
                }
            }
        }
        close_segment(
            self,
            reqs,
            &mut replies,
            &mut group,
            &mut overlay,
            seg_start,
            reqs.len(),
        );
        replies
    }

    /// Range scan `lo..=hi`, at most `limit` entries, sorted by key.
    /// A hash table has no key order, so this is a full bucket walk +
    /// sort — the structural price the tree engine's B+-tree avoids
    /// (that contrast is exactly what YCSB-E measures across engines).
    pub fn scan(&mut self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, Vec<u8>)> {
        if lo > hi || limit == 0 {
            return Vec::new();
        }
        let mut out: Vec<(u64, Vec<u8>)> = Vec::new();
        for b in 0..self.buckets {
            let mut p = self.rt.load_u64(self.bucket_base + b * 8) as usize;
            while p != 0 {
                let key = self.rt.load_u64(p);
                if (lo..=hi).contains(&key) {
                    let vlen = self.rt.load_u64(p + 16) as usize;
                    let mut v = vec![0u8; vlen];
                    self.rt.load(p + NODE_HEADER, &mut v);
                    out.push((key, v));
                }
                p = self.rt.load_u64(p + 8) as usize;
            }
        }
        out.sort_unstable_by_key(|&(k, _)| k);
        out.truncate(limit);
        out
    }

    /// Read-only lookup over the shard's region (no `&mut`): the
    /// serving layer's fast path for `Get`s that bypass the submission
    /// queue. Safe to run under a shared lock held concurrently with
    /// nothing — the worker takes the exclusive lock for the whole
    /// batch, so a reader never observes a mid-FASE region.
    pub fn get_ro(&self, key: u64) -> Option<Vec<u8>> {
        let region = self.rt.region();
        let boff = self.bucket_off(key);
        let mut p = region.read_u64(boff) as usize;
        while p != 0 {
            if region.read_u64(p) == key {
                let vlen = region.read_u64(p + 16) as usize;
                let mut v = vec![0u8; vlen];
                region.read(p + NODE_HEADER, &mut v);
                return Some(v);
            }
            p = region.read_u64(p + 8) as usize;
        }
        None
    }

    /// Recover the shard after a panic unwound through one of its
    /// operations (see [`FaseRuntime::heal_after_panic`]): the abandoned
    /// FASE rolls back, volatile runtime residue is dropped, and the
    /// shard's length is rebuilt from the region. Returns whether
    /// anything was healed.
    pub fn heal_after_panic(&mut self) -> bool {
        let healed = self.rt.heal_after_panic();
        if healed {
            self.pending_mrc = None;
            self.len = self.walk_len();
        }
        healed
    }

    /// Remove `key` (one FASE when present). Returns whether it existed.
    pub fn delete(&mut self, key: u64) -> bool {
        let (boff, node, prev) = self.find(key);
        if node == 0 {
            return false;
        }
        let next = self.rt.load_u64(node + 8);
        let vlen = self.rt.load_u64(node + 16) as usize;
        self.rt.begin_fase();
        match prev {
            Some(p) => {
                self.rt.store_u64(p + 8, next);
                self.observe(p + 8, 8);
            }
            None => {
                self.rt.store_u64(boff, next);
                self.observe(boff, 8);
            }
        }
        self.rt.end_fase();
        self.rt.free(node as u64, NODE_HEADER + vlen);
        self.len -= 1;
        self.after_op();
        true
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the shard empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Operations served so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Every `(key, value)` pair, sorted by key (full bucket walk; used
    /// by recovery verification, not the serving path).
    pub fn dump(&mut self) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::with_capacity(self.len);
        for b in 0..self.buckets {
            let mut p = self.rt.load_u64(self.bucket_base + b * 8) as usize;
            while p != 0 {
                let key = self.rt.load_u64(p);
                let vlen = self.rt.load_u64(p + 16) as usize;
                let mut v = vec![0u8; vlen];
                self.rt.load(p + NODE_HEADER, &mut v);
                out.push((key, v));
                p = self.rt.load_u64(p + 8) as usize;
            }
        }
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    fn walk_len(&mut self) -> usize {
        let mut n = 0;
        for b in 0..self.buckets {
            let mut p = self.rt.load_u64(self.bucket_base + b * 8) as usize;
            while p != 0 {
                n += 1;
                p = self.rt.load_u64(p + 8) as usize;
            }
        }
        n
    }

    // ----- adaptation introspection --------------------------------------

    /// Capacity decisions the live controller has made, in order.
    pub fn chosen(&self) -> &[CapacityChoice] {
        &self.chosen
    }

    /// Current software-cache capacity (`None` for non-SC policies).
    pub fn sc_capacity(&self) -> Option<usize> {
        self.rt.sc_capacity()
    }

    /// The recorded FASE-renamed store-line stream, when
    /// [`AdaptConfig::record_stream`] was set.
    pub fn stream(&self) -> Option<&[u64]> {
        self.stream.as_deref()
    }

    /// Store lines buffered in the current sampling burst.
    pub fn sampler_buffered(&self) -> usize {
        self.sampler.as_ref().map_or(0, |s| s.buffered())
    }

    /// Restart adaptation measurement: discard the sampler's partial
    /// burst, the recorded stream, any not-yet-applied MRC, and the
    /// decision history, so the next burst begins at the next store.
    /// The serving layer calls this after a bulk-load phase so capacity
    /// decisions (and [`Shard::chosen`]) reflect the *serving* write
    /// stream, not the loader's.
    pub fn reset_sampler(&mut self) {
        if let Some(a) = &self.adapt {
            self.sampler = Some(BurstSampler::new(
                a.burst_len,
                a.knee.max_size,
                a.hibernation,
            ));
            self.pending_mrc = None;
            self.chosen.clear();
            if let Some(s) = &mut self.stream {
                s.clear();
            }
        }
    }

    // ----- stats / crash plumbing ----------------------------------------

    /// Cumulative runtime counters.
    pub fn stats(&self) -> FaseStats {
        self.rt.stats()
    }

    /// Counters since the last call (per-window flush ratios).
    pub fn take_stats(&mut self) -> FaseStats {
        self.rt.take_stats()
    }

    /// The underlying runtime (telemetry, tracing, verification).
    pub fn runtime_mut(&mut self) -> &mut FaseRuntime {
        &mut self.rt
    }

    /// Persistence micro-steps executed (crash-point index space).
    pub fn steps(&self) -> u64 {
        self.rt.steps()
    }

    /// Arm a crash plan on the shard's region (see
    /// [`FaseRuntime::arm_crash`]).
    pub fn arm_crash(&mut self, plan: CrashPlan) {
        self.rt.arm_crash(plan);
    }

    /// The crash image captured by an armed plan, if reached.
    pub fn take_crash_image(&mut self) -> Option<Vec<u8>> {
        self.rt.take_crash_image()
    }

    /// Inject a power failure in-process and recover; the volatile
    /// index state is rebuilt from the recovered region.
    pub fn crash_and_recover(&mut self, mode: &CrashMode) {
        self.rt.crash_and_recover(mode);
        self.pending_mrc = None;
        self.len = self.walk_len();
    }

    /// Persist everything still buffered (clean shutdown).
    pub fn sync(&mut self) {
        self.rt.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(policy: PolicyKind) -> ShardConfig {
        ShardConfig {
            buckets: 64,
            data_len: 1 << 18,
            log_len: 1 << 15,
            policy,
            adapt: None,
            pipelined: false,
        }
    }

    #[test]
    fn put_get_update_delete_roundtrip() {
        let mut s = Shard::new(&small(PolicyKind::ScFixed { capacity: 8 }));
        assert!(s.is_empty());
        for i in 0..200u64 {
            assert!(s.put(i, &i.to_le_bytes()));
        }
        assert_eq!(s.len(), 200);
        for i in 0..200u64 {
            assert_eq!(s.get(i).as_deref(), Some(&i.to_le_bytes()[..]), "key {i}");
        }
        assert!(s.put(7, b"same-len"));
        assert_eq!(s.get(7).as_deref(), Some(&b"same-len"[..]));
        // size-changing update replaces the node
        assert!(s.put(7, b"a much longer value than before"));
        assert_eq!(
            s.get(7).as_deref(),
            Some(&b"a much longer value than before"[..])
        );
        assert_eq!(s.len(), 200);
        assert!(s.delete(7));
        assert!(!s.delete(7));
        assert_eq!(s.get(7), None);
        assert_eq!(s.len(), 199);
        assert_eq!(s.get(1000), None);
    }

    #[test]
    fn empty_and_oversized_values() {
        let mut s = Shard::new(&small(PolicyKind::Lazy));
        assert!(s.put(1, b""));
        assert_eq!(s.get(1).as_deref(), Some(&b""[..]));
        assert!(!s.put(2, &vec![0u8; MAX_VALUE_LEN + 1]), "over max class");
        assert_eq!(s.get(2), None);
        assert!(s.put(3, &vec![7u8; MAX_VALUE_LEN]), "exactly max fits");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn heap_exhaustion_fails_put_cleanly() {
        let cfg = ShardConfig {
            buckets: 8,
            data_len: 8 << 10,
            log_len: 1 << 14,
            policy: PolicyKind::Lazy,
            adapt: None,
            pipelined: false,
        };
        let mut s = Shard::new(&cfg);
        let mut inserted = 0u64;
        while s.put(inserted, &[0u8; 100]) {
            inserted += 1;
            assert!(inserted < 10_000, "must exhaust eventually");
        }
        assert!(inserted > 0);
        assert_eq!(s.len() as u64, inserted);
        // the failed put left the map readable and consistent
        for i in 0..inserted {
            assert!(s.get(i).is_some(), "key {i} survived the failed put");
        }
        // deleting frees a node the next put can reuse
        assert!(s.delete(0));
        assert!(s.put(99_999, &[1u8; 100]), "free list satisfies the put");
    }

    #[test]
    fn dump_is_sorted_and_complete() {
        let mut s = Shard::new(&small(PolicyKind::Eager));
        for i in [5u64, 1, 9, 3, 7] {
            s.put(i, &[i as u8]);
        }
        let d = s.dump();
        assert_eq!(
            d,
            vec![
                (1, vec![1u8]),
                (3, vec![3]),
                (5, vec![5]),
                (7, vec![7]),
                (9, vec![9])
            ]
        );
    }

    #[test]
    fn committed_ops_survive_crash_and_recover() {
        for mode in [
            CrashMode::StrictDurableOnly,
            CrashMode::AllInFlightLands,
            CrashMode::random(0.5, 0.5, 3),
        ] {
            let mut s = Shard::new(&small(PolicyKind::ScAdaptive(Default::default())));
            for i in 0..100u64 {
                s.put(i, &(i * 3).to_le_bytes());
            }
            for i in (0..100u64).step_by(3) {
                s.delete(i);
            }
            let expect = s.dump();
            s.crash_and_recover(&mode);
            assert_eq!(s.dump(), expect, "mode {mode:?}");
            assert_eq!(s.len(), expect.len(), "len rebuilt from the region");
        }
    }

    #[test]
    fn put_many_commits_mixed_batch_atomically() {
        let mut s = Shard::new(&small(PolicyKind::ScFixed { capacity: 8 }));
        assert!(s.put(1, b"one-ost"));
        assert!(s.put(2, b"two-old"));
        let fases_before = s.stats().fases;
        // one batch: two in-place updates (one key twice — last wins),
        // two fresh inserts (one bucket-colliding pair is fine)
        let batch: Vec<(u64, Vec<u8>)> = vec![
            (1, b"one-new".to_vec()),
            (10, b"ten".to_vec()),
            (1, b"one-fin".to_vec()),
            (11, b"eleven".to_vec()),
            (10, b"TEN".to_vec()), // insert then update, same batch
        ];
        assert!(s.put_many(&batch));
        assert_eq!(s.stats().fases, fases_before + 1, "whole batch is one FASE");
        assert_eq!(s.get(1).as_deref(), Some(&b"one-fin"[..]));
        assert_eq!(s.get(2).as_deref(), Some(&b"two-old"[..]));
        assert_eq!(s.get(10).as_deref(), Some(&b"TEN"[..]));
        assert_eq!(s.get(11).as_deref(), Some(&b"eleven"[..]));
        assert_eq!(s.len(), 4);
        // the committed batch survives a crash in one piece
        let expect = s.dump();
        s.crash_and_recover(&CrashMode::StrictDurableOnly);
        assert_eq!(s.dump(), expect);
    }

    #[test]
    fn put_many_rejects_without_side_effects() {
        let mut s = Shard::new(&small(PolicyKind::Lazy));
        assert!(s.put(5, b"12345"));
        let before = s.dump();
        // length change for an existing key aborts the whole batch…
        assert!(!s.put_many(&[(9, b"nine".to_vec()), (5, b"much-longer".to_vec())]));
        // …as does an oversized value
        assert!(!s.put_many(&[(7, vec![0u8; MAX_VALUE_LEN + 1])]));
        assert_eq!(s.dump(), before, "aborted batches leave no trace");
        // aborted planned allocations went back to the free list: the
        // same insert succeeds afterwards
        assert!(s.put_many(&[(9, b"nine".to_vec())]));
        assert_eq!(s.get(9).as_deref(), Some(&b"nine"[..]));
    }

    #[test]
    fn live_adaptation_resizes_while_serving() {
        let cfg = ShardConfig {
            policy: PolicyKind::ScAdaptive(nvcache_core::AdaptiveConfig {
                external_control: true,
                ..Default::default()
            }),
            adapt: Some(AdaptConfig {
                burst_len: 2000,
                record_stream: true,
                ..Default::default()
            }),
            ..small(PolicyKind::Best)
        };
        let mut s = Shard::new(&cfg);
        let default_cap = s.sc_capacity().unwrap();
        // steady-state in-place updates over a fixed working set: the
        // store stream cycles over the value lines of `wss` keys
        let wss = 40u64;
        for i in 0..wss {
            s.put(i, &[0u8; 56]);
        }
        let mut round = 0u8;
        while s.chosen().is_empty() {
            for i in 0..wss {
                s.put(i, &[round; 56]);
            }
            round = round.wrapping_add(1);
            assert!(s.ops() < 50_000, "controller never fired");
        }
        let choice = s.chosen()[0];
        assert_eq!(s.sc_capacity(), Some(choice.capacity));
        assert_ne!(
            choice.capacity, default_cap,
            "a 40-key working set must move the capacity off the default"
        );
        assert!(choice.knee >= 1);
        // serving continues after the resize
        for i in 0..wss {
            assert!(s.get(i).is_some());
        }
        assert!(s.stream().unwrap().len() >= 2000);
    }

    #[test]
    fn serve_batch_groups_writes_into_one_fase() {
        let mut s = Shard::new(&small(PolicyKind::ScFixed { capacity: 8 }));
        assert!(s.put(1, b"one"));
        let fases = s.stats().fases;
        let replies = s.serve_batch(&[
            BatchRequest::Put(10, b"ten".to_vec()),
            BatchRequest::Get(10), // sees its own batch's write (overlay)
            BatchRequest::Get(1),  // pre-batch value
            BatchRequest::PutMany(vec![(11, b"eleven".to_vec()), (10, b"TEN".to_vec())]),
            BatchRequest::Get(10), // sees the overlay's *last* write
            BatchRequest::Get(99), // absent
        ]);
        assert_eq!(
            replies,
            vec![
                BatchReply::Done(true),
                BatchReply::Value(Some(b"ten".to_vec())),
                BatchReply::Value(Some(b"one".to_vec())),
                BatchReply::Done(true),
                BatchReply::Value(Some(b"TEN".to_vec())),
                BatchReply::Value(None),
            ]
        );
        assert_eq!(
            s.stats().fases,
            fases + 1,
            "three writes from the batch formed one group-commit FASE"
        );
        assert_eq!(s.get(10).as_deref(), Some(&b"TEN"[..]));
        assert_eq!(s.get(11).as_deref(), Some(&b"eleven"[..]));
    }

    #[test]
    fn serve_batch_delete_barrier_splits_segments() {
        let mut s = Shard::new(&small(PolicyKind::ScFixed { capacity: 8 }));
        let fases = s.stats().fases;
        let replies = s.serve_batch(&[
            BatchRequest::Put(1, b"a".to_vec()),
            BatchRequest::Put(2, b"b".to_vec()),
            BatchRequest::Delete(1), // barrier: segment 1 commits first
            BatchRequest::Get(1),    // post-delete view
            BatchRequest::Put(3, b"c".to_vec()),
        ]);
        assert_eq!(
            replies,
            vec![
                BatchReply::Done(true),
                BatchReply::Done(true),
                BatchReply::Done(true),
                BatchReply::Value(None),
                BatchReply::Done(true),
            ]
        );
        // segment group + delete + trailing segment group = 3 FASEs
        assert_eq!(s.stats().fases, fases + 3);
        assert_eq!(s.len(), 2);
    }

    /// A segment whose grouped commit is rejected (here: a
    /// length-changing update, which `put_many` refuses) replays
    /// per-request: the length change succeeds through the replace
    /// path, neighbours still land, replies are exact.
    #[test]
    fn serve_batch_replays_rejected_segment_per_request() {
        let mut s = Shard::new(&small(PolicyKind::ScFixed { capacity: 8 }));
        assert!(s.put(5, b"short"));
        let replies = s.serve_batch(&[
            BatchRequest::Put(6, b"six".to_vec()),
            BatchRequest::Put(5, b"a-much-longer-value".to_vec()),
            BatchRequest::Get(5),
            BatchRequest::Put(7, vec![0u8; MAX_VALUE_LEN + 1]), // always refused
        ]);
        assert_eq!(replies[0], BatchReply::Done(true));
        assert_eq!(replies[1], BatchReply::Done(true));
        assert_eq!(
            replies[2],
            BatchReply::Value(Some(b"a-much-longer-value".to_vec()))
        );
        assert_eq!(
            replies[3],
            BatchReply::Done(false),
            "oversized put fails precisely"
        );
        assert_eq!(s.get(5).as_deref(), Some(&b"a-much-longer-value"[..]));
        assert_eq!(s.get(6).as_deref(), Some(&b"six"[..]));
        assert_eq!(s.get(7), None);
    }

    /// `serve_batch` must equal sequential per-op execution — same
    /// replies, same end state — on a deterministic mixed stream.
    #[test]
    fn serve_batch_matches_sequential_semantics() {
        let cfg = small(PolicyKind::ScFixed { capacity: 8 });
        let mut batched = Shard::new(&cfg);
        let mut seq = Shard::new(&cfg);
        let mut reqs: Vec<BatchRequest> = Vec::new();
        let mut x = 9_u64;
        for i in 0..120u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 24;
            reqs.push(match x % 5 {
                0 => BatchRequest::Get(key),
                1 => BatchRequest::Delete(key),
                2 => BatchRequest::PutMany(vec![
                    (key, vec![i as u8; 16]),
                    ((key + 1) % 24, vec![i as u8; 16]),
                ]),
                3 => BatchRequest::Scan(key, key + 7, 5),
                _ => BatchRequest::Put(key, vec![i as u8; 16]),
            });
        }
        let got = batched.serve_batch(&reqs);
        let want: Vec<BatchReply> = reqs
            .iter()
            .map(|r| match r {
                BatchRequest::Get(k) => BatchReply::Value(seq.get(*k)),
                BatchRequest::Put(k, v) => BatchReply::Done(seq.put(*k, v)),
                BatchRequest::PutMany(items) => BatchReply::Done(seq.put_many(items)),
                BatchRequest::Delete(k) => BatchReply::Done(seq.delete(*k)),
                BatchRequest::Scan(lo, hi, l) => {
                    BatchReply::Entries(seq.scan(*lo, *hi, *l as usize))
                }
            })
            .collect();
        assert_eq!(got, want, "replies diverge from sequential execution");
        assert_eq!(batched.dump(), seq.dump(), "end states diverge");
    }

    #[test]
    fn get_ro_matches_get() {
        let mut s = Shard::new(&small(PolicyKind::Lazy));
        for i in 0..100u64 {
            assert!(s.put(i, &(i * 3).to_le_bytes()));
        }
        s.delete(4);
        s.put(5, b"");
        for i in 0..100u64 {
            let want = s.get(i);
            assert_eq!(s.get_ro(i), want, "key {i}");
        }
        assert_eq!(s.get_ro(1234), None);
    }

    /// The pipelined path (ring + grouped prelog + slab) is a pure
    /// mechanism change: same contents, same store lines, same policy
    /// flush counts as the sync path over an identical op sequence.
    #[test]
    fn pipelined_shard_is_bit_identical_to_sync() {
        let sync_cfg = small(PolicyKind::ScFixed { capacity: 4 });
        let pipe_cfg = ShardConfig {
            pipelined: true,
            ..sync_cfg.clone()
        };
        let mut sync = Shard::new(&sync_cfg);
        let mut pipe = Shard::new(&pipe_cfg);
        let batch: Vec<(u64, Vec<u8>)> = (0..64u64).map(|i| (i % 24, vec![i as u8; 40])).collect();
        for s in [&mut sync, &mut pipe] {
            assert!(s.put_many(&batch));
            assert!(s.put_many(&batch)); // second pass: all in-place
            assert!(s.put(99, b"solo"));
            assert!(s.delete(3));
        }
        for i in 0..24u64 {
            assert_eq!(sync.get(i), pipe.get(i), "key {i}");
        }
        assert_eq!(sync.len(), pipe.len());
        let (a, b) = (sync.stats(), pipe.stats());
        assert_eq!(a.store_lines, b.store_lines, "store lines diverged");
        assert_eq!(a.data_flushes, b.data_flushes, "flush counts diverged");
        assert_eq!(a.fases, b.fases);
    }

    /// A crash mid-batch on the pipelined path rolls the whole group
    /// back: grouped prelogging keeps the all-or-nothing FASE contract.
    #[test]
    fn pipelined_put_many_is_atomic_under_crash() {
        let cfg = ShardConfig {
            pipelined: true,
            ..small(PolicyKind::ScFixed { capacity: 4 })
        };
        for mode in [
            CrashMode::StrictDurableOnly,
            CrashMode::AllInFlightLands,
            CrashMode::random(0.5, 0.5, 11),
        ] {
            let mut s = Shard::new(&cfg);
            let before: Vec<(u64, Vec<u8>)> = (0..16u64).map(|i| (i, vec![1u8; 16])).collect();
            assert!(s.put_many(&before));
            s.sync();
            // updates + fresh inserts in one batch, crashed mid-FASE
            let batch: Vec<(u64, Vec<u8>)> = (8..32u64).map(|i| (i, vec![2u8; 16])).collect();
            let step = s.steps() + 40;
            s.arm_crash(CrashPlan {
                at_step: step,
                mode: mode.clone(),
            });
            assert!(s.put_many(&batch));
            let image = s.take_crash_image().expect("plan must have fired");
            let mut r = Shard::reopen_from_image(image, &cfg).expect("recovery");
            for i in 0..16u64 {
                assert_eq!(
                    r.get(i).as_deref(),
                    Some(&[1u8; 16][..]),
                    "key {i} ({mode:?})"
                );
            }
            for i in 16..32u64 {
                assert_eq!(r.get(i), None, "key {i} must not survive ({mode:?})");
            }
            // the shard keeps serving on the recovered image
            assert!(r.put(100, b"after"));
            assert_eq!(r.get(100).as_deref(), Some(&b"after"[..]));
        }
    }
}
