//! The sharded store: keys routed by hash to [`Shard`]s, each behind
//! its own mutex so operations on different shards proceed in parallel
//! while every shard's `FaseRuntime` (and its persistence policy) stays
//! strictly single-owner — the paper's per-thread cache model mapped
//! onto a serving layer.

use std::sync::Mutex;

use nvcache_fase::FaseStats;
use nvcache_pmem::CrashMode;

use crate::shard::{CapacityChoice, Shard, ShardConfig};

/// Configuration of a sharded store.
#[derive(Debug, Clone, PartialEq)]
pub struct KvConfig {
    /// Shard count (keys are hash-routed; each shard owns one runtime).
    pub shards: usize,
    /// Per-shard shape.
    pub shard: ShardConfig,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            shards: 4,
            shard: ShardConfig::default(),
        }
    }
}

/// SplitMix64 finalizer — the shard router. Deliberately a different
/// mix than the in-shard bucket hash so shard choice and bucket choice
/// are uncorrelated. Shared with the concurrent serving layer
/// (`server.rs`) so a [`KvStore`] and a `KvServer` over the same config
/// route identically.
pub(crate) fn route_hash(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A concurrent, sharded, persistent KV store.
#[derive(Debug)]
pub struct KvStore {
    shards: Vec<Mutex<Shard>>,
}

impl KvStore {
    /// Build a store with `cfg.shards` fresh shards.
    pub fn new(cfg: &KvConfig) -> Self {
        assert!(cfg.shards >= 1, "at least one shard");
        KvStore {
            shards: (0..cfg.shards)
                .map(|_| Mutex::new(Shard::new(&cfg.shard)))
                .collect(),
        }
    }

    /// Shard index serving `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        (route_hash(key) % self.shards.len() as u64) as usize
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Look up `key`.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        self.shard(self.shard_of(key)).get(key)
    }

    /// Insert or update `key → value`; `false` when the owning shard's
    /// heap is exhausted (the map is unchanged then).
    pub fn put(&self, key: u64, value: &[u8]) -> bool {
        self.shard(self.shard_of(key)).put(key, value)
    }

    /// Apply a batch of writes as one FASE **per involved shard**
    /// (group commit): items are split by routing hash, each shard's
    /// slice commits atomically in item order. Repeated keys are
    /// written repeatedly — intra-FASE reuse is what the per-shard
    /// software cache (and its MRC sampler) feeds on. Returns `false`
    /// if any shard rejected its slice (that slice is unapplied; other
    /// shards' slices still commit — atomicity is per shard).
    pub fn put_many(&self, items: &[(u64, Vec<u8>)]) -> bool {
        let mut by_shard: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); self.shards.len()];
        for (k, v) in items {
            by_shard[self.shard_of(*k)].push((*k, v.clone()));
        }
        let mut ok = true;
        for (i, group) in by_shard.into_iter().enumerate() {
            if !group.is_empty() {
                ok &= self.shard(i).put_many(&group);
            }
        }
        ok
    }

    /// Remove `key`; returns whether it existed.
    pub fn delete(&self, key: u64) -> bool {
        self.shard(self.shard_of(key)).delete(key)
    }

    /// Range scan `lo..=hi`, at most `limit` entries, sorted by key:
    /// every shard is visited (keys are hash-routed) and the slices
    /// merged. Shards are scanned one at a time under their own locks —
    /// per-shard consistency, cross-shard best effort, same as any
    /// multi-shard read.
    pub fn scan(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, Vec<u8>)> {
        let mut out: Vec<(u64, Vec<u8>)> = Vec::new();
        for s in &self.shards {
            out.extend(lock(s).scan(lo, hi, limit));
        }
        out.sort_unstable_by_key(|&(k, _)| k);
        out.truncate(limit);
        out
    }

    /// Total live keys across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// Is every shard empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run `f` with shard `i` locked (stats scraping, telemetry, crash
    /// plumbing in tests).
    pub fn with_shard<R>(&self, i: usize, f: impl FnOnce(&mut Shard) -> R) -> R {
        f(&mut self.shard(i))
    }

    /// Cumulative runtime counters summed over shards.
    pub fn stats(&self) -> FaseStats {
        self.shards.iter().map(|s| lock(s).stats()).sum()
    }

    /// Per-window counters summed over shards (each shard's
    /// [`Shard::take_stats`] interval delta).
    pub fn take_stats(&self) -> FaseStats {
        self.shards.iter().map(|s| lock(s).take_stats()).sum()
    }

    /// Current software-cache capacity per shard (`None` entries for
    /// non-SC policies).
    pub fn sc_capacities(&self) -> Vec<Option<usize>> {
        self.shards.iter().map(|s| lock(s).sc_capacity()).collect()
    }

    /// Live-controller capacity decisions per shard.
    pub fn chosen(&self) -> Vec<Vec<CapacityChoice>> {
        self.shards
            .iter()
            .map(|s| lock(s).chosen().to_vec())
            .collect()
    }

    /// Every `(key, value)` pair across shards, sorted by key.
    pub fn dump(&self) -> Vec<(u64, Vec<u8>)> {
        let mut all: Vec<(u64, Vec<u8>)> =
            self.shards.iter().flat_map(|s| lock(s).dump()).collect();
        all.sort_unstable_by_key(|&(k, _)| k);
        all
    }

    /// Crash every shard under `mode` and recover them all.
    pub fn crash_and_recover_all(&self, mode: &CrashMode) {
        for s in &self.shards {
            lock(s).crash_and_recover(mode);
        }
    }

    /// Restart every shard's adaptation measurement (see
    /// [`Shard::reset_sampler`]); done after bulk load so capacity
    /// decisions reflect the serving stream.
    pub fn reset_samplers(&self) {
        for s in &self.shards {
            lock(s).reset_sampler();
        }
    }

    /// Flush every shard's buffered state (clean shutdown).
    pub fn sync_all(&self) {
        for s in &self.shards {
            lock(s).sync();
        }
    }

    fn shard(&self, i: usize) -> std::sync::MutexGuard<'_, Shard> {
        lock(&self.shards[i])
    }
}

fn lock(m: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            // A worker panicked while holding this shard — possibly
            // mid-FASE, leaving an open section, a stale flush buffer,
            // and undrained ring entries. Merely taking the guard (the
            // old behaviour) leaked all of that: the next op nested
            // inside the abandoned section and nothing ever committed
            // again. Heal the runtime (rollback + drop volatile
            // residue) before handing the shard out.
            let mut g = poisoned.into_inner();
            g.heal_after_panic();
            m.clear_poison();
            g
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvcache_core::PolicyKind;

    fn cfg(shards: usize) -> KvConfig {
        KvConfig {
            shards,
            shard: ShardConfig {
                buckets: 64,
                data_len: 1 << 18,
                log_len: 1 << 15,
                policy: PolicyKind::ScFixed { capacity: 8 },
                adapt: None,
                pipelined: false,
            },
        }
    }

    #[test]
    fn routing_is_stable_and_total() {
        let store = KvStore::new(&cfg(4));
        for k in 0..1000u64 {
            let s = store.shard_of(k);
            assert!(s < 4);
            assert_eq!(s, store.shard_of(k), "stable");
        }
    }

    #[test]
    fn routing_spreads_keys_across_shards() {
        let store = KvStore::new(&cfg(8));
        let mut counts = [0usize; 8];
        for k in 0..8000u64 {
            counts[store.shard_of(k)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (500..=1500).contains(&c),
                "shard {i} got {c} of 8000 sequential keys"
            );
        }
    }

    #[test]
    fn cross_shard_roundtrip_and_dump() {
        let store = KvStore::new(&cfg(4));
        for k in 0..500u64 {
            assert!(store.put(k, &k.to_le_bytes()));
        }
        assert_eq!(store.len(), 500);
        for k in 0..500u64 {
            assert_eq!(store.get(k).as_deref(), Some(&k.to_le_bytes()[..]));
        }
        for k in (0..500u64).step_by(2) {
            assert!(store.delete(k));
        }
        assert_eq!(store.len(), 250);
        let d = store.dump();
        assert_eq!(d.len(), 250);
        assert!(d.windows(2).all(|w| w[0].0 < w[1].0), "sorted, no dupes");
    }

    #[test]
    fn concurrent_workers_disjoint_keys() {
        let store = KvStore::new(&cfg(4));
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..250u64 {
                        let k = w * 1000 + i;
                        assert!(store.put(k, &k.to_le_bytes()));
                        assert_eq!(store.get(k).as_deref(), Some(&k.to_le_bytes()[..]));
                    }
                });
            }
        });
        assert_eq!(store.len(), 1000);
    }

    /// Regression: a worker panicking mid-FASE used to leave the shard's
    /// runtime with an open section behind a poisoned lock; every later
    /// op then nested inside it (no commit ever ran again) and the
    /// in-flight flush buffer leaked. The poisoned-lock path must heal
    /// the runtime so the store keeps committing.
    #[test]
    fn poisoned_shard_lock_heals_the_abandoned_fase() {
        let store = KvStore::new(&cfg(2));
        for k in 0..100u64 {
            assert!(store.put(k, &k.to_le_bytes()));
        }
        let victim = store.shard_of(7);
        let fases_before = store.stats().fases;
        // panic while holding the shard mid-FASE (poisons the lock)
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.with_shard(victim, |sh| {
                let rt = sh.runtime_mut();
                rt.begin_fase();
                rt.store_u64(4096, 0xDEAD_BEEF);
                panic!("worker dies mid-FASE");
            })
        }));
        assert!(res.is_err());
        // the next access heals: rollback recorded, depth cleared
        store.with_shard(victim, |sh| {
            assert_eq!(sh.runtime_mut().depth(), 0, "abandoned FASE closed");
        });
        assert_eq!(store.stats().rollbacks, 1);
        // ops on the healed shard commit again (the regression froze
        // the fase counter forever)
        assert!(store.put(7, b"after-heal"));
        assert!(store.stats().fases > fases_before);
        assert_eq!(store.get(7).as_deref(), Some(&b"after-heal"[..]));
        // and the healed state is crash-consistent
        let expect = store.dump();
        store.crash_and_recover_all(&CrashMode::StrictDurableOnly);
        assert_eq!(store.dump(), expect);
    }

    #[test]
    fn store_survives_crash_on_every_shard() {
        let store = KvStore::new(&cfg(4));
        for k in 0..400u64 {
            store.put(k, &(k ^ 0xff).to_le_bytes());
        }
        let expect = store.dump();
        store.crash_and_recover_all(&CrashMode::AllInFlightLands);
        assert_eq!(store.dump(), expect);
    }
}
