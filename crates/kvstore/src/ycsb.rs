//! YCSB-style concurrent load generation for [`KvStore`]: zipfian or
//! uniform key choice, the classic mixes A–F (reads, updates, inserts,
//! short range scans, read-modify-writes), deterministic per-worker
//! seeds, and open- or closed-loop issue.
//!
//! The harness mirrors the paper's memcached evaluation shape: a
//! long-running store serving a skewed key-popularity stream while each
//! shard's adaptation controller samples and resizes its software
//! cache. The main thread scrapes per-window [`FaseStats`] deltas from
//! the shards *while they serve* (via [`Shard::take_stats`]), yielding
//! the per-window flush ratios `repro kv-bench` reports.
//!
//! [`Shard::take_stats`]: crate::shard::Shard::take_stats

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use nvcache_fase::FaseStats;
use nvcache_telemetry::{
    Clock, MonoClock, Recorder, SpanId, TelemetryConfig, TelemetrySnapshot, ThreadRecorder,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::engine::Engine;
use crate::server::KvServer;
use crate::store::KvStore;

/// Anything the loadgen can drive: the direct [`KvStore`] (callers
/// lock shards themselves) or the concurrent [`KvServer`] (requests
/// ride per-shard submission queues into cross-client group commits).
/// Data ops are issued from the worker threads; the stats pair is
/// scraped from the main thread while the run serves.
pub trait KvTarget: Sync {
    /// Look up `key`.
    fn get(&self, key: u64) -> Option<Vec<u8>>;
    /// Insert or update `key → value`.
    fn put(&self, key: u64, value: &[u8]) -> bool;
    /// Apply a write batch (one FASE per involved shard).
    fn put_many(&self, items: &[(u64, Vec<u8>)]) -> bool;
    /// Range scan `lo..=hi`, at most `limit` entries, sorted by key.
    fn scan(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, Vec<u8>)>;
    /// Interval-delta counters summed over shards.
    fn take_stats(&self) -> FaseStats;
    /// Restart adaptation measurement (post-load).
    fn reset_samplers(&self);
}

impl KvTarget for KvStore {
    fn get(&self, key: u64) -> Option<Vec<u8>> {
        KvStore::get(self, key)
    }
    fn put(&self, key: u64, value: &[u8]) -> bool {
        KvStore::put(self, key, value)
    }
    fn put_many(&self, items: &[(u64, Vec<u8>)]) -> bool {
        KvStore::put_many(self, items)
    }
    fn scan(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, Vec<u8>)> {
        KvStore::scan(self, lo, hi, limit)
    }
    fn take_stats(&self) -> FaseStats {
        KvStore::take_stats(self)
    }
    fn reset_samplers(&self) {
        KvStore::reset_samplers(self)
    }
}

impl<E: Engine> KvTarget for KvServer<E> {
    fn get(&self, key: u64) -> Option<Vec<u8>> {
        self.handle().get(key)
    }
    fn put(&self, key: u64, value: &[u8]) -> bool {
        self.handle().put(key, value)
    }
    fn put_many(&self, items: &[(u64, Vec<u8>)]) -> bool {
        self.handle().put_many(items)
    }
    fn scan(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, Vec<u8>)> {
        self.handle().scan(lo, hi, limit)
    }
    fn take_stats(&self) -> FaseStats {
        KvServer::take_stats(self)
    }
    fn reset_samplers(&self) {
        KvServer::reset_samplers(self)
    }
}

/// The standard YCSB core mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// 50% reads / 50% updates (update-heavy).
    A,
    /// 95% reads / 5% updates (read-mostly).
    B,
    /// 100% reads.
    C,
    /// 90% reads / 5% updates / 5% inserts of fresh keys (the
    /// insert-bearing mix; YCSB-D-shaped working-set growth).
    D,
    /// 95% short range scans / 5% inserts (YCSB-E; the ordered-engine
    /// workload — scan lengths drawn zipfian up to
    /// [`YcsbConfig::max_scan_len`]).
    E,
    /// 50% reads / 50% read-modify-writes (YCSB-F).
    F,
}

/// Per-op-type fractions of one [`Mix`]; sums to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Point reads.
    pub read: f64,
    /// In-place updates of loaded keys.
    pub update: f64,
    /// Inserts of fresh keys.
    pub insert: f64,
    /// Short range scans.
    pub scan: f64,
    /// Read-modify-writes.
    pub rmw: f64,
}

impl Mix {
    /// `(read, update, insert)` fractions; sums to 1 for the scan-free
    /// mixes A–D (E and F carry scan/rmw weight — see
    /// [`Mix::op_mix`]).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let m = self.op_mix();
        (m.read, m.update, m.insert)
    }

    /// Full per-op-type fractions (always sums to 1).
    pub fn op_mix(&self) -> OpMix {
        let (read, update, insert, scan, rmw) = match self {
            Mix::A => (0.50, 0.50, 0.0, 0.0, 0.0),
            Mix::B => (0.95, 0.05, 0.0, 0.0, 0.0),
            Mix::C => (1.0, 0.0, 0.0, 0.0, 0.0),
            Mix::D => (0.90, 0.05, 0.05, 0.0, 0.0),
            Mix::E => (0.0, 0.0, 0.05, 0.95, 0.0),
            Mix::F => (0.50, 0.0, 0.0, 0.0, 0.50),
        };
        OpMix {
            read,
            update,
            insert,
            scan,
            rmw,
        }
    }

    /// YCSB letter.
    pub fn label(&self) -> &'static str {
        match self {
            Mix::A => "A",
            Mix::B => "B",
            Mix::C => "C",
            Mix::D => "D",
            Mix::E => "E",
            Mix::F => "F",
        }
    }
}

/// Key-popularity distribution over the loaded key space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with parameter `theta` (YCSB default 0.99).
    Zipfian {
        /// Skew; 0 degenerates to uniform, 0.99 is the YCSB default.
        theta: f64,
    },
}

/// Precomputed zipfian sampler (Gray et al., the YCSB generator): rank
/// `k` is drawn with probability ∝ `1/(k+1)^theta`. Hot ranks are the
/// low ids; the store's routing hash scatters them over shards.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: f64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Sampler over ranks `0..n`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 2 && theta > 0.0 && theta < 1.0);
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n: n as f64,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Map a uniform draw `u ∈ [0,1)` to a rank.
    pub fn rank(&self, u: f64) -> u64 {
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n as u64 - 1)
    }
}

/// A single mid-run change of the zipfian skew: the minimal workload
/// phase shift the adaptation-convergence checker needs. After
/// `at_frac` of each worker's ops, key popularity switches to a
/// zipfian with the new `theta` (regardless of the initial
/// distribution), moving the working-set knee so the controller must
/// re-find it. A fuller non-stationary suite is future work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThetaShift {
    /// Fraction of each worker's ops after which the shift happens
    /// (clamped into `[0, 1]`).
    pub at_frac: f64,
    /// Post-shift zipfian theta (must satisfy `0 < theta < 1`).
    pub theta: f64,
}

/// Shape of one benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct YcsbConfig {
    /// Keys preloaded before the timed run.
    pub keys: usize,
    /// Operations each worker issues.
    pub ops_per_worker: usize,
    /// Concurrent workers (closed loop: one outstanding op each).
    pub workers: usize,
    /// Operation mix.
    pub mix: Mix,
    /// Key-popularity distribution.
    pub dist: KeyDist,
    /// Value bytes (fixed length keeps updates on the one-FASE
    /// in-place path).
    pub value_len: usize,
    /// Base seed; worker `w` derives its own deterministic stream.
    pub seed: u64,
    /// Writes per group-commit transaction: `1` issues each write as
    /// its own FASE; `> 1` buffers writes and applies them with
    /// [`KvStore::put_many`] (one FASE per involved shard). Batching is
    /// what gives write FASEs intra-FASE locality for the software
    /// cache — single-write FASEs have none, by construction.
    pub batch: usize,
    /// Open-loop pacing: target op rate *per worker*; `None` = closed
    /// loop (issue as fast as the store serves).
    pub target_ops_per_sec: Option<f64>,
    /// Stat windows sampled live during the run.
    pub windows: usize,
    /// Optional single mid-run zipfian skew change (workload phase
    /// shift for convergence measurement).
    pub theta_shift: Option<ThetaShift>,
    /// Span-time every op into per-worker latency histograms
    /// (`kv_get_ns`/`kv_put_ns`/`kv_put_many_ns`/`kv_scan_ns`), merged
    /// in tid order into [`YcsbReport::latency`]. Off by default: the
    /// timed closed loop stays free of clock reads.
    pub latency: bool,
    /// Largest range-scan length for the scan-bearing mixes (YCSB-E);
    /// per-scan lengths are drawn zipfian over `1..=max_scan_len`, so
    /// most scans are short and a few sweep the full window.
    pub max_scan_len: usize,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            keys: 10_000,
            ops_per_worker: 25_000,
            workers: 4,
            mix: Mix::A,
            dist: KeyDist::Zipfian { theta: 0.99 },
            value_len: 56,
            seed: 42,
            batch: 1,
            target_ops_per_sec: None,
            windows: 8,
            theta_shift: None,
            latency: false,
            max_scan_len: 100,
        }
    }
}

/// One live stat window scraped mid-run.
#[derive(Debug, Clone, Copy)]
pub struct WindowStats {
    /// Total operations completed when the window closed.
    pub ops: u64,
    /// Interval-delta counters across all shards for the window.
    pub stats: FaseStats,
}

/// Outcome of a [`run`].
#[derive(Debug, Clone)]
pub struct YcsbReport {
    /// Operations completed (= workers × ops_per_worker).
    pub ops: u64,
    /// Reads issued.
    pub reads: u64,
    /// Updates issued.
    pub updates: u64,
    /// Inserts issued.
    pub inserts: u64,
    /// Range scans issued (mix E).
    pub scans: u64,
    /// Read-modify-writes issued (mix F).
    pub rmws: u64,
    /// Reads that found no value (0 for mixes without deletes).
    pub not_found: u64,
    /// Inserts/updates refused by a full shard heap.
    pub rejected: u64,
    /// Timed-run wall seconds.
    pub elapsed_secs: f64,
    /// `ops / elapsed`.
    pub throughput_ops_per_sec: f64,
    /// Live per-window stats (flush ratio per window via
    /// [`FaseStats::flush_ratio`]).
    pub windows: Vec<WindowStats>,
    /// Merged per-op latency telemetry (worker shards merged in tid
    /// order); `Some` iff [`YcsbConfig::latency`] was set.
    pub latency: Option<TelemetrySnapshot>,
}

/// Deterministic value bytes for `(key, version)`.
pub fn value_bytes(key: u64, version: u64, len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(len);
    let mut z = key ^ version.rotate_left(17) ^ 0x5bf0_3635;
    while v.len() < len {
        z = z
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        v.extend_from_slice(&z.to_le_bytes());
    }
    v.truncate(len);
    v
}

/// Preload `keys` keys (version-0 values) — the YCSB load phase.
/// Returns how many inserts the store accepted (all, unless a shard
/// heap is undersized).
pub fn load(store: &KvStore, keys: usize, value_len: usize) -> usize {
    load_on(store, keys, value_len)
}

/// [`load`] over any [`KvTarget`] (direct store or concurrent server).
pub fn load_on<T: KvTarget>(target: &T, keys: usize, value_len: usize) -> usize {
    (0..keys as u64)
        .filter(|&k| target.put(k, &value_bytes(k, 0, value_len)))
        .count()
}

/// Open-loop latency accounting: elapsed nanoseconds from an op's
/// *intended* (scheduled) arrival to its completion. Measuring from
/// the intended time — not the actual submit time — is what defeats
/// coordinated omission: when the store stalls and the issuing loop
/// falls behind its schedule, every scheduled-but-delayed op is
/// charged the queueing delay the stall imposed on it, instead of the
/// stall silently compressing into one long sample.
#[inline]
pub fn scheduled_latency_ns(intended_ns: u64, completed_ns: u64) -> u64 {
    completed_ns.saturating_sub(intended_ns)
}

/// Run `f` under latency accounting when a recorder is live; plain
/// call otherwise. Closed loop (`intended_ns` = `None`) spans from the
/// call (the span guard reads the clock twice); open loop measures
/// from the op's scheduled arrival via [`scheduled_latency_ns`].
#[inline]
fn timed<T>(
    rec: &mut Option<ThreadRecorder>,
    clock: &MonoClock,
    id: SpanId,
    intended_ns: Option<u64>,
    f: impl FnOnce() -> T,
) -> T {
    match rec {
        Some(r) => match intended_ns {
            Some(t0) => {
                let out = f();
                r.observe(id.hist(), scheduled_latency_ns(t0, clock.now_ns()));
                out
            }
            None => {
                let _g = r.span(clock, id);
                f()
            }
        },
        None => f(),
    }
}

/// Run the timed phase of `cfg` against `store` (already loaded).
///
/// Closed loop by default; set [`YcsbConfig::target_ops_per_sec`] for
/// open-loop pacing. Worker `w` uses seed `cfg.seed ⊕ mix(w)`, so runs
/// are reproducible per worker regardless of interleaving.
pub fn run(store: &KvStore, cfg: &YcsbConfig) -> YcsbReport {
    run_on(store, cfg)
}

/// [`run`] over any [`KvTarget`]: the same loadgen drives the direct
/// store and the concurrent server, so their measurements differ only
/// in the serving path.
pub fn run_on<T: KvTarget>(store: &T, cfg: &YcsbConfig) -> YcsbReport {
    assert!(cfg.workers >= 1 && cfg.ops_per_worker >= 1);
    // One read-only zipfian table, shared by reference across every
    // client thread below. The zetan normalizer is an O(keys) sum — at
    // memcached-scale key counts, recomputing (or deep-copying) it per
    // worker is measurable setup cost for zero benefit: sampling only
    // ever reads the five precomputed constants.
    let zipf = match cfg.dist {
        KeyDist::Zipfian { theta } => Some(Zipfian::new(cfg.keys.max(2), theta)),
        KeyDist::Uniform => None,
    };
    // the post-shift sampler (precomputed once; zetan is O(keys))
    let zipf_shifted = cfg
        .theta_shift
        .map(|s| Zipfian::new(cfg.keys.max(2), s.theta));
    let shift_at = cfg
        .theta_shift
        .map(|s| (s.at_frac.clamp(0.0, 1.0) * cfg.ops_per_worker as f64) as usize);
    let m = cfg.mix.op_mix();
    let (read_f, update_f, insert_f, scan_f) = (m.read, m.update, m.insert, m.scan);
    // scan lengths are themselves zipfian (YCSB-E: mostly-short scans
    // with an occasional window-wide sweep)
    let scan_len = (scan_f > 0.0).then(|| Zipfian::new(cfg.max_scan_len.max(2), 0.99));
    let recorders: Mutex<Vec<ThreadRecorder>> = Mutex::new(Vec::new());
    let completed = AtomicU64::new(0);
    let next_key = AtomicU64::new(cfg.keys as u64);
    let reads = AtomicU64::new(0);
    let updates = AtomicU64::new(0);
    let inserts = AtomicU64::new(0);
    let scans = AtomicU64::new(0);
    let rmws = AtomicU64::new(0);
    let not_found = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let total_ops = (cfg.workers * cfg.ops_per_worker) as u64;

    // drop counters accumulated during the load phase so windows report
    // the serving phase only, and restart adaptation measurement so the
    // samplers see the serving stream, not the loader's
    store.take_stats();
    store.reset_samplers();

    let start = Instant::now();
    let mut windows = Vec::with_capacity(cfg.windows + 1);
    std::thread::scope(|scope| {
        for w in 0..cfg.workers {
            // shared read-only tables — not per-worker clones
            let zipf = &zipf;
            let zipf_shifted = &zipf_shifted;
            let scan_len = &scan_len;
            let (completed, next_key) = (&completed, &next_key);
            let (reads, updates, inserts) = (&reads, &updates, &inserts);
            let (scans, rmws) = (&scans, &rmws);
            let (not_found, rejected) = (&not_found, &rejected);
            let recorders = &recorders;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(
                    cfg.seed ^ (w as u64).wrapping_mul(0xa076_1d64_78bd_642f),
                );
                let clock = MonoClock::new();
                let mut rec = cfg
                    .latency
                    .then(|| ThreadRecorder::new(w as u32, &TelemetryConfig::default()));
                // group-commit buffer (batch > 1): writes park here and
                // land together via put_many as one FASE per shard;
                // under open loop the batch is charged from its first
                // member's intended arrival (the op that waited longest)
                let mut pending: Vec<(u64, Vec<u8>)> = Vec::new();
                let mut pending_intended: Option<u64> = None;
                let flush = |pending: &mut Vec<(u64, Vec<u8>)>,
                             pending_intended: &mut Option<u64>,
                             rec: &mut Option<ThreadRecorder>| {
                    if pending.is_empty() {
                        return;
                    }
                    let intended = pending_intended.take();
                    if !timed(rec, &clock, SpanId::KvPutMany, intended, || {
                        store.put_many(pending)
                    }) {
                        rejected.fetch_add(pending.len() as u64, Ordering::Relaxed);
                    }
                    completed.fetch_add(pending.len() as u64, Ordering::Relaxed);
                    pending.clear();
                };
                for i in 0..cfg.ops_per_worker {
                    // open loop: op i is *intended* at t0 + i/rate on
                    // the worker's own clock; wait out any head start,
                    // and charge latency from this scheduled instant
                    let intended_ns = cfg
                        .target_ops_per_sec
                        .map(|rate| (i as f64 * 1e9 / rate) as u64);
                    if let Some(due) = intended_ns {
                        while clock.now_ns() < due {
                            std::hint::spin_loop();
                        }
                    }
                    // after the phase shift, key popularity follows the
                    // shifted zipfian (every worker shifts at the same
                    // local op index: deterministic per worker)
                    let sampler = match (&zipf_shifted, shift_at) {
                        (Some(z2), Some(at)) if i >= at => Some(z2),
                        _ => zipf.as_ref(),
                    };
                    let key = match sampler {
                        Some(z) => z.rank(rng.gen::<f64>()),
                        None => rng.gen_range(0..cfg.keys as u64),
                    };
                    let r = rng.gen::<f64>();
                    if r < read_f {
                        reads.fetch_add(1, Ordering::Relaxed);
                        if timed(&mut rec, &clock, SpanId::KvGet, intended_ns, || {
                            store.get(key)
                        })
                        .is_none()
                        {
                            not_found.fetch_add(1, Ordering::Relaxed);
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if r >= read_f + update_f + insert_f {
                        if r < read_f + update_f + insert_f + scan_f {
                            // range scan from the sampled key (mix E)
                            scans.fetch_add(1, Ordering::Relaxed);
                            let len = scan_len
                                .as_ref()
                                .map_or(1, |z| z.rank(rng.gen::<f64>()) + 1)
                                as usize;
                            let hi = key.saturating_add(len as u64 - 1);
                            let got = timed(&mut rec, &clock, SpanId::KvScan, intended_ns, || {
                                store.scan(key, hi, len)
                            });
                            if got.is_empty() {
                                not_found.fetch_add(1, Ordering::Relaxed);
                            }
                        } else {
                            // read-modify-write (mix F): reread the
                            // current value, then write a successor
                            // version; the composite is charged to the
                            // put histogram as one sample
                            rmws.fetch_add(1, Ordering::Relaxed);
                            let v = value_bytes(key, i as u64 + 1, cfg.value_len);
                            let ok = timed(&mut rec, &clock, SpanId::KvPut, intended_ns, || {
                                if store.get(key).is_none() {
                                    not_found.fetch_add(1, Ordering::Relaxed);
                                }
                                store.put(key, &v)
                            });
                            if !ok {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let (k, v) = if r < read_f + update_f {
                        updates.fetch_add(1, Ordering::Relaxed);
                        (key, value_bytes(key, i as u64 + 1, cfg.value_len))
                    } else {
                        inserts.fetch_add(1, Ordering::Relaxed);
                        let k = next_key.fetch_add(1, Ordering::Relaxed);
                        (k, value_bytes(k, 0, cfg.value_len))
                    };
                    if cfg.batch > 1 {
                        if pending.is_empty() {
                            pending_intended = intended_ns;
                        }
                        pending.push((k, v));
                        if pending.len() >= cfg.batch {
                            flush(&mut pending, &mut pending_intended, &mut rec);
                        }
                    } else {
                        if !timed(&mut rec, &clock, SpanId::KvPut, intended_ns, || {
                            store.put(k, &v)
                        }) {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                flush(&mut pending, &mut pending_intended, &mut rec);
                if let Some(r) = rec {
                    recorders.lock().unwrap_or_else(|e| e.into_inner()).push(r);
                }
            });
        }
        // live window scraping while the workers serve
        let mut next_window = 1u64;
        while completed.load(Ordering::Relaxed) < total_ops {
            let done = completed.load(Ordering::Relaxed);
            if cfg.windows > 0 && done * cfg.windows as u64 >= next_window * total_ops {
                windows.push(WindowStats {
                    ops: done,
                    stats: store.take_stats(),
                });
                next_window += 1;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    // close the final window
    let tail = store.take_stats();
    if tail != FaseStats::default() || windows.is_empty() {
        windows.push(WindowStats {
            ops: total_ops,
            stats: tail,
        });
    }
    // merge worker latency shards in tid order (the snapshot
    // determinism contract; arrival order here is scheduling-dependent)
    let latency = cfg.latency.then(|| {
        let mut shards = recorders.into_inner().unwrap_or_else(|e| e.into_inner());
        shards.sort_by_key(|r| r.tid());
        TelemetrySnapshot::from_threads(shards)
    });
    YcsbReport {
        ops: total_ops,
        reads: reads.into_inner(),
        updates: updates.into_inner(),
        inserts: inserts.into_inner(),
        scans: scans.into_inner(),
        rmws: rmws.into_inner(),
        not_found: not_found.into_inner(),
        rejected: rejected.into_inner(),
        elapsed_secs: elapsed,
        throughput_ops_per_sec: total_ops as f64 / elapsed.max(1e-9),
        windows,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardConfig;
    use crate::store::KvConfig;
    use nvcache_core::PolicyKind;

    fn small_store(shards: usize) -> KvStore {
        KvStore::new(&KvConfig {
            shards,
            shard: ShardConfig {
                buckets: 128,
                data_len: 1 << 19,
                log_len: 1 << 15,
                policy: PolicyKind::ScFixed { capacity: 8 },
                adapt: None,
                pipelined: false,
            },
        })
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0u64; 1000];
        for _ in 0..50_000 {
            counts[z.rank(rng.gen::<f64>()) as usize] += 1;
        }
        let head: u64 = counts[..10].iter().sum();
        assert!(
            head > 15_000,
            "top-10 ranks should draw >30% of a theta=0.99 stream, got {head}"
        );
        assert!(counts[0] > counts[500], "rank 0 beats the tail");
    }

    #[test]
    fn mix_fractions_sum_to_one() {
        for m in [Mix::A, Mix::B, Mix::C, Mix::D] {
            let (r, u, i) = m.fractions();
            assert!((r + u + i - 1.0).abs() < 1e-12, "mix {}", m.label());
        }
        for m in [Mix::A, Mix::B, Mix::C, Mix::D, Mix::E, Mix::F] {
            let om = m.op_mix();
            let sum = om.read + om.update + om.insert + om.scan + om.rmw;
            assert!((sum - 1.0).abs() < 1e-12, "op_mix {}", m.label());
        }
    }

    /// Regression for coordinated omission: latency must be charged
    /// from the op's *intended* (scheduled) arrival, so a server stall
    /// inflates the tail of the fixed accounting while the buggy
    /// from-submit accounting hides it — and throughput (one and the
    /// same execution) is identical under both.
    #[test]
    fn open_loop_stall_shifts_p999_not_throughput() {
        use nvcache_telemetry::{Clock, FakeClock, Histogram};

        let period_ns = 1_000u64; // one op intended every µs
        let service_ns = 400u64; // store serves in 0.4 µs
        let stall_ns = 2_000_000u64; // a 2 ms server stall
        let ops = 4_000u64;
        let stall_at = 500u64;

        // deterministic simulation of the worker loop: FakeClock time
        // passes only when we advance it (waiting or being served)
        let clock = FakeClock::new(0, 0);
        let mut fixed = Histogram::new(); // from intended arrival
        let mut buggy = Histogram::new(); // from actual submit
        for i in 0..ops {
            let intended = i * period_ns;
            let now = clock.now_ns();
            if now < intended {
                clock.advance(intended - now); // pacing wait
            }
            if i == stall_at {
                clock.advance(stall_ns); // the deliberate stall
            }
            let submit = clock.now_ns();
            clock.advance(service_ns); // the op itself
            let done = clock.now_ns();
            fixed.observe(scheduled_latency_ns(intended, done));
            buggy.observe(done - submit);
        }
        let end_ns = clock.now_ns();

        // same execution ⇒ same throughput either way
        let throughput = ops as f64 / (end_ns as f64 / 1e9);
        assert!(throughput > 0.0);

        let (_, _, fixed_p999) = fixed.percentiles();
        let (_, _, buggy_p999) = buggy.percentiles();
        // the buggy accounting sees every op at ~service time, hiding
        // the stall entirely except for one sample out of 4000 (below
        // p999 resolution); the fixed accounting charges the backlog
        // to every op scheduled during the stall's drain
        assert!(
            buggy_p999 < 10 * service_ns,
            "from-submit accounting should hide the stall, p999 = {buggy_p999}"
        );
        assert!(
            fixed_p999 >= stall_ns / 2,
            "from-intended accounting must surface the stall in p999, \
             got {fixed_p999} vs stall {stall_ns}"
        );
        assert_eq!(
            fixed.count, buggy.count,
            "both accountings observed every op (throughput unchanged)"
        );
    }

    #[test]
    fn value_bytes_deterministic_and_sized() {
        assert_eq!(value_bytes(5, 1, 56), value_bytes(5, 1, 56));
        assert_ne!(value_bytes(5, 1, 56), value_bytes(5, 2, 56));
        assert_eq!(value_bytes(9, 0, 13).len(), 13);
        assert_eq!(value_bytes(9, 0, 0).len(), 0);
    }

    #[test]
    fn closed_loop_run_counts_reconcile() {
        let store = small_store(4);
        assert_eq!(load(&store, 500, 32), 500);
        let cfg = YcsbConfig {
            keys: 500,
            ops_per_worker: 1000,
            workers: 4,
            mix: Mix::A,
            value_len: 32,
            windows: 4,
            ..Default::default()
        };
        let loaded_stores = store.stats().stores;
        let rep = run(&store, &cfg);
        assert_eq!(rep.ops, 4000);
        assert_eq!(rep.reads + rep.updates + rep.inserts, 4000);
        assert_eq!(rep.not_found, 0, "all read keys were loaded");
        assert_eq!(rep.rejected, 0);
        assert!(rep.throughput_ops_per_sec > 0.0);
        assert!(!rep.windows.is_empty());
        let win_stores: u64 = rep.windows.iter().map(|w| w.stats.stores).sum();
        assert_eq!(
            win_stores,
            store.stats().stores - loaded_stores,
            "windows cover exactly the serving phase (load excluded)"
        );
        // mix A updated roughly half the ops; every update is one FASE
        assert!(rep.updates > 1500 && rep.updates < 2500, "{}", rep.updates);
    }

    #[test]
    fn mix_c_is_read_only() {
        let store = small_store(2);
        load(&store, 200, 16);
        let before = store.stats();
        let rep = run(
            &store,
            &YcsbConfig {
                keys: 200,
                ops_per_worker: 500,
                workers: 2,
                mix: Mix::C,
                value_len: 16,
                ..Default::default()
            },
        );
        assert_eq!(rep.updates + rep.inserts, 0);
        assert_eq!(store.stats().stores, before.stores, "no persistent writes");
    }

    #[test]
    fn mix_d_inserts_fresh_keys() {
        let store = small_store(2);
        load(&store, 300, 16);
        let rep = run(
            &store,
            &YcsbConfig {
                keys: 300,
                ops_per_worker: 800,
                workers: 2,
                mix: Mix::D,
                value_len: 16,
                seed: 9,
                ..Default::default()
            },
        );
        assert!(rep.inserts > 0);
        assert_eq!(store.len(), 300 + rep.inserts as usize);
    }

    #[test]
    fn mix_e_scans_with_zipfian_lengths() {
        use nvcache_telemetry::HistId;
        let store = small_store(2);
        load(&store, 300, 16);
        let rep = run(
            &store,
            &YcsbConfig {
                keys: 300,
                ops_per_worker: 400,
                workers: 2,
                mix: Mix::E,
                value_len: 16,
                seed: 11,
                windows: 0,
                latency: true,
                max_scan_len: 50,
                ..Default::default()
            },
        );
        assert_eq!(rep.ops, 800);
        assert_eq!(rep.reads + rep.updates + rep.rmws, 0);
        assert_eq!(rep.scans + rep.inserts, 800);
        assert!(rep.scans > 700, "~95% scans, got {}", rep.scans);
        assert!(rep.inserts > 0, "~5% inserts");
        assert_eq!(
            rep.not_found, 0,
            "every scan starts at a loaded key: none comes back empty"
        );
        let snap = rep.latency.unwrap();
        assert_eq!(snap.hist(HistId::KvScanNs).count, rep.scans);
    }

    #[test]
    fn mix_f_read_modify_writes() {
        let store = small_store(2);
        load(&store, 300, 16);
        let rep = run(
            &store,
            &YcsbConfig {
                keys: 300,
                ops_per_worker: 400,
                workers: 2,
                mix: Mix::F,
                value_len: 16,
                seed: 13,
                windows: 0,
                ..Default::default()
            },
        );
        assert_eq!(rep.reads + rep.rmws, 800);
        assert!(rep.rmws > 300 && rep.rmws < 500, "~half rmw: {}", rep.rmws);
        assert_eq!(rep.not_found, 0, "rmw rereads always hit loaded keys");
        assert_eq!(store.len(), 300, "rmw rewrites in place, no growth");
        assert!(store.stats().stores > 0, "rmws persisted new versions");
    }

    #[test]
    fn open_loop_paces_the_issue_rate() {
        let store = small_store(2);
        load(&store, 100, 16);
        let rep = run(
            &store,
            &YcsbConfig {
                keys: 100,
                ops_per_worker: 200,
                workers: 2,
                mix: Mix::B,
                value_len: 16,
                target_ops_per_sec: Some(10_000.0),
                windows: 2,
                ..Default::default()
            },
        );
        // 200 ops at 10k/s per worker ≥ 20ms; closed loop would finish
        // far faster on this trivial store
        assert!(
            rep.elapsed_secs >= 0.018,
            "open loop must pace: {}s",
            rep.elapsed_secs
        );
    }

    #[test]
    fn latency_recording_spans_every_op() {
        use nvcache_telemetry::HistId;
        let store = small_store(2);
        load(&store, 200, 24);
        let rep = run(
            &store,
            &YcsbConfig {
                keys: 200,
                ops_per_worker: 400,
                workers: 2,
                mix: Mix::A,
                value_len: 24,
                windows: 0,
                latency: true,
                ..Default::default()
            },
        );
        let snap = rep.latency.expect("latency snapshot requested");
        assert_eq!(snap.threads, 2, "one shard per worker");
        assert_eq!(snap.hist(HistId::KvGetNs).count, rep.reads);
        assert_eq!(
            snap.hist(HistId::KvPutNs).count,
            rep.updates + rep.inserts,
            "batch=1: every write is one put span"
        );
        assert!(snap.hist(HistId::KvPutManyNs).is_empty());
        let (p50, p99, p999) = snap.hist(HistId::KvGetNs).percentiles();
        assert!(p50 <= p99 && p99 <= p999);
    }

    #[test]
    fn batched_runs_record_put_many_spans() {
        use nvcache_telemetry::HistId;
        let store = small_store(2);
        load(&store, 200, 24);
        let rep = run(
            &store,
            &YcsbConfig {
                keys: 200,
                ops_per_worker: 400,
                workers: 1,
                mix: Mix::A,
                value_len: 24,
                batch: 32,
                windows: 0,
                latency: true,
                ..Default::default()
            },
        );
        let snap = rep.latency.unwrap();
        assert!(snap.hist(HistId::KvPutManyNs).count > 0);
        assert!(snap.hist(HistId::KvPutNs).is_empty(), "writes all batched");
    }

    #[test]
    fn latency_off_reports_none() {
        let store = small_store(2);
        load(&store, 100, 16);
        let rep = run(
            &store,
            &YcsbConfig {
                keys: 100,
                ops_per_worker: 100,
                workers: 1,
                value_len: 16,
                windows: 0,
                ..Default::default()
            },
        );
        assert!(rep.latency.is_none());
    }

    #[test]
    fn theta_shift_is_deterministic_and_changes_the_stream() {
        let mk = |shift: Option<ThetaShift>| {
            let store = small_store(2);
            load(&store, 400, 24);
            run(
                &store,
                &YcsbConfig {
                    keys: 400,
                    ops_per_worker: 600,
                    workers: 1,
                    mix: Mix::A,
                    value_len: 24,
                    seed: 77,
                    windows: 0,
                    theta_shift: shift,
                    ..Default::default()
                },
            );
            store.dump()
        };
        let shift = Some(ThetaShift {
            at_frac: 0.5,
            theta: 0.2,
        });
        assert_eq!(mk(shift), mk(shift), "shifted runs stay reproducible");
        assert_ne!(
            mk(shift),
            mk(None),
            "the shift must actually change the key stream"
        );
    }

    /// The same loadgen drives the concurrent server: counts reconcile,
    /// every write rode a submission queue, and grouped lanes formed
    /// real multi-request batches under 4 closed-loop clients.
    #[test]
    fn run_on_drives_the_concurrent_server() {
        use crate::server::{KvServer, ServerConfig};
        use crate::shard::ShardConfig;
        use crate::store::KvConfig;
        use nvcache_core::PolicyKind;
        let server = KvServer::new(
            &KvConfig {
                shards: 2,
                shard: ShardConfig {
                    buckets: 128,
                    data_len: 1 << 19,
                    log_len: 1 << 15,
                    policy: PolicyKind::ScFixed { capacity: 8 },
                    adapt: None,
                    pipelined: true,
                },
            },
            &ServerConfig::default(),
        );
        assert_eq!(load_on(&server, 400, 24), 400);
        let rep = run_on(
            &server,
            &YcsbConfig {
                keys: 400,
                ops_per_worker: 800,
                workers: 4,
                mix: Mix::A,
                value_len: 24,
                windows: 2,
                ..Default::default()
            },
        );
        assert_eq!(rep.ops, 3200);
        assert_eq!(rep.not_found, 0);
        assert_eq!(rep.rejected, 0);
        assert!(!rep.windows.is_empty());
        let qs = server.queue_stats();
        assert_eq!(qs.enqueued, qs.drained, "no request stranded");
        // load (400) + serving ops all rode the queues
        assert!(qs.drained >= 3200);
        assert_eq!(server.healed_panics(), 0);
        server.shutdown();
    }

    #[test]
    fn deterministic_per_worker_streams() {
        // same seed, same single worker → identical end state
        let mk = || {
            let store = small_store(2);
            load(&store, 200, 24);
            run(
                &store,
                &YcsbConfig {
                    keys: 200,
                    ops_per_worker: 600,
                    workers: 1,
                    mix: Mix::A,
                    value_len: 24,
                    seed: 1234,
                    windows: 0,
                    ..Default::default()
                },
            );
            store.dump()
        };
        assert_eq!(mk(), mk());
    }
}
