//! Acceptance test for live adaptation accuracy: on a zipfian YCSB mix,
//! every shard's *online* knee (timescale-approximate MRC computed by
//! the in-band `BurstSampler`) must land within one MRC bucket of the
//! *offline* exact-Mattson knee computed from the same recorded
//! store-line window — the paper's claim that the cheap approximation
//! picks (nearly) the same capacity as exact stack-distance profiling.
//!
//! Writes are issued in group-commit batches (one FASE per shard per
//! batch): single-write FASEs carry no intra-FASE reuse by construction
//! (FASE renaming hides reuse across commits), so batching is what
//! gives the software cache — and both MRC estimators — a real locality
//! signal to agree on.

use nvcache_core::{AdaptiveConfig, PolicyKind};
use nvcache_kvstore::{
    load, run, AdaptConfig, KeyDist, KvConfig, KvStore, Mix, ShardConfig, ThetaShift, YcsbConfig,
};
use nvcache_locality::{lru_mrc, select_cache_size, KneeConfig};
use nvcache_telemetry::{convergence, CapacityEvent, ConvergenceConfig};

const BURST: usize = 4096;

fn adaptive_store(shards: usize) -> KvStore {
    KvStore::new(&KvConfig {
        shards,
        shard: ShardConfig {
            buckets: 256,
            data_len: 1 << 21,
            log_len: 1 << 17,
            policy: PolicyKind::ScAdaptive(AdaptiveConfig {
                external_control: true,
                ..Default::default()
            }),
            adapt: Some(AdaptConfig {
                burst_len: BURST,
                record_stream: true,
                ..Default::default()
            }),
            pipelined: false,
        },
    })
}

#[test]
fn online_knee_matches_offline_mattson_within_one_bucket() {
    let shards = 4;
    let store = adaptive_store(shards);
    let keys = 2000;
    // value_len ≤ 40 keeps header+value inside one 64-byte class block,
    // so an in-place update is exactly one store line and the exact MRC
    // steps at every size (2-line values quantize it to even sizes);
    // one worker keeps the recorded stream deterministic
    let value_len = 40;
    assert_eq!(load(&store, keys, value_len), keys);
    let rep = run(
        &store,
        &YcsbConfig {
            keys,
            ops_per_worker: 60_000,
            workers: 1,
            mix: Mix::A,
            dist: KeyDist::Zipfian { theta: 0.99 },
            value_len,
            seed: 20_17,
            batch: 128,
            target_ops_per_sec: None,
            windows: 4,
            ..Default::default()
        },
    );
    assert_eq!(rep.not_found, 0);
    assert_eq!(rep.rejected, 0);

    let knee_cfg = KneeConfig::default();
    for s in 0..shards {
        let (choices, window) = store.with_shard(s, |sh| {
            (
                sh.chosen().to_vec(),
                sh.stream().expect("record_stream set")[..BURST].to_vec(),
            )
        });
        assert!(
            !choices.is_empty(),
            "shard {s}: the controller must have fired (enough stores per shard)"
        );
        let online = choices[0];

        // offline oracle: exact Mattson stack-distance MRC over the very
        // window the sampler analyzed, same knee selector
        let exact = lru_mrc(&window, knee_cfg.max_size);
        let offline_knee = select_cache_size(&exact, &knee_cfg);

        let diff = online.knee.abs_diff(offline_knee);
        assert!(
            diff <= 1,
            "shard {s}: online knee {} vs offline exact-Mattson knee {} \
             differ by {} (> one MRC bucket)",
            online.knee,
            offline_knee,
            diff
        );
        // and the installed capacity is the knee plus the safety entry
        assert_eq!(
            online.capacity,
            (online.knee + 1).min(knee_cfg.max_size),
            "shard {s}"
        );
        assert_eq!(
            store.sc_capacities()[s],
            Some(online.capacity),
            "shard {s}: the live cache runs at the chosen capacity"
        );
    }
}

#[test]
fn controller_reconverges_after_theta_shift() {
    // A periodic controller (hibernation on) under a mid-run popularity
    // phase shift: the convergence checker over each shard's decision
    // stream must report a settled pre-phase AND a settled post-phase —
    // the ROADMAP's "does it re-converge" question, asked end to end
    // through the YCSB theta-shift hook rather than on synthetic event
    // streams.
    let shards = 4;
    let store = KvStore::new(&KvConfig {
        shards,
        shard: ShardConfig {
            buckets: 256,
            data_len: 1 << 21,
            log_len: 1 << 17,
            policy: PolicyKind::ScAdaptive(AdaptiveConfig {
                external_control: true,
                ..Default::default()
            }),
            adapt: Some(AdaptConfig {
                burst_len: 2048,
                hibernation: Some(1024),
                ..Default::default()
            }),
            pipelined: false,
        },
    });
    let keys = 2000;
    let value_len = 40;
    assert_eq!(load(&store, keys, value_len), keys);
    // the shard op counter also ticks during load; record it so the
    // serving-phase midpoint can be located on each shard's op axis
    let load_ops: Vec<u64> = (0..shards)
        .map(|s| store.with_shard(s, |sh| sh.ops()))
        .collect();
    let rep = run(
        &store,
        &YcsbConfig {
            keys,
            ops_per_worker: 240_000,
            workers: 1,
            mix: Mix::A,
            dist: KeyDist::Zipfian { theta: 0.99 },
            value_len,
            seed: 20_17,
            batch: 128,
            windows: 1,
            // halfway through, popularity flattens sharply
            theta_shift: Some(ThetaShift {
                at_frac: 0.5,
                theta: 0.2,
            }),
            ..Default::default()
        },
    );
    assert_eq!(rep.rejected, 0);
    // The controller's knee jitters a few lines between MRC windows
    // even in steady state (sampled bursts over a zipfian stream), so
    // "settled" here means a 2-decision suffix within 5 lines — tight
    // enough to distinguish hunting (20+ line swings right after the
    // shift) from convergence.
    let cfg = ConvergenceConfig {
        tol: 5,
        min_stable: 2,
    };
    let (mut pre_caps, mut post_caps) = (0u64, 0u64);
    for (s, choices) in store.chosen().into_iter().enumerate() {
        let evs: Vec<CapacityEvent> = choices
            .iter()
            .map(|c| CapacityEvent {
                t: c.op,
                knee: c.knee as u64,
                capacity: c.capacity as u64,
            })
            .collect();
        assert!(
            evs.len() >= 4,
            "shard {s}: periodic controller must keep deciding (got {})",
            evs.len()
        );
        // A single worker spreads ops evenly over shards, so the shift
        // lands at the midpoint of each shard's serving ops. Add a 10%
        // settle margin: the MRC window straddling the shift mixes both
        // phases and belongs to neither.
        let serving = store.with_shard(s, |sh| sh.ops()) - load_ops[s];
        let shift_t = load_ops[s] + serving / 2 + serving / 10;
        let r = convergence::analyze_shift(&evs, shift_t, &cfg);
        assert!(r.pre.windows >= 1, "shard {s}: no pre-shift decisions");
        assert!(
            r.reconverged,
            "shard {s}: controller failed to settle after the phase \
             shift: {r:?}"
        );
        pre_caps += r.pre.final_capacity;
        post_caps += r.post.final_capacity;
        // and the full-stream verdict agrees with what kv-bench reports
        let full = convergence::analyze(&evs, &ConvergenceConfig::default());
        assert!(full.windows_to_knee.is_some());
    }
    // flattening popularity (theta 0.99 -> 0.2) widens each batch's
    // working set, so the re-converged capacities must be larger in
    // aggregate than the pre-shift ones
    assert!(
        post_caps > pre_caps,
        "flatter popularity must need bigger caches ({pre_caps} -> {post_caps})"
    );
}

#[test]
fn adaptation_decisions_are_per_shard() {
    // two shards with very different per-FASE working sets must be free
    // to choose different capacities: the hot shard cycles a tight key
    // set inside each batch (small knee), the cold one sweeps a set far
    // beyond max_size (knee-less curve → max capacity)
    let store = adaptive_store(2);
    let hot_shard = store.shard_of(0);
    let hot_keys: Vec<u64> = (0..40_000u64)
        .filter(|&k| store.shard_of(k) == hot_shard)
        .take(8)
        .collect();
    let cold_keys: Vec<u64> = (0..80_000u64)
        .filter(|&k| store.shard_of(k) != hot_shard)
        .take(150)
        .collect();
    let val = |round: u8| vec![round; 56];
    for &k in hot_keys.iter().chain(&cold_keys) {
        assert!(store.put(k, &val(0)));
    }
    store.reset_samplers();
    let mut round = 0u8;
    loop {
        let fired = store.chosen().iter().filter(|c| !c.is_empty()).count();
        if fired == 2 {
            break;
        }
        assert!(round < 200, "controllers never fired on both shards");
        // hot: 4 passes over 8 keys in one FASE → reuse distance ≈ WSS
        let hot_batch: Vec<(u64, Vec<u8>)> = (0..4)
            .flat_map(|_| hot_keys.iter().map(|&k| (k, val(round))))
            .collect();
        assert!(store.put_many(&hot_batch));
        // cold: one pass over 150 keys per FASE → distances ≫ max_size
        let cold_batch: Vec<(u64, Vec<u8>)> = cold_keys.iter().map(|&k| (k, val(round))).collect();
        assert!(store.put_many(&cold_batch));
        round = round.wrapping_add(1);
    }
    let caps = store.sc_capacities();
    let hot_cap = caps[hot_shard].unwrap();
    let cold_cap = caps[1 - hot_shard].unwrap();
    assert!(
        hot_cap < cold_cap,
        "tight per-FASE working set ({hot_cap}) must pick a smaller cache \
         than the sweeping one ({cold_cap})"
    );
    assert_eq!(
        cold_cap,
        KneeConfig::default().max_size,
        "knee-less curve falls back to the maximal size (paper rule)"
    );
}
