//! Property test pinning the persistent KV store against a
//! `std::collections::HashMap` model: a single shard (no crashes)
//! driven through random put/delete/get sequences must agree with the
//! volatile map at every step and on the final full dump — regardless
//! of persistence policy.

use std::collections::HashMap;

use nvcache_core::PolicyKind;
use nvcache_kvstore::{value_bytes, KvConfig, KvStore, ShardConfig};
use proptest::prelude::*;

fn single_shard(policy: PolicyKind) -> KvStore {
    KvStore::new(&KvConfig {
        shards: 1,
        shard: ShardConfig {
            buckets: 32, // small: force chains and chain surgery
            data_len: 1 << 20,
            log_len: 1 << 16,
            policy,
            adapt: None,
            pipelined: false,
        },
    })
}

fn policies() -> [PolicyKind; 5] {
    [
        PolicyKind::Eager,
        PolicyKind::Lazy,
        PolicyKind::Atlas { size: 8 },
        PolicyKind::ScFixed { capacity: 8 },
        PolicyKind::ScAdaptive(Default::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random op soup over a small key space (collisions, in-place and
    /// size-changing updates, deletes of absent keys) matches the model.
    #[test]
    fn store_matches_hashmap_model(
        ops in prop::collection::vec((0u8..4, 0u64..24, 0u8..5), 0..250),
    ) {
        for policy in policies() {
            let store = single_shard(policy.clone());
            let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
            for (i, &(op, key, lensel)) in ops.iter().enumerate() {
                match op {
                    // put: value length varies with lensel so updates
                    // exercise both the in-place and replace paths
                    0 | 1 => {
                        let v = value_bytes(key, i as u64, lensel as usize * 13);
                        prop_assert!(store.put(key, &v), "heap sized for the op count");
                        model.insert(key, v);
                    }
                    2 => {
                        prop_assert_eq!(
                            store.delete(key),
                            model.remove(&key).is_some(),
                            "delete presence must agree (key {}, step {})", key, i
                        );
                    }
                    _ => {
                        prop_assert_eq!(
                            store.get(key),
                            model.get(&key).cloned(),
                            "lookup mismatch (key {}, step {}, policy {:?})", key, i, policy
                        );
                    }
                }
                prop_assert_eq!(store.len(), model.len());
            }
            // final state: every key agrees, dump is the sorted model
            let mut expect: Vec<(u64, Vec<u8>)> = model.into_iter().collect();
            expect.sort_unstable_by_key(|&(k, _)| k);
            prop_assert_eq!(store.dump(), expect, "policy {:?}", policy);
        }
    }

    /// Interleaving reads between writes never perturbs state: a pure
    /// read sequence after any write prefix is side-effect free.
    #[test]
    fn reads_are_side_effect_free(
        writes in prop::collection::vec((0u64..16, 1u8..4), 1..60),
        probes in prop::collection::vec(0u64..32, 0..40),
    ) {
        let store = single_shard(PolicyKind::ScFixed { capacity: 4 });
        for (i, &(key, lensel)) in writes.iter().enumerate() {
            store.put(key, &value_bytes(key, i as u64, lensel as usize * 9));
        }
        let before = store.dump();
        let stores_before = store.stats().stores;
        for &k in &probes {
            let _ = store.get(k);
        }
        prop_assert_eq!(store.dump(), before);
        prop_assert_eq!(store.stats().stores, stores_before, "gets issue no stores");
    }
}
