//! End-to-end acceptance for the network serving layer:
//!
//! - the blocking [`NetClient`] round-trips every opcode over the
//!   in-process transport and over real TCP on localhost;
//! - the ack-after-commit contract holds under a *sweep* of crash
//!   adversaries — strict (only durable lines survive), all-in-flight
//!   lands, and randomized partial landings — for a pipelined
//!   multi-connection open-loop load: every write the server acked is
//!   readable, at an acked-or-newer version, after crash + recover.

use std::sync::Arc;

use nvcache_core::PolicyKind;
use nvcache_kvstore::{
    run_net, verify_acked, InProcTransport, KvConfig, KvServer, NetClient, NetLoadConfig,
    NetServer, ServerConfig, ShardConfig, TcpTransport,
};
use nvcache_pmem::CrashMode;

fn kv(shards: usize) -> Arc<KvServer> {
    Arc::new(KvServer::new(
        &KvConfig {
            shards,
            shard: ShardConfig {
                buckets: 128,
                data_len: 1 << 20,
                log_len: 1 << 16,
                policy: PolicyKind::ScFixed { capacity: 8 },
                adapt: None,
                pipelined: true,
            },
        },
        &ServerConfig::default(),
    ))
}

#[test]
fn blocking_client_round_trips_every_opcode_inproc() {
    let kv = kv(2);
    let t = InProcTransport::new();
    let srv = NetServer::start(&t, "inproc", Arc::clone(&kv)).unwrap();
    let mut c = NetClient::connect(&t, "inproc").unwrap();

    c.ping().unwrap();
    assert_eq!(c.get(1).unwrap(), None);
    assert!(c.put(1, b"hello").unwrap());
    assert_eq!(c.get(1).unwrap().as_deref(), Some(&b"hello"[..]));
    assert!(c
        .put_many(&[(2, b"a".to_vec()), (3, b"b".to_vec()), (4, b"c".to_vec())])
        .unwrap());
    assert_eq!(c.get(3).unwrap().as_deref(), Some(&b"b"[..]));
    assert!(c.delete(1).unwrap());
    assert!(!c.delete(1).unwrap(), "second delete finds nothing");
    assert_eq!(c.get(1).unwrap(), None);

    srv.shutdown();
    kv.close();
}

#[test]
fn blocking_client_round_trips_over_tcp() {
    let kv = kv(1);
    let t = TcpTransport;
    // port 0: the OS picks a free port; local_addr reports it
    let srv = NetServer::start(&t, "127.0.0.1:0", Arc::clone(&kv)).unwrap();
    let addr = srv.local_addr();
    let mut c = NetClient::connect(&t, &addr).unwrap();
    c.ping().unwrap();
    assert!(c.put(42, b"over tcp").unwrap());
    assert_eq!(c.get(42).unwrap().as_deref(), Some(&b"over tcp"[..]));
    srv.shutdown();
    kv.close();
}

/// The acceptance sweep: for each crash adversary, run a pipelined
/// multi-connection load with ack tracking through the wire protocol,
/// crash every shard, recover, and audit that each acked write is
/// present at a version in `[max acked, max sent]`.
#[test]
fn every_acked_write_survives_each_crash_mode() {
    for (name, mode) in [
        ("strict", CrashMode::StrictDurableOnly),
        ("all-in-flight", CrashMode::AllInFlightLands),
        ("random-a", CrashMode::random(0.5, 0.5, 7)),
        ("random-b", CrashMode::random(0.9, 0.1, 23)),
    ] {
        let kv = kv(2);
        let t = InProcTransport::new();
        let srv = NetServer::start(&t, "inproc", Arc::clone(&kv)).unwrap();
        let rep = run_net(
            &t,
            "inproc",
            &NetLoadConfig {
                connections: 4,
                pipeline_depth: 4,
                ops_per_conn: 300,
                keys: 64,
                target_ops_per_sec: 0.0,
                track_acks: true,
                seed: 0xC0FFEE ^ mode_seed(name),
                ..Default::default()
            },
        );
        assert_eq!(rep.ops_answered, rep.ops_sent, "{name}: all answered");
        srv.shutdown();
        kv.crash_and_recover_all(&mode);
        verify_acked(&kv, &rep)
            .unwrap_or_else(|e| panic!("{name}: ack-after-commit violated after crash: {e}"));
        kv.close();
    }
}

fn mode_seed(name: &str) -> u64 {
    name.bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31) + b as u64)
}
