//! Property suite for the wire codec (the network serving layer's
//! trust boundary):
//!
//! 1. **Round-trip**: `decode(encode(x)) == x` for arbitrary requests
//!    and responses, including empty values, max-size values, and
//!    many-item `PutMany` batches.
//! 2. **Stream safety**: arbitrary frame sequences split at arbitrary
//!    read boundaries decode to exactly the encoded sequence — framing
//!    never depends on read sizes.
//! 3. **Rejection without desync**: truncated tails wait for more
//!    bytes; corrupt checksums and malformed bodies are reported as
//!    recoverable errors that consume exactly one frame; oversized
//!    length prefixes are fatal. Nothing panics on garbage.

use nvcache_kvstore::proto::{
    encode_request, encode_response, fnv1a32, FrameDecoder, ProtoError, Request, Response,
    HEADER_LEN, MAX_BODY,
};
use proptest::prelude::*;

/// Build one arbitrary request from drawn scalars. `kind` selects the
/// opcode; the value/items strategies are drawn unconditionally and
/// ignored where the opcode has no payload.
fn request_from(
    kind: u8,
    id: u64,
    key: u64,
    value: Vec<u8>,
    items: Vec<(u64, Vec<u8>)>,
) -> Request {
    match kind % 6 {
        0 => Request::Get { id, key },
        1 => Request::Put { id, key, value },
        2 => Request::PutMany { id, items },
        3 => Request::Delete { id, key },
        4 => Request::Scan {
            id,
            lo: key,
            hi: key.saturating_add(value.len() as u64),
            limit: value.len() as u32 + 1,
        },
        _ => Request::Ping { id },
    }
}

fn response_from(kind: u8, id: u64, value: Vec<u8>, items: Vec<(u64, Vec<u8>)>) -> Response {
    match kind % 7 {
        0 => Response::Value { id, value: None },
        1 => Response::Value {
            id,
            value: Some(value),
        },
        2 => Response::Done { id, ok: true },
        3 => Response::Done { id, ok: false },
        4 => Response::Pong { id },
        5 => Response::Entries { id, items },
        _ => Response::Rejected { id },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_encode_decode_is_identity(
        kind in 0u8..6,
        id in 0u64..u64::MAX,
        key in 0u64..u64::MAX,
        value in prop::collection::vec(0u8..=255, 0..600),
        items in prop::collection::vec(
            (0u64..1_000_000, prop::collection::vec(0u8..=255, 0..80)),
            0..12,
        ),
    ) {
        let req = request_from(kind, id, key, value, items);
        let mut d = FrameDecoder::new();
        d.extend_from(&encode_request(&req));
        prop_assert_eq!(d.next_request().unwrap(), Some(req));
        prop_assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn response_encode_decode_is_identity(
        kind in 0u8..7,
        id in 0u64..u64::MAX,
        value in prop::collection::vec(0u8..=255, 0..600),
        items in prop::collection::vec(
            (0u64..1_000_000, prop::collection::vec(0u8..=255, 0..80)),
            0..12,
        ),
    ) {
        let resp = response_from(kind, id, value, items);
        let mut d = FrameDecoder::new();
        d.extend_from(&encode_response(&resp));
        prop_assert_eq!(d.next_response().unwrap(), Some(resp));
        prop_assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn pipelined_streams_survive_arbitrary_read_boundaries(
        seeds in prop::collection::vec(
            (0u8..6, 0u64..1_000, prop::collection::vec(0u8..=255, 0..64)),
            1..16,
        ),
        chunk in 1usize..64,
    ) {
        let reqs: Vec<Request> = seeds
            .into_iter()
            .enumerate()
            .map(|(i, (kind, key, value))| {
                request_from(kind, i as u64, key, value, vec![(key, vec![1, 2, 3])])
            })
            .collect();
        let mut wire = Vec::new();
        for r in &reqs {
            wire.extend_from_slice(&encode_request(r));
        }
        let mut d = FrameDecoder::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            d.extend_from(piece);
            while let Some(r) = d.next_request().unwrap() {
                got.push(r);
            }
        }
        prop_assert_eq!(got, reqs);
        prop_assert_eq!(d.buffered(), 0);
    }

    /// Any truncation of a valid frame yields `Ok(None)` (need more),
    /// never an error or a bogus decode.
    #[test]
    fn truncation_waits_instead_of_erroring(
        key in 0u64..u64::MAX,
        value in prop::collection::vec(0u8..=255, 0..200),
        cut_frac in 0u64..1_000,
    ) {
        let wire = encode_request(&Request::Put { id: 1, key, value });
        let cut = 1 + (cut_frac as usize * (wire.len() - 1)) / 1_000;
        if cut < wire.len() {
            let mut d = FrameDecoder::new();
            d.extend_from(&wire[..cut]);
            prop_assert_eq!(d.next_request().unwrap(), None);
            // completing the frame recovers the request
            d.extend_from(&wire[cut..]);
            prop_assert!(d.next_request().unwrap().is_some());
        }
    }

    /// Flipping a single byte of the checksum field or body is always
    /// caught as a recoverable checksum error that consumes exactly the
    /// damaged frame: a pristine follow-up frame still decodes.
    /// (FNV-1a's fold is injective per step, so a one-byte body change
    /// always changes the digest; a checksum-field flip changes the
    /// expectation while the digest stands.)
    #[test]
    fn corruption_past_the_length_prefix_never_desyncs(
        key in 0u64..u64::MAX,
        value in prop::collection::vec(0u8..=255, 1..120),
        pos_frac in 0u64..1_000,
        flip in 1u8..=255,
    ) {
        let mut wire = encode_request(&Request::Put { id: 7, key, value });
        // restrict the flip to [4, len): checksum field or body — a
        // length-prefix flip re-delimits the stream and is covered by
        // the fatal/garbage properties instead
        let pos = 4 + (pos_frac as usize * (wire.len() - 5)) / 999;
        wire[pos] ^= flip;
        let follow = encode_request(&Request::Ping { id: 99 });

        let mut d = FrameDecoder::new();
        d.extend_from(&wire);
        d.extend_from(&follow);
        let err = d.next_request().unwrap_err();
        prop_assert!(matches!(err, ProtoError::Checksum { .. }));
        prop_assert!(!err.is_fatal());
        prop_assert_eq!(
            d.next_request().unwrap(),
            Some(Request::Ping { id: 99 })
        );
        prop_assert_eq!(d.buffered(), 0);
    }

    /// A flip anywhere — including the length prefix — never panics
    /// and never silently decodes a *different* request from the one
    /// frame's bytes: the first decode outcome is need-more, an error,
    /// or (only when the re-delimited bytes happen to frame) a decode,
    /// which with a single flipped byte cannot checksum — drive the
    /// decoder to quiescence and require it never fabricates a Put
    /// with the wrong id.
    #[test]
    fn length_prefix_corruption_is_contained(
        key in 0u64..u64::MAX,
        value in prop::collection::vec(0u8..=255, 1..120),
        pos in 0usize..4,
        flip in 1u8..=255,
    ) {
        let mut wire = encode_request(&Request::Put { id: 7, key, value });
        wire[pos] ^= flip;
        let mut d = FrameDecoder::new();
        d.extend_from(&wire);
        for _ in 0..8 {
            match d.next_request() {
                Ok(None) => break,
                Ok(Some(req)) => {
                    prop_assert!(
                        !matches!(req, Request::Put { id: 7, .. }),
                        "re-delimited bytes reproduced the damaged frame"
                    );
                }
                Err(e) => {
                    if e.is_fatal() {
                        break;
                    }
                }
            }
        }
    }

    /// Arbitrary garbage never panics the decoder: every outcome is a
    /// clean decode, need-more, or a typed error.
    #[test]
    fn garbage_bytes_never_panic(
        junk in prop::collection::vec(0u8..=255, 0..300),
    ) {
        let mut d = FrameDecoder::new();
        d.extend_from(&junk);
        for _ in 0..40 {
            match d.next_request() {
                Ok(None) => break,
                Ok(Some(_)) => {}
                Err(e) => {
                    if e.is_fatal() {
                        break;
                    }
                }
            }
        }
    }
}

#[test]
fn oversized_prefix_is_fatal_and_checksum_is_not() {
    let mut wire = Vec::new();
    wire.extend_from_slice(&((MAX_BODY as u32) + 7).to_le_bytes());
    wire.extend_from_slice(&[0u8; 4]);
    let mut d = FrameDecoder::new();
    d.extend_from(&wire);
    assert!(d.next_request().unwrap_err().is_fatal());

    // recoverable path: valid framing, wrong digest
    let body = [0u8; 9];
    let mut wire = Vec::new();
    wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
    wire.extend_from_slice(&(fnv1a32(&body) ^ 1).to_le_bytes());
    wire.extend_from_slice(&body);
    let mut d = FrameDecoder::new();
    d.extend_from(&wire);
    let err = d.next_request().unwrap_err();
    assert!(matches!(err, ProtoError::Checksum { .. }) && !err.is_fatal());
    assert_eq!(d.buffered(), 0, "damaged frame fully consumed");
    let _ = HEADER_LEN;
}
