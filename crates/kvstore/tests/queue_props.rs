//! Property suite for the bounded MPSC submission queue — the three
//! invariants cross-client group commit leans on:
//!
//! 1. **Per-client FIFO**: a single producer's requests appear in the
//!    drained stream in exactly the order it pushed them, whatever the
//!    interleaving with other producers and however the consumer's
//!    batch cap slices the stream.
//! 2. **No acknowledged request is dropped (or duplicated)**: every
//!    push that returned `Ok` is drained exactly once — under blocking
//!    *and* rejecting backpressure, with producers racing a live
//!    consumer. Rejected pushes ride back to the caller.
//! 3. **Occupancy is bounded**: no drained batch exceeds the queue
//!    capacity or the consumer's batch cap.

use nvcache_kvstore::{Backpressure, PushError, SubmissionQueue};
use proptest::prelude::*;
use std::sync::Mutex;

/// Tag items `(producer, seq)` so the drained stream can be audited
/// per producer afterwards.
type Item = (usize, u64);

struct Audit {
    /// Per-producer sequences that were accepted (push returned `Ok`).
    accepted: Vec<Vec<u64>>,
    /// Batches in drain order.
    batches: Vec<Vec<Item>>,
}

fn drive(
    producers: usize,
    per_producer: u64,
    capacity: usize,
    max_batch: usize,
    backpressure: Backpressure,
) -> Audit {
    let q = SubmissionQueue::new(capacity, backpressure);
    let accepted: Vec<Mutex<Vec<u64>>> = (0..producers).map(|_| Mutex::new(Vec::new())).collect();
    let batches: Mutex<Vec<Vec<Item>>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = &q;
                let accepted = &accepted;
                scope.spawn(move || {
                    for seq in 0..per_producer {
                        match q.push((p, seq)) {
                            Ok(()) => accepted[p].lock().unwrap().push(seq),
                            Err(PushError::Full((bp, bseq))) => {
                                // the refused request came back intact
                                assert_eq!((bp, bseq), (p, seq));
                            }
                            Err(PushError::Closed(_)) => {
                                panic!("queue closed while producers live")
                            }
                        }
                    }
                })
            })
            .collect();
        let consumer = {
            let q = &q;
            let batches = &batches;
            scope.spawn(move || {
                let mut out: Vec<Item> = Vec::new();
                loop {
                    out.clear();
                    if !q.drain_into(&mut out, max_batch) {
                        return;
                    }
                    batches.lock().unwrap().push(out.clone());
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        consumer.join().unwrap();
    });
    Audit {
        accepted: accepted
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect(),
        batches: batches.into_inner().unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fifo_no_drops_bounded_occupancy(
        producers in 1usize..5,
        per_producer in 1u64..120,
        capacity in 1usize..17,
        max_batch in 1usize..33,
        reject in any::<bool>(),
    ) {
        let bp = if reject { Backpressure::Reject } else { Backpressure::Block };
        let audit = drive(producers, per_producer, capacity, max_batch, bp);

        // (3) occupancy ≤ min(capacity, batch cap), and never empty
        for b in &audit.batches {
            prop_assert!(!b.is_empty());
            prop_assert!(b.len() <= capacity.min(max_batch.max(1)));
        }

        // (1) per-producer FIFO across the concatenated drain stream
        let drained: Vec<Item> = audit.batches.iter().flatten().copied().collect();
        for p in 0..producers {
            let got: Vec<u64> = drained
                .iter()
                .filter(|(who, _)| *who == p)
                .map(|&(_, seq)| seq)
                .collect();
            prop_assert_eq!(&got, &audit.accepted[p], "producer {} reordered", p);
        }

        // (2) accepted ⇔ drained, exactly once
        let total_accepted: usize = audit.accepted.iter().map(Vec::len).sum();
        prop_assert_eq!(drained.len(), total_accepted);
        if !reject {
            // blocking backpressure accepts everything eventually
            prop_assert_eq!(total_accepted as u64, producers as u64 * per_producer);
        }
    }

    /// Sequential (single-threaded) exercise of the same invariants —
    /// including the exact tail behaviour at close: requests queued
    /// before the close still drain, in order.
    #[test]
    fn close_drains_the_exact_accepted_tail(
        pushes in 1u64..40,
        capacity in 1usize..9,
    ) {
        let q = SubmissionQueue::new(capacity, Backpressure::Reject);
        let mut accepted = Vec::new();
        for seq in 0..pushes {
            if q.push((0usize, seq)).is_ok() {
                accepted.push(seq);
            }
        }
        q.close();
        prop_assert!(q.push((0, 999)).is_err(), "closed queue refuses pushes");
        let mut out = Vec::new();
        let mut drained = Vec::new();
        while q.drain_into(&mut out, capacity) {
            prop_assert!(out.len() <= capacity);
            drained.extend(out.drain(..).map(|(_, s)| s));
        }
        prop_assert_eq!(drained, accepted);
        let stats = q.stats();
        prop_assert_eq!(stats.enqueued, stats.drained);
        prop_assert_eq!(stats.enqueued + stats.rejected, pushes);
    }
}
