//! Footprint: average working-set size over all windows of each length
//! (Xiang et al., paper Eq. 4), computed for all `k` in `O(n)`.
//!
//! `fp(k) = m − (1/(n−k+1)) [ Σᵢ (fᵢ−k)⁺ + Σᵢ (lᵢ−k)⁺ + Σ_t (t−k)⁺·nrt(t) ]`
//!
//! where `m` is the number of distinct data, `fᵢ` the (1-based) first
//! access time of datum `i`, `lᵢ = n − tᵢᵃˢᵗ` its reverse last access
//! time, and `nrt(t)` the number of reuse intervals of length `t`.
//! All three sums are of the form `Σ (x−k)⁺ · H[x]`, evaluated for every
//! `k` at once from suffix sums of the merged histogram `H`.

use nvcache_trace::hash::{fx_map_with_capacity, FxHashMap};

/// Compute `fp(k)` for all `k = 1..=n`. Returns `v` with `v[k] = fp(k)`
/// (`v[0] = 0`).
pub fn footprint_all_k(trace: &[u64]) -> Vec<f64> {
    let n = trace.len();
    let mut v = vec![0.0f64; n + 1];
    if n == 0 {
        return v;
    }

    // first/last access time per datum and reuse-time histogram.
    // Fx-hashed; `first` is iterated below, but only to accumulate
    // commutative integer adds into `hist`, so order cannot leak.
    let mut first: FxHashMap<u64, usize> = fx_map_with_capacity(n / 2 + 1);
    let mut last: FxHashMap<u64, usize> = fx_map_with_capacity(n / 2 + 1);
    let mut hist = vec![0i64; n + 1]; // H[x] for x ∈ 1..=n
    for (t, &id) in trace.iter().enumerate() {
        if let Some(&prev) = last.get(&id) {
            hist[t - prev] += 1; // reuse time
        } else {
            first.insert(id, t);
        }
        last.insert(id, t);
    }
    let m = first.len();
    for (&id, &f) in &first {
        let fi = f + 1; // 1-based first access time
        hist[fi] += 1;
        let li = n - last[&id]; // reverse last access time
        hist[li] += 1;
    }

    // Σ_{x>k} (x−k)·H[x] = S2[k] − k·S1[k] from suffix sums.
    let mut s1 = 0i64; // Σ_{x>k} H[x]
    let mut s2 = 0i64; // Σ_{x>k} x·H[x]
    let mut deficit = vec![0i64; n + 1];
    for k in (1..=n).rev() {
        // entering k: include x = k+1..=n, i.e. x > k
        if k < n {
            s1 += hist[k + 1];
            s2 += (k as i64 + 1) * hist[k + 1];
        }
        deficit[k] = s2 - k as i64 * s1;
    }

    for k in 1..=n {
        v[k] = m as f64 - deficit[k] as f64 / (n - k + 1) as f64;
    }
    v
}

/// Brute-force footprint: enumerate every window. Test oracle only.
pub fn footprint_all_k_naive(trace: &[u64]) -> Vec<f64> {
    let n = trace.len();
    let mut v = vec![0.0f64; n + 1];
    for k in 1..=n {
        let mut total = 0usize;
        for start in 0..=(n - k) {
            let set: std::collections::HashSet<&u64> = trace[start..start + k].iter().collect();
            total += set.len();
        }
        v[k] = total as f64 / (n - k + 1) as f64;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reuse::reuse_all_k;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn matches_naive_on_fixed_traces() {
        let cases: Vec<Vec<u64>> = vec![
            vec![0, 1, 1],
            vec![1, 2, 1, 3, 2, 1, 1],
            vec![5, 5, 5, 5],
            (0..40).map(|i| (i % 7) as u64).collect(),
            vec![1, 2, 3, 4, 1, 2, 3, 4, 9, 9, 1],
        ];
        for trace in cases {
            let fast = footprint_all_k(&trace);
            let slow = footprint_all_k_naive(&trace);
            for k in 1..=trace.len() {
                assert!(
                    (fast[k] - slow[k]).abs() < 1e-9,
                    "k={k} fast={} slow={} trace={trace:?}",
                    fast[k],
                    slow[k]
                );
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn duality_reuse_plus_fp_equals_k() {
        // Paper Eq. 5: reuse(k) + fp(k) = k, for every k.
        let traces: Vec<Vec<u64>> = vec![
            (0..300).map(|i| (i * 7 % 23) as u64).collect(),
            (0..100).map(|i| (i % 2) as u64).collect(),
            vec![9; 64],
            (0..128).collect(),
        ];
        for trace in traces {
            let r = reuse_all_k(&trace);
            let f = footprint_all_k(&trace);
            for k in 1..=trace.len() {
                assert!(
                    (r[k] + f[k] - k as f64).abs() < 1e-6,
                    "duality fails at k={k}: reuse={} fp={}",
                    r[k],
                    f[k]
                );
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn fp_bounds() {
        // 1 ≤ fp(k) ≤ min(k, m) for non-empty traces.
        let trace: Vec<u64> = (0..200).map(|i| (i * 13 % 31) as u64).collect();
        let m = 31f64.min(200.0);
        let f = footprint_all_k(&trace);
        for k in 1..=trace.len() {
            assert!(f[k] >= 1.0 - 1e-9, "fp({k}) = {}", f[k]);
            assert!(f[k] <= (k as f64).min(m) + 1e-9, "fp({k}) = {}", f[k]);
        }
    }

    #[test]
    fn fp_of_full_trace_is_m() {
        let trace = vec![1u64, 2, 1, 3, 2];
        let f = footprint_all_k(&trace);
        assert!((f[5] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fp_of_one_is_one() {
        let trace = vec![4u64, 4, 5, 6];
        let f = footprint_all_k(&trace);
        assert!((f[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        assert_eq!(footprint_all_k(&[]), vec![0.0]);
    }
}
