//! MRC knee detection and cache-size selection (paper Section III-C).
//!
//! "From the MRC, we find inflection points or 'knees'. First, we
//! calculate the decrease in miss ratio for every cache size increase
//! (the gradient), rank the decreases, and pick the top few as candidate
//! knees. We then choose the knee that has the largest cache size. […]
//! If a MRC does not have obvious inflection points, we choose the
//! maximal cache size."

use crate::mrc::Mrc;

/// Tunables for knee selection. Defaults follow the paper: software cache
/// starts at size 8 and is bounded at 50 entries to limit FASE-end stall.
#[derive(Debug, Clone, PartialEq)]
pub struct KneeConfig {
    /// Smallest capacity the controller may choose.
    pub min_size: usize,
    /// Largest capacity the controller may choose (paper: 50).
    pub max_size: usize,
    /// Capacity used before the first MRC is available (paper: 8).
    pub default_size: usize,
    /// How many top-ranked gradient drops are considered candidate knees
    /// (the paper's "top few").
    pub candidates: usize,
    /// Minimum miss-ratio drop for a size increase to count as an
    /// inflection point at all; below this the MRC is considered flat.
    pub min_drop: f64,
    /// A candidate knee must also account for at least this fraction of
    /// the curve's total miss-ratio drop — filters the small wiggles the
    /// timescale approximation introduces in otherwise-flat regions.
    pub min_drop_frac: f64,
    /// Size selection accepts the smallest capacity whose miss ratio is
    /// within this fraction of the curve's total drop from the bounded
    /// minimum — "the knee that has the smallest cache miss ratio and is
    /// not overly large" (paper Figure 2).
    pub tolerance_frac: f64,
}

impl Default for KneeConfig {
    fn default() -> Self {
        KneeConfig {
            min_size: 1,
            max_size: 50,
            default_size: 8,
            candidates: 5,
            min_drop: 1e-3,
            min_drop_frac: 0.04,
            tolerance_frac: 0.02,
        }
    }
}

/// The candidate knees of `mrc` under `cfg`: capacities whose gradient
/// drop ranks in the top `cfg.candidates` and exceeds `cfg.min_drop`,
/// restricted to `cfg.min_size..=cfg.max_size`. Sorted ascending.
pub fn knees(mrc: &Mrc, cfg: &KneeConfig) -> Vec<usize> {
    let g = mrc.gradient();
    let hi = cfg.max_size.min(mrc.max_size());
    let total_drop = (mrc.mr(0) - mrc.mr(hi)).max(0.0);
    let floor = cfg.min_drop.max(cfg.min_drop_frac * total_drop);
    let mut ranked: Vec<(usize, f64)> = (cfg.min_size.max(1)..=hi)
        .map(|c| (c, g[c]))
        .filter(|&(_, d)| d >= floor)
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    ranked.truncate(cfg.candidates);
    let mut out: Vec<usize> = ranked.into_iter().map(|(c, _)| c).collect();
    out.sort_unstable();
    out
}

/// Choose the software cache capacity for `mrc`.
///
/// Per the paper's Figure 2 description, the selection wants "the knee
/// that has the smallest cache miss ratio and is not overly large":
/// the smallest capacity whose miss ratio comes within
/// `cfg.tolerance_frac` of the total improvement available inside the
/// size bound. A curve with no improvement at all (no inflection
/// points) selects `cfg.max_size`, as the paper specifies.
pub fn select_cache_size(mrc: &Mrc, cfg: &KneeConfig) -> usize {
    let hi = cfg.max_size.min(mrc.max_size());
    let total = mrc.mr(0) - mrc.mr(hi);
    if total < cfg.min_drop {
        return cfg.max_size; // flat MRC: no obvious inflection points
    }
    let target = mrc.mr(hi) + cfg.tolerance_frac * total;
    let mut pick = (cfg.min_size.max(1)..=hi)
        .find(|&c| mrc.mr(c) <= target + 1e-12)
        .unwrap_or(cfg.max_size);
    // The timescale approximation smears sharp cliffs over a few sizes;
    // stopping at the tolerance threshold can land one entry short of
    // the cliff's foot. Keep advancing while the curve is still
    // dropping meaningfully per size.
    let step_floor = cfg.min_drop.max(cfg.tolerance_frac * total / 4.0);
    while pick < hi && mrc.mr(pick) - mrc.mr(pick + 1) >= step_floor {
        pick += 1;
    }
    pick.clamp(cfg.min_size, cfg.max_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reuse::reuse_all_k;
    use crate::sim::lru_mrc;

    fn cyclic(w: u64, n: usize) -> Vec<u64> {
        (0..n).map(|i| (i as u64) % w).collect()
    }

    #[test]
    fn picks_exact_knee_of_cyclic_trace() {
        for w in [3usize, 8, 23, 40] {
            let trace = cyclic(w as u64, 20_000);
            let mrc = lru_mrc(&trace, 50);
            let size = select_cache_size(&mrc, &KneeConfig::default());
            assert_eq!(size, w, "working set {w}");
        }
    }

    #[test]
    fn picks_knee_from_timescale_mrc_too() {
        let trace = cyclic(23, 50_000);
        let mrc = Mrc::from_reuse(&reuse_all_k(&trace), 50);
        let size = select_cache_size(&mrc, &KneeConfig::default());
        // the timescale curve smears the cliff over a couple of sizes;
        // the chosen knee must land at or just below the true working set
        assert!((21..=23).contains(&size), "expected ≈23, got {size}");
    }

    #[test]
    fn flat_curve_chooses_max() {
        // all-distinct writes: MRC is flat at 1.0, no knees
        let trace: Vec<u64> = (0..5000).collect();
        let mrc = lru_mrc(&trace, 50);
        let cfg = KneeConfig::default();
        assert!(knees(&mrc, &cfg).is_empty());
        assert_eq!(select_cache_size(&mrc, &cfg), cfg.max_size);
    }

    #[test]
    fn respects_max_bound() {
        // true working set 80 exceeds the bound 50 → bounded choice
        let trace = cyclic(80, 40_000);
        let mrc = lru_mrc(&trace, 120);
        let cfg = KneeConfig::default();
        let size = select_cache_size(&mrc, &cfg);
        assert!(size <= cfg.max_size);
    }

    #[test]
    fn largest_of_multiple_knees_wins() {
        // two-population trace: hot set of 4 lines (frequent) plus a
        // cyclic set of 20 (regular) → knees near 4 and near 20+4;
        // selection must take the larger one.
        let trace: Vec<u64> = (0..60_000)
            .map(|i| {
                if i % 2 == 0 {
                    (i / 2 % 4) as u64
                } else {
                    100 + (i / 2 % 20) as u64
                }
            })
            .collect();
        let mrc = lru_mrc(&trace, 50);
        let size = select_cache_size(&mrc, &KneeConfig::default());
        assert!(size >= 20, "got {size}");
    }

    #[test]
    fn candidate_list_is_sorted_and_bounded() {
        let trace = cyclic(10, 5000);
        let mrc = lru_mrc(&trace, 50);
        let cfg = KneeConfig {
            candidates: 3,
            ..Default::default()
        };
        let ks = knees(&mrc, &cfg);
        assert!(ks.len() <= 3);
        assert!(ks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn strictly_convex_curve_picks_bounded_tolerance_point() {
        // No cliff anywhere: mr(c) = e^(−c/12), every size helps a
        // little less than the last. Selection must not run away to
        // max_size, must stay in bounds, and must honour the tolerance
        // contract (within tolerance_frac of the bounded minimum).
        let cfg = KneeConfig::default();
        let mrc = Mrc {
            miss_ratio: (0..=60).map(|c| (-(c as f64) / 12.0).exp()).collect(),
            accesses: 10_000,
        };
        let size = select_cache_size(&mrc, &cfg);
        assert!((cfg.min_size..=cfg.max_size).contains(&size), "got {size}");
        let total = mrc.mr(0) - mrc.mr(cfg.max_size);
        assert!(
            mrc.mr(size) <= mrc.mr(cfg.max_size) + cfg.tolerance_frac * total + 1e-9,
            "size {size} misses the tolerance target"
        );
        // the candidate list on a smooth convex curve is the steepest
        // prefix: small sizes, sorted, within bounds
        let ks = knees(&mrc, &cfg);
        assert!(!ks.is_empty());
        assert!(ks
            .iter()
            .all(|&k| (cfg.min_size..=cfg.max_size).contains(&k)));
    }

    #[test]
    fn single_point_and_degenerate_curves_stay_sane() {
        let cfg = KneeConfig::default();
        // size-0-only curve (no burst data at all): treated as flat
        let point = Mrc {
            miss_ratio: vec![1.0],
            accesses: 0,
        };
        assert!(knees(&point, &cfg).is_empty());
        assert_eq!(select_cache_size(&point, &cfg), cfg.max_size);
        // a reuse vector from a single access derives the same way
        let tiny = Mrc::from_reuse(&[0.0, 0.0], 50);
        assert!(knees(&tiny, &cfg).is_empty());
        assert_eq!(select_cache_size(&tiny, &cfg), cfg.max_size);
        // one real point: the whole drop happens at size 1
        let cliff1 = Mrc {
            miss_ratio: vec![1.0, 0.0],
            accesses: 1_000,
        };
        assert_eq!(knees(&cliff1, &cfg), vec![1]);
        assert_eq!(select_cache_size(&cliff1, &cfg), 1);
    }

    #[test]
    fn min_size_clamp() {
        let trace = cyclic(2, 1000);
        let mrc = lru_mrc(&trace, 50);
        let cfg = KneeConfig {
            min_size: 4,
            ..Default::default()
        };
        assert!(select_cache_size(&mrc, &cfg) >= 4);
    }
}
