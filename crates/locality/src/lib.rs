//! Reuse-based timescale locality theory (paper Section III).
//!
//! This crate implements the paper's analytical machinery:
//!
//! * [`reuse`] — the timescale reuse metric `reuse(k)`: the average number
//!   of intra-window reuses over all windows of length `k`, computed for
//!   **all** `k` in linear time via interval counting (paper Eq. 2).
//! * [`footprint`] — Xiang et al.'s average working-set-size `fp(k)`
//!   (paper Eq. 4), also all-`k` linear time; the duality
//!   `reuse(k) + fp(k) = k` (paper Eq. 5) is enforced by tests.
//! * [`mrc`] — miss-ratio curves derived from `reuse(k)` by discrete
//!   differentiation (`hr(c) = reuse(k+1) − reuse(k)` at
//!   `c = k − reuse(k)`, paper Eq. 3).
//! * [`sim`] — exact LRU miss-ratio curves (Mattson stack simulation),
//!   the ground truth that Figure 7 compares against.
//! * [`knee`] — MRC knee detection and cache-size selection
//!   (Section III-C).
//! * [`sampling`] — bursty sampling for online MRC analysis.
//!
//! Inputs are sequences of `u64` identifiers — typically a persistent
//! write trace after FASE renaming
//! (`nvcache_trace::ThreadTrace::renamed_writes`).

#![warn(missing_docs)]

pub mod footprint;
pub mod knee;
pub mod mrc;
pub mod reuse;
pub mod sampling;
pub mod sim;

pub use footprint::footprint_all_k;
pub use knee::{select_cache_size, KneeConfig};
pub use mrc::Mrc;
pub use reuse::{reuse_all_k, reuse_intervals, ReuseInterval};
pub use sampling::BurstSampler;
pub use sim::lru_mrc;
