//! Miss-ratio curves (MRC) of the fully-associative LRU software cache.
//!
//! The paper's conversion (Eq. 3): at timescale `k`, the cache holds the
//! data of the previous `k` accesses, i.e. `c = k − reuse(k)` distinct
//! lines on average, and the hit ratio at that size is the discrete
//! derivative `hr(c) = reuse(k+1) − reuse(k)`. Because
//! `c = k − reuse(k) = fp(k)` is non-decreasing in `k`, walking `k`
//! upward yields the whole curve in one pass.

/// A miss-ratio curve: `miss_ratio[c]` is the predicted (or measured)
/// miss ratio of a fully-associative LRU cache of capacity `c` lines.
/// `miss_ratio[0] == 1.0` by definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Mrc {
    /// Miss ratio per integer cache size; index is capacity in lines.
    pub miss_ratio: Vec<f64>,
    /// Number of accesses the curve was derived from.
    pub accesses: usize,
}

impl Mrc {
    /// Derive the MRC from the all-`k` reuse vector (`reuse[k]` for
    /// `k ∈ 1..=n`, as produced by [`crate::reuse_all_k`]), up to cache
    /// size `max_size`.
    pub fn from_reuse(reuse: &[f64], max_size: usize) -> Self {
        let n = reuse.len().saturating_sub(1);
        let mut mr = vec![f64::NAN; max_size + 1];
        mr[0] = 1.0;
        if n >= 2 {
            let mut next_size = 1usize;
            for k in 1..n {
                let c = k as f64 - reuse[k];
                let hr = (reuse[k + 1] - reuse[k]).clamp(0.0, 1.0);
                while next_size <= max_size && c >= next_size as f64 {
                    mr[next_size] = 1.0 - hr;
                    next_size += 1;
                }
                if next_size > max_size {
                    break;
                }
            }
        }
        // Fill sizes the trace never reached (cache bigger than the
        // footprint of the whole burst) with the last known value, then
        // enforce monotone non-increasing miss ratio.
        let mut lastv = 1.0f64;
        for v in mr.iter_mut() {
            if v.is_nan() {
                *v = lastv;
            } else {
                lastv = *v;
            }
        }
        let mut run = f64::INFINITY;
        for v in mr.iter_mut() {
            run = run.min(*v);
            *v = run;
        }
        Mrc {
            miss_ratio: mr,
            accesses: n,
        }
    }

    /// Build an MRC from exact per-size hit counts (`hits[c]` = number of
    /// accesses that hit in a cache of capacity `c`), e.g. from Mattson
    /// stack simulation.
    pub fn from_hits(hits: &[u64], accesses: usize) -> Self {
        let mr = if accesses == 0 {
            vec![1.0; hits.len()]
        } else {
            hits.iter()
                .map(|&h| 1.0 - h as f64 / accesses as f64)
                .collect()
        };
        Mrc {
            miss_ratio: mr,
            accesses,
        }
    }

    /// Miss ratio at capacity `c`; sizes beyond the curve return the last
    /// value (the curve is flat past the footprint).
    pub fn mr(&self, c: usize) -> f64 {
        let i = c.min(self.miss_ratio.len() - 1);
        self.miss_ratio[i]
    }

    /// Hit ratio at capacity `c`.
    pub fn hr(&self, c: usize) -> f64 {
        1.0 - self.mr(c)
    }

    /// Largest capacity represented.
    pub fn max_size(&self) -> usize {
        self.miss_ratio.len() - 1
    }

    /// Per-size miss-ratio drops: `drop[c] = mr(c−1) − mr(c)` for
    /// `c ∈ 1..=max`. This is the gradient the knee detector ranks.
    pub fn gradient(&self) -> Vec<f64> {
        let mut g = vec![0.0; self.miss_ratio.len()];
        for (c, w) in self.miss_ratio.windows(2).enumerate() {
            g[c + 1] = (w[0] - w[1]).max(0.0);
        }
        g
    }

    /// Mean absolute difference to another curve over the overlapping
    /// size range (used to score sampled-vs-exact MRC accuracy, Fig. 7).
    pub fn mean_abs_error(&self, other: &Mrc) -> f64 {
        let n = self.miss_ratio.len().min(other.miss_ratio.len());
        if n == 0 {
            return 0.0;
        }
        (0..n)
            .map(|c| (self.miss_ratio[c] - other.miss_ratio[c]).abs())
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reuse::reuse_all_k;

    #[test]
    fn abab_pattern_has_cliff_at_two() {
        let trace: Vec<u64> = (0..2000).map(|i| (i % 2) as u64).collect();
        let mrc = Mrc::from_reuse(&reuse_all_k(&trace), 8);
        assert_eq!(mrc.mr(0), 1.0);
        // size-1 cache: every access misses (alternating lines)
        assert!(mrc.mr(1) > 0.95, "mr(1)={}", mrc.mr(1));
        // size-2 cache: ~100% hits (paper's own worked example)
        assert!(mrc.mr(2) < 0.01, "mr(2)={}", mrc.mr(2));
        assert!(mrc.mr(8) < 0.01);
    }

    #[test]
    fn cyclic_working_set_knee_position() {
        // round-robin over W lines: LRU of size ≥ W hits everything,
        // size < W misses everything (the classic cliff). The timescale
        // prediction smooths the cliff but the big drop must land at W.
        let w = 10u64;
        let trace: Vec<u64> = (0..5000).map(|i| i % w).collect();
        let mrc = Mrc::from_reuse(&reuse_all_k(&trace), 20);
        assert!(mrc.mr(w as usize) < 0.05, "mr(W)={}", mrc.mr(w as usize));
        assert!(
            mrc.mr(w as usize - 1) > 0.5,
            "mr(W-1)={}",
            mrc.mr(w as usize - 1)
        );
    }

    #[test]
    fn monotone_non_increasing() {
        let trace: Vec<u64> = (0..3000).map(|i| (i * i % 97) as u64).collect();
        let mrc = Mrc::from_reuse(&reuse_all_k(&trace), 64);
        for c in 1..=mrc.max_size() {
            assert!(mrc.mr(c) <= mrc.mr(c - 1) + 1e-12);
        }
    }

    #[test]
    fn values_in_unit_interval() {
        let trace: Vec<u64> = (0..1000)
            .map(|i| (i % 13 + (i / 100) * 20) as u64)
            .collect();
        let mrc = Mrc::from_reuse(&reuse_all_k(&trace), 64);
        for &v in &mrc.miss_ratio {
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn from_hits_basic() {
        let mrc = Mrc::from_hits(&[0, 50, 90, 100], 100);
        assert_eq!(mrc.mr(0), 1.0);
        assert!((mrc.mr(1) - 0.5).abs() < 1e-12);
        assert!((mrc.mr(3) - 0.0).abs() < 1e-12);
        // out-of-range size clamps to last
        assert!((mrc.mr(10) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_sums_to_total_drop() {
        let trace: Vec<u64> = (0..2000).map(|i| (i % 23) as u64).collect();
        let mrc = Mrc::from_reuse(&reuse_all_k(&trace), 40);
        let g = mrc.gradient();
        let total: f64 = g.iter().sum();
        assert!((total - (mrc.mr(0) - mrc.mr(40))).abs() < 1e-9);
    }

    #[test]
    fn mean_abs_error_zero_on_self() {
        let trace: Vec<u64> = (0..500).map(|i| (i % 5) as u64).collect();
        let mrc = Mrc::from_reuse(&reuse_all_k(&trace), 16);
        assert_eq!(mrc.mean_abs_error(&mrc), 0.0);
    }

    #[test]
    fn empty_and_tiny_traces() {
        let mrc = Mrc::from_reuse(&reuse_all_k(&[]), 4);
        assert_eq!(mrc.miss_ratio, vec![1.0; 5]);
        let mrc = Mrc::from_reuse(&reuse_all_k(&[3]), 4);
        assert!(mrc.miss_ratio.iter().all(|&v| v == 1.0));
    }
}
