//! Timescale reuse: `reuse(k)` for all window lengths `k` in linear time.
//!
//! Definitions follow paper Section III-B with 0-based access times:
//! a trace has accesses at times `0..n`; a *window* of length `k` covers
//! `k` consecutive accesses; a *reuse interval* `[s, e]` connects an
//! access at time `s` to the *next* access of the same datum at time `e`.
//! `reuse(k)` is the mean number of reuse intervals fully enclosed by a
//! window, over all `n − k + 1` windows of length `k`.
//!
//! Rather than scanning every window, we count — for each interval — how
//! many length-`k` windows enclose it (paper Figure 3's four cases), and
//! sum. Each interval's window count is a piecewise-linear function of
//! `k` with at most three segments, so accumulating slope/intercept
//! difference arrays over `k` yields all values in `O(n + r)` total.

use nvcache_trace::hash::{fx_map_with_capacity, FxHashMap};

/// A reuse interval: consecutive accesses to one datum at 0-based times
/// `s < e`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseInterval {
    /// Time of the earlier access.
    pub s: usize,
    /// Time of the next access to the same datum.
    pub e: usize,
}

impl ReuseInterval {
    /// Interval span `e − s` (a window must have length ≥ span+1 to
    /// enclose it).
    #[inline]
    pub fn span(&self) -> usize {
        self.e - self.s
    }
}

/// Extract all reuse intervals of `trace` (consecutive same-id pairs).
pub fn reuse_intervals(trace: &[u64]) -> Vec<ReuseInterval> {
    let mut last: FxHashMap<u64, usize> = fx_map_with_capacity(trace.len() / 2 + 1);
    // exactly n − distinct intervals come out; n bounds it without a
    // second pass, so the hot loop never regrows the Vec
    let mut out = Vec::with_capacity(trace.len());
    for (t, &id) in trace.iter().enumerate() {
        if let Some(prev) = last.insert(id, t) {
            out.push(ReuseInterval { s: prev, e: t });
        }
    }
    out
}

/// Number of length-`k` windows of an `n`-access trace that enclose
/// `[s, e]` (reference formula; used directly by tests and by the
/// brute-force oracle).
pub fn windows_enclosing(n: usize, s: usize, e: usize, k: usize) -> usize {
    debug_assert!(s < e && e < n);
    if e - s + 1 > k || k > n {
        return 0;
    }
    // window start t ∈ [0, n−k]; needs t ≤ s and t ≥ e−k+1
    let lo = (e + 1).saturating_sub(k);
    let hi = s.min(n - k);
    if hi >= lo {
        hi - lo + 1
    } else {
        0
    }
}

/// Compute `reuse(k)` for all `k = 1..=n` in `O(n + r)` time.
///
/// Returns a vector `v` with `v[k]` = `reuse(k)` for `k ∈ 1..=n`
/// (`v[0]` is 0 by convention; `reuse(1)` is always 0 since a length-1
/// window cannot enclose an interval).
#[allow(clippy::needless_range_loop)] // k is the paper's mathematical index
pub fn reuse_all_k(trace: &[u64]) -> Vec<f64> {
    let n = trace.len();
    let mut v = vec![0.0f64; n + 1];
    if n == 0 {
        return v;
    }
    let intervals = reuse_intervals(trace);

    // Difference arrays over k ∈ 1..=n for Σ(slope·k + intercept).
    let mut dslope = vec![0i64; n + 2];
    let mut dicept = vec![0i64; n + 2];
    let add =
        |lo: usize, hi: usize, slope: i64, icept: i64, dslope: &mut [i64], dicept: &mut [i64]| {
            if lo > hi || lo > n {
                return;
            }
            let hi = hi.min(n);
            dslope[lo] += slope;
            dslope[hi + 1] -= slope;
            dicept[lo] += icept;
            dicept[hi + 1] -= icept;
        };

    for iv in &intervals {
        let (s, e) = (iv.s as i64, iv.e as i64);
        let d = (e - s) as usize;
        let ni = n as i64;
        // Segment boundaries: windows enclosing [s,e] number
        //   min(s, n−k) − max(e−k+1, 0) + 1   for k ≥ d+1
        // which is: k−d      while k ≤ m1 = min(n−s, e+1)
        //           const    while m1 < k ≤ m2 = max(n−s, e+1)
        //           n−k+1    while k > m2
        let m1 = (ni - s).min(e + 1) as usize;
        let m2 = (ni - s).max(e + 1) as usize;
        let mid = (s + 1).min(ni - e);
        add(d + 1, m1, 1, -(d as i64), &mut dslope, &mut dicept);
        add(m1 + 1, m2, 0, mid, &mut dslope, &mut dicept);
        add(m2 + 1, n, -1, ni + 1, &mut dslope, &mut dicept);
    }

    let mut slope = 0i64;
    let mut icept = 0i64;
    for k in 1..=n {
        slope += dslope[k];
        icept += dicept[k];
        let total = slope * k as i64 + icept;
        debug_assert!(total >= 0, "negative window count at k={k}");
        v[k] = total as f64 / (n - k + 1) as f64;
    }
    v
}

/// Brute-force `reuse(k)`: scans every window. `O(n·r)` per `k` — test
/// oracle only.
#[allow(clippy::needless_range_loop)] // k is the paper's mathematical index
pub fn reuse_all_k_naive(trace: &[u64]) -> Vec<f64> {
    let n = trace.len();
    let mut v = vec![0.0f64; n + 1];
    let intervals = reuse_intervals(trace);
    for k in 1..=n {
        let mut total = 0usize;
        for iv in &intervals {
            total += windows_enclosing(n, iv.s, iv.e, k);
        }
        v[k] = total as f64 / (n - k + 1) as f64;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_abb() {
        // trace "abb": reuse(2) = 1/2 (paper Section III-B)
        let r = reuse_all_k(&[0, 1, 1]);
        assert_eq!(r[1], 0.0);
        assert!((r[2] - 0.5).abs() < 1e-12);
        assert!((r[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_example_abab() {
        // "abab…" repeated: reuse(1)=0, reuse(2)=0, reuse(3)=1, reuse(4)=2
        // holds exactly in the infinite trace; for a long finite trace the
        // interior dominates, so check within small tolerance.
        let n = 10_000usize;
        let trace: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
        let r = reuse_all_k(&trace);
        assert_eq!(r[1], 0.0);
        assert!(r[2] < 0.01);
        assert!((r[3] - 1.0).abs() < 0.01);
        assert!((r[4] - 2.0).abs() < 0.01);
    }

    #[test]
    fn no_reuse_trace_is_zero() {
        let trace: Vec<u64> = (0..100).collect();
        let r = reuse_all_k(&trace);
        assert!(r.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn all_same_datum() {
        // "aaaa…": every window of length k has k−1 reuses.
        let trace = vec![7u64; 50];
        let r = reuse_all_k(&trace);
        for k in 1..=50 {
            assert!((r[k] - (k as f64 - 1.0)).abs() < 1e-9, "k={k} r={}", r[k]);
        }
    }

    #[test]
    fn reuse_of_full_window_equals_total_reuses() {
        // reuse(n) = number of reuse intervals (one window encloses all).
        let trace = vec![1u64, 2, 1, 3, 2, 1, 1];
        let r = reuse_all_k(&trace);
        let expected = reuse_intervals(&trace).len() as f64;
        assert!((r[trace.len()] - expected).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn matches_naive_on_fixed_traces() {
        let cases: Vec<Vec<u64>> = vec![
            vec![0, 1, 1],
            vec![1, 2, 1, 3, 2, 1, 1],
            vec![5, 5, 5, 5],
            (0..40).map(|i| (i % 7) as u64).collect(),
            vec![1, 2, 3, 4, 1, 2, 3, 4, 9, 9, 1],
        ];
        for trace in cases {
            let fast = reuse_all_k(&trace);
            let slow = reuse_all_k_naive(&trace);
            for k in 0..=trace.len() {
                assert!(
                    (fast[k] - slow[k]).abs() < 1e-9,
                    "k={k} fast={} slow={} trace={trace:?}",
                    fast[k],
                    slow[k]
                );
            }
        }
    }

    #[test]
    fn intervals_are_consecutive_pairs() {
        let iv = reuse_intervals(&[1, 2, 1, 1, 2]);
        assert_eq!(
            iv,
            vec![
                ReuseInterval { s: 0, e: 2 },
                ReuseInterval { s: 2, e: 3 },
                ReuseInterval { s: 1, e: 4 }
            ]
        );
        assert_eq!(iv[0].span(), 2);
    }

    #[test]
    fn windows_enclosing_cases() {
        // n=10, interval [3,5]
        assert_eq!(windows_enclosing(10, 3, 5, 2), 0); // too short
        assert_eq!(windows_enclosing(10, 3, 5, 3), 1); // exact fit
        assert_eq!(windows_enclosing(10, 3, 5, 4), 2);
        // interval near left edge: [0,1], k=5 → only window starts 0
        assert_eq!(windows_enclosing(10, 0, 1, 5), 1);
        // near right edge: [8,9], k=5 → window starts 5
        assert_eq!(windows_enclosing(10, 8, 9, 5), 1);
        // k = n encloses everything once
        assert_eq!(windows_enclosing(10, 3, 5, 10), 1);
    }

    #[test]
    fn monotone_in_k() {
        // reuse(k) is non-decreasing in k (larger windows enclose at
        // least as many intervals on average — enclosure counts grow and
        // the reuse per window cannot shrink).
        let trace: Vec<u64> = (0..500).map(|i| (i * i % 37) as u64).collect();
        let r = reuse_all_k(&trace);
        for k in 2..=trace.len() {
            assert!(
                r[k] + 1e-9 >= r[k - 1],
                "reuse must be monotone: k={k} {} < {}",
                r[k],
                r[k - 1]
            );
        }
    }

    #[test]
    fn derivative_bounded_by_one() {
        // hr = reuse(k+1) − reuse(k) ∈ [0, 1]: it is a hit ratio.
        let trace: Vec<u64> = (0..600).map(|i| (i % 13 + i / 200) as u64).collect();
        let r = reuse_all_k(&trace);
        for k in 1..trace.len() {
            let d = r[k + 1] - r[k];
            assert!((-1e-9..=1.0 + 1e-9).contains(&d), "k={k} d={d}");
        }
    }

    #[test]
    fn empty_trace() {
        assert_eq!(reuse_all_k(&[]), vec![0.0]);
    }
}
