//! Bursty sampling for online MRC analysis (paper Section III-C).
//!
//! Execution is partitioned into *bursts* and *hibernation* periods.
//! During a burst the sampler records the persistent write stream; at
//! burst end it computes the MRC and the controller adjusts the cache
//! capacity. The paper uses a burst of 64M writes and finds one analysis
//! sufficient, so hibernation defaults to infinite; finite hibernation is
//! supported as the paper's suggested extension (periodic re-adaptation).

use crate::mrc::Mrc;
use crate::reuse::reuse_all_k;

/// State of a [`BurstSampler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerPhase {
    /// Recording writes into the current burst.
    Burst,
    /// Ignoring writes until `remaining` more have passed.
    Hibernating {
        /// Writes left to skip before the next burst.
        remaining: u64,
    },
    /// Analysis done and hibernation is infinite: sampler is off.
    Done,
}

/// Online burst sampler: feed every persistent write id (FASE-renamed);
/// it yields an [`Mrc`] at the end of each burst.
#[derive(Debug, Clone)]
pub struct BurstSampler {
    burst_len: usize,
    hibernation: Option<u64>,
    max_size: usize,
    buf: Vec<u64>,
    phase: SamplerPhase,
    bursts_done: usize,
}

impl BurstSampler {
    /// New sampler: record `burst_len` writes per burst and build MRCs up
    /// to `max_size`. `hibernation = None` means analyze exactly once
    /// (paper default); `Some(h)` skips `h` writes between bursts.
    pub fn new(burst_len: usize, max_size: usize, hibernation: Option<u64>) -> Self {
        assert!(burst_len > 0);
        BurstSampler {
            burst_len,
            hibernation,
            max_size,
            buf: Vec::with_capacity(burst_len.min(1 << 20)),
            phase: SamplerPhase::Burst,
            bursts_done: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> SamplerPhase {
        self.phase
    }

    /// Number of completed bursts.
    pub fn bursts_done(&self) -> usize {
        self.bursts_done
    }

    /// Writes currently buffered in the active burst.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Observe one write. Returns `Some(mrc)` exactly when this write
    /// completes a burst.
    pub fn push(&mut self, id: u64) -> Option<Mrc> {
        match self.phase {
            SamplerPhase::Done => None,
            SamplerPhase::Hibernating { remaining } => {
                if remaining <= 1 {
                    self.phase = SamplerPhase::Burst;
                } else {
                    self.phase = SamplerPhase::Hibernating {
                        remaining: remaining - 1,
                    };
                }
                None
            }
            SamplerPhase::Burst => {
                self.buf.push(id);
                if self.buf.len() >= self.burst_len {
                    let mrc = self.analyze();
                    self.buf.clear();
                    self.bursts_done += 1;
                    self.phase = match self.hibernation {
                        None => SamplerPhase::Done,
                        Some(h) => SamplerPhase::Hibernating { remaining: h },
                    };
                    Some(mrc)
                } else {
                    None
                }
            }
        }
    }

    /// Force analysis of whatever is buffered (e.g. the program ended
    /// before the burst filled). Returns `None` for an empty buffer.
    pub fn flush(&mut self) -> Option<Mrc> {
        if self.buf.is_empty() {
            return None;
        }
        let mrc = self.analyze();
        self.buf.clear();
        self.bursts_done += 1;
        self.phase = SamplerPhase::Done;
        Some(mrc)
    }

    fn analyze(&self) -> Mrc {
        Mrc::from_reuse(&reuse_all_k(&self.buf), self.max_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knee::{select_cache_size, KneeConfig};

    #[test]
    fn burst_completes_exactly_once_with_infinite_hibernation() {
        let mut s = BurstSampler::new(100, 50, None);
        let mut got = 0;
        for i in 0..1000u64 {
            if s.push(i % 7).is_some() {
                got += 1;
            }
        }
        assert_eq!(got, 1);
        assert_eq!(s.phase(), SamplerPhase::Done);
        assert_eq!(s.bursts_done(), 1);
    }

    #[test]
    fn sampled_mrc_finds_the_same_knee_as_full_trace() {
        // Fig 7's claim: the sampled MRC has the same inflection points.
        let w = 23u64;
        let full: Vec<u64> = (0..200_000).map(|i| i % w).collect();
        let mut s = BurstSampler::new(10_000, 50, None);
        let mut sampled = None;
        for &id in &full {
            if let Some(m) = s.push(id) {
                sampled = Some(m);
            }
        }
        let sampled = sampled.unwrap();
        let full_mrc = Mrc::from_reuse(&reuse_all_k(&full), 50);
        let cfg = KneeConfig::default();
        let a = select_cache_size(&sampled, &cfg);
        let b = select_cache_size(&full_mrc, &cfg);
        assert!((a as i64 - b as i64).abs() <= 1, "sampled {a} vs full {b}");
    }

    #[test]
    fn finite_hibernation_rearms() {
        let mut s = BurstSampler::new(10, 8, Some(5));
        let mut bursts = 0;
        for i in 0..100u64 {
            if s.push(i % 3).is_some() {
                bursts += 1;
            }
        }
        // period = 10 (burst) + 5 (hibernate) = 15 → ⌊100/15⌋+ bursts
        assert!(bursts >= 6, "bursts={bursts}");
    }

    #[test]
    fn flush_analyzes_partial_burst() {
        let mut s = BurstSampler::new(1000, 16, None);
        for i in 0..50u64 {
            assert!(s.push(i % 4).is_none());
        }
        let mrc = s.flush().expect("partial burst");
        assert!(mrc.mr(4) < 0.2);
        assert!(s.flush().is_none(), "buffer drained");
    }

    #[test]
    fn flush_on_empty_is_none() {
        let mut s = BurstSampler::new(10, 8, None);
        assert!(s.flush().is_none());
    }
}
