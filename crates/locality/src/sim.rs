//! Exact LRU miss-ratio curves via Mattson stack simulation.
//!
//! Used as the "actual MRC" ground truth in Figure 7 and as the oracle
//! that the timescale prediction ([`crate::Mrc::from_reuse`]) is tested
//! against. One pass computes hits for **all** cache sizes at once: an
//! access hits in every cache at least as large as its LRU stack
//! distance. Stack distances come from a Fenwick tree over access times
//! (`O(n log n)` total).

use crate::mrc::Mrc;
use nvcache_trace::hash::{fx_map_with_capacity, FxHashMap};

/// Fenwick (binary indexed) tree over `n` positions, prefix sums of 0/1
/// marks.
struct Fenwick {
    tree: Vec<i32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }
    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }
    /// Sum of marks at positions `0..=i`.
    fn prefix(&self, mut i: usize) -> i32 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// LRU stack distance of every access: `dist[t]` is the number of
/// distinct data accessed since the previous access to `trace[t]`,
/// inclusive of the datum itself (i.e. its LRU stack depth), or `None`
/// for a cold (first) access.
pub fn stack_distances(trace: &[u64]) -> Vec<Option<usize>> {
    let n = trace.len();
    let mut bit = Fenwick::new(n);
    let mut last: FxHashMap<u64, usize> = fx_map_with_capacity(n / 2 + 1);
    let mut out = Vec::with_capacity(n);
    for (t, &id) in trace.iter().enumerate() {
        match last.get(&id).copied() {
            Some(p) => {
                // distinct data accessed in (p, t): marked latest-accesses
                let between = bit.prefix(t.saturating_sub(1)) - bit.prefix(p);
                out.push(Some(between as usize + 1));
                bit.add(p, -1);
            }
            None => out.push(None),
        }
        bit.add(t, 1);
        last.insert(id, t);
    }
    out
}

/// Exact LRU MRC up to `max_size`, from Mattson stack distances.
pub fn lru_mrc(trace: &[u64], max_size: usize) -> Mrc {
    let dists = stack_distances(trace);
    let mut hist = vec![0u64; max_size + 2];
    for d in dists.into_iter().flatten() {
        hist[d.min(max_size + 1)] += 1;
    }
    // hits(c) = Σ_{d ≤ c} hist[d]
    let mut hits = vec![0u64; max_size + 1];
    let mut acc = 0u64;
    for c in 0..=max_size {
        acc += hist[c];
        hits[c] = acc;
    }
    Mrc::from_hits(&hits, trace.len())
}

/// Direct LRU cache simulation at a single capacity — an independent
/// second oracle used to cross-check [`lru_mrc`] in tests and to measure
/// the real software cache against theory.
pub fn lru_hits_at(trace: &[u64], capacity: usize) -> u64 {
    if capacity == 0 {
        return 0;
    }
    // simple ordered vec: fine for oracle use at small capacities
    let mut stack: Vec<u64> = Vec::with_capacity(capacity + 1);
    let mut hits = 0u64;
    for &id in trace {
        if let Some(pos) = stack.iter().position(|&x| x == id) {
            stack.remove(pos);
            stack.push(id);
            hits += 1;
        } else {
            if stack.len() == capacity {
                stack.remove(0);
            }
            stack.push(id);
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_distance_basics() {
        // a b a  → a's reuse crosses b: distance 2
        let d = stack_distances(&[1, 2, 1]);
        assert_eq!(d, vec![None, None, Some(2)]);
        // a a → distance 1
        let d = stack_distances(&[1, 1]);
        assert_eq!(d, vec![None, Some(1)]);
    }

    #[test]
    fn stack_distance_counts_distinct_not_total() {
        // a b b b a: only one distinct datum (b) between the a's
        let d = stack_distances(&[1, 2, 2, 2, 1]);
        assert_eq!(d[4], Some(2));
    }

    #[test]
    fn lru_mrc_matches_direct_simulation() {
        let trace: Vec<u64> = (0..4000).map(|i| ((i * 31 + i / 7) % 29) as u64).collect();
        let mrc = lru_mrc(&trace, 32);
        for c in [1usize, 2, 4, 8, 16, 29, 32] {
            let hits = lru_hits_at(&trace, c);
            let expect = 1.0 - hits as f64 / trace.len() as f64;
            assert!(
                (mrc.mr(c) - expect).abs() < 1e-12,
                "c={c} mattson={} direct={}",
                mrc.mr(c),
                expect
            );
        }
    }

    #[test]
    fn cyclic_cliff_is_exact() {
        let w = 8u64;
        let trace: Vec<u64> = (0..800).map(|i| i % w).collect();
        let mrc = lru_mrc(&trace, 16);
        // below W: zero hits; at W: only cold misses
        assert!((mrc.mr(7) - 1.0).abs() < 1e-12);
        let cold = w as f64 / trace.len() as f64;
        assert!((mrc.mr(8) - cold).abs() < 1e-12);
    }

    #[test]
    fn timescale_prediction_tracks_exact_mrc() {
        // The paper's correctness condition (reuse-window hypothesis)
        // holds well for mixed periodic traces; prediction should be
        // close to exact.
        let trace: Vec<u64> = (0..20_000)
            .map(|i| {
                if i % 3 == 0 {
                    (i % 5) as u64
                } else {
                    5 + ((i / 3) % 20) as u64
                }
            })
            .collect();
        let exact = lru_mrc(&trace, 30);
        let pred = crate::mrc::Mrc::from_reuse(&crate::reuse::reuse_all_k(&trace), 30);
        let err = pred.mean_abs_error(&exact);
        assert!(err < 0.08, "mean abs error {err}");
    }

    #[test]
    fn monotone_exact_curve() {
        let trace: Vec<u64> = (0..2000).map(|i| ((i * 17) % 41) as u64).collect();
        let mrc = lru_mrc(&trace, 48);
        for c in 1..=48 {
            assert!(mrc.mr(c) <= mrc.mr(c - 1) + 1e-15);
        }
    }

    #[test]
    fn capacity_zero_never_hits() {
        assert_eq!(lru_hits_at(&[1, 1, 1], 0), 0);
    }

    #[test]
    fn empty_trace_mrc() {
        let mrc = lru_mrc(&[], 4);
        assert!(mrc.miss_ratio.iter().all(|&v| v == 1.0));
    }
}
