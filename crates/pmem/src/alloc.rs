//! A small recoverable allocator over a [`PmemRegion`].
//!
//! Stands in for the Makalu-style persistent allocation Atlas relies on
//! (paper Related Work). Metadata lives *inside* the region: a header
//! with a magic number, a user root pointer, the bump cursor, and
//! size-segregated free-list heads; freed blocks thread their next
//! pointer through their own first 8 bytes. Every metadata update is
//! flushed and fenced before the allocator returns, so a reopened region
//! always sees a consistent heap. (Atomicity of *user data* inside
//! allocated blocks is the FASE runtime's job, not the allocator's.)

use crate::region::{PmemRegion, LINE_SIZE};

const MAGIC: u64 = 0x4e56_4341_4348_4531; // "NVCACHE1"
const OFF_MAGIC: usize = 0;
const OFF_ROOT: usize = 8;
const OFF_BUMP: usize = 16;
const OFF_LIMIT: usize = 24;
const OFF_FREE: usize = 32;
/// Size classes: 16, 32, 64, …, 4096 bytes.
const NUM_CLASSES: usize = 9;
/// First allocatable offset (header, line-aligned).
const HEAP_START: usize = ((OFF_FREE + NUM_CLASSES * 8) / LINE_SIZE + 1) * LINE_SIZE;

/// Recoverable bump + free-list allocator.
#[derive(Debug, Clone, Copy)]
pub struct PAlloc {
    _priv: (),
}

pub(crate) fn class_of(size: usize) -> Option<usize> {
    if size == 0 {
        return None;
    }
    let mut c = 16usize;
    for i in 0..NUM_CLASSES {
        if size <= c {
            return Some(i);
        }
        c *= 2;
    }
    None
}

/// Byte size of class `i`.
pub(crate) fn class_size(i: usize) -> usize {
    16usize << i
}

impl PAlloc {
    /// Initialize a fresh region as an empty heap spanning the whole
    /// region.
    pub fn format(region: &mut PmemRegion) -> Self {
        let limit = region.len() as u64;
        Self::format_with_limit(region, limit)
    }

    /// Initialize a heap that bumps only up to `limit` bytes, leaving
    /// `[limit, region.len())` for other uses (e.g. a FASE undo log).
    pub fn format_with_limit(region: &mut PmemRegion, limit: u64) -> Self {
        assert!(limit as usize <= region.len());
        assert!(limit as usize > HEAP_START, "region too small for a heap");
        region.write_u64(OFF_MAGIC, MAGIC);
        region.write_u64(OFF_ROOT, 0);
        region.write_u64(OFF_BUMP, HEAP_START as u64);
        region.write_u64(OFF_LIMIT, limit);
        for i in 0..NUM_CLASSES {
            region.write_u64(OFF_FREE + i * 8, 0);
        }
        region.persist(0, HEAP_START);
        PAlloc { _priv: () }
    }

    /// Open an existing heap; fails if the magic is absent (fresh or
    /// corrupt region).
    pub fn open(region: &PmemRegion) -> Option<Self> {
        if region.len() > HEAP_START && region.read_u64(OFF_MAGIC) == MAGIC {
            Some(PAlloc { _priv: () })
        } else {
            None
        }
    }

    /// The user root object offset (0 = unset).
    pub fn root(&self, region: &PmemRegion) -> u64 {
        region.read_u64(OFF_ROOT)
    }

    /// Durably set the user root offset.
    pub fn set_root(&self, region: &mut PmemRegion, offset: u64) {
        region.write_u64(OFF_ROOT, offset);
        region.persist(OFF_ROOT, 8);
    }

    /// Allocate `size` bytes; returns the offset, or `None` when the
    /// region is exhausted or the size exceeds the largest class (4 KiB).
    pub fn alloc(&self, region: &mut PmemRegion, size: usize) -> Option<u64> {
        let class = class_of(size)?;
        let head_off = OFF_FREE + class * 8;
        let head = region.read_u64(head_off);
        if head != 0 {
            let next = region.read_u64(head as usize);
            region.write_u64(head_off, next);
            region.persist(head_off, 8);
            return Some(head);
        }
        let bump = region.read_u64(OFF_BUMP);
        let block = class_size(class) as u64;
        if bump + block > region.read_u64(OFF_LIMIT) {
            return None;
        }
        region.write_u64(OFF_BUMP, bump + block);
        region.persist(OFF_BUMP, 8);
        Some(bump)
    }

    /// Free the block at `offset` previously allocated with `size`.
    pub fn free(&self, region: &mut PmemRegion, offset: u64, size: usize) {
        let class = class_of(size).expect("size was allocatable");
        let head_off = OFF_FREE + class * 8;
        let head = region.read_u64(head_off);
        region.write_u64(offset as usize, head);
        region.persist(offset as usize, 8);
        region.write_u64(head_off, offset);
        region.persist(head_off, 8);
    }

    /// Carve `count` contiguous blocks of the size class covering
    /// `size` from the bump region with a **single** metadata persist
    /// (one cursor update instead of one per block) — the chunk feed
    /// for [`crate::slab::SlabAlloc`]. Returns `(first_offset,
    /// block_bytes)`; block `i` starts at `first_offset + i *
    /// block_bytes`. `None` when the size has no class or the whole
    /// chunk does not fit below the limit.
    pub fn bump_chunk(
        &self,
        region: &mut PmemRegion,
        size: usize,
        count: usize,
    ) -> Option<(u64, usize)> {
        if count == 0 {
            return None;
        }
        let class = class_of(size)?;
        let block = class_size(class);
        let bump = region.read_u64(OFF_BUMP);
        let span = (block * count) as u64;
        if bump + span > region.read_u64(OFF_LIMIT) {
            return None;
        }
        region.write_u64(OFF_BUMP, bump + span);
        region.persist(OFF_BUMP, 8);
        Some((bump, block))
    }

    /// Bytes remaining for fresh (bump) allocation.
    pub fn bump_remaining(&self, region: &PmemRegion) -> u64 {
        region.read_u64(OFF_LIMIT) - region.read_u64(OFF_BUMP)
    }

    /// First allocatable offset (for tests and layout assertions).
    pub fn heap_start() -> usize {
        HEAP_START
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashMode;

    fn fresh(len: usize) -> (PmemRegion, PAlloc) {
        let mut r = PmemRegion::new(len);
        let a = PAlloc::format(&mut r);
        (r, a)
    }

    #[test]
    fn class_rounding() {
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(16), Some(0));
        assert_eq!(class_of(17), Some(1));
        assert_eq!(class_of(4096), Some(8));
        assert_eq!(class_of(4097), None);
        assert_eq!(class_of(0), None);
    }

    #[test]
    fn alloc_returns_distinct_aligned_blocks() {
        let (mut r, a) = fresh(1 << 16);
        let x = a.alloc(&mut r, 64).unwrap();
        let y = a.alloc(&mut r, 64).unwrap();
        assert_ne!(x, y);
        assert!(x as usize >= PAlloc::heap_start());
        assert_eq!(x % 16, 0);
    }

    #[test]
    fn free_then_alloc_reuses_block() {
        let (mut r, a) = fresh(1 << 16);
        let x = a.alloc(&mut r, 100).unwrap();
        a.free(&mut r, x, 100);
        let y = a.alloc(&mut r, 100).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn free_list_is_per_class() {
        let (mut r, a) = fresh(1 << 16);
        let x = a.alloc(&mut r, 16).unwrap();
        a.free(&mut r, x, 16);
        // different class: must not reuse x
        let y = a.alloc(&mut r, 1000).unwrap();
        assert_ne!(x, y);
    }

    #[test]
    fn exhaustion_returns_none() {
        let (mut r, a) = fresh(2048);
        // heap space after header is small; drain it
        let mut n = 0;
        while a.alloc(&mut r, 128).is_some() {
            n += 1;
            assert!(n < 100, "should exhaust");
        }
        assert!(n >= 1);
    }

    #[test]
    fn heap_survives_crash() {
        let (mut r, a) = fresh(1 << 16);
        let x = a.alloc(&mut r, 64).unwrap();
        a.set_root(&mut r, x);
        r.crash(&CrashMode::StrictDurableOnly);
        let a2 = PAlloc::open(&r).expect("magic survives");
        assert_eq!(a2.root(&r), x);
        // allocator state is consistent: next alloc returns a block that
        // does not overlap x
        let y = a2.alloc(&mut r, 64).unwrap();
        assert!(y >= x + 64 || y + 64 <= x);
    }

    #[test]
    fn open_rejects_unformatted() {
        let r = PmemRegion::new(1 << 16);
        assert!(PAlloc::open(&r).is_none());
    }

    #[test]
    fn root_roundtrip() {
        let (mut r, a) = fresh(1 << 16);
        assert_eq!(a.root(&r), 0);
        a.set_root(&mut r, 4242);
        assert_eq!(a.root(&r), 4242);
    }

    #[test]
    fn limit_is_respected() {
        let mut r = PmemRegion::new(1 << 16);
        let limit = (PAlloc::heap_start() + 1024) as u64;
        let a = PAlloc::format_with_limit(&mut r, limit);
        let mut n = 0;
        while a.alloc(&mut r, 256).is_some() {
            n += 1;
            assert!(n <= 4, "must stop at the limit");
        }
        assert_eq!(n, 4);
        // space past the limit is untouched by the allocator
        assert_eq!(r.read_u64(limit as usize), 0);
    }

    #[test]
    fn free_list_chain_survives_crash_under_every_mode() {
        // Every metadata update is persisted before the allocator
        // returns, so even the strictest adversary must preserve a
        // multi-block free chain and the bump cursor.
        for mode in [
            CrashMode::StrictDurableOnly,
            CrashMode::AllInFlightLands,
            CrashMode::random(0.5, 0.5, 7),
        ] {
            let (mut r, a) = fresh(1 << 16);
            let blocks: Vec<u64> = (0..3).map(|_| a.alloc(&mut r, 64).unwrap()).collect();
            let bump_after = a.bump_remaining(&r);
            for &b in &blocks {
                a.free(&mut r, b, 64);
            }
            r.crash(&mode);
            let a2 = PAlloc::open(&r).expect("magic survives every mode");
            assert_eq!(a2.bump_remaining(&r), bump_after, "{mode:?}");
            // LIFO free list hands the blocks back newest-first, all
            // three before touching the bump cursor again
            for &want in blocks.iter().rev() {
                assert_eq!(a2.alloc(&mut r, 64), Some(want), "{mode:?}");
            }
            assert_eq!(a2.bump_remaining(&r), bump_after, "{mode:?}");
        }
    }

    #[test]
    fn exhausted_heap_is_usable_again_after_free_and_crash() {
        let mut r = PmemRegion::new(1 << 16);
        let limit = (PAlloc::heap_start() + 512) as u64;
        let a = PAlloc::format_with_limit(&mut r, limit);
        let mut blocks = Vec::new();
        while let Some(b) = a.alloc(&mut r, 128) {
            blocks.push(b);
        }
        assert_eq!(blocks.len(), 4);
        assert_eq!(a.alloc(&mut r, 128), None, "exhausted");
        a.free(&mut r, blocks[1], 128);
        r.crash(&CrashMode::random(0.5, 0.5, 11));
        let a2 = PAlloc::open(&r).expect("heap reopens");
        assert_eq!(a2.alloc(&mut r, 128), Some(blocks[1]), "freed block back");
        assert_eq!(a2.alloc(&mut r, 128), None, "then exhausted again");
    }

    #[test]
    fn many_alloc_free_cycles_do_not_leak_bump() {
        let (mut r, a) = fresh(1 << 16);
        let before = a.bump_remaining(&r);
        let x = a.alloc(&mut r, 256).unwrap();
        a.free(&mut r, x, 256);
        for _ in 0..100 {
            let y = a.alloc(&mut r, 256).unwrap();
            assert_eq!(y, x, "free list must recycle");
            a.free(&mut r, y, 256);
        }
        let after = a.bump_remaining(&r);
        assert_eq!(before - after, 256, "only the first alloc bumped");
    }
}
