//! Crash-injection policies: which un-fenced lines survive a power
//! failure.
//!
//! A correct persistence protocol must recover no matter which subset of
//! in-flight lines reached NVRAM. Testing under several adversarial
//! selections (none, all, random subsets across seeds) is how the
//! integration suite demonstrates FASE atomicity.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What happens to un-fenced lines at a crash.
#[derive(Debug, Clone, PartialEq)]
pub enum CrashMode {
    /// Only fenced data survives: all pending flushes and dirty lines are
    /// lost. Adversarial for missing-flush bugs.
    StrictDurableOnly,
    /// Every pending flush *and* every dirty line lands (the cache
    /// happened to write everything back). Adversarial for
    /// ordering bugs — data may become durable *before* its log entry if
    /// the protocol relies on "not flushed ⇒ not durable".
    AllInFlightLands,
    /// Each pending flush lands with probability `p_pending`; each dirty
    /// line lands with probability `p_dirty` (natural eviction).
    Random {
        /// Probability a flushed-but-unfenced line landed.
        p_pending: f64,
        /// Probability a dirty (never flushed) line landed.
        p_dirty: f64,
        /// RNG seed (deterministic failure schedules).
        seed: u64,
    },
}

impl CrashMode {
    /// Shorthand for [`CrashMode::Random`].
    pub fn random(p_pending: f64, p_dirty: f64, seed: u64) -> Self {
        CrashMode::Random {
            p_pending,
            p_dirty,
            seed,
        }
    }

    /// Select the lines that reach NVRAM, given the pending-flush lines
    /// and the dirty lines at the instant of failure.
    pub fn select_landed(&self, pending: &[u64], dirty: &[u64]) -> Vec<u64> {
        match self {
            CrashMode::StrictDurableOnly => Vec::new(),
            CrashMode::AllInFlightLands => {
                let mut v: Vec<u64> = pending.iter().chain(dirty).copied().collect();
                v.sort_unstable();
                v.dedup();
                v
            }
            CrashMode::Random {
                p_pending,
                p_dirty,
                seed,
            } => {
                let mut rng = SmallRng::seed_from_u64(*seed);
                // sort for determinism independent of hash iteration order
                let mut p: Vec<u64> = pending.to_vec();
                p.sort_unstable();
                let mut d: Vec<u64> = dirty.to_vec();
                d.sort_unstable();
                let mut out = Vec::new();
                for &l in &p {
                    if rng.gen::<f64>() < *p_pending {
                        out.push(l);
                    }
                }
                for &l in &d {
                    if rng.gen::<f64>() < *p_dirty {
                        out.push(l);
                    }
                }
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_drops_everything() {
        let m = CrashMode::StrictDurableOnly;
        assert!(m.select_landed(&[1, 2], &[3]).is_empty());
    }

    #[test]
    fn all_lands_everything_deduped() {
        let m = CrashMode::AllInFlightLands;
        assert_eq!(m.select_landed(&[2, 1], &[2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let m = CrashMode::random(0.5, 0.5, 42);
        let pending: Vec<u64> = (0..100).collect();
        let dirty: Vec<u64> = (100..200).collect();
        assert_eq!(
            m.select_landed(&pending, &dirty),
            m.select_landed(&pending, &dirty)
        );
    }

    #[test]
    fn random_extremes() {
        let none = CrashMode::random(0.0, 0.0, 1);
        assert!(none.select_landed(&[1, 2], &[3]).is_empty());
        let all = CrashMode::random(1.0, 1.0, 1);
        assert_eq!(all.select_landed(&[1, 2], &[3]).len(), 3);
    }

    #[test]
    fn random_order_independent() {
        let m = CrashMode::random(0.5, 0.5, 9);
        let a = m.select_landed(&[5, 1, 9], &[7, 3]);
        let b = m.select_landed(&[9, 5, 1], &[3, 7]);
        assert_eq!(a, b, "selection must not depend on input order");
    }
}
