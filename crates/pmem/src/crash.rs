//! Crash-injection policies: which un-fenced lines survive a power
//! failure.
//!
//! A correct persistence protocol must recover no matter which subset of
//! in-flight lines reached NVRAM. Testing under several adversarial
//! selections (none, all, random subsets across seeds) is how the
//! integration suite demonstrates FASE atomicity.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What happens to un-fenced lines at a crash.
#[derive(Debug, Clone, PartialEq)]
pub enum CrashMode {
    /// Only fenced data survives: all pending flushes and dirty lines are
    /// lost. Adversarial for missing-flush bugs.
    StrictDurableOnly,
    /// Every pending flush *and* every dirty line lands (the cache
    /// happened to write everything back). Adversarial for
    /// ordering bugs — data may become durable *before* its log entry if
    /// the protocol relies on "not flushed ⇒ not durable".
    AllInFlightLands,
    /// Each pending flush lands with probability `p_pending`; each dirty
    /// line lands with probability `p_dirty` (natural eviction).
    Random {
        /// Probability a flushed-but-unfenced line landed.
        p_pending: f64,
        /// Probability a dirty (never flushed) line landed.
        p_dirty: f64,
        /// RNG seed (deterministic failure schedules).
        seed: u64,
    },
}

impl CrashMode {
    /// Shorthand for [`CrashMode::Random`].
    pub fn random(p_pending: f64, p_dirty: f64, seed: u64) -> Self {
        CrashMode::Random {
            p_pending,
            p_dirty,
            seed,
        }
    }

    /// Select the lines that reach NVRAM, given the pending-flush lines
    /// and the dirty lines at the instant of failure. Union of the two
    /// selections from [`CrashMode::select_landed_split`].
    pub fn select_landed(&self, pending: &[u64], dirty: &[u64]) -> Vec<u64> {
        let (p, d) = self.select_landed_split(pending, dirty);
        let mut v = p;
        v.extend(d);
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Like [`CrashMode::select_landed`], but keeps the two selections
    /// apart: the first vector is the pending flushes that landed (their
    /// flush-time captures reach NVRAM), the second the dirty lines the
    /// hardware cache evicted on its own (their *current* bytes reach
    /// NVRAM). A line flushed and then re-dirtied can appear in both —
    /// the dirty copy is the newer write and wins.
    pub fn select_landed_split(&self, pending: &[u64], dirty: &[u64]) -> (Vec<u64>, Vec<u64>) {
        match self {
            CrashMode::StrictDurableOnly => (Vec::new(), Vec::new()),
            CrashMode::AllInFlightLands => {
                let mut p = pending.to_vec();
                p.sort_unstable();
                p.dedup();
                let mut d = dirty.to_vec();
                d.sort_unstable();
                d.dedup();
                (p, d)
            }
            CrashMode::Random {
                p_pending,
                p_dirty,
                seed,
            } => {
                let mut rng = SmallRng::seed_from_u64(*seed);
                // sort for determinism independent of hash iteration order
                let mut p: Vec<u64> = pending.to_vec();
                p.sort_unstable();
                let mut d: Vec<u64> = dirty.to_vec();
                d.sort_unstable();
                let mut lp = Vec::new();
                for &l in &p {
                    if rng.gen::<f64>() < *p_pending {
                        lp.push(l);
                    }
                }
                let mut ld = Vec::new();
                for &l in &d {
                    if rng.gen::<f64>() < *p_dirty {
                        ld.push(l);
                    }
                }
                (lp, ld)
            }
        }
    }
}

/// A scheduled crash: inject a power failure (under `mode`) at the
/// moment the region is about to execute persistence micro-step
/// `at_step`.
///
/// Micro-steps are the unit of crash-point enumeration: every store,
/// line flush, and fence the region executes — which transitively
/// covers undo-log appends, tail bumps, and commit sub-steps, since the
/// log performs them through the region. Arm a plan with
/// [`crate::PmemRegion::arm_crash`]; when the step counter reaches
/// `at_step`, the region captures the exact NVRAM image a
/// [`crate::PmemRegion::crash`] at that instant would leave (durable
/// image plus the lines `mode` lets land). Execution then continues
/// unperturbed, so one deterministic program run yields the crash image
/// for any chosen step; the driver rebuilds a region from the image and
/// runs recovery against it.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashPlan {
    /// Micro-step index at which the failure strikes: the power fails
    /// after `at_step` micro-steps completed, before step `at_step`
    /// executes.
    pub at_step: u64,
    /// Which un-fenced lines survive.
    pub mode: CrashMode,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_drops_everything() {
        let m = CrashMode::StrictDurableOnly;
        assert!(m.select_landed(&[1, 2], &[3]).is_empty());
    }

    #[test]
    fn all_lands_everything_deduped() {
        let m = CrashMode::AllInFlightLands;
        assert_eq!(m.select_landed(&[2, 1], &[2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let m = CrashMode::random(0.5, 0.5, 42);
        let pending: Vec<u64> = (0..100).collect();
        let dirty: Vec<u64> = (100..200).collect();
        assert_eq!(
            m.select_landed(&pending, &dirty),
            m.select_landed(&pending, &dirty)
        );
    }

    #[test]
    fn random_extremes() {
        let none = CrashMode::random(0.0, 0.0, 1);
        assert!(none.select_landed(&[1, 2], &[3]).is_empty());
        let all = CrashMode::random(1.0, 1.0, 1);
        assert_eq!(all.select_landed(&[1, 2], &[3]).len(), 3);
    }

    #[test]
    fn random_order_independent() {
        let m = CrashMode::random(0.5, 0.5, 9);
        let a = m.select_landed(&[5, 1, 9], &[7, 3]);
        let b = m.select_landed(&[9, 5, 1], &[3, 7]);
        assert_eq!(a, b, "selection must not depend on input order");
    }
}
