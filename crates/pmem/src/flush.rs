//! Real x86 cache-line flush instructions behind runtime detection.
//!
//! Atlas uses `clflush` (flush + invalidate, strongly ordered); newer
//! parts offer `clflushopt` (weakly ordered, needs `sfence`) and `clwb`
//! (write back without invalidating — paper Section II-A notes it may
//! leave stale lines visible to other threads). On non-x86 hosts or when
//! explicitly requested, a no-op backend keeps the code path identical
//! for the simulator.

/// Which flush instruction to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushInstr {
    /// `clflush`: flush + invalidate, ordered (Atlas's choice).
    Clflush,
    /// `clflushopt`: flush + invalidate, weakly ordered.
    ClflushOpt,
    /// `clwb`: write back without invalidating.
    Clwb,
    /// No hardware effect (simulation-only backends).
    Noop,
}

/// Pick the best instruction the host supports, preferring `clwb` >
/// `clflushopt` > `clflush` (fewer invalidations / less ordering).
/// Returns [`FlushInstr::Noop`] off x86-64.
pub fn detect_flush_instr() -> FlushInstr {
    #[cfg(target_arch = "x86_64")]
    {
        // CPUID leaf 7, sub-leaf 0: EBX bit 23 = CLFLUSHOPT, bit 24 = CLWB
        // (queried directly; rustc's feature-detection macro does not
        // whitelist these names on every toolchain).
        let ebx = core::arch::x86_64::__cpuid_count(7, 0).ebx;
        if ebx & (1 << 24) != 0 {
            return FlushInstr::Clwb;
        }
        if ebx & (1 << 23) != 0 {
            return FlushInstr::ClflushOpt;
        }
        FlushInstr::Clflush // baseline x86-64 always has clflush (sse2)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        FlushInstr::Noop
    }
}

/// Does the host actually support `instr`? Used to avoid executing an
/// undetected instruction (SIGILL) when a caller requests one explicitly.
fn host_supports(instr: FlushInstr) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        let ebx = core::arch::x86_64::__cpuid_count(7, 0).ebx;
        match instr {
            FlushInstr::Clflush => true,
            FlushInstr::ClflushOpt => ebx & (1 << 23) != 0,
            FlushInstr::Clwb => ebx & (1 << 24) != 0,
            FlushInstr::Noop => true,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        instr == FlushInstr::Noop
    }
}

#[cfg(target_arch = "x86_64")]
mod imp {
    // Plain inline asm: no target-feature gate is needed to *emit* these
    // instructions; callers gate execution on cpuid.
    pub unsafe fn clflush(p: *const u8) {
        core::arch::x86_64::_mm_clflush(p);
    }

    pub unsafe fn clflushopt(p: *const u8) {
        core::arch::asm!("clflushopt [{0}]", in(reg) p, options(nostack, preserves_flags));
    }

    pub unsafe fn clwb(p: *const u8) {
        core::arch::asm!("clwb [{0}]", in(reg) p, options(nostack, preserves_flags));
    }

    pub unsafe fn sfence() {
        core::arch::x86_64::_mm_sfence();
    }
}

/// Flush the cache line containing `r` with `instr` — the safe entry
/// point for single values.
pub fn flush_ref<T>(r: &T, instr: FlushInstr) {
    // SAFETY: a reference is always valid for one byte
    unsafe { flush_ptr(r as *const T as *const u8, instr) }
}

/// Flush the cache line containing `p`.
///
/// # Safety
/// `p` must point into a live allocation (dereferenceable for at least
/// one byte); the flush instructions fault on unmapped addresses.
pub unsafe fn flush_ptr(p: *const u8, instr: FlushInstr) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        // fall back to baseline clflush when the requested instruction
        // is not available on this host
        let instr = if host_supports(instr) {
            instr
        } else {
            FlushInstr::Clflush
        };
        match instr {
            FlushInstr::Clflush => imp::clflush(p),
            FlushInstr::ClflushOpt => imp::clflushopt(p),
            FlushInstr::Clwb => imp::clwb(p),
            FlushInstr::Noop => {}
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (p, instr, host_supports(instr));
    }
}

/// Flush every line covering `bytes`. Returns the number of line
/// flushes issued (0 for an empty slice or the no-op backend) so
/// callers can account flush traffic without re-deriving line spans.
pub fn flush_slice(bytes: &[u8], instr: FlushInstr) -> usize {
    if bytes.is_empty() || instr == FlushInstr::Noop {
        return 0;
    }
    let start = bytes.as_ptr() as usize & !(crate::LINE_SIZE - 1);
    let end = bytes.as_ptr() as usize + bytes.len();
    let mut a = start;
    let mut lines = 0;
    while a < end {
        // SAFETY: every line in [start, end) overlaps the live `bytes`
        // slice, so the address is mapped
        unsafe { flush_ptr(a as *const u8, instr) };
        a += crate::LINE_SIZE;
        lines += 1;
    }
    lines
}

/// Store fence: order preceding flushes before subsequent stores.
pub fn sfence() {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        imp::sfence();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_returns_something_sane() {
        let i = detect_flush_instr();
        #[cfg(target_arch = "x86_64")]
        assert_ne!(i, FlushInstr::Noop, "x86-64 always has clflush");
        let _ = i;
    }

    #[test]
    fn flushing_does_not_corrupt_data() {
        let instr = detect_flush_instr();
        let mut v = vec![0u8; 4096];
        for (i, b) in v.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        flush_slice(&v, instr);
        sfence();
        for (i, b) in v.iter().enumerate() {
            assert_eq!(*b, (i % 251) as u8);
        }
    }

    #[test]
    fn all_backends_execute() {
        let x = 42u64;
        for instr in [
            FlushInstr::Clflush,
            FlushInstr::ClflushOpt,
            FlushInstr::Clwb,
            FlushInstr::Noop,
        ] {
            flush_ref(&x, instr);
        }
        sfence();
        assert_eq!(x, 42);
    }

    #[test]
    fn empty_slice_is_noop() {
        assert_eq!(flush_slice(&[], detect_flush_instr()), 0);
    }

    #[test]
    fn flush_slice_counts_covering_lines() {
        let instr = detect_flush_instr();
        let v = vec![7u8; 64 * 4];
        // the slice covers 4 full lines, but its start may straddle a
        // line boundary — either 4 or 5 lines are flushed
        let n = flush_slice(&v, instr);
        if instr == FlushInstr::Noop {
            assert_eq!(n, 0);
        } else {
            assert!((4..=5).contains(&n), "4 lines of data: flushed {n}");
            let aligned = &v[..64];
            assert!(flush_slice(aligned, instr) <= 2);
            assert_eq!(flush_slice(&v[..1], instr), 1);
        }
    }
}
