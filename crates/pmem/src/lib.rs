//! Emulated byte-addressable persistent memory (NVRAM).
//!
//! The paper tests on DRAM emulating NVRAM through `tmpfs`: a directly
//! mapped, byte-addressable region that survives process termination.
//! This crate reproduces that substrate in safe Rust, with the extra
//! capability a real emulator lacks: **deterministic crash injection**.
//!
//! A [`region::PmemRegion`] keeps two images of its bytes:
//!
//! * the **volatile image** — what the program sees (memory + the dirty
//!   lines still sitting in the transient CPU cache), and
//! * the **durable image** — what NVRAM would actually contain after a
//!   power failure.
//!
//! Writes touch only the volatile image and mark their cache lines
//! dirty. A *flush* captures the line's bytes at flush time; a *fence*
//! commits captured lines to the durable image (`clflush` + `sfence`
//! semantics). [`crash::CrashMode`] then simulates failure: the program
//! state is reset to the durable image, optionally plus an adversarially
//! chosen subset of un-fenced lines (a real cache may or may not have
//! evicted them on its own) — exactly the uncertainty that makes
//! persistence ordering bugs observable.
//!
//! [`flush`] additionally exposes the *real* x86 flush instructions
//! (`clflush`/`clflushopt`/`clwb` + `sfence`) behind runtime feature
//! detection, so the library exercises the true instruction path on
//! x86-64 hosts, like the paper's emulator does.
//!
//! [`alloc::PAlloc`] is a small recoverable allocator over a region
//! (bump + size-segregated free lists, metadata in-region), standing in
//! for the Makalu-style allocation Atlas relies on.
//!
//! [`ring::FlushRing`] is the asynchronous flush pipeline: a mutex-free
//! submission ring whose drain side sorts, dedups, FliT-elides, and
//! coalesces lines into ranged sweeps — while keeping every swept line
//! an individual crash-visible micro-step. [`slab::SlabAlloc`] layers
//! volatile size-classed free lists over `PAlloc` so hot-path node
//! allocation stops paying a fence per block.

#![warn(missing_docs)]

pub mod alloc;
pub mod crash;
pub mod flush;
pub mod region;
pub mod ring;
pub mod slab;

pub use alloc::PAlloc;
pub use crash::{CrashMode, CrashPlan};
pub use flush::{detect_flush_instr, flush_ptr, sfence, FlushInstr};
pub use region::{PmemRegion, PmemStats, LINE_SIZE};
pub use ring::{coalesce_sorted, FenceToken, FlushRing, RingStats};
pub use slab::{SlabAlloc, SlabStats};
