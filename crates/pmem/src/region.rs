//! The persistent region: volatile/durable dual image with line-granular
//! flush tracking, plus file-backed persistence across "processes".

use crate::crash::{CrashMode, CrashPlan};
use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

/// Cache-line size in bytes (matches the trace model).
pub const LINE_SIZE: usize = 64;

/// Flush/fence/write counters of a region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmemStats {
    /// Bytes written (volatile image).
    pub bytes_written: u64,
    /// Individual store operations.
    pub stores: u64,
    /// Line flushes issued.
    pub flushes: u64,
    /// Fences issued.
    pub fences: u64,
    /// Crashes injected.
    pub crashes: u64,
}

/// An emulated persistent memory region.
///
/// Offsets are region-relative byte addresses. Line `i` covers bytes
/// `[i*64, (i+1)*64)`.
#[derive(Debug, Clone)]
pub struct PmemRegion {
    volatile: Vec<u8>,
    durable: Vec<u8>,
    /// Lines whose volatile bytes differ from the last flush capture
    /// (i.e. dirty in the transient CPU cache).
    dirty: std::collections::HashSet<u64>,
    /// Lines flushed but not yet fenced: captured bytes at flush time.
    pending: HashMap<u64, [u8; LINE_SIZE]>,
    stats: PmemStats,
    /// Persistence micro-steps executed (stores + flushes + fences).
    step: u64,
    /// Armed crash point, if any.
    plan: Option<CrashPlan>,
    /// NVRAM image captured when the armed crash point was reached.
    crash_image: Option<Vec<u8>>,
}

impl PmemRegion {
    /// A fresh zeroed region of `len` bytes (rounded up to a line).
    pub fn new(len: usize) -> Self {
        let len = len.div_ceil(LINE_SIZE) * LINE_SIZE;
        PmemRegion {
            volatile: vec![0; len],
            durable: vec![0; len],
            dirty: Default::default(),
            pending: Default::default(),
            stats: PmemStats::default(),
            step: 0,
            plan: None,
            crash_image: None,
        }
    }

    /// Rebuild a region from a raw NVRAM image (e.g. one captured by an
    /// armed [`CrashPlan`]): both the volatile and durable views start
    /// from `image`, exactly as after a power cycle.
    ///
    /// # Panics
    /// When `image` is not a whole number of cache lines.
    pub fn from_image(image: Vec<u8>) -> Self {
        assert!(
            image.len().is_multiple_of(LINE_SIZE),
            "image not line-aligned: {} bytes",
            image.len()
        );
        PmemRegion {
            volatile: image.clone(),
            durable: image,
            dirty: Default::default(),
            pending: Default::default(),
            stats: PmemStats::default(),
            step: 0,
            plan: None,
            crash_image: None,
        }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.volatile.len()
    }

    /// True iff zero-length.
    pub fn is_empty(&self) -> bool {
        self.volatile.is_empty()
    }

    /// Number of cache lines.
    pub fn line_count(&self) -> u64 {
        (self.volatile.len() / LINE_SIZE) as u64
    }

    /// Counters.
    pub fn stats(&self) -> PmemStats {
        self.stats
    }

    /// Lines currently dirty (unflushed) — what a whole-cache flush
    /// would have to write back.
    pub fn dirty_lines(&self) -> usize {
        self.dirty.len()
    }

    // ----- crash-point enumeration ---------------------------------------

    /// Persistence micro-steps executed so far: one per store, per line
    /// flush, and per fence — the crash-point index space. Log appends
    /// and commit sub-steps count automatically because the undo log
    /// performs them through these same primitives.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Arm a [`CrashPlan`]: when the next micro-step to execute is
    /// `plan.at_step`, capture the NVRAM image a [`PmemRegion::crash`]
    /// with `plan.mode` would leave at that instant, then keep running.
    /// Retrieve the image with [`PmemRegion::take_crash_image`].
    pub fn arm_crash(&mut self, plan: CrashPlan) {
        self.plan = Some(plan);
        self.crash_image = None;
    }

    /// Disarm any armed plan, returning it.
    pub fn disarm_crash(&mut self) -> Option<CrashPlan> {
        self.plan.take()
    }

    /// The image captured by an armed plan, if its step was reached.
    /// Draining: subsequent calls return `None`.
    pub fn take_crash_image(&mut self) -> Option<Vec<u8>> {
        self.crash_image.take()
    }

    /// One persistence micro-step is about to execute: fire the armed
    /// crash plan if this is its step, then advance the counter.
    #[inline]
    fn micro_step(&mut self) {
        if let Some(plan) = &self.plan {
            if plan.at_step == self.step && self.crash_image.is_none() {
                let mode = plan.mode.clone();
                self.crash_image = Some(self.image_after_crash(&mode));
            }
        }
        self.step += 1;
    }

    /// The NVRAM image a crash under `mode` would leave right now: the
    /// durable image, plus whichever un-fenced lines `mode` lets land.
    /// Pending flushes land their flush-time captures; dirty lines land
    /// their current volatile bytes. A line that was flushed and then
    /// re-dirtied can be selected through both lists — the dirty copy
    /// is the newer write and wins.
    pub fn image_after_crash(&self, mode: &CrashMode) -> Vec<u8> {
        let pending: Vec<u64> = self.pending.keys().copied().collect();
        let dirty: Vec<u64> = self.dirty.iter().copied().collect();
        let (landed_pending, landed_dirty) = mode.select_landed_split(&pending, &dirty);
        let mut image = self.durable.clone();
        for line in landed_pending {
            if let Some(bytes) = self.pending.get(&line) {
                let off = line as usize * LINE_SIZE;
                image[off..off + LINE_SIZE].copy_from_slice(bytes);
            }
        }
        for line in landed_dirty {
            let off = line as usize * LINE_SIZE;
            image[off..off + LINE_SIZE].copy_from_slice(&self.volatile[off..off + LINE_SIZE]);
        }
        image
    }

    /// Read `buf.len()` bytes at `offset` from the program's view.
    pub fn read(&self, offset: usize, buf: &mut [u8]) {
        buf.copy_from_slice(&self.volatile[offset..offset + buf.len()]);
    }

    /// Read a little-endian u64 at `offset`.
    pub fn read_u64(&self, offset: usize) -> u64 {
        let mut b = [0u8; 8];
        self.read(offset, &mut b);
        u64::from_le_bytes(b)
    }

    /// Borrow the program's view of `[offset, offset+len)`.
    pub fn slice(&self, offset: usize, len: usize) -> &[u8] {
        &self.volatile[offset..offset + len]
    }

    /// Write `bytes` at `offset` into the volatile image, dirtying the
    /// covered lines. Returns the first covered line index (callers
    /// instrumenting per-line notify their policy via
    /// [`PmemRegion::lines_of`]).
    pub fn write(&mut self, offset: usize, bytes: &[u8]) {
        assert!(
            offset + bytes.len() <= self.volatile.len(),
            "write beyond region: {}+{} > {}",
            offset,
            bytes.len(),
            self.volatile.len()
        );
        self.micro_step();
        self.volatile[offset..offset + bytes.len()].copy_from_slice(bytes);
        self.stats.stores += 1;
        self.stats.bytes_written += bytes.len() as u64;
        for l in Self::lines_of(offset, bytes.len()) {
            self.dirty.insert(l);
        }
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, offset: usize, v: u64) {
        self.write(offset, &v.to_le_bytes());
    }

    /// Region-relative line indices covering `[offset, offset+len)`.
    pub fn lines_of(offset: usize, len: usize) -> impl Iterator<Item = u64> {
        let first = (offset / LINE_SIZE) as u64;
        let last = if len == 0 {
            first
        } else {
            ((offset + len - 1) / LINE_SIZE) as u64
        };
        first..=last
    }

    /// `clflush` line `line`: capture its current volatile bytes; they
    /// become durable at the next [`PmemRegion::fence`]. Flushing a clean
    /// line is a no-op (but still counted — the instruction executes).
    pub fn flush_line(&mut self, line: u64) {
        self.micro_step();
        self.stats.flushes += 1;
        if !self.dirty.remove(&line) {
            return;
        }
        let off = line as usize * LINE_SIZE;
        let mut buf = [0u8; LINE_SIZE];
        buf.copy_from_slice(&self.volatile[off..off + LINE_SIZE]);
        self.pending.insert(line, buf);
    }

    /// Flush every line covering `[offset, offset+len)`.
    pub fn flush_range(&mut self, offset: usize, len: usize) {
        for l in Self::lines_of(offset, len) {
            self.flush_line(l);
        }
    }

    /// Ranged sweep: flush `n` consecutive lines starting at `start`.
    /// Hardware executes one write-back per covered line inside a
    /// ranged `clwb` sweep, so each line is still its own persistence
    /// micro-step — armed crash plans can cut execution mid-sweep.
    pub fn flush_line_run(&mut self, start: u64, n: u64) {
        for l in start..start + n {
            self.flush_line(l);
        }
    }

    /// Is `line` dirty (volatile bytes newer than any flush capture)?
    /// Gates FliT-style flush elision: a clean line flushed earlier in
    /// the same commit epoch has nothing new to write back.
    pub fn line_is_dirty(&self, line: u64) -> bool {
        self.dirty.contains(&line)
    }

    /// `sfence`: commit all pending flush captures to the durable image.
    pub fn fence(&mut self) {
        self.micro_step();
        self.stats.fences += 1;
        for (line, bytes) in self.pending.drain() {
            let off = line as usize * LINE_SIZE;
            self.durable[off..off + LINE_SIZE].copy_from_slice(&bytes);
        }
    }

    /// Convenience: flush a range and fence (persist).
    pub fn persist(&mut self, offset: usize, len: usize) {
        self.flush_range(offset, len);
        self.fence();
    }

    /// Inject a power failure. The program's view becomes exactly what
    /// NVRAM holds: the durable image, plus whichever un-fenced lines the
    /// crash mode decides "happened to land" (pending flushes racing the
    /// failure, dirty lines the hardware cache evicted on its own).
    /// Dirty/pending state is cleared — the cache contents are gone.
    pub fn crash(&mut self, mode: &CrashMode) {
        self.stats.crashes += 1;
        let image = self.image_after_crash(mode);
        self.durable.copy_from_slice(&image);
        self.pending.clear();
        self.dirty.clear();
        self.volatile.copy_from_slice(&self.durable);
    }

    /// The durable image (what a crash right now would preserve, before
    /// considering in-flight lines).
    pub fn durable_image(&self) -> &[u8] {
        &self.durable
    }

    /// Is the whole region persisted (no dirty or pending lines)?
    pub fn is_quiescent(&self) -> bool {
        self.dirty.is_empty() && self.pending.is_empty()
    }

    /// Write the durable image to `path` (tmpfs-style persistence across
    /// process termination).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(&self.durable)?;
        f.sync_all()
    }

    /// Reopen a region saved by [`PmemRegion::save`]: both images start
    /// from the file content, as after a clean restart.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut f = fs::File::open(path)?;
        let mut durable = Vec::new();
        f.read_to_end(&mut durable)?;
        if durable.len() % LINE_SIZE != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "region file not line-aligned",
            ));
        }
        Ok(PmemRegion {
            volatile: durable.clone(),
            durable,
            dirty: Default::default(),
            pending: Default::default(),
            stats: PmemStats::default(),
            step: 0,
            plan: None,
            crash_image: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashMode;

    #[test]
    fn write_then_read() {
        let mut r = PmemRegion::new(256);
        r.write(10, b"hello");
        let mut buf = [0u8; 5];
        r.read(10, &mut buf);
        assert_eq!(&buf, b"hello");
        assert_eq!(r.stats().stores, 1);
        assert_eq!(r.stats().bytes_written, 5);
    }

    #[test]
    fn u64_roundtrip() {
        let mut r = PmemRegion::new(128);
        r.write_u64(64, 0xdead_beef_cafe);
        assert_eq!(r.read_u64(64), 0xdead_beef_cafe);
    }

    #[test]
    fn unflushed_writes_do_not_survive_crash() {
        let mut r = PmemRegion::new(256);
        r.write(0, b"gone");
        r.crash(&CrashMode::StrictDurableOnly);
        let mut buf = [0u8; 4];
        r.read(0, &mut buf);
        assert_eq!(&buf, &[0, 0, 0, 0]);
    }

    #[test]
    fn flushed_and_fenced_writes_survive() {
        let mut r = PmemRegion::new(256);
        r.write(0, b"kept");
        r.persist(0, 4);
        r.write(64, b"lost");
        r.crash(&CrashMode::StrictDurableOnly);
        let mut buf = [0u8; 4];
        r.read(0, &mut buf);
        assert_eq!(&buf, b"kept");
        r.read(64, &mut buf);
        assert_eq!(&buf, &[0; 4]);
    }

    #[test]
    fn flush_without_fence_is_not_durable_under_strict_mode() {
        let mut r = PmemRegion::new(256);
        r.write(0, b"racy");
        r.flush_range(0, 4); // no fence
        r.crash(&CrashMode::StrictDurableOnly);
        let mut buf = [0u8; 4];
        r.read(0, &mut buf);
        assert_eq!(&buf, &[0; 4], "pending lines may be lost");
    }

    #[test]
    fn pending_lines_land_under_optimistic_mode() {
        let mut r = PmemRegion::new(256);
        r.write(0, b"land");
        r.flush_range(0, 4);
        r.crash(&CrashMode::AllInFlightLands);
        let mut buf = [0u8; 4];
        r.read(0, &mut buf);
        assert_eq!(&buf, b"land");
    }

    #[test]
    fn flush_captures_bytes_at_flush_time() {
        let mut r = PmemRegion::new(256);
        r.write(0, b"AAAA");
        r.flush_range(0, 4);
        r.write(0, b"BBBB"); // re-dirties after capture
        r.fence();
        r.crash(&CrashMode::StrictDurableOnly);
        let mut buf = [0u8; 4];
        r.read(0, &mut buf);
        assert_eq!(&buf, b"AAAA", "fence commits the captured bytes");
    }

    #[test]
    fn dirty_line_may_land_with_natural_eviction() {
        let mut r = PmemRegion::new(256);
        r.write(0, b"evict");
        // probability 1 ⇒ the dirty line always lands
        r.crash(&CrashMode::random(1.0, 1.0, 7));
        let mut buf = [0u8; 5];
        r.read(0, &mut buf);
        assert_eq!(&buf, b"evict");
    }

    #[test]
    fn quiescence_tracking() {
        let mut r = PmemRegion::new(256);
        assert!(r.is_quiescent());
        r.write(0, b"x");
        assert!(!r.is_quiescent());
        assert_eq!(r.dirty_lines(), 1);
        r.flush_range(0, 1);
        assert!(!r.is_quiescent(), "pending fence");
        r.fence();
        assert!(r.is_quiescent());
    }

    #[test]
    fn lines_of_spans() {
        let v: Vec<u64> = PmemRegion::lines_of(60, 8).collect();
        assert_eq!(v, vec![0, 1]);
        let v: Vec<u64> = PmemRegion::lines_of(128, 64).collect();
        assert_eq!(v, vec![2]);
    }

    #[test]
    fn save_and_open_roundtrip() {
        let dir = std::env::temp_dir().join("nvcache_pmem_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("region.img");
        let mut r = PmemRegion::new(256);
        r.write(5, b"persist me");
        r.persist(5, 10);
        r.write(100, b"not me");
        r.save(&path).unwrap();
        let r2 = PmemRegion::open(&path).unwrap();
        assert_eq!(r2.slice(5, 10), b"persist me");
        assert_eq!(r2.slice(100, 6), &[0u8; 6], "unfenced data not saved");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "write beyond region")]
    fn out_of_bounds_write_panics() {
        let mut r = PmemRegion::new(64);
        r.write(60, b"overflow!");
    }

    #[test]
    fn flush_clean_line_is_counted_noop() {
        let mut r = PmemRegion::new(128);
        r.flush_line(0);
        assert_eq!(r.stats().flushes, 1);
        assert!(r.is_quiescent());
    }

    #[test]
    fn len_rounds_to_line() {
        let r = PmemRegion::new(100);
        assert_eq!(r.len(), 128);
        assert_eq!(r.line_count(), 2);
    }

    #[test]
    fn redirtied_line_lands_its_newer_bytes_via_dirty_selection() {
        // flush captures AAAA, the line is re-dirtied with BBBB, then a
        // crash whose adversary evicts dirty lines (but drops pending
        // flushes) must land the *newer* bytes — the dirty copy used to
        // be shadowed by the stale pending capture
        let mut r = PmemRegion::new(256);
        r.write(0, b"AAAA");
        r.flush_range(0, 4); // pending: AAAA
        r.write(0, b"BBBB"); // dirty again: BBBB
        r.crash(&CrashMode::random(0.0, 1.0, 5));
        assert_eq!(r.slice(0, 4), b"BBBB", "dirty eviction carries BBBB");
    }

    #[test]
    fn dirty_copy_wins_when_both_selections_land() {
        let mut r = PmemRegion::new(256);
        r.write(0, b"AAAA");
        r.flush_range(0, 4);
        r.write(0, b"BBBB");
        r.crash(&CrashMode::AllInFlightLands);
        assert_eq!(r.slice(0, 4), b"BBBB", "newer write wins");
    }

    #[test]
    fn pending_capture_lands_when_only_pending_selected() {
        let mut r = PmemRegion::new(256);
        r.write(0, b"AAAA");
        r.flush_range(0, 4);
        r.write(0, b"BBBB");
        r.crash(&CrashMode::random(1.0, 0.0, 5));
        assert_eq!(r.slice(0, 4), b"AAAA", "flush capture is the old bytes");
    }

    #[test]
    fn steps_count_stores_flushes_fences() {
        let mut r = PmemRegion::new(256);
        assert_eq!(r.step(), 0);
        r.write(0, b"x"); // 1 store
        r.persist(0, 1); // 1 flush + 1 fence
        assert_eq!(r.step(), 3);
    }

    #[test]
    fn armed_plan_captures_crash_image_at_step() {
        let mut r = PmemRegion::new(256);
        r.arm_crash(CrashPlan {
            at_step: 2, // just before the fence: AAAA pending, lost
            mode: CrashMode::StrictDurableOnly,
        });
        r.write(0, b"AAAA");
        r.flush_range(0, 4);
        r.fence();
        r.write(0, b"BBBB");
        r.persist(0, 4);
        let img = r.take_crash_image().expect("step 2 was executed");
        assert_eq!(&img[0..4], &[0u8; 4], "pre-fence: nothing durable");
        assert!(r.take_crash_image().is_none(), "image drains");
        // execution continued unperturbed
        assert_eq!(r.slice(0, 4), b"BBBB");
    }

    #[test]
    fn armed_plan_image_matches_direct_crash() {
        // run the same micro-op sequence twice: once capturing at step
        // k, once crashing at step k — images must agree byte-for-byte.
        // Each iteration performs exactly one micro-op so the direct run
        // can stop at any step.
        const OPS: u64 = 15;
        let one_op = |r: &mut PmemRegion, j: u64| match j % 5 {
            0..=2 => r.write(((j % 3) * 64) as usize, &[j as u8; 8]),
            3 => r.flush_line(j % 3),
            _ => r.fence(),
        };
        let mode = CrashMode::random(0.7, 0.3, 99);
        for k in 0..OPS {
            let mut armed = PmemRegion::new(256);
            armed.arm_crash(CrashPlan {
                at_step: k,
                mode: mode.clone(),
            });
            let mut direct = PmemRegion::new(256);
            for j in 0..OPS {
                one_op(&mut armed, j);
                if direct.step() == k {
                    direct.crash(&mode);
                    break;
                }
                one_op(&mut direct, j);
            }
            let captured = armed.take_crash_image().expect("step reached");
            assert_eq!(
                captured,
                direct.durable_image().to_vec(),
                "crash at step {k}"
            );
        }
    }

    #[test]
    fn from_image_round_trips() {
        let mut r = PmemRegion::new(128);
        r.write(0, b"payload!");
        r.persist(0, 8);
        let img = r.durable_image().to_vec();
        let r2 = PmemRegion::from_image(img);
        assert_eq!(r2.slice(0, 8), b"payload!");
        assert!(r2.is_quiescent());
        assert_eq!(r2.step(), 0);
    }

    #[test]
    #[should_panic(expected = "image not line-aligned")]
    fn from_image_rejects_unaligned() {
        PmemRegion::from_image(vec![0u8; 100]);
    }
}
