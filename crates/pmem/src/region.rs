//! The persistent region: volatile/durable dual image with line-granular
//! flush tracking, plus file-backed persistence across "processes".

use crate::crash::CrashMode;
use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

/// Cache-line size in bytes (matches the trace model).
pub const LINE_SIZE: usize = 64;

/// Flush/fence/write counters of a region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmemStats {
    /// Bytes written (volatile image).
    pub bytes_written: u64,
    /// Individual store operations.
    pub stores: u64,
    /// Line flushes issued.
    pub flushes: u64,
    /// Fences issued.
    pub fences: u64,
    /// Crashes injected.
    pub crashes: u64,
}

/// An emulated persistent memory region.
///
/// Offsets are region-relative byte addresses. Line `i` covers bytes
/// `[i*64, (i+1)*64)`.
#[derive(Debug, Clone)]
pub struct PmemRegion {
    volatile: Vec<u8>,
    durable: Vec<u8>,
    /// Lines whose volatile bytes differ from the last flush capture
    /// (i.e. dirty in the transient CPU cache).
    dirty: std::collections::HashSet<u64>,
    /// Lines flushed but not yet fenced: captured bytes at flush time.
    pending: HashMap<u64, [u8; LINE_SIZE]>,
    stats: PmemStats,
}

impl PmemRegion {
    /// A fresh zeroed region of `len` bytes (rounded up to a line).
    pub fn new(len: usize) -> Self {
        let len = len.div_ceil(LINE_SIZE) * LINE_SIZE;
        PmemRegion {
            volatile: vec![0; len],
            durable: vec![0; len],
            dirty: Default::default(),
            pending: Default::default(),
            stats: PmemStats::default(),
        }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.volatile.len()
    }

    /// True iff zero-length.
    pub fn is_empty(&self) -> bool {
        self.volatile.is_empty()
    }

    /// Number of cache lines.
    pub fn line_count(&self) -> u64 {
        (self.volatile.len() / LINE_SIZE) as u64
    }

    /// Counters.
    pub fn stats(&self) -> PmemStats {
        self.stats
    }

    /// Lines currently dirty (unflushed) — what a whole-cache flush
    /// would have to write back.
    pub fn dirty_lines(&self) -> usize {
        self.dirty.len()
    }

    /// Read `buf.len()` bytes at `offset` from the program's view.
    pub fn read(&self, offset: usize, buf: &mut [u8]) {
        buf.copy_from_slice(&self.volatile[offset..offset + buf.len()]);
    }

    /// Read a little-endian u64 at `offset`.
    pub fn read_u64(&self, offset: usize) -> u64 {
        let mut b = [0u8; 8];
        self.read(offset, &mut b);
        u64::from_le_bytes(b)
    }

    /// Borrow the program's view of `[offset, offset+len)`.
    pub fn slice(&self, offset: usize, len: usize) -> &[u8] {
        &self.volatile[offset..offset + len]
    }

    /// Write `bytes` at `offset` into the volatile image, dirtying the
    /// covered lines. Returns the first covered line index (callers
    /// instrumenting per-line notify their policy via
    /// [`PmemRegion::lines_of`]).
    pub fn write(&mut self, offset: usize, bytes: &[u8]) {
        assert!(
            offset + bytes.len() <= self.volatile.len(),
            "write beyond region: {}+{} > {}",
            offset,
            bytes.len(),
            self.volatile.len()
        );
        self.volatile[offset..offset + bytes.len()].copy_from_slice(bytes);
        self.stats.stores += 1;
        self.stats.bytes_written += bytes.len() as u64;
        for l in Self::lines_of(offset, bytes.len()) {
            self.dirty.insert(l);
        }
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, offset: usize, v: u64) {
        self.write(offset, &v.to_le_bytes());
    }

    /// Region-relative line indices covering `[offset, offset+len)`.
    pub fn lines_of(offset: usize, len: usize) -> impl Iterator<Item = u64> {
        let first = (offset / LINE_SIZE) as u64;
        let last = if len == 0 {
            first
        } else {
            ((offset + len - 1) / LINE_SIZE) as u64
        };
        first..=last
    }

    /// `clflush` line `line`: capture its current volatile bytes; they
    /// become durable at the next [`PmemRegion::fence`]. Flushing a clean
    /// line is a no-op (but still counted — the instruction executes).
    pub fn flush_line(&mut self, line: u64) {
        self.stats.flushes += 1;
        if !self.dirty.remove(&line) {
            return;
        }
        let off = line as usize * LINE_SIZE;
        let mut buf = [0u8; LINE_SIZE];
        buf.copy_from_slice(&self.volatile[off..off + LINE_SIZE]);
        self.pending.insert(line, buf);
    }

    /// Flush every line covering `[offset, offset+len)`.
    pub fn flush_range(&mut self, offset: usize, len: usize) {
        for l in Self::lines_of(offset, len) {
            self.flush_line(l);
        }
    }

    /// `sfence`: commit all pending flush captures to the durable image.
    pub fn fence(&mut self) {
        self.stats.fences += 1;
        for (line, bytes) in self.pending.drain() {
            let off = line as usize * LINE_SIZE;
            self.durable[off..off + LINE_SIZE].copy_from_slice(&bytes);
        }
    }

    /// Convenience: flush a range and fence (persist).
    pub fn persist(&mut self, offset: usize, len: usize) {
        self.flush_range(offset, len);
        self.fence();
    }

    /// Inject a power failure. The program's view becomes exactly what
    /// NVRAM holds: the durable image, plus whichever un-fenced lines the
    /// crash mode decides "happened to land" (pending flushes racing the
    /// failure, dirty lines the hardware cache evicted on its own).
    /// Dirty/pending state is cleared — the cache contents are gone.
    pub fn crash(&mut self, mode: &CrashMode) {
        self.stats.crashes += 1;
        let pending: Vec<u64> = self.pending.keys().copied().collect();
        let dirty: Vec<u64> = self.dirty.iter().copied().collect();
        let landed = mode.select_landed(&pending, &dirty);
        for line in landed {
            let off = line as usize * LINE_SIZE;
            // a dirty line that "landed" carries its current volatile
            // bytes; a pending one carries its flush capture
            if let Some(bytes) = self.pending.get(&line) {
                self.durable[off..off + LINE_SIZE].copy_from_slice(bytes);
            } else {
                let (d, v) = (&mut self.durable, &self.volatile);
                d[off..off + LINE_SIZE].copy_from_slice(&v[off..off + LINE_SIZE]);
            }
        }
        self.pending.clear();
        self.dirty.clear();
        self.volatile.copy_from_slice(&self.durable);
    }

    /// The durable image (what a crash right now would preserve, before
    /// considering in-flight lines).
    pub fn durable_image(&self) -> &[u8] {
        &self.durable
    }

    /// Is the whole region persisted (no dirty or pending lines)?
    pub fn is_quiescent(&self) -> bool {
        self.dirty.is_empty() && self.pending.is_empty()
    }

    /// Write the durable image to `path` (tmpfs-style persistence across
    /// process termination).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(&self.durable)?;
        f.sync_all()
    }

    /// Reopen a region saved by [`PmemRegion::save`]: both images start
    /// from the file content, as after a clean restart.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut f = fs::File::open(path)?;
        let mut durable = Vec::new();
        f.read_to_end(&mut durable)?;
        if durable.len() % LINE_SIZE != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "region file not line-aligned",
            ));
        }
        Ok(PmemRegion {
            volatile: durable.clone(),
            durable,
            dirty: Default::default(),
            pending: Default::default(),
            stats: PmemStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashMode;

    #[test]
    fn write_then_read() {
        let mut r = PmemRegion::new(256);
        r.write(10, b"hello");
        let mut buf = [0u8; 5];
        r.read(10, &mut buf);
        assert_eq!(&buf, b"hello");
        assert_eq!(r.stats().stores, 1);
        assert_eq!(r.stats().bytes_written, 5);
    }

    #[test]
    fn u64_roundtrip() {
        let mut r = PmemRegion::new(128);
        r.write_u64(64, 0xdead_beef_cafe);
        assert_eq!(r.read_u64(64), 0xdead_beef_cafe);
    }

    #[test]
    fn unflushed_writes_do_not_survive_crash() {
        let mut r = PmemRegion::new(256);
        r.write(0, b"gone");
        r.crash(&CrashMode::StrictDurableOnly);
        let mut buf = [0u8; 4];
        r.read(0, &mut buf);
        assert_eq!(&buf, &[0, 0, 0, 0]);
    }

    #[test]
    fn flushed_and_fenced_writes_survive() {
        let mut r = PmemRegion::new(256);
        r.write(0, b"kept");
        r.persist(0, 4);
        r.write(64, b"lost");
        r.crash(&CrashMode::StrictDurableOnly);
        let mut buf = [0u8; 4];
        r.read(0, &mut buf);
        assert_eq!(&buf, b"kept");
        r.read(64, &mut buf);
        assert_eq!(&buf, &[0; 4]);
    }

    #[test]
    fn flush_without_fence_is_not_durable_under_strict_mode() {
        let mut r = PmemRegion::new(256);
        r.write(0, b"racy");
        r.flush_range(0, 4); // no fence
        r.crash(&CrashMode::StrictDurableOnly);
        let mut buf = [0u8; 4];
        r.read(0, &mut buf);
        assert_eq!(&buf, &[0; 4], "pending lines may be lost");
    }

    #[test]
    fn pending_lines_land_under_optimistic_mode() {
        let mut r = PmemRegion::new(256);
        r.write(0, b"land");
        r.flush_range(0, 4);
        r.crash(&CrashMode::AllInFlightLands);
        let mut buf = [0u8; 4];
        r.read(0, &mut buf);
        assert_eq!(&buf, b"land");
    }

    #[test]
    fn flush_captures_bytes_at_flush_time() {
        let mut r = PmemRegion::new(256);
        r.write(0, b"AAAA");
        r.flush_range(0, 4);
        r.write(0, b"BBBB"); // re-dirties after capture
        r.fence();
        r.crash(&CrashMode::StrictDurableOnly);
        let mut buf = [0u8; 4];
        r.read(0, &mut buf);
        assert_eq!(&buf, b"AAAA", "fence commits the captured bytes");
    }

    #[test]
    fn dirty_line_may_land_with_natural_eviction() {
        let mut r = PmemRegion::new(256);
        r.write(0, b"evict");
        // probability 1 ⇒ the dirty line always lands
        r.crash(&CrashMode::random(1.0, 1.0, 7));
        let mut buf = [0u8; 5];
        r.read(0, &mut buf);
        assert_eq!(&buf, b"evict");
    }

    #[test]
    fn quiescence_tracking() {
        let mut r = PmemRegion::new(256);
        assert!(r.is_quiescent());
        r.write(0, b"x");
        assert!(!r.is_quiescent());
        assert_eq!(r.dirty_lines(), 1);
        r.flush_range(0, 1);
        assert!(!r.is_quiescent(), "pending fence");
        r.fence();
        assert!(r.is_quiescent());
    }

    #[test]
    fn lines_of_spans() {
        let v: Vec<u64> = PmemRegion::lines_of(60, 8).collect();
        assert_eq!(v, vec![0, 1]);
        let v: Vec<u64> = PmemRegion::lines_of(128, 64).collect();
        assert_eq!(v, vec![2]);
    }

    #[test]
    fn save_and_open_roundtrip() {
        let dir = std::env::temp_dir().join("nvcache_pmem_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("region.img");
        let mut r = PmemRegion::new(256);
        r.write(5, b"persist me");
        r.persist(5, 10);
        r.write(100, b"not me");
        r.save(&path).unwrap();
        let r2 = PmemRegion::open(&path).unwrap();
        assert_eq!(r2.slice(5, 10), b"persist me");
        assert_eq!(r2.slice(100, 6), &[0u8; 6], "unfenced data not saved");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "write beyond region")]
    fn out_of_bounds_write_panics() {
        let mut r = PmemRegion::new(64);
        r.write(60, b"overflow!");
    }

    #[test]
    fn flush_clean_line_is_counted_noop() {
        let mut r = PmemRegion::new(128);
        r.flush_line(0);
        assert_eq!(r.stats().flushes, 1);
        assert!(r.is_quiescent());
    }

    #[test]
    fn len_rounds_to_line() {
        let r = PmemRegion::new(100);
        assert_eq!(r.len(), 128);
        assert_eq!(r.line_count(), 2);
    }
}
