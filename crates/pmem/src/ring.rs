//! Asynchronous flush pipeline: a mutex-free submission ring that turns
//! per-line blocking flushes into sorted, coalesced ranged sweeps.
//!
//! The paper's central mechanism is overlapping cache-line write-backs
//! with computation; the remaining software cost is the *submission*
//! path itself. This module provides the pipelined flush path:
//!
//! * **Submission ring** — a fixed-capacity power-of-two ring of
//!   `AtomicU64` slots. The submit side ([`FlushRing::submit`]) is
//!   mutex-free: one relaxed tail load, one acquire head load, one
//!   release tail publish. Producers never block — a full ring returns
//!   `false` and the caller drains inline (the single-thread fallback
//!   the runtime uses, since the emulated [`PmemRegion`] is
//!   single-owner).
//! * **Fence tokens** — commit no longer walks a buffer flushing line
//!   by line. It publishes a [`FenceToken`] (a tail snapshot) and asks
//!   the drain side to retire everything submitted at or before the
//!   token ([`FlushRing::drain_upto`]).
//! * **Ranged sweeps** — the drain sorts and dedups the batch, then
//!   coalesces adjacent lines into contiguous runs
//!   ([`coalesce_sorted`]) swept with one ranged
//!   `clwb`/`clflushopt`-style pass per run.
//! * **FliT-style elision** — a per-line epoch map records lines
//!   already flushed in the current commit epoch; a re-submitted line
//!   that is still clean is skipped entirely. This is safe in the
//!   region model because flushing a clean line is a no-op, and safe on
//!   hardware because the line's latest bytes are already in flight and
//!   nothing re-dirtied it ([`PmemRegion::line_is_dirty`] gates the
//!   skip). [`FlushRing::end_epoch`] advances the epoch after the fence
//!   that makes the captures durable.
//!
//! **Crash visibility.** Every line actually swept still executes its
//! own `flush_line` micro-step against the region (hardware executes
//! one write-back per line inside a ranged sweep too), so an armed
//! [`crate::CrashPlan`] can cut execution *inside* a drain exactly as
//! it could inside the old blocking loop. Submits and fence-token
//! publishes are volatile transitions — they move bytes into no cache
//! and therefore are not persistence micro-steps; a crash between
//! submit and drain simply loses the (still volatile, still dirty)
//! lines, which the dirty-eviction adversaries already model.

use crate::region::PmemRegion;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of one [`FlushRing`]'s lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Lines accepted by [`FlushRing::submit`].
    pub submitted: u64,
    /// Lines actually swept (flush instructions issued).
    pub flushed: u64,
    /// Lines skipped by same-epoch flush elision.
    pub elided: u64,
    /// Contiguous ranged sweeps issued (≤ `flushed`).
    pub sweeps: u64,
    /// Drain passes executed.
    pub drains: u64,
}

/// A position in the submission stream: everything submitted strictly
/// before the token is covered by a drain up to it. Obtained from
/// [`FlushRing::fence_token`] at commit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FenceToken(u64);

/// Coalesce a **sorted, deduplicated** slice of line indices into
/// maximal contiguous runs `(start, len)`.
///
/// The union of the returned runs is exactly the input set — no line is
/// flushed twice and none is dropped (property-tested in the workspace
/// suite). Unsorted or duplicated input is a logic error; debug builds
/// assert.
pub fn coalesce_sorted(lines: &[u64]) -> Vec<(u64, u64)> {
    debug_assert!(
        lines.windows(2).all(|w| w[0] < w[1]),
        "input must be sorted+deduped"
    );
    let mut runs = Vec::new();
    let mut it = lines.iter().copied();
    let Some(first) = it.next() else {
        return runs;
    };
    let (mut start, mut len) = (first, 1u64);
    for l in it {
        if l == start + len {
            len += 1;
        } else {
            runs.push((start, len));
            start = l;
            len = 1;
        }
    }
    runs.push((start, len));
    runs
}

/// The flush submission ring. Submit side is mutex-free (atomics only);
/// the drain side is exclusive (`&mut self`), matching the
/// single-owner region it sweeps into.
#[derive(Debug)]
pub struct FlushRing {
    /// Line indices, indexed by sequence number & mask.
    slots: Box<[AtomicU64]>,
    /// Next sequence number to consume.
    head: AtomicU64,
    /// Next sequence number to publish.
    tail: AtomicU64,
    mask: u64,
    /// Current commit epoch (advanced by [`FlushRing::end_epoch`]).
    epoch: u64,
    /// Per-line epoch stamp (`epoch + 1`; 0 = never swept), indexed by
    /// line and lazily sized to the region on first drain. Dense so the
    /// drain hot path does an array index per line instead of a hash
    /// probe.
    flushed_epoch: Vec<u64>,
    /// Drain-side scratch buffer, reused across drains.
    scratch: Vec<u64>,
    stats: RingStats,
}

impl Clone for FlushRing {
    fn clone(&self) -> Self {
        let slots: Box<[AtomicU64]> = self
            .slots
            .iter()
            .map(|s| AtomicU64::new(s.load(Ordering::Relaxed)))
            .collect();
        FlushRing {
            slots,
            head: AtomicU64::new(self.head.load(Ordering::Relaxed)),
            tail: AtomicU64::new(self.tail.load(Ordering::Relaxed)),
            mask: self.mask,
            epoch: self.epoch,
            flushed_epoch: self.flushed_epoch.clone(),
            scratch: Vec::new(),
            stats: self.stats,
        }
    }
}

impl FlushRing {
    /// A ring with at least `capacity` slots (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[AtomicU64]> = (0..cap).map(|_| AtomicU64::new(0)).collect();
        FlushRing {
            slots,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            mask: (cap - 1) as u64,
            epoch: 0,
            flushed_epoch: Vec::new(),
            scratch: Vec::new(),
            stats: RingStats::default(),
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Lines submitted but not yet drained.
    pub fn pending(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head) as usize
    }

    /// True iff no submitted line awaits a drain.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RingStats {
        self.stats
    }

    /// Push one line into the ring. Mutex-free: a relaxed tail read, an
    /// acquire head read, a release publish. Returns `false` when the
    /// ring is full — the caller must drain (inline-drain fallback) and
    /// retry.
    #[inline]
    pub fn submit(&self, line: u64) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.slots.len() as u64 {
            return false;
        }
        self.slots[(tail & self.mask) as usize].store(line, Ordering::Relaxed);
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Snapshot the submission stream: a subsequent
    /// [`FlushRing::drain_upto`] with this token retires every line
    /// submitted before the snapshot. This is the "publish epoch fence
    /// token" half of pipelined commit.
    #[inline]
    pub fn fence_token(&self) -> FenceToken {
        FenceToken(self.tail.load(Ordering::Acquire))
    }

    /// Retire every submitted line up to `token`: pop, sort, dedup,
    /// elide same-epoch clean lines, then sweep the rest as coalesced
    /// contiguous runs of per-line flushes. Each swept line is one
    /// persistence micro-step on `region` (crash plans can fire inside
    /// the drain). Returns the number of flush instructions issued.
    pub fn drain_upto(&mut self, token: FenceToken, region: &mut PmemRegion) -> u64 {
        let head = self.head.load(Ordering::Relaxed);
        let upto = token.0.min(self.tail.load(Ordering::Acquire));
        if upto.wrapping_sub(head) == 0 {
            return 0;
        }
        self.scratch.clear();
        let mut seq = head;
        while seq != upto {
            self.scratch
                .push(self.slots[(seq & self.mask) as usize].load(Ordering::Relaxed));
            seq = seq.wrapping_add(1);
        }
        self.head.store(upto, Ordering::Release);
        let popped = self.scratch.len() as u64;
        self.stats.submitted += popped;
        self.scratch.sort_unstable();
        self.scratch.dedup();
        // FliT-style elision: a line already swept this epoch whose
        // bytes have not been re-dirtied since has nothing new to write
        // back — skip the instruction entirely.
        let lines = region.line_count() as usize;
        if self.flushed_epoch.len() < lines {
            self.flushed_epoch.resize(lines, 0);
        }
        let stamp = self.epoch.wrapping_add(1);
        let mut kept = 0usize;
        for i in 0..self.scratch.len() {
            let line = self.scratch[i];
            let seen = self.flushed_epoch.get(line as usize) == Some(&stamp);
            if seen && !region.line_is_dirty(line) {
                self.stats.elided += 1;
            } else {
                if let Some(slot) = self.flushed_epoch.get_mut(line as usize) {
                    *slot = stamp;
                }
                self.scratch[kept] = line;
                kept += 1;
            }
        }
        self.scratch.truncate(kept);
        let mut issued = 0u64;
        for (start, len) in coalesce_sorted(&self.scratch) {
            region.flush_line_run(start, len);
            self.stats.sweeps += 1;
            issued += len;
        }
        self.stats.flushed += issued;
        self.stats.drains += 1;
        issued
    }

    /// Drain everything currently submitted.
    pub fn drain_all(&mut self, region: &mut PmemRegion) -> u64 {
        let token = self.fence_token();
        self.drain_upto(token, region)
    }

    /// Close the current commit epoch (call after the fence that made
    /// this epoch's captures durable): subsequently submitted lines are
    /// never elided against pre-fence flushes.
    pub fn end_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Forget all submitted-but-undrained lines and elision history.
    /// Used on crash recovery: the cache content is gone, so the ring's
    /// view of it must go too.
    pub fn reset(&mut self) {
        let tail = self.tail.load(Ordering::Relaxed);
        self.head.store(tail, Ordering::Relaxed);
        self.flushed_epoch.fill(0);
        self.epoch = 0;
        self.scratch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashMode;

    #[test]
    fn coalesce_basic() {
        assert_eq!(coalesce_sorted(&[]), vec![]);
        assert_eq!(coalesce_sorted(&[5]), vec![(5, 1)]);
        assert_eq!(coalesce_sorted(&[1, 2, 3]), vec![(1, 3)]);
        assert_eq!(coalesce_sorted(&[1, 3, 4, 9]), vec![(1, 1), (3, 2), (9, 1)]);
    }

    #[test]
    fn submit_drain_flushes_exactly_the_set() {
        let mut ring = FlushRing::new(8);
        let mut r = PmemRegion::new(1024);
        for off in [0usize, 64, 128, 320] {
            r.write(off, b"x");
        }
        for line in [5u64, 0, 2, 1, 5, 0] {
            assert!(ring.submit(line));
        }
        let issued = ring.drain_all(&mut r);
        assert_eq!(issued, 4, "dedup to {{0,1,2,5}}");
        assert_eq!(ring.stats().sweeps, 2, "runs [0..3) and [5]");
        r.fence();
        r.crash(&CrashMode::StrictDurableOnly);
        assert_eq!(r.slice(0, 1), b"x");
        assert_eq!(r.slice(64, 1), b"x");
        assert_eq!(r.slice(128, 1), b"x");
        assert_eq!(r.slice(320, 1), b"x");
    }

    #[test]
    fn full_ring_rejects_submit() {
        let ring = FlushRing::new(4);
        for i in 0..4 {
            assert!(ring.submit(i));
        }
        assert!(!ring.submit(99), "full ring must refuse");
        assert_eq!(ring.pending(), 4);
    }

    #[test]
    fn drain_frees_capacity() {
        let mut ring = FlushRing::new(4);
        let mut r = PmemRegion::new(1024);
        for i in 0..4 {
            assert!(ring.submit(i));
        }
        ring.drain_all(&mut r);
        assert!(ring.is_empty());
        assert!(ring.submit(7), "capacity reclaimed");
    }

    #[test]
    fn same_epoch_clean_line_is_elided() {
        let mut ring = FlushRing::new(16);
        let mut r = PmemRegion::new(1024);
        r.write(0, b"a");
        ring.submit(0);
        assert_eq!(ring.drain_all(&mut r), 1);
        // resubmitted in the same epoch, not re-dirtied: elided
        ring.submit(0);
        assert_eq!(ring.drain_all(&mut r), 0);
        assert_eq!(ring.stats().elided, 1);
        // re-dirtied: must flush again even in the same epoch
        r.write(0, b"b");
        ring.submit(0);
        assert_eq!(ring.drain_all(&mut r), 1);
    }

    #[test]
    fn epoch_end_disables_elision() {
        let mut ring = FlushRing::new(16);
        let mut r = PmemRegion::new(1024);
        r.write(0, b"a");
        ring.submit(0);
        ring.drain_all(&mut r);
        r.fence();
        ring.end_epoch();
        ring.submit(0);
        assert_eq!(ring.drain_all(&mut r), 1, "new epoch: swept again");
        assert_eq!(ring.stats().elided, 0);
    }

    #[test]
    fn fence_token_bounds_the_drain() {
        let mut ring = FlushRing::new(16);
        let mut r = PmemRegion::new(1024);
        ring.submit(1);
        ring.submit(2);
        let tok = ring.fence_token();
        ring.submit(3);
        assert_eq!(ring.drain_upto(tok, &mut r), 2, "line 3 is past the token");
        assert_eq!(ring.pending(), 1);
        assert_eq!(ring.drain_all(&mut r), 1);
    }

    #[test]
    fn drain_micro_steps_match_blocking_loop() {
        // the pipelined sweep must expose the same per-line micro-step
        // space a blocking flush loop would for the same (deduped) set
        let mut ring = FlushRing::new(16);
        let mut a = PmemRegion::new(1024);
        let mut b = PmemRegion::new(1024);
        for off in [0usize, 64, 128] {
            a.write(off, b"x");
            b.write(off, b"x");
        }
        for line in [2u64, 0, 1] {
            ring.submit(line);
        }
        ring.drain_all(&mut a);
        for line in [0u64, 1, 2] {
            b.flush_line(line);
        }
        assert_eq!(a.step(), b.step(), "identical crash-point index space");
        assert_eq!(a.stats().flushes, b.stats().flushes);
    }

    #[test]
    fn reset_clears_pending_and_elision_history() {
        let mut ring = FlushRing::new(8);
        let mut r = PmemRegion::new(1024);
        r.write(0, b"a");
        ring.submit(0);
        ring.drain_all(&mut r);
        ring.submit(0);
        ring.reset();
        assert!(ring.is_empty());
        r.write(0, b"b");
        ring.submit(0);
        assert_eq!(ring.drain_all(&mut r), 1, "history gone after reset");
    }

    #[test]
    fn wraparound_preserves_fifo_set() {
        let mut ring = FlushRing::new(4);
        let mut r = PmemRegion::new(64 * 64);
        let mut total = 0;
        for round in 0..10u64 {
            for i in 0..4u64 {
                let line = round * 4 + i;
                r.write(line as usize * 64, b"w");
                assert!(ring.submit(line));
            }
            total += ring.drain_all(&mut r);
            ring.end_epoch();
        }
        assert_eq!(total, 40);
        assert_eq!(ring.stats().drains, 10);
    }
}
