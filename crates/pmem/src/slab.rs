//! Volatile slab layer over [`PAlloc`]: size-classed free lists carved
//! from bump chunks, so hot-path allocation stops touching the general
//! allocator's persistent metadata.
//!
//! [`PAlloc`] persists (flush + fence) on every `alloc` and twice on
//! every `free` — correct, but two fences per KV node is exactly the
//! per-operation overhead the paper's software-caching argument says to
//! amortize. The slab amortizes it:
//!
//! * **alloc** — pop from a volatile per-class free list; when empty,
//!   carve a whole chunk of blocks from the heap with **one** persisted
//!   cursor update ([`PAlloc::bump_chunk`]) and stock the list; when
//!   the bump region is exhausted, fall back to [`PAlloc::alloc`]
//!   (which recycles the heap's own persistent free lists).
//! * **free** — push onto the volatile list. Zero persists.
//!
//! **Crash safety by leak.** The free lists live in DRAM only, so a
//! crash forgets which carved blocks were unused — they leak, the heap
//! is never corrupted (the persisted bump cursor already covers every
//! block handed to the slab). Recovery calls [`SlabAlloc::reset`] and
//! the slab restocks from fresh chunks. Leaked blocks are reclaimable
//! by any future offline sweep; within the FASE model, losing spare
//! capacity is strictly safer than replaying allocator metadata.

use crate::alloc::{class_of, class_size, PAlloc};
use crate::region::PmemRegion;

/// Number of size classes, mirroring [`PAlloc`]'s (16..=4096 bytes).
const NUM_CLASSES: usize = 9;

/// Default blocks carved per chunk.
pub const DEFAULT_CHUNK_BLOCKS: usize = 32;

/// Counters of one slab's lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlabStats {
    /// Allocations served from a volatile free list (no persist).
    pub fast_allocs: u64,
    /// Chunks carved from the bump region (one persist each).
    pub chunks: u64,
    /// Allocations that fell back to [`PAlloc::alloc`].
    pub fallback_allocs: u64,
    /// Frees absorbed volatilely (zero persists).
    pub frees: u64,
}

/// Volatile size-classed slab allocator over a [`PAlloc`] heap.
#[derive(Debug, Clone)]
pub struct SlabAlloc {
    /// Per-class free block offsets (DRAM only).
    free: Vec<Vec<u64>>,
    chunk_blocks: usize,
    stats: SlabStats,
}

impl Default for SlabAlloc {
    fn default() -> Self {
        Self::new(DEFAULT_CHUNK_BLOCKS)
    }
}

impl SlabAlloc {
    /// A slab that carves `chunk_blocks` blocks per bump chunk
    /// (minimum 1).
    pub fn new(chunk_blocks: usize) -> Self {
        SlabAlloc {
            free: vec![Vec::new(); NUM_CLASSES],
            chunk_blocks: chunk_blocks.max(1),
            stats: SlabStats::default(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SlabStats {
        self.stats
    }

    /// Allocate `size` bytes from `heap`. Fast path is a volatile list
    /// pop; slow path carves a chunk (one persist) or falls back to the
    /// general allocator. `None` only when the heap itself is
    /// exhausted or `size` exceeds the largest class.
    pub fn alloc(&mut self, heap: &PAlloc, region: &mut PmemRegion, size: usize) -> Option<u64> {
        let class = class_of(size)?;
        if let Some(off) = self.free[class].pop() {
            self.stats.fast_allocs += 1;
            return Some(off);
        }
        if let Some((start, block)) = heap.bump_chunk(region, size, self.chunk_blocks) {
            self.stats.chunks += 1;
            debug_assert_eq!(block, class_size(class));
            // stock newest-last so block 0 is handed out first
            for i in (1..self.chunk_blocks).rev() {
                self.free[class].push(start + (i * block) as u64);
            }
            self.stats.fast_allocs += 1;
            return Some(start);
        }
        // bump region exhausted: the heap's persistent free lists may
        // still hold recycled blocks
        let off = heap.alloc(region, size)?;
        self.stats.fallback_allocs += 1;
        Some(off)
    }

    /// Return the block at `offset` (allocated with `size`) to the
    /// volatile free list. Zero persists; the block is reusable by the
    /// next same-class [`SlabAlloc::alloc`] until a crash forgets it.
    pub fn free(&mut self, offset: u64, size: usize) {
        let class = class_of(size).expect("size was allocatable");
        self.free[class].push(offset);
        self.stats.frees += 1;
    }

    /// Drop all volatile free lists. Call on crash recovery: blocks the
    /// slab was holding leak (safe), they are never handed out against
    /// a reverted heap image.
    pub fn reset(&mut self) {
        for list in &mut self.free {
            list.clear();
        }
    }

    /// Blocks currently stocked across all classes.
    pub fn stocked(&self) -> usize {
        self.free.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashMode;

    fn fresh(len: usize) -> (PmemRegion, PAlloc) {
        let mut r = PmemRegion::new(len);
        let a = PAlloc::format(&mut r);
        (r, a)
    }

    #[test]
    fn chunk_amortizes_persists() {
        let (mut r, heap) = fresh(1 << 18);
        let mut slab = SlabAlloc::new(16);
        let before = r.stats().fences;
        let blocks: Vec<u64> = (0..16)
            .map(|_| slab.alloc(&heap, &mut r, 64).unwrap())
            .collect();
        let fences = r.stats().fences - before;
        assert_eq!(fences, 1, "16 allocs, one chunk carve, one fence");
        assert_eq!(slab.stats().chunks, 1);
        // distinct, contiguous, class-sized
        for w in blocks.windows(2) {
            assert_eq!(w[1] - w[0], 64);
        }
    }

    #[test]
    fn free_is_volatile_and_recycles() {
        let (mut r, heap) = fresh(1 << 18);
        let mut slab = SlabAlloc::new(4);
        let x = slab.alloc(&heap, &mut r, 100).unwrap();
        let before = r.stats().fences;
        slab.free(x, 100);
        assert_eq!(r.stats().fences, before, "free persists nothing");
        let y = slab.alloc(&heap, &mut r, 100).unwrap();
        assert_eq!(x, y, "LIFO recycle");
        assert_eq!(r.stats().fences, before, "recycled alloc persists nothing");
    }

    #[test]
    fn classes_do_not_mix() {
        let (mut r, heap) = fresh(1 << 18);
        let mut slab = SlabAlloc::new(4);
        let x = slab.alloc(&heap, &mut r, 16).unwrap();
        slab.free(x, 16);
        let y = slab.alloc(&heap, &mut r, 1000).unwrap();
        assert_ne!(x, y);
    }

    #[test]
    fn falls_back_to_heap_free_lists_when_bump_exhausted() {
        let mut r = PmemRegion::new(1 << 16);
        let limit = (PAlloc::heap_start() + 4 * 128) as u64;
        let heap = PAlloc::format_with_limit(&mut r, limit);
        // exhaust the bump region through the general allocator …
        let blocks: Vec<u64> = std::iter::from_fn(|| heap.alloc(&mut r, 128)).collect();
        assert_eq!(blocks.len(), 4);
        // … recycle one into the heap's persistent free list
        heap.free(&mut r, blocks[2], 128);
        let mut slab = SlabAlloc::new(8);
        // chunk carve cannot fit → fallback path must find the block
        assert_eq!(slab.alloc(&heap, &mut r, 128), Some(blocks[2]));
        assert_eq!(slab.stats().fallback_allocs, 1);
        assert_eq!(slab.alloc(&heap, &mut r, 128), None, "then exhausted");
    }

    #[test]
    fn reset_leaks_blocks_but_heap_stays_consistent() {
        let (mut r, heap) = fresh(1 << 18);
        let mut slab = SlabAlloc::new(8);
        let x = slab.alloc(&heap, &mut r, 64).unwrap();
        slab.free(x, 64);
        assert!(slab.stocked() > 0);
        r.crash(&CrashMode::StrictDurableOnly);
        slab.reset();
        assert_eq!(slab.stocked(), 0);
        let heap2 = PAlloc::open(&r).expect("heap reopens");
        // fresh chunk comes from past the leaked one — no overlap
        let y = slab.alloc(&heap2, &mut r, 64).unwrap();
        assert!(y >= x + 8 * 64, "leaked chunk never re-handed out");
    }

    #[test]
    fn oversize_requests_are_refused() {
        let (mut r, heap) = fresh(1 << 18);
        let mut slab = SlabAlloc::default();
        assert_eq!(slab.alloc(&heap, &mut r, 8192), None);
        assert_eq!(slab.alloc(&heap, &mut r, 0), None);
    }
}
