//! Property-based testing for the workspace.
//!
//! An in-repo stand-in for the slice of the `proptest` API the test
//! suite uses: the [`Strategy`] trait with `prop_map`, integer-range
//! and tuple strategies, [`collection::vec`], [`any`], the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! header, and the `prop_assert*` macros. Cargo renames this package
//! to `proptest`, so test files are unchanged.
//!
//! Semantics: each test body runs `cases` times against values drawn
//! from a generator seeded deterministically from the test's module
//! path and name, so failures are reproducible run-to-run. There is
//! no shrinking — a failing case panics with the assertion message —
//! which keeps the engine small while preserving the suite's power to
//! detect invariant violations.

#![warn(missing_docs)]

pub mod strategy;

pub use strategy::{any, Arbitrary, Strategy};

/// Runner configuration and the deterministic test generator.
pub mod test_runner {
    use rand::rngs::SmallRng;
    pub use rand::Rng;
    use rand::{RngCore, SeedableRng};

    /// How many cases each property runs (the only knob the suite uses).
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic generator driving all strategies in one test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// Seeded from the test's fully qualified name: stable across
        /// runs and platforms, distinct across tests.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                inner: SmallRng::seed_from_u64(h),
            }
        }

        /// Next 64 raw bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.inner.next_u64() % bound
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy producing `Vec`s of `element` with length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with length drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves as upstream.
pub mod prop {
    pub use crate::collection;
}

/// One-stop imports for test files (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property; supports format arguments.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property; supports format arguments.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property; supports format arguments.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over generated inputs. An
/// optional leading `#![proptest_config(expr)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr)) => {};
    (@run ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let u = (0usize..4).sample(&mut rng);
            assert!(u < 4);
        }
    }

    #[test]
    fn vec_strategy_honours_size() {
        let mut rng = TestRng::for_test("vecs");
        for _ in 0..500 {
            let v = prop::collection::vec(0u64..8, 2..6).sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 8));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_test_name() {
        let strat = prop::collection::vec((0u64..100, any::<bool>()), 1..20);
        let mut a = TestRng::for_test("det");
        let mut b = TestRng::for_test("det");
        for _ in 0..100 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::for_test("map");
        let strat = (1u32..5).prop_map(|x| x * 10);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((10..50).contains(&v) && v % 10 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: generated args obey their strategies.
        #[test]
        fn macro_generates_valid_inputs(
            xs in prop::collection::vec(0u64..24, 1..12),
            flag in any::<bool>(),
            k in 1usize..8,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 12);
            prop_assert!(xs.iter().all(|&x| x < 24));
            prop_assert!((1..8).contains(&k));
            let _ = flag;
        }
    }

    proptest! {
        /// Default config path (no header) also compiles and runs.
        #[test]
        fn macro_default_config(x in 0u8..3) {
            prop_assert!(x < 3);
        }
    }
}
