//! The [`Strategy`] trait and the primitive strategies: integer
//! ranges, tuples, `any::<T>()`, and `prop_map` adapters.

use crate::test_runner::TestRng;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value from the deterministic generator.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(v)` for each generated `v`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "strategy range is empty");
                // span can exceed u64 for 0..=u64::MAX: widen to u128
                let span = (*self.end() - *self.start()) as u128 + 1;
                if span > u64::MAX as u128 {
                    rng.next_u64() as $t
                } else {
                    self.start() + rng.below(span as u64) as $t
                }
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Types with a canonical full-domain strategy (used via [`any`]).
pub trait Arbitrary: Sized {
    /// Draw a value uniformly from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T` (`any::<u64>()` etc.).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
