//! Deterministic pseudo-random number generation for the simulator.
//!
//! This crate is an in-repo stand-in for the tiny slice of the `rand`
//! crate the workspace actually uses (`SmallRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range`, and a uniform `f64` distribution).
//! It exists so the workspace builds with zero external dependencies
//! in network-restricted environments; call sites are unchanged
//! because Cargo renames this package to `rand`.
//!
//! The generator is SplitMix64: a 64-bit state advanced by a Weyl
//! constant and finalized with two xor-shift-multiply rounds. It is
//! statistically strong for simulation workloads, passes the obvious
//! equidistribution checks, and — the property everything downstream
//! relies on — is exactly reproducible for a given seed on every
//! platform.

#![warn(missing_docs)]

/// Core trait for generators: produce the next 64 random bits.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that can be drawn uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1): the top 53 bits scaled by 2^-53, the exact
    /// construction rand uses, so every f64 is representable.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    /// Element type produced by the range.
    type Output;
    /// Draw a value uniformly from the (half-open) range.
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the generator's raw bits.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::{Rng, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open `f64` interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform {
        low: f64,
        span: f64,
    }

    impl Uniform {
        /// Uniform over `[low, high)`.
        pub fn new(low: f64, high: f64) -> Self {
            assert!(low < high, "Uniform::new: empty interval");
            Uniform {
                low,
                span: high - low,
            }
        }
    }

    impl Distribution<f64> for Uniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + rng.gen::<f64>() * self.span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0u64..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn uniform_distribution_spans_interval() {
        use distributions::Distribution;
        let d = distributions::Uniform::new(2.0, 6.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 2.1 && hi > 5.9);
    }

    #[test]
    fn bool_is_roughly_balanced() {
        let mut rng = SmallRng::seed_from_u64(9);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4500..5500).contains(&trues), "{trues}");
    }
}
