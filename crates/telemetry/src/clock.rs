//! Monotonic nanosecond clocks for span timing.
//!
//! Wall-clock timestamps are deliberately kept *out* of the replay
//! core — its time axis is simulated cycles and the differential tests
//! pin parallel replay bit-identical to sequential. Span timing lives
//! in the serving layers (FASE runtime commit, KV ops, recovery),
//! where a real clock is meaningful. Tests swap in the deterministic
//! [`FakeClock`] so latency histograms are reproducible.

use std::cell::Cell;
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait Clock {
    /// Nanoseconds since an arbitrary fixed origin; monotone
    /// non-decreasing across calls.
    fn now_ns(&self) -> u64;
}

/// The real clock: `Instant`-anchored monotonic nanoseconds.
#[derive(Debug, Clone)]
pub struct MonoClock {
    origin: Instant,
}

impl MonoClock {
    /// A clock anchored at construction time.
    pub fn new() -> Self {
        MonoClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonoClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonoClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A deterministic fake: every `now_ns` call returns the current value
/// and then advances it by a fixed step, so a span of `k` interior
/// clock reads always measures exactly `k * step` (plus any manual
/// [`FakeClock::advance`] calls in between). `Cell`-based — shared
/// references can read it, matching the `Clock` trait's `&self`.
#[derive(Debug, Clone)]
pub struct FakeClock {
    now: Cell<u64>,
    step: Cell<u64>,
}

impl FakeClock {
    /// A fake clock starting at `start` that auto-advances by `step`
    /// nanoseconds per `now_ns` call.
    pub fn new(start: u64, step: u64) -> Self {
        FakeClock {
            now: Cell::new(start),
            step: Cell::new(step),
        }
    }

    /// Manually advance the clock by `delta` nanoseconds.
    pub fn advance(&self, delta: u64) {
        self.now.set(self.now.get().saturating_add(delta));
    }

    /// Change the per-read auto-advance step.
    pub fn set_step(&self, step: u64) {
        self.step.set(step);
    }
}

impl Clock for FakeClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        let t = self.now.get();
        self.now.set(t.saturating_add(self.step.get()));
        t
    }
}

/// Enum-dispatched clock holder for long-lived owners (the FASE
/// runtime keeps one). Static match dispatch, no `dyn`, so the real
/// path stays a single branch plus an `Instant::elapsed`.
#[derive(Debug, Clone)]
pub enum ClockSource {
    /// The real monotonic clock.
    Mono(MonoClock),
    /// The deterministic test clock.
    Fake(FakeClock),
}

impl ClockSource {
    /// A real monotonic clock anchored now.
    pub fn mono() -> Self {
        ClockSource::Mono(MonoClock::new())
    }

    /// A deterministic fake clock (see [`FakeClock::new`]).
    pub fn fake(start: u64, step: u64) -> Self {
        ClockSource::Fake(FakeClock::new(start, step))
    }
}

impl Default for ClockSource {
    fn default() -> Self {
        Self::mono()
    }
}

impl Clock for ClockSource {
    #[inline]
    fn now_ns(&self) -> u64 {
        match self {
            ClockSource::Mono(c) => c.now_ns(),
            ClockSource::Fake(c) => c.now_ns(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mono_clock_is_monotone() {
        let c = MonoClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_auto_advances_deterministically() {
        let c = FakeClock::new(100, 7);
        assert_eq!(c.now_ns(), 100);
        assert_eq!(c.now_ns(), 107);
        c.advance(1000);
        assert_eq!(c.now_ns(), 1114);
    }

    #[test]
    fn fake_clock_zero_step_needs_manual_advance() {
        let c = FakeClock::new(5, 0);
        assert_eq!(c.now_ns(), 5);
        assert_eq!(c.now_ns(), 5);
        c.advance(3);
        assert_eq!(c.now_ns(), 8);
    }

    #[test]
    fn clock_source_dispatches() {
        let f = ClockSource::fake(1, 1);
        assert_eq!(f.now_ns(), 1);
        assert_eq!(f.now_ns(), 2);
        let m = ClockSource::mono();
        let a = m.now_ns();
        assert!(m.now_ns() >= a);
    }

    #[test]
    fn fake_clock_saturates_instead_of_wrapping() {
        let c = FakeClock::new(u64::MAX - 1, 10);
        assert_eq!(c.now_ns(), u64::MAX - 1);
        assert_eq!(c.now_ns(), u64::MAX);
        c.advance(u64::MAX);
        assert_eq!(c.now_ns(), u64::MAX);
    }
}
