//! Adaptation-convergence analysis over the pinned capacity-change
//! timeline.
//!
//! The adaptive policy records every MRC-window decision as a pinned
//! `CapacityChange` event (and the KV shard controller additionally as
//! a `CapacityChoice`). This module answers the ROADMAP's two
//! questions about that stream: *how many windows did the controller
//! take to find the knee* (`windows_to_knee`), and *did it re-converge
//! after a workload phase shift* ([`analyze_shift`]).

use std::collections::BTreeMap;

/// One capacity decision: at time `t` the controller observed MRC knee
/// `knee` and chose `capacity` lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityEvent {
    /// Decision time on the owner's time axis (op ordinal or cycles).
    pub t: u64,
    /// The miss-ratio-curve knee the decision was derived from.
    pub knee: u64,
    /// The capacity the controller applied.
    pub capacity: u64,
}

/// Tolerances for calling a decision stream "converged".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceConfig {
    /// Decisions within `tol` lines of the final capacity count as
    /// stable (the controller adds a +1 safety line over the knee, so
    /// the default tolerates exactly that jitter).
    pub tol: u64,
    /// Minimum length of the stable suffix required to report
    /// `converged` (1 = the last decision alone suffices).
    pub min_stable: usize,
}

impl Default for ConvergenceConfig {
    fn default() -> Self {
        ConvergenceConfig {
            tol: 1,
            min_stable: 1,
        }
    }
}

/// Convergence verdict for one decision stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Convergence {
    /// Total decision windows observed.
    pub windows: usize,
    /// Capacity of the last decision (0 when the stream is empty).
    pub final_capacity: u64,
    /// 1-based index of the first decision of the maximal suffix whose
    /// capacities all sit within `tol` of the final capacity — i.e.
    /// how many MRC windows the controller needed to land on (and keep)
    /// the knee. `None` when the stream is empty.
    pub windows_to_knee: Option<usize>,
    /// True iff the stable suffix is at least `min_stable` long.
    pub converged: bool,
}

impl Convergence {
    fn empty() -> Self {
        Convergence {
            windows: 0,
            final_capacity: 0,
            windows_to_knee: None,
            converged: false,
        }
    }
}

/// Analyze one shard's decision stream (events in time order).
pub fn analyze(events: &[CapacityEvent], cfg: &ConvergenceConfig) -> Convergence {
    let Some(last) = events.last() else {
        return Convergence::empty();
    };
    let final_capacity = last.capacity;
    // walk backwards over the maximal stable suffix
    let mut first_stable = events.len();
    for (i, e) in events.iter().enumerate().rev() {
        if e.capacity.abs_diff(final_capacity) <= cfg.tol {
            first_stable = i;
        } else {
            break;
        }
    }
    let stable_len = events.len() - first_stable;
    Convergence {
        windows: events.len(),
        final_capacity,
        windows_to_knee: Some(first_stable + 1),
        converged: stable_len >= cfg.min_stable,
    }
}

/// Convergence across a workload phase shift at time `shift_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShiftReport {
    /// Verdict over decisions strictly before the shift.
    pub pre: Convergence,
    /// Verdict over decisions at or after the shift.
    pub post: Convergence,
    /// Did the controller settle again after the phase change? True
    /// iff the post-shift stream is non-empty and converged.
    pub reconverged: bool,
}

/// Split the stream at `shift_t` and analyze each phase independently.
/// `windows_to_knee` in `post` is the re-convergence window count the
/// ROADMAP asks to bound.
pub fn analyze_shift(
    events: &[CapacityEvent],
    shift_t: u64,
    cfg: &ConvergenceConfig,
) -> ShiftReport {
    let split = events.partition_point(|e| e.t < shift_t);
    let pre = analyze(&events[..split], cfg);
    let post = analyze(&events[split..], cfg);
    ShiftReport {
        pre,
        post,
        reconverged: post.windows > 0 && post.converged,
    }
}

/// Group a snapshot's `capacity_timeline()` rows — `(t, tid, knee,
/// new_capacity)` — into per-shard decision streams keyed by tid, each
/// in time order.
pub fn streams_by_tid(timeline: &[(u64, u32, u64, u64)]) -> BTreeMap<u32, Vec<CapacityEvent>> {
    let mut by_tid: BTreeMap<u32, Vec<CapacityEvent>> = BTreeMap::new();
    for &(t, tid, knee, capacity) in timeline {
        by_tid
            .entry(tid)
            .or_default()
            .push(CapacityEvent { t, knee, capacity });
    }
    for evs in by_tid.values_mut() {
        evs.sort_by_key(|e| e.t);
    }
    by_tid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, capacity: u64) -> CapacityEvent {
        CapacityEvent {
            t,
            knee: capacity.saturating_sub(1),
            capacity,
        }
    }

    #[test]
    fn empty_stream_is_unconverged() {
        let c = analyze(&[], &ConvergenceConfig::default());
        assert_eq!(c.windows, 0);
        assert_eq!(c.windows_to_knee, None);
        assert!(!c.converged);
    }

    #[test]
    fn immediate_convergence_is_window_one() {
        let evs = [ev(10, 64), ev(20, 64), ev(30, 65)];
        let c = analyze(&evs, &ConvergenceConfig::default());
        // all decisions within tol=1 of the final 65
        assert_eq!(c.windows_to_knee, Some(1));
        assert_eq!(c.final_capacity, 65);
        assert!(c.converged);
    }

    #[test]
    fn late_convergence_counts_search_windows() {
        let evs = [ev(1, 10), ev(2, 200), ev(3, 64), ev(4, 64), ev(5, 64)];
        let c = analyze(&evs, &ConvergenceConfig::default());
        assert_eq!(c.windows, 5);
        assert_eq!(c.windows_to_knee, Some(3));
        assert!(c.converged);
    }

    #[test]
    fn min_stable_gates_the_verdict() {
        let evs = [ev(1, 10), ev(2, 90)];
        let strict = ConvergenceConfig {
            tol: 1,
            min_stable: 2,
        };
        let c = analyze(&evs, &strict);
        assert_eq!(c.windows_to_knee, Some(2));
        assert!(!c.converged, "stable suffix of 1 < min_stable 2");
        let lax = ConvergenceConfig::default();
        assert!(analyze(&evs, &lax).converged);
    }

    #[test]
    fn shift_splits_and_checks_reconvergence() {
        let evs = [
            ev(10, 64),
            ev(20, 64),
            // phase shift at t=100: knee moves, controller hunts, lands
            ev(110, 200),
            ev(120, 128),
            ev(130, 128),
        ];
        let r = analyze_shift(&evs, 100, &ConvergenceConfig::default());
        assert_eq!(r.pre.windows, 2);
        assert_eq!(r.pre.final_capacity, 64);
        assert_eq!(r.post.windows, 3);
        assert_eq!(r.post.final_capacity, 128);
        assert_eq!(r.post.windows_to_knee, Some(2));
        assert!(r.reconverged);
    }

    #[test]
    fn shift_with_no_post_events_does_not_reconverge() {
        let evs = [ev(10, 64), ev(20, 64)];
        let r = analyze_shift(&evs, 100, &ConvergenceConfig::default());
        assert_eq!(r.pre.windows, 2);
        assert_eq!(r.post.windows, 0);
        assert!(!r.reconverged);
    }

    #[test]
    fn timeline_rows_group_by_shard() {
        let timeline = vec![
            (5, 1, 63, 64),
            (3, 0, 31, 32),
            (9, 1, 63, 64),
            (4, 0, 31, 32),
        ];
        let streams = streams_by_tid(&timeline);
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[&0].len(), 2);
        assert_eq!(streams[&0][0].t, 3);
        assert_eq!(streams[&1][1].t, 9);
        let c = analyze(&streams[&1], &ConvergenceConfig::default());
        assert_eq!(c.windows_to_knee, Some(1));
    }
}
