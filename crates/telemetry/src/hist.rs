//! Fixed-bucket log2 histogram: cheap to record (a `leading_zeros` and
//! an array increment), trivially mergeable, and precise enough for the
//! stall-duration / queue-depth / FASE-length distributions the harness
//! cares about.

/// Number of buckets: bucket 0 holds zeros, bucket `i` (1 ≤ i ≤ 31)
/// holds values in `[2^(i-1), 2^i)`, and the last bucket saturates —
/// it holds every value ≥ 2^31.
pub const HIST_BUCKETS: usize = 33;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts (see [`HIST_BUCKETS`] for edges).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (for exact means).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for `value`: 0 for 0, `bit_width(value)` otherwise,
    /// saturating at the last bucket.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Inclusive lower edge of bucket `i` (0, 1, 2, 4, 8, …).
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram into this one (shard merge).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// True iff no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_log2() {
        // bucket 0: only zero
        assert_eq!(Histogram::bucket_of(0), 0);
        // bucket i (i ≥ 1) covers [2^(i-1), 2^i)
        for i in 1..HIST_BUCKETS - 1 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(Histogram::bucket_of(lo), i, "lower edge of bucket {i}");
            assert_eq!(Histogram::bucket_of(hi), i, "upper edge of bucket {i}");
        }
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
    }

    #[test]
    fn saturation_bucket_catches_everything_large() {
        let last = HIST_BUCKETS - 1;
        // first value that no longer fits a dedicated bucket
        let sat_lo = 1u64 << (last - 1);
        assert_eq!(Histogram::bucket_of(sat_lo), last);
        assert_eq!(Histogram::bucket_of(sat_lo * 2), last);
        assert_eq!(Histogram::bucket_of(u64::MAX), last);
        // the value just below still lands in the penultimate bucket
        assert_eq!(Histogram::bucket_of(sat_lo - 1), last - 1);
    }

    #[test]
    fn bucket_lo_matches_bucket_of() {
        for i in 0..HIST_BUCKETS {
            assert_eq!(
                Histogram::bucket_of(Histogram::bucket_lo(i)),
                i,
                "bucket {i}"
            );
        }
    }

    #[test]
    fn observe_tracks_count_sum_max() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 5, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1007);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 201.4).abs() < 1e-9);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 2); // the ones
        assert_eq!(h.buckets[3], 1); // 5 ∈ [4, 8)
        assert_eq!(h.buckets[10], 1); // 1000 ∈ [512, 1024)
    }

    #[test]
    fn merge_is_elementwise_sum() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.observe(3);
        a.observe(100);
        b.observe(3);
        b.observe(u64::MAX);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count, 4);
        assert_eq!(merged.buckets[2], 2, "both 3s");
        assert_eq!(merged.max, u64::MAX);
        // merging an empty histogram changes nothing
        let before = merged.clone();
        merged.merge(&Histogram::new());
        assert_eq!(merged, before);
    }

    #[test]
    fn empty_histogram_reports_cleanly() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max, 0);
    }
}
