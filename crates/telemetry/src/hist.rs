//! Fixed-bucket log2 histogram: cheap to record (a `leading_zeros` and
//! an array increment), trivially mergeable, and precise enough for the
//! stall-duration / queue-depth / FASE-length distributions the harness
//! cares about.

/// Number of buckets: bucket 0 holds zeros, bucket `i` (1 ≤ i ≤ 31)
/// holds values in `[2^(i-1), 2^i)`, and the last bucket saturates —
/// it holds every value ≥ 2^31.
pub const HIST_BUCKETS: usize = 33;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts (see [`HIST_BUCKETS`] for edges).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (for exact means).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for `value`: 0 for 0, `bit_width(value)` otherwise,
    /// saturating at the last bucket.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Inclusive lower edge of bucket `i` (0, 1, 2, 4, 8, …).
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram into this one (shard merge).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// True iff no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Inclusive upper edge of bucket `i` (0, 1, 3, 7, …); the
    /// saturated last bucket is capped by the largest sample seen so
    /// the interpolation below never extrapolates past real data.
    fn bucket_hi(&self, i: usize) -> u64 {
        if i + 1 >= HIST_BUCKETS {
            self.max
        } else {
            Self::bucket_lo(i + 1) - 1
        }
    }

    /// Quantile `q` ∈ [0, 1] of the recorded samples.
    ///
    /// Walks the buckets to the one holding the rank-`ceil(q·count)`
    /// sample and linearly interpolates within its `[lo, hi]` range —
    /// exact to within one bucket's width, which at log2 granularity is
    /// a ≤ 2x bound on the true order statistic. Conventions chosen for
    /// robustness rather than surprise: an empty histogram reports 0,
    /// `q` is clamped into [0, 1], `q = 0` resolves to the rank-1 sample
    /// (low end of the first occupied bucket), `q = 1` reports `max`,
    /// and the saturated top bucket interpolates toward `max` instead
    /// of `u64::MAX`. The result never exceeds `max`.
    pub fn p(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q = 0 maps to rank 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = Self::bucket_lo(i);
                let hi = self.bucket_hi(i).max(lo);
                // Position of the target among this bucket's n samples.
                let in_bucket = rank - seen;
                if in_bucket == n {
                    // bucket's last sample: exact integer edge, no f64
                    // rounding near u64::MAX
                    return hi.min(self.max);
                }
                let frac = in_bucket as f64 / n as f64;
                let v = lo as f64 + (hi - lo) as f64 * frac;
                return (v.round() as u64).min(self.max);
            }
            seen += n;
        }
        self.max
    }

    /// The (p50, p99, p999) triple used by the bench tables.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.p(0.50), self.p(0.99), self.p(0.999))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_log2() {
        // bucket 0: only zero
        assert_eq!(Histogram::bucket_of(0), 0);
        // bucket i (i ≥ 1) covers [2^(i-1), 2^i)
        for i in 1..HIST_BUCKETS - 1 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(Histogram::bucket_of(lo), i, "lower edge of bucket {i}");
            assert_eq!(Histogram::bucket_of(hi), i, "upper edge of bucket {i}");
        }
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
    }

    #[test]
    fn saturation_bucket_catches_everything_large() {
        let last = HIST_BUCKETS - 1;
        // first value that no longer fits a dedicated bucket
        let sat_lo = 1u64 << (last - 1);
        assert_eq!(Histogram::bucket_of(sat_lo), last);
        assert_eq!(Histogram::bucket_of(sat_lo * 2), last);
        assert_eq!(Histogram::bucket_of(u64::MAX), last);
        // the value just below still lands in the penultimate bucket
        assert_eq!(Histogram::bucket_of(sat_lo - 1), last - 1);
    }

    #[test]
    fn bucket_lo_matches_bucket_of() {
        for i in 0..HIST_BUCKETS {
            assert_eq!(
                Histogram::bucket_of(Histogram::bucket_lo(i)),
                i,
                "bucket {i}"
            );
        }
    }

    #[test]
    fn observe_tracks_count_sum_max() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 5, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1007);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 201.4).abs() < 1e-9);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 2); // the ones
        assert_eq!(h.buckets[3], 1); // 5 ∈ [4, 8)
        assert_eq!(h.buckets[10], 1); // 1000 ∈ [512, 1024)
    }

    #[test]
    fn merge_is_elementwise_sum() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.observe(3);
        a.observe(100);
        b.observe(3);
        b.observe(u64::MAX);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count, 4);
        assert_eq!(merged.buckets[2], 2, "both 3s");
        assert_eq!(merged.max, u64::MAX);
        // merging an empty histogram changes nothing
        let before = merged.clone();
        merged.merge(&Histogram::new());
        assert_eq!(merged, before);
    }

    #[test]
    fn empty_histogram_reports_cleanly() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max, 0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0, -1.0, 2.0] {
            assert_eq!(h.p(q), 0, "q={q}");
        }
        assert_eq!(h.percentiles(), (0, 0, 0));
    }

    #[test]
    fn quantile_of_single_sample_is_that_sample() {
        for v in [0u64, 1, 7, 1000, u64::MAX] {
            let mut h = Histogram::new();
            h.observe(v);
            for q in [0.0, 0.5, 0.999, 1.0] {
                assert_eq!(h.p(q), v, "v={v} q={q}");
            }
        }
    }

    #[test]
    fn quantile_clamps_q_and_never_exceeds_max() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16, 1000] {
            h.observe(v);
        }
        assert_eq!(h.p(-0.5), h.p(0.0));
        assert_eq!(h.p(7.0), h.p(1.0));
        assert_eq!(h.p(1.0), 1000);
        for i in 0..=100 {
            assert!(h.p(i as f64 / 100.0) <= h.max);
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bucket_accurate() {
        let mut h = Histogram::new();
        // 90 small samples, 10 large ones: p50 must land in the small
        // cluster's bucket range, p99 in the large one's.
        for _ in 0..90 {
            h.observe(10);
        }
        for _ in 0..10 {
            h.observe(100_000);
        }
        let (p50, p99, p999) = h.percentiles();
        assert!((8..16).contains(&p50), "p50={p50}");
        assert!((65_536..=131_071).contains(&p99), "p99={p99}");
        assert!(p50 <= p99 && p99 <= p999, "({p50}, {p99}, {p999})");
        assert!(p999 <= h.max);
    }

    #[test]
    fn saturated_top_bucket_interpolates_toward_max_not_u64_max() {
        let mut h = Histogram::new();
        let sat_lo = 1u64 << (HIST_BUCKETS - 2);
        h.observe(sat_lo);
        h.observe(sat_lo + 10);
        h.observe(sat_lo + 20);
        // all mass in the saturated bucket: quantiles interpolate in
        // [sat_lo, max], never toward the bucket's notional u64::MAX end
        for q in [0.0, 0.5, 0.99, 1.0] {
            let p = h.p(q);
            assert!(p >= sat_lo && p <= sat_lo + 20, "q={q} p={p}");
        }
        assert_eq!(h.p(1.0), sat_lo + 20);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Round-trip: every value lands in a bucket whose `[lo, hi]`
        /// range contains it, and `bucket_lo(bucket_of(v)) <= v`.
        #[test]
        fn bucket_of_and_bucket_lo_round_trip(v in any::<u64>()) {
            let i = Histogram::bucket_of(v);
            prop_assert!(i < HIST_BUCKETS);
            prop_assert!(Histogram::bucket_lo(i) <= v);
            if i + 1 < HIST_BUCKETS {
                // below the saturated bucket the next edge bounds v
                prop_assert!(v < Histogram::bucket_lo(i + 1));
            } else {
                // the top bucket catches everything from its edge up
                // to and including u64::MAX
                prop_assert!(v >= Histogram::bucket_lo(HIST_BUCKETS - 1));
            }
        }

        /// Every bucket edge maps back to its own bucket.
        #[test]
        fn bucket_lo_is_a_fixed_point(i in 0usize..HIST_BUCKETS) {
            prop_assert_eq!(Histogram::bucket_of(Histogram::bucket_lo(i)), i);
        }

        /// Quantiles of arbitrary sample sets stay within [min-bucket
        /// edge, max] and are monotone in q.
        #[test]
        fn quantiles_bounded_and_monotone(
            samples in proptest::collection::vec(any::<u64>(), 1..200)
        ) {
            let mut h = Histogram::new();
            for &s in &samples {
                h.observe(s);
            }
            let mut last = 0u64;
            for i in 0..=20 {
                let p = h.p(i as f64 / 20.0);
                prop_assert!(p <= h.max);
                prop_assert!(p >= last, "quantiles must be monotone");
                last = p;
            }
            prop_assert_eq!(h.p(1.0), h.max);
        }
    }
}
