//! Zero-overhead-when-disabled instrumentation for the whole stack:
//! per-thread [`Counter`](recorder::CounterId) shards, fixed-bucket log2
//! [`Histogram`]s, and a bounded [`EventRing`] timeline.
//!
//! Everything funnels through the [`Recorder`] trait. The hot paths
//! (trace replay, policy decisions, machine timing) are generic over
//! `R: Recorder`; with [`NullRecorder`] every instrumentation call is an
//! empty `#[inline(always)]` body guarded by the associated constant
//! `R::ENABLED == false`, so the optimizer removes both the calls and
//! the branches — recorder-off replay compiles to the same machine code
//! as before the telemetry layer existed.
//!
//! With [`ThreadRecorder`] (one per simulated thread, shared-nothing),
//! counters, histograms and events accumulate per thread;
//! [`TelemetrySnapshot::from_threads`] merges the shards **in thread-id
//! order**, so parallel replay produces a bit-identical snapshot to
//! sequential replay.

#![warn(missing_docs)]

pub mod clock;
pub mod convergence;
pub mod hist;
pub mod recorder;
pub mod ring;
pub mod series;
pub mod snapshot;
pub mod span;

pub use clock::{Clock, ClockSource, FakeClock, MonoClock};
pub use convergence::{CapacityEvent, Convergence, ConvergenceConfig, ShiftReport};
pub use hist::{Histogram, HIST_BUCKETS};
pub use recorder::{
    CounterId, HistId, NullRecorder, Recorder, TelemetryConfig, ThreadRecorder, NUM_COUNTERS,
    NUM_HISTS,
};
pub use ring::{Event, EventKind, EventRing};
pub use series::{Sample, SeriesRing};
pub use snapshot::TelemetrySnapshot;
pub use span::{SpanGuard, SpanId};
