//! The [`Recorder`] trait and its two implementations: the no-op
//! [`NullRecorder`] (compiles to nothing) and the per-thread
//! [`ThreadRecorder`] shard.

use crate::clock::Clock;
use crate::hist::Histogram;
use crate::ring::{EventKind, EventRing};
use crate::series::{Sample, SeriesRing};
use crate::span::{SpanGuard, SpanId};

/// Enumerated monotonic counters. Each simulated thread owns one flat
/// `[u64; NUM_COUNTERS]` shard; snapshots sum the shards in tid order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CounterId {
    /// Persistent stores observed.
    Stores = 0,
    /// Flushes issued asynchronously (mid-FASE).
    FlushesAsync,
    /// Flushes issued synchronously (end-of-FASE drains).
    FlushesSync,
    /// Stores combined into already-buffered state (software-cache hits
    /// — the paper's write-combining events).
    ScHits,
    /// Stores that inserted a new line into the policy's buffer.
    ScMisses,
    /// Mid-FASE evictions of buffered lines.
    ScEvictions,
    /// Outermost FASEs begun.
    FaseBegins,
    /// Outermost FASEs committed.
    FaseEnds,
    /// Adaptive capacity changes.
    CapacityChanges,
    /// Ordering fences issued.
    Fences,
    /// Cycles stalled on the write-back queue mid-FASE.
    QueueStallCycles,
    /// Cycles stalled in end-of-FASE drains and fences.
    FaseStallCycles,
    /// Undo-log bytes appended (FASE runtime only).
    LogBytes,
    /// Recoveries that rolled back an incomplete FASE (FASE runtime
    /// only: crash injection or reopen found un-committed undo records).
    Rollbacks,
    /// Network connections accepted by the serving layer.
    NetConnections,
    /// Request frames decoded off the wire.
    NetFramesIn,
    /// Response frames written back to clients.
    NetFramesOut,
    /// Recoverable protocol errors (corrupt checksum, malformed body)
    /// skipped by the frame decoder without dropping the connection.
    NetProtoErrors,
}

/// Number of counters (length of a shard).
pub const NUM_COUNTERS: usize = 18;

/// All counters, in shard order.
pub const ALL_COUNTERS: [CounterId; NUM_COUNTERS] = [
    CounterId::Stores,
    CounterId::FlushesAsync,
    CounterId::FlushesSync,
    CounterId::ScHits,
    CounterId::ScMisses,
    CounterId::ScEvictions,
    CounterId::FaseBegins,
    CounterId::FaseEnds,
    CounterId::CapacityChanges,
    CounterId::Fences,
    CounterId::QueueStallCycles,
    CounterId::FaseStallCycles,
    CounterId::LogBytes,
    CounterId::Rollbacks,
    CounterId::NetConnections,
    CounterId::NetFramesIn,
    CounterId::NetFramesOut,
    CounterId::NetProtoErrors,
];

impl CounterId {
    /// Stable snake_case name (JSON keys).
    pub fn name(&self) -> &'static str {
        match self {
            CounterId::Stores => "stores",
            CounterId::FlushesAsync => "flushes_async",
            CounterId::FlushesSync => "flushes_sync",
            CounterId::ScHits => "sc_hits",
            CounterId::ScMisses => "sc_misses",
            CounterId::ScEvictions => "sc_evictions",
            CounterId::FaseBegins => "fase_begins",
            CounterId::FaseEnds => "fase_ends",
            CounterId::CapacityChanges => "capacity_changes",
            CounterId::Fences => "fences",
            CounterId::QueueStallCycles => "queue_stall_cycles",
            CounterId::FaseStallCycles => "fase_stall_cycles",
            CounterId::LogBytes => "log_bytes",
            CounterId::Rollbacks => "rollbacks",
            CounterId::NetConnections => "net_connections",
            CounterId::NetFramesIn => "net_frames_in",
            CounterId::NetFramesOut => "net_frames_out",
            CounterId::NetProtoErrors => "net_proto_errors",
        }
    }
}

/// Enumerated histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistId {
    /// Write-back queue depth sampled at each asynchronous flush issue.
    QueueDepth = 0,
    /// Stall cycles per synchronous (end-of-FASE) flush.
    SyncFlushStall,
    /// Stall cycles per fence-drain of the write-back queue.
    DrainStall,
    /// Persistent stores per outermost FASE.
    FaseStores,
    /// Undo-log bytes per outermost FASE (FASE runtime only).
    FaseLogBytes,
    /// KV `get` latency in nanoseconds (span-timed).
    KvGetNs,
    /// KV `put`/`delete` latency in nanoseconds (span-timed).
    KvPutNs,
    /// KV `put_many` group-commit latency in nanoseconds (span-timed).
    KvPutManyNs,
    /// KV `scan` (range read) latency in nanoseconds (span-timed).
    KvScanNs,
    /// FASE commit (`end_fase`) latency in nanoseconds (span-timed).
    FaseCommitNs,
    /// Flush-ring drain-pass latency in nanoseconds (span-timed).
    RingDrainNs,
    /// Recovery / reopen latency in nanoseconds (span-timed).
    RecoveryNs,
}

/// Number of histograms.
pub const NUM_HISTS: usize = 12;

/// All histograms, in shard order.
pub const ALL_HISTS: [HistId; NUM_HISTS] = [
    HistId::QueueDepth,
    HistId::SyncFlushStall,
    HistId::DrainStall,
    HistId::FaseStores,
    HistId::FaseLogBytes,
    HistId::KvGetNs,
    HistId::KvPutNs,
    HistId::KvPutManyNs,
    HistId::KvScanNs,
    HistId::FaseCommitNs,
    HistId::RingDrainNs,
    HistId::RecoveryNs,
];

impl HistId {
    /// Stable snake_case name (JSON keys).
    pub fn name(&self) -> &'static str {
        match self {
            HistId::QueueDepth => "queue_depth",
            HistId::SyncFlushStall => "sync_flush_stall_cycles",
            HistId::DrainStall => "drain_stall_cycles",
            HistId::FaseStores => "fase_stores",
            HistId::FaseLogBytes => "fase_log_bytes",
            HistId::KvGetNs => "kv_get_ns",
            HistId::KvPutNs => "kv_put_ns",
            HistId::KvPutManyNs => "kv_put_many_ns",
            HistId::KvScanNs => "kv_scan_ns",
            HistId::FaseCommitNs => "fase_commit_ns",
            HistId::RingDrainNs => "ring_drain_ns",
            HistId::RecoveryNs => "recovery_ns",
        }
    }
}

/// Telemetry capture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Per-thread event-ring capacity (the timeline keeps the last N
    /// events of each thread).
    pub ring_capacity: usize,
    /// Runtime-sampler cadence: take one [`Sample`] every N ops (FASEs
    /// in the FASE runtime, outermost FASE commits in the replay
    /// engine). 0 disables the sampler.
    pub sample_every: u64,
    /// Per-thread bound on retained samples; the series decimates
    /// (keeps every other sample, doubles its stride) when full, so it
    /// always spans the whole run.
    pub series_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            ring_capacity: 4096,
            sample_every: 1024,
            series_capacity: 256,
        }
    }
}

/// The instrumentation sink. Hot paths are generic over `R: Recorder`;
/// every call site is guarded by `R::ENABLED`, a constant the optimizer
/// folds, so the [`NullRecorder`] variant costs nothing.
pub trait Recorder {
    /// Is this recorder live? `false` lets the compiler delete
    /// instrumentation blocks wholesale.
    const ENABLED: bool;

    /// Add `delta` to a counter.
    fn add(&mut self, id: CounterId, delta: u64);

    /// Increment a counter by one.
    #[inline(always)]
    fn incr(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Record one histogram sample.
    fn observe(&mut self, id: HistId, value: u64);

    /// Append a timeline event at time `t` with payload `(a, b)`.
    fn emit(&mut self, kind: EventKind, t: u64, a: u64, b: u64);

    /// Offer one runtime-sampler observation to the time series.
    fn sample(&mut self, s: Sample);

    /// Should the sampler fire for op ordinal `n`? Callers guard the
    /// (possibly costly) assembly of a [`Sample`] behind this. Always
    /// `false` for disabled recorders.
    #[inline(always)]
    fn sample_due(&self, _n: u64) -> bool {
        false
    }

    /// Open a span: measures from this call until the guard drops,
    /// recording elapsed nanoseconds into `id`'s latency histogram.
    /// Through [`NullRecorder`] the clock is never read.
    #[inline]
    fn span<'a, C: Clock>(&'a mut self, clock: &'a C, id: SpanId) -> SpanGuard<'a, Self, C>
    where
        Self: Sized,
    {
        SpanGuard::start(self, clock, id)
    }
}

/// The disabled recorder: every method is an empty inline body and
/// `ENABLED` is `false`, so instrumented code monomorphizes to exactly
/// the uninstrumented code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn add(&mut self, _id: CounterId, _delta: u64) {}

    #[inline(always)]
    fn observe(&mut self, _id: HistId, _value: u64) {}

    #[inline(always)]
    fn emit(&mut self, _kind: EventKind, _t: u64, _a: u64, _b: u64) {}

    #[inline(always)]
    fn sample(&mut self, _s: Sample) {}
}

/// A live per-thread shard: flat counter array, fixed histogram array,
/// bounded event ring. Strictly thread-local — merging happens only at
/// snapshot time, in tid order.
#[derive(Debug, Clone)]
pub struct ThreadRecorder {
    tid: u32,
    counters: [u64; NUM_COUNTERS],
    hists: [Histogram; NUM_HISTS],
    ring: EventRing,
    series: SeriesRing,
    sample_every: u64,
}

impl ThreadRecorder {
    /// New shard for thread `tid`.
    pub fn new(tid: u32, cfg: &TelemetryConfig) -> Self {
        ThreadRecorder {
            tid,
            counters: [0; NUM_COUNTERS],
            hists: std::array::from_fn(|_| Histogram::new()),
            ring: EventRing::new(cfg.ring_capacity),
            series: SeriesRing::new(cfg.series_capacity),
            sample_every: cfg.sample_every,
        }
    }

    /// This shard's thread id.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Current value of one counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize]
    }

    /// One histogram.
    pub fn hist(&self, id: HistId) -> &Histogram {
        &self.hists[id as usize]
    }

    /// The event ring (read access).
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// The sampler's time series (read access).
    pub fn series(&self) -> &SeriesRing {
        &self.series
    }

    /// Decompose into (tid, counters, histograms, timeline events,
    /// sampler series).
    pub fn into_parts(
        self,
    ) -> (
        u32,
        [u64; NUM_COUNTERS],
        [Histogram; NUM_HISTS],
        Vec<crate::ring::Event>,
        Vec<Sample>,
    ) {
        (
            self.tid,
            self.counters,
            self.hists,
            self.ring.into_vec(),
            self.series.into_vec(),
        )
    }
}

impl Recorder for ThreadRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id as usize] += delta;
    }

    #[inline]
    fn observe(&mut self, id: HistId, value: u64) {
        self.hists[id as usize].observe(value);
    }

    #[inline]
    fn emit(&mut self, kind: EventKind, t: u64, a: u64, b: u64) {
        self.ring.push(t, self.tid, kind, a, b);
    }

    #[inline]
    fn sample(&mut self, s: Sample) {
        self.series.push(s);
    }

    #[inline]
    fn sample_due(&self, n: u64) -> bool {
        self.sample_every != 0 && n.is_multiple_of(self.sample_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_ids_match_shard_order() {
        for (i, id) in ALL_COUNTERS.iter().enumerate() {
            assert_eq!(*id as usize, i, "{}", id.name());
        }
        for (i, id) in ALL_HISTS.iter().enumerate() {
            assert_eq!(*id as usize, i, "{}", id.name());
        }
    }

    #[test]
    fn thread_recorder_accumulates() {
        let mut r = ThreadRecorder::new(3, &TelemetryConfig::default());
        r.incr(CounterId::Stores);
        r.add(CounterId::Stores, 4);
        r.observe(HistId::QueueDepth, 2);
        r.emit(EventKind::FaseBegin, 10, 0, 0);
        assert_eq!(r.counter(CounterId::Stores), 5);
        assert_eq!(r.hist(HistId::QueueDepth).count, 1);
        assert_eq!(r.ring().len(), 1);
        assert_eq!(r.ring().iter().next().unwrap().tid, 3);
    }

    #[test]
    fn thread_recorder_sampling_follows_cadence() {
        let cfg = TelemetryConfig {
            sample_every: 4,
            ..Default::default()
        };
        let mut r = ThreadRecorder::new(1, &cfg);
        let mut taken = 0u64;
        for n in 1..=16u64 {
            if r.sample_due(n) {
                taken += 1;
                r.sample(Sample {
                    t: n,
                    tid: 1,
                    ring_depth: 0,
                    capacity: 8,
                    hit_ratio_bp: 0,
                    stalls: 0,
                });
            }
        }
        assert_eq!(taken, 4, "n = 4, 8, 12, 16");
        assert_eq!(r.series().len(), 4);
        // cadence 0 disables
        let off = ThreadRecorder::new(
            1,
            &TelemetryConfig {
                sample_every: 0,
                ..Default::default()
            },
        );
        assert!(!off.sample_due(0));
        assert!(!off.sample_due(1024));
    }

    #[test]
    fn null_recorder_is_inert() {
        let mut r = NullRecorder;
        r.incr(CounterId::Stores);
        r.observe(HistId::QueueDepth, 9);
        r.emit(EventKind::ScHit, 1, 2, 3);
        // read through a runtime binding so the flag values are
        // asserted without tripping clippy::assertions_on_constants
        let (null_on, thread_on) = (NullRecorder::ENABLED, ThreadRecorder::ENABLED);
        assert!(!null_on);
        assert!(thread_on);
    }
}
