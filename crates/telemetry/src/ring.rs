//! Bounded event timeline: a fixed-capacity ring that keeps the **last**
//! `capacity` events per thread. Recording is an index increment and a
//! slot write; when the ring wraps, the oldest events are dropped and
//! counted, never reallocated.

/// What happened, at one instrumentation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An outermost FASE began.
    FaseBegin,
    /// An outermost FASE committed. `a` = stores inside the FASE,
    /// `b` = synchronous flushes drained at its end.
    FaseEnd,
    /// A persistent store was combined into already-buffered state
    /// (software-cache hit). `a` = line.
    ScHit,
    /// A persistent store inserted a new line into the policy's buffer.
    /// `a` = line.
    ScInsert,
    /// The policy evicted a buffered line mid-FASE. `a` = evicted line.
    ScEvict,
    /// An asynchronous flush was issued. `a` = line, `b` = write-back
    /// queue depth at issue.
    FlushAsync,
    /// A synchronous (end-of-FASE) flush was issued. `a` = line,
    /// `b` = stall cycles it cost.
    FlushSync,
    /// The write-back queue was drained at a fence. `a` = stall cycles.
    QueueDrain,
    /// The adaptive controller resized the cache. `a` = the MRC knee
    /// that motivated the choice, `b` = the new capacity.
    CapacityChange,
    /// Recovery rolled back an incomplete FASE after a crash. `a` =
    /// undo entries applied, `b` = crashes injected so far.
    Rollback,
}

impl EventKind {
    /// Rare structural events are **pinned**: retained outside the ring
    /// window so a burst of chatty per-store events cannot evict them.
    /// The adaptive-capacity timeline must survive arbitrarily long
    /// runs — a handful of resizes per run, each one load-bearing.
    pub fn is_pinned(&self) -> bool {
        matches!(self, EventKind::CapacityChange | EventKind::Rollback)
    }

    /// Stable lowercase name (JSON field values).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::FaseBegin => "fase_begin",
            EventKind::FaseEnd => "fase_end",
            EventKind::ScHit => "sc_hit",
            EventKind::ScInsert => "sc_insert",
            EventKind::ScEvict => "sc_evict",
            EventKind::FlushAsync => "flush_async",
            EventKind::FlushSync => "flush_sync",
            EventKind::QueueDrain => "queue_drain",
            EventKind::CapacityChange => "capacity_change",
            EventKind::Rollback => "rollback",
        }
    }
}

/// One timeline entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Per-thread sequence number (0, 1, 2, … in recording order).
    pub seq: u64,
    /// Timestamp: simulated cycles in timed replay, event ordinal in
    /// counting replay, store ordinal in the FASE runtime.
    pub t: u64,
    /// Thread that recorded the event.
    pub tid: u32,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (see [`EventKind`]).
    pub a: u64,
    /// Second kind-specific payload.
    pub b: u64,
}

/// Fixed-capacity ring keeping the most recent events, plus an
/// unbounded side list for [pinned](EventKind::is_pinned) kinds (a
/// handful per run in practice).
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<Event>,
    capacity: usize,
    /// Next write position when the ring is full.
    head: usize,
    /// Events recorded in total (`dropped() = recorded - len`).
    recorded: u64,
    next_seq: u64,
    /// Pinned events, never evicted by wraparound.
    pinned: Vec<Event>,
}

impl EventRing {
    /// Ring holding at most `capacity` events (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be positive");
        EventRing {
            buf: Vec::with_capacity(capacity.min(1024)),
            capacity,
            head: 0,
            recorded: 0,
            next_seq: 0,
            pinned: Vec::new(),
        }
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained (windowed + pinned).
    pub fn len(&self) -> usize {
        self.buf.len() + self.pinned.len()
    }

    /// True iff no event was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty() && self.pinned.is_empty()
    }

    /// Events recorded over the ring's lifetime (including dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to wraparound (pinned events are never lost).
    pub fn dropped(&self) -> u64 {
        self.recorded - self.len() as u64
    }

    /// Record an event; assigns the per-thread sequence number.
    #[inline]
    pub fn push(&mut self, t: u64, tid: u32, kind: EventKind, a: u64, b: u64) {
        let ev = Event {
            seq: self.next_seq,
            t,
            tid,
            kind,
            a,
            b,
        };
        self.next_seq += 1;
        self.recorded += 1;
        if kind.is_pinned() {
            self.pinned.push(ev);
        } else if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Retained **windowed** events, oldest first (pinned events are
    /// returned by [`into_vec`](EventRing::into_vec), merged by seq).
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let (wrapped, start) = self.buf.split_at(self.head);
        start.iter().chain(wrapped.iter())
    }

    /// Drain into a vector, oldest first, pinned events merged back into
    /// sequence order.
    pub fn into_vec(self) -> Vec<Event> {
        let mut v: Vec<Event> = Vec::with_capacity(self.len());
        let mut pinned = self.pinned.iter().copied().peekable();
        for ev in self.iter() {
            while pinned.peek().is_some_and(|p| p.seq < ev.seq) {
                v.push(pinned.next().unwrap());
            }
            v.push(*ev);
        }
        v.extend(pinned);
        debug_assert!(v.windows(2).all(|w| w[0].seq < w[1].seq));
        v.shrink_to_fit();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_n(r: &mut EventRing, n: u64) {
        for i in 0..n {
            r.push(i * 10, 0, EventKind::ScHit, i, 0);
        }
    }

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let mut r = EventRing::new(4);
        push_n(&mut r, 10);
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 6);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "last four survive, in order");
    }

    #[test]
    fn ordering_preserved_below_capacity() {
        let mut r = EventRing::new(16);
        push_n(&mut r, 5);
        assert_eq!(r.dropped(), 0);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        let ts: Vec<u64> = r.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn wrap_exactly_at_capacity_boundary() {
        let mut r = EventRing::new(3);
        push_n(&mut r, 3);
        assert_eq!(r.dropped(), 0);
        r.push(100, 0, EventKind::QueueDrain, 7, 0);
        assert_eq!(r.dropped(), 1);
        let kinds: Vec<EventKind> = r.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::ScHit, EventKind::ScHit, EventKind::QueueDrain]
        );
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn into_vec_is_oldest_first_after_many_wraps() {
        let mut r = EventRing::new(5);
        push_n(&mut r, 123);
        let v = r.into_vec();
        assert_eq!(v.len(), 5);
        let seqs: Vec<u64> = v.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![118, 119, 120, 121, 122]);
    }

    #[test]
    fn capacity_one() {
        let mut r = EventRing::new(1);
        push_n(&mut r, 7);
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().seq, 6);
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn zero_capacity_panics() {
        EventRing::new(0);
    }

    #[test]
    fn pinned_events_survive_wraparound() {
        let mut r = EventRing::new(4);
        push_n(&mut r, 3);
        r.push(25, 0, EventKind::CapacityChange, 20, 23); // seq 3, pinned
        push_n(&mut r, 100); // floods the window
        assert_eq!(r.len(), 5, "4 windowed + 1 pinned");
        let v = r.into_vec();
        let pinned: Vec<&Event> = v
            .iter()
            .filter(|e| e.kind == EventKind::CapacityChange)
            .collect();
        assert_eq!(pinned.len(), 1);
        assert_eq!((pinned[0].seq, pinned[0].a, pinned[0].b), (3, 20, 23));
        // merged output stays seq-sorted with the pinned event first
        // (everything older was evicted)
        let seqs: Vec<u64> = v.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 100, 101, 102, 103]);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(EventKind::CapacityChange.name(), "capacity_change");
        assert_eq!(EventKind::FaseBegin.name(), "fase_begin");
    }
}
