//! The runtime sampler's time series: periodic [`Sample`]s of the
//! persistence pipeline's live state (flush-ring depth, chosen cache
//! capacity, hit ratio, stall counts) kept in a bounded ring.
//!
//! Bounding uses *decimation*, not eviction: when the ring fills, every
//! other retained sample is dropped and the keep-stride doubles, so the
//! series always spans the whole run at progressively coarser
//! resolution instead of keeping only the tail. All fields are
//! integers (the hit ratio is basis points) so series from a parallel
//! run merge deterministically and compare with `Eq`.

/// One sampler observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Sample time on the owner's time axis: simulated cycles in the
    /// replay engine, FASE ordinal in the FASE runtime. Monotone
    /// non-decreasing per thread, never wall-clock (determinism).
    pub t: u64,
    /// Thread id of the sampling shard.
    pub tid: u32,
    /// Flush-ring occupancy (0 on the synchronous path).
    pub ring_depth: u64,
    /// Chosen software-cache capacity in lines; 0 when the active
    /// policy has no resizable cache.
    pub capacity: u64,
    /// Cumulative software-cache hit ratio in basis points
    /// (hits * 10_000 / (hits + misses); 0 when no stores yet).
    pub hit_ratio_bp: u32,
    /// Cumulative stall signal: stall cycles in the replay engine,
    /// inline-drain fallbacks (ring-full events) in the FASE runtime.
    pub stalls: u64,
}

/// Bounded decimating sample ring (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesRing {
    samples: Vec<Sample>,
    capacity: usize,
    /// Keep one offered sample out of every `stride`.
    stride: u64,
    /// Total samples offered so far.
    offered: u64,
}

impl SeriesRing {
    /// A ring retaining at most `capacity` samples (0 disables it).
    pub fn new(capacity: usize) -> Self {
        SeriesRing {
            samples: Vec::new(),
            capacity,
            stride: 1,
            offered: 0,
        }
    }

    /// Offer one sample; it is retained iff it falls on the current
    /// stride. Filling the ring halves the retained set and doubles
    /// the stride, keeping whole-run coverage within the bound.
    pub fn push(&mut self, s: Sample) {
        if self.capacity == 0 {
            return;
        }
        if self.offered.is_multiple_of(self.stride) {
            if self.samples.len() == self.capacity {
                // decimate: keep every other sample, coarsen stride
                let mut i = 0u32;
                self.samples.retain(|_| {
                    let keep = i.is_multiple_of(2);
                    i += 1;
                    keep
                });
                self.stride = self.stride.saturating_mul(2);
                if !self.offered.is_multiple_of(self.stride) {
                    self.offered += 1;
                    return;
                }
            }
            self.samples.push(s);
        }
        self.offered += 1;
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True iff nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Current keep-stride (1 until the first decimation).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Total samples offered over the ring's lifetime.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Consume into the retained sample vector.
    pub fn into_vec(self) -> Vec<Sample> {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t: u64) -> Sample {
        Sample {
            t,
            tid: 0,
            ring_depth: t % 7,
            capacity: 64,
            hit_ratio_bp: 5000,
            stalls: 0,
        }
    }

    #[test]
    fn retains_everything_under_capacity() {
        let mut r = SeriesRing::new(8);
        for t in 0..5 {
            r.push(s(t));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.stride(), 1);
        let ts: Vec<u64> = r.samples().iter().map(|x| x.t).collect();
        assert_eq!(ts, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn decimation_keeps_whole_run_coverage() {
        let mut r = SeriesRing::new(4);
        for t in 0..100 {
            r.push(s(t));
        }
        assert!(r.len() <= 4, "bound respected: {}", r.len());
        assert!(r.stride() > 1, "must have decimated");
        let ts: Vec<u64> = r.samples().iter().map(|x| x.t).collect();
        // oldest sample is still t=0 (coverage from the start) and the
        // retained set is strictly increasing
        assert_eq!(ts[0], 0);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
        // latest retained sample is within one stride of the end
        assert!(*ts.last().unwrap() + r.stride() > 99);
        assert_eq!(r.offered(), 100);
    }

    #[test]
    fn zero_capacity_disables_sampling() {
        let mut r = SeriesRing::new(0);
        for t in 0..10 {
            r.push(s(t));
        }
        assert!(r.is_empty());
        assert_eq!(r.into_vec(), vec![]);
    }

    #[test]
    fn retained_samples_follow_stride() {
        let mut r = SeriesRing::new(4);
        for t in 0..64 {
            r.push(s(t));
        }
        let stride = r.stride();
        for x in r.samples() {
            assert_eq!(x.t % stride, 0, "t={} stride={stride}", x.t);
        }
    }
}
