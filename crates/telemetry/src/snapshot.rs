//! Aggregation of per-thread shards into one [`TelemetrySnapshot`].
//!
//! Determinism contract: [`TelemetrySnapshot::from_threads`] must be
//! called with shards **in thread-id order** (the replay drivers
//! re-assemble worker results by tid before aggregating, exactly like
//! the report path). Given that, the snapshot — including the merged
//! timeline — is a pure function of the workload, never of scheduling.

use crate::hist::Histogram;
use crate::recorder::{ThreadRecorder, ALL_COUNTERS, ALL_HISTS, NUM_COUNTERS, NUM_HISTS};
use crate::ring::Event;
use crate::series::Sample;
use std::fmt::Write as _;

/// The aggregated result of one instrumented run.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Number of thread shards merged.
    pub threads: usize,
    /// Summed counters (shard order — index with `CounterId as usize`).
    pub counters: [u64; NUM_COUNTERS],
    /// Each thread's counter shard, in tid order.
    pub per_thread: Vec<[u64; NUM_COUNTERS]>,
    /// Merged histograms (index with `HistId as usize`).
    pub hists: [Histogram; NUM_HISTS],
    /// Merged timeline, sorted by `(t, tid, seq)`.
    pub timeline: Vec<Event>,
    /// Events lost to per-thread ring wraparound.
    pub dropped_events: u64,
    /// Merged runtime-sampler series, sorted by `(t, tid)` (each
    /// thread's samples are already time-ordered).
    pub series: Vec<Sample>,
}

impl TelemetrySnapshot {
    /// Merge per-thread shards. `shards` must be in tid order.
    pub fn from_threads(shards: Vec<ThreadRecorder>) -> Self {
        let mut counters = [0u64; NUM_COUNTERS];
        let mut per_thread = Vec::with_capacity(shards.len());
        let mut hists: [Histogram; NUM_HISTS] = std::array::from_fn(|_| Histogram::new());
        let mut timeline = Vec::new();
        let mut series = Vec::new();
        let mut dropped = 0u64;
        let threads = shards.len();
        for shard in shards {
            dropped += shard.ring().dropped();
            let (_tid, c, h, events, samples) = shard.into_parts();
            for (acc, v) in counters.iter_mut().zip(&c) {
                *acc += v;
            }
            per_thread.push(c);
            for (acc, v) in hists.iter_mut().zip(&h) {
                acc.merge(v);
            }
            timeline.extend(events);
            series.extend(samples);
        }
        // deterministic interleaving: time, then tid, then per-thread seq
        timeline.sort_by_key(|e| (e.t, e.tid, e.seq));
        series.sort_by_key(|s| (s.t, s.tid));
        TelemetrySnapshot {
            threads,
            counters,
            per_thread,
            hists,
            timeline,
            dropped_events: dropped,
            series,
        }
    }

    /// One counter's aggregated value.
    pub fn counter(&self, id: crate::recorder::CounterId) -> u64 {
        self.counters[id as usize]
    }

    /// One merged histogram.
    pub fn hist(&self, id: crate::recorder::HistId) -> &Histogram {
        &self.hists[id as usize]
    }

    /// Total flushes (async + sync).
    pub fn flushes(&self) -> u64 {
        self.counter(crate::CounterId::FlushesAsync) + self.counter(crate::CounterId::FlushesSync)
    }

    /// Capacity-change events in timeline order — the adaptive
    /// trajectory: `(t, tid, knee, new_capacity)`.
    pub fn capacity_timeline(&self) -> Vec<(u64, u32, u64, u64)> {
        self.timeline
            .iter()
            .filter(|e| e.kind == crate::EventKind::CapacityChange)
            .map(|e| (e.t, e.tid, e.a, e.b))
            .collect()
    }

    /// Serialize to JSON (hand-rolled like `bench::report`; every key is
    /// a static identifier and every value numeric, so no escaping is
    /// needed).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "      \"threads\": {},", self.threads);
        out.push_str("      \"counters\": {");
        for (i, id) in ALL_COUNTERS.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\": {}",
                if i == 0 { "" } else { ", " },
                id.name(),
                self.counters[*id as usize]
            );
        }
        out.push_str("},\n");
        out.push_str("      \"per_thread\": [");
        for (i, shard) in self.per_thread.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"tid\": {}, \"stores\": {}, \"flushes_async\": {}, \"flushes_sync\": {}, \"sc_hits\": {}}}",
                if i == 0 { "" } else { ", " },
                i,
                shard[crate::CounterId::Stores as usize],
                shard[crate::CounterId::FlushesAsync as usize],
                shard[crate::CounterId::FlushesSync as usize],
                shard[crate::CounterId::ScHits as usize],
            );
        }
        out.push_str("],\n");
        out.push_str("      \"histograms\": {\n");
        for (i, id) in ALL_HISTS.iter().enumerate() {
            let h = &self.hists[*id as usize];
            // trim trailing empty buckets for readability
            let last = h
                .buckets
                .iter()
                .rposition(|&b| b != 0)
                .map(|p| p + 1)
                .unwrap_or(0);
            let cells: Vec<String> = h.buckets[..last].iter().map(|b| b.to_string()).collect();
            let _ = write!(
                out,
                "        \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}",
                id.name(),
                h.count,
                h.sum,
                h.max,
                cells.join(", ")
            );
            out.push_str(if i + 1 == ALL_HISTS.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("      },\n");
        let _ = writeln!(out, "      \"dropped_events\": {},", self.dropped_events);
        out.push_str("      \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n        {{\"t\": {}, \"tid\": {}, \"ring_depth\": {}, \"capacity\": {}, \"hit_ratio_bp\": {}, \"stalls\": {}}}",
                if i == 0 { "" } else { "," },
                s.t,
                s.tid,
                s.ring_depth,
                s.capacity,
                s.hit_ratio_bp,
                s.stalls
            );
        }
        out.push_str(if self.series.is_empty() {
            "],\n"
        } else {
            "\n      ],\n"
        });
        out.push_str("      \"timeline\": [");
        for (i, e) in self.timeline.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n        {{\"t\": {}, \"tid\": {}, \"kind\": \"{}\", \"a\": {}, \"b\": {}}}",
                if i == 0 { "" } else { "," },
                e.t,
                e.tid,
                e.kind.name(),
                e.a,
                e.b
            );
        }
        out.push_str(if self.timeline.is_empty() {
            "]\n    }"
        } else {
            "\n      ]\n    }"
        });
        out
    }

    /// Human-readable summary rows: `(metric, value)` pairs for the
    /// harness's text table.
    pub fn summary_rows(&self) -> Vec<(String, String)> {
        let mut rows = Vec::new();
        for id in ALL_COUNTERS {
            let v = self.counters[id as usize];
            if v != 0 {
                rows.push((id.name().to_string(), v.to_string()));
            }
        }
        for id in ALL_HISTS {
            let h = &self.hists[id as usize];
            if !h.is_empty() {
                rows.push((
                    format!("{} (mean/max)", id.name()),
                    format!("{:.1}/{}", h.mean(), h.max),
                ));
                // latency spans get the paper-facing percentile triple
                if id.name().ends_with("_ns") {
                    let (p50, p99, p999) = h.percentiles();
                    rows.push((
                        format!("{} (p50/p99/p999)", id.name()),
                        format!("{p50}/{p99}/{p999}"),
                    ));
                }
            }
        }
        if !self.series.is_empty() {
            rows.push((
                "sampler series (kept)".to_string(),
                self.series.len().to_string(),
            ));
        }
        let resizes = self.capacity_timeline();
        if !resizes.is_empty() {
            let caps: Vec<String> = resizes.iter().map(|(_, _, _, c)| c.to_string()).collect();
            rows.push(("adaptive capacities".to_string(), caps.join("→")));
        }
        rows.push((
            "timeline events (kept/dropped)".to_string(),
            format!("{}/{}", self.timeline.len(), self.dropped_events),
        ));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{CounterId, HistId, Recorder, TelemetryConfig};
    use crate::ring::EventKind;

    fn shard(tid: u32, stores: u64) -> ThreadRecorder {
        let mut r = ThreadRecorder::new(tid, &TelemetryConfig::default());
        r.add(CounterId::Stores, stores);
        r.observe(HistId::QueueDepth, stores);
        r.emit(EventKind::FaseBegin, stores, 0, 0);
        r
    }

    #[test]
    fn merge_sums_counters_in_tid_order() {
        let snap = TelemetrySnapshot::from_threads(vec![shard(0, 10), shard(1, 32)]);
        assert_eq!(snap.threads, 2);
        assert_eq!(snap.counter(CounterId::Stores), 42);
        assert_eq!(snap.per_thread[0][CounterId::Stores as usize], 10);
        assert_eq!(snap.per_thread[1][CounterId::Stores as usize], 32);
        assert_eq!(snap.hist(HistId::QueueDepth).count, 2);
    }

    #[test]
    fn timeline_sorted_by_time_then_tid() {
        let mut a = ThreadRecorder::new(0, &TelemetryConfig::default());
        let mut b = ThreadRecorder::new(1, &TelemetryConfig::default());
        a.emit(EventKind::ScHit, 5, 0, 0);
        a.emit(EventKind::ScHit, 1, 0, 0);
        b.emit(EventKind::ScHit, 5, 0, 0);
        let snap = TelemetrySnapshot::from_threads(vec![a, b]);
        let order: Vec<(u64, u32)> = snap.timeline.iter().map(|e| (e.t, e.tid)).collect();
        assert_eq!(order, vec![(1, 0), (5, 0), (5, 1)]);
    }

    #[test]
    fn json_contains_expected_keys() {
        let snap = TelemetrySnapshot::from_threads(vec![shard(0, 3)]);
        let j = snap.to_json();
        for key in [
            "\"threads\"",
            "\"counters\"",
            "\"stores\": 3",
            "\"histograms\"",
            "\"queue_depth\"",
            "\"timeline\"",
            "\"fase_begin\"",
            "\"dropped_events\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn summary_skips_zero_counters() {
        let snap = TelemetrySnapshot::from_threads(vec![shard(0, 1)]);
        let rows = snap.summary_rows();
        assert!(rows.iter().any(|(k, _)| k == "stores"));
        assert!(!rows.iter().any(|(k, _)| k == "flushes_sync"));
    }

    #[test]
    fn series_merges_sorted_by_time_then_tid() {
        use crate::series::Sample;
        let cfg = TelemetryConfig::default();
        let mut a = ThreadRecorder::new(0, &cfg);
        let mut b = ThreadRecorder::new(1, &cfg);
        let mk = |t, tid| Sample {
            t,
            tid,
            ring_depth: 1,
            capacity: 64,
            hit_ratio_bp: 2500,
            stalls: 0,
        };
        a.sample(mk(10, 0));
        a.sample(mk(30, 0));
        b.sample(mk(10, 1));
        b.sample(mk(20, 1));
        let snap = TelemetrySnapshot::from_threads(vec![a, b]);
        let order: Vec<(u64, u32)> = snap.series.iter().map(|s| (s.t, s.tid)).collect();
        assert_eq!(order, vec![(10, 0), (10, 1), (20, 1), (30, 0)]);
        let j = snap.to_json();
        assert!(j.contains("\"series\""), "{j}");
        assert!(j.contains("\"hit_ratio_bp\": 2500"), "{j}");
        assert!(snap
            .summary_rows()
            .iter()
            .any(|(k, _)| k == "sampler series (kept)"));
    }

    #[test]
    fn empty_series_still_emits_key() {
        let snap = TelemetrySnapshot::from_threads(vec![shard(0, 1)]);
        assert!(snap.series.is_empty());
        assert!(snap.to_json().contains("\"series\": []"));
    }

    #[test]
    fn capacity_timeline_extracts_resizes() {
        let mut r = ThreadRecorder::new(2, &TelemetryConfig::default());
        r.emit(EventKind::CapacityChange, 100, 23, 24);
        let snap = TelemetrySnapshot::from_threads(vec![
            ThreadRecorder::new(0, &TelemetryConfig::default()),
            ThreadRecorder::new(1, &TelemetryConfig::default()),
            r,
        ]);
        assert_eq!(snap.capacity_timeline(), vec![(100, 2, 23, 24)]);
    }
}
